//! Workload specifications: a pattern plus the scalar character the paper's
//! methodology assigns to each application (footprint, arithmetic
//! intensity, write mix, memory-level parallelism, data activity).

use fgdram_model::stream::AccessStream;
use fgdram_model::units::Ns;

use crate::generators::{Generator, Pattern};

/// A fully parameterised workload: everything needed to build one access
/// stream per warp plus the data-activity figures the energy meter uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Application name as it appears in the paper's figures.
    pub name: String,
    /// Access-pattern family.
    pub pattern: Pattern,
    /// Total bytes touched.
    pub footprint_bytes: u64,
    /// Compute time a warp spends between memory instructions
    /// (arithmetic intensity).
    pub think_ns: Ns,
    /// Fraction of instructions that are stores.
    pub write_fraction: f64,
    /// Outstanding memory instructions a warp may keep in flight
    /// (1 = fully dependent pointer chasing).
    pub mlp: usize,
    /// Data-bus toggle rate of this application's data.
    pub toggle_rate: f64,
    /// Ones density of this application's data (PODL termination).
    pub ones_density: f64,
    /// Paper grouping: uses >60% of QB-HBM bandwidth.
    pub memory_intensive: bool,
    /// Base RNG seed; warp `w` derives its own stream from it.
    pub seed: u64,
}

impl Workload {
    /// Whether all warps share one footprint (scatter patterns) or carve
    /// it into private chunks (streaming patterns).
    fn shares_footprint(&self) -> bool {
        matches!(self.pattern, Pattern::Random { .. } | Pattern::PointerChase)
    }

    /// Builds one deterministic access stream per warp.
    pub fn streams(&self, n_warps: usize) -> Vec<Box<dyn AccessStream>> {
        (0..n_warps).map(|w| self.stream_for_warp(w, n_warps)).collect()
    }

    /// The stream for warp `w` of `n_warps`.
    ///
    /// Scatter patterns share the whole footprint; streaming patterns
    /// interleave warps across it the way coalesced GPU kernels stride
    /// thread blocks over an array (warp `w` starts `w` pitches in and
    /// advances by `n_warps` pitches per instruction), which is what gives
    /// real streaming kernels their DRAM row locality. Strided walkers
    /// spread warps by a large per-warp phase instead, preserving their
    /// characteristic row-locality loss.
    pub fn stream_for_warp(&self, w: usize, n_warps: usize) -> Box<dyn AccessStream> {
        let seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((w as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        let n = n_warps.max(1) as u64;
        let gen = if self.shares_footprint() {
            Generator::new(
                self.pattern,
                0,
                self.footprint_bytes,
                self.think_ns,
                self.write_fraction,
                seed,
            )
        } else {
            match self.pattern {
                Pattern::Strided { .. } => {
                    // Strided walkers share the footprint but start spread
                    // out by a per-warp phase.
                    let phase = self.footprint_bytes / n * w as u64;
                    Generator::with_phase(
                        self.pattern,
                        0,
                        self.footprint_bytes,
                        phase,
                        self.think_ns,
                        self.write_fraction,
                        seed,
                    )
                }
                _ => {
                    let pitch = match self.pattern {
                        Pattern::Sequential { sectors_per_instr } => sectors_per_instr as u64 * 32,
                        Pattern::Tiled { tile_sectors, .. } => tile_sectors as u64 * 32,
                        _ => 32,
                    };
                    let mut g = Generator::with_phase(
                        self.pattern,
                        0,
                        self.footprint_bytes,
                        pitch * w as u64,
                        self.think_ns,
                        self.write_fraction,
                        seed,
                    );
                    g.set_advance(pitch * n);
                    g
                }
            }
        };
        Box::new(gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::stream::WarpInstruction;

    fn wl(pattern: Pattern) -> Workload {
        Workload {
            name: "test".into(),
            pattern,
            footprint_bytes: 1 << 24,
            think_ns: 3,
            write_fraction: 0.0,
            mlp: 4,
            toggle_rate: 0.3,
            ones_density: 0.3,
            memory_intensive: true,
            seed: 99,
        }
    }

    #[test]
    fn sequential_warps_interleave_like_coalesced_kernels() {
        let w = wl(Pattern::Sequential { sectors_per_instr: 4 });
        let mut streams = w.streams(4);
        // First instruction of each warp: warp w starts w pitches in.
        let pitch = 4 * 32u64;
        for (wid, s) in streams.iter_mut().enumerate() {
            let mut i = WarpInstruction::default();
            s.fill_next(&mut i);
            assert_eq!(i.sectors[0].0, wid as u64 * pitch);
            // Second instruction advances by n_warps pitches.
            let mut j = WarpInstruction::default();
            s.fill_next(&mut j);
            assert_eq!(j.sectors[0].0, wid as u64 * pitch + 4 * pitch);
        }
    }

    #[test]
    fn random_warps_share_footprint_with_distinct_streams() {
        let w = wl(Pattern::Random { sectors_per_instr: 2, rmw: false });
        let mut streams = w.streams(2);
        let mut a = WarpInstruction::default();
        let mut b = WarpInstruction::default();
        streams[0].fill_next(&mut a);
        streams[1].fill_next(&mut b);
        assert_ne!(a.sectors, b.sectors);
        for s in a.sectors.iter().chain(&b.sectors) {
            assert!(s.0 < 1 << 24);
        }
    }

    #[test]
    fn strided_warps_are_phase_shifted() {
        let w = wl(Pattern::Strided { stride_bytes: 4096, sectors_per_instr: 1 });
        let mut streams = w.streams(4);
        let mut firsts = Vec::new();
        for s in &mut streams {
            let mut i = WarpInstruction::default();
            s.fill_next(&mut i);
            firsts.push(i.sectors[0].0);
        }
        assert_eq!(firsts.len(), 4);
        let unique: std::collections::HashSet<_> = firsts.iter().collect();
        assert_eq!(unique.len(), 4, "{firsts:?}");
    }

    #[test]
    fn same_workload_same_streams() {
        let w = wl(Pattern::Random { sectors_per_instr: 2, rmw: true });
        let mut s1 = w.stream_for_warp(5, 8);
        let mut s2 = w.stream_for_warp(5, 8);
        for _ in 0..10 {
            let mut a = WarpInstruction::default();
            let mut b = WarpInstruction::default();
            s1.fill_next(&mut a);
            s2.fill_next(&mut b);
            assert_eq!(a, b);
        }
    }
}
