//! Deterministic synthetic access-stream generators.
//!
//! Each generator produces the *memory character* of a class of GPU
//! applications — the property the paper's results hinge on (row locality,
//! randomness, dependence, tiling) — while staying laptop-synthesisable.
//! All randomness flows from a per-warp seed, so identical runs produce
//! identical streams on every architecture under test.

use fgdram_model::addr::PhysAddr;
use fgdram_model::rng::SmallRng;
use fgdram_model::stream::{AccessStream, WarpInstruction};
use fgdram_model::units::Ns;

const SECTOR: u64 = 32;

/// The access-pattern family of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Unit-stride streaming (STREAM, dense kernels): each warp walks its
    /// own contiguous chunk, `sectors_per_instr` sectors at a time.
    Sequential {
        /// Coalesced sectors per warp instruction.
        sectors_per_instr: u32,
    },
    /// Uniform-random sectors (GUPS, hash tables). With `rmw`, every load
    /// is followed by a store to the same sectors (read-modify-write).
    Random {
        /// Distinct random sectors per instruction.
        sectors_per_instr: u32,
        /// Issue a store to the same sectors after each load.
        rmw: bool,
    },
    /// Fixed-stride walk (nw's wavefronts, kmeans' column accesses):
    /// consecutive instructions land `stride_bytes` apart, destroying row
    /// locality without destroying coalescing.
    Strided {
        /// Stride between consecutive instructions.
        stride_bytes: u64,
        /// Coalesced sectors per instruction.
        sectors_per_instr: u32,
    },
    /// Serialized data-dependent loads (bfs, sssp, dmr, MCB): one random
    /// sector per instruction; pair with a small per-warp MLP.
    PointerChase,
    /// Structured-grid stencil (LULESH, HPGMG, CoMD): a streaming sweep
    /// that also touches the rows one plane up and down.
    Stencil {
        /// Bytes per grid plane (distance to vertical neighbours).
        plane_bytes: u64,
    },
    /// Tiled graphics (the 80-workload suite of Figure 9): sequential
    /// sectors within screen tiles, `compression` of render-target
    /// traffic elided (32 B-unit compression, Section 2.2), plus a
    /// fraction of scattered texture reads.
    Tiled {
        /// Sectors per tile row burst.
        tile_sectors: u32,
        /// Fraction of sectors elided by compression (0..=1).
        compression: f64,
        /// Fraction of instructions that are scattered texture reads.
        texture_fraction: f64,
    },
}

/// A generator instance: one per warp.
pub(crate) struct Generator {
    pattern: Pattern,
    rng: SmallRng,
    /// Byte region this warp draws from: `[base, base + span)`.
    base: u64,
    span: u64,
    cursor: u64,
    /// Bytes the cursor advances after each instruction (walk pitch).
    advance: u64,
    think_ns: Ns,
    write_fraction: f64,
    pending_store: Vec<PhysAddr>,
    flip: bool,
}

impl core::fmt::Debug for Generator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Generator").field("pattern", &self.pattern).finish_non_exhaustive()
    }
}

impl Generator {
    /// Builds the stream for one warp.
    ///
    /// `base`/`span` delimit the warp's byte region (generators that share
    /// the whole footprint pass the same region to every warp).
    pub fn new(
        pattern: Pattern,
        base: u64,
        span: u64,
        think_ns: Ns,
        write_fraction: f64,
        seed: u64,
    ) -> Self {
        Self::with_phase(pattern, base, span, 0, think_ns, write_fraction, seed)
    }

    /// Like [`Self::new`], with the walk cursor starting `phase` bytes in
    /// (used to spread warps across a shared footprint).
    #[allow(clippy::too_many_arguments)]
    pub fn with_phase(
        pattern: Pattern,
        base: u64,
        span: u64,
        phase: u64,
        think_ns: Ns,
        write_fraction: f64,
        seed: u64,
    ) -> Self {
        let span = span.max(SECTOR * 64);
        let advance = match pattern {
            Pattern::Sequential { sectors_per_instr } => sectors_per_instr as u64 * SECTOR,
            Pattern::Strided { stride_bytes, .. } => stride_bytes,
            Pattern::Stencil { .. } => SECTOR,
            Pattern::Tiled { tile_sectors, .. } => tile_sectors as u64 * SECTOR,
            Pattern::Random { .. } | Pattern::PointerChase => SECTOR,
        };
        Generator {
            pattern,
            rng: SmallRng::seed_from_u64(seed),
            base,
            span,
            cursor: (phase / SECTOR) * SECTOR % span,
            advance,
            think_ns,
            write_fraction,
            pending_store: Vec::new(),
            flip: false,
        }
    }

    /// Overrides the per-instruction cursor advance (bytes). Used to
    /// interleave many warps over one shared footprint, the way coalesced
    /// GPU kernels stride thread blocks across an array.
    pub fn set_advance(&mut self, advance: u64) {
        self.advance = advance.max(SECTOR);
    }

    #[inline]
    fn sectors_in_span(&self) -> u64 {
        self.span / SECTOR
    }

    #[inline]
    fn random_sector(&mut self) -> u64 {
        let s = self.rng.random_range(0..self.sectors_in_span());
        self.base + s * SECTOR
    }

    fn push_burst(&mut self, out: &mut WarpInstruction, count: u32) {
        for i in 0..count as u64 {
            out.sectors.push(PhysAddr(self.base + (self.cursor + i * SECTOR) % self.span));
        }
    }

    fn maybe_store(&mut self, out: &mut WarpInstruction) {
        if self.write_fraction > 0.0 && self.rng.random_bool(self.write_fraction) {
            out.is_store = true;
        }
    }
}

impl AccessStream for Generator {
    fn fill_next(&mut self, out: &mut WarpInstruction) {
        out.think_ns = self.think_ns;
        // A pending RMW store preempts pattern generation.
        if !self.pending_store.is_empty() {
            out.sectors.append(&mut self.pending_store);
            out.is_store = true;
            out.think_ns = 0;
            return;
        }
        match self.pattern {
            Pattern::Sequential { sectors_per_instr } => {
                self.push_burst(out, sectors_per_instr);
                self.cursor = (self.cursor + self.advance) % self.span;
                self.maybe_store(out);
            }
            Pattern::Random { sectors_per_instr, rmw } => {
                for _ in 0..sectors_per_instr {
                    let s = self.random_sector();
                    out.sectors.push(PhysAddr(s));
                }
                if rmw {
                    // `append` above drains this buffer but keeps its
                    // capacity, so refilling in place stays allocation-free.
                    self.pending_store.clear();
                    self.pending_store.extend_from_slice(&out.sectors);
                } else {
                    self.maybe_store(out);
                }
            }
            Pattern::Strided { sectors_per_instr, .. } => {
                self.push_burst(out, sectors_per_instr);
                self.cursor = (self.cursor + self.advance) % self.span;
                self.maybe_store(out);
            }
            Pattern::PointerChase => {
                let s = self.random_sector();
                out.sectors.push(PhysAddr(s));
            }
            Pattern::Stencil { plane_bytes } => {
                let center = self.base + self.cursor % self.span;
                out.sectors.push(PhysAddr(center));
                out.sectors.push(PhysAddr(self.base + (self.cursor + plane_bytes) % self.span));
                out.sectors.push(PhysAddr(self.base + (self.cursor + 2 * plane_bytes) % self.span));
                self.cursor = (self.cursor + self.advance) % self.span;
                self.maybe_store(out);
            }
            Pattern::Tiled { tile_sectors, compression, texture_fraction } => {
                if self.rng.random_bool(texture_fraction) {
                    // Scattered texture fetch: random line, 2 sectors.
                    // The tile cursor still advances so warps stay
                    // spatially aligned across the frame.
                    let s = self.random_sector() & !(2 * SECTOR - 1);
                    out.sectors.push(PhysAddr(s));
                    out.sectors.push(PhysAddr(s + SECTOR));
                    self.cursor = (self.cursor + self.advance) % self.span;
                    return;
                }
                // Whole-tile compression (render surfaces compress to
                // 32 B units per tile, Section 2.2): a compressed tile
                // transfers a quarter of its sectors, an uncompressed
                // tile all of them. Either way the transfer is a dense
                // run, preserving row locality.
                let emit = if self.rng.random_bool(compression) {
                    // A compressed tile is a single 32 B unit.
                    1
                } else {
                    tile_sectors
                };
                for i in 0..emit as u64 {
                    let addr = self.base + (self.cursor + i * SECTOR) % self.span;
                    out.sectors.push(PhysAddr(addr));
                }
                self.cursor = (self.cursor + self.advance) % self.span;
                // Alternate colour write-back / texture read phases.
                self.flip = !self.flip;
                if self.flip && self.rng.random_bool(self.write_fraction) {
                    out.is_store = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(pattern: Pattern, n: usize) -> Vec<WarpInstruction> {
        let mut g = Generator::new(pattern, 0, 1 << 20, 5, 0.0, 42);
        (0..n)
            .map(|_| {
                let mut w = WarpInstruction::default();
                g.fill_next(&mut w);
                w
            })
            .collect()
    }

    #[test]
    fn sequential_is_contiguous() {
        let instrs = collect(Pattern::Sequential { sectors_per_instr: 4 }, 3);
        let flat: Vec<u64> = instrs.iter().flat_map(|i| i.sectors.iter().map(|a| a.0)).collect();
        let expect: Vec<u64> = (0..12).map(|i| i * 32).collect();
        assert_eq!(flat, expect);
        assert!(instrs.iter().all(|i| i.think_ns == 5));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = collect(Pattern::Random { sectors_per_instr: 2, rmw: false }, 10);
        let b = collect(Pattern::Random { sectors_per_instr: 2, rmw: false }, 10);
        assert_eq!(a, b);
        let mut g = Generator::new(
            Pattern::Random { sectors_per_instr: 2, rmw: false },
            0,
            1 << 20,
            5,
            0.0,
            43,
        );
        let mut w = WarpInstruction::default();
        g.fill_next(&mut w);
        assert_ne!(w.sectors, a[0].sectors, "different seed, different stream");
    }

    #[test]
    fn rmw_alternates_load_store_on_same_sectors() {
        let instrs = collect(Pattern::Random { sectors_per_instr: 2, rmw: true }, 4);
        assert!(!instrs[0].is_store);
        assert!(instrs[1].is_store);
        assert_eq!(instrs[0].sectors, instrs[1].sectors);
        assert!(!instrs[2].is_store);
        assert_eq!(instrs[2].sectors, instrs[3].sectors);
        assert_ne!(instrs[0].sectors, instrs[2].sectors);
    }

    #[test]
    fn strided_jumps_by_stride() {
        let instrs = collect(Pattern::Strided { stride_bytes: 1 << 16, sectors_per_instr: 1 }, 3);
        assert_eq!(instrs[0].sectors[0].0, 0);
        assert_eq!(instrs[1].sectors[0].0, 1 << 16);
        assert_eq!(instrs[2].sectors[0].0, 2 << 16);
    }

    #[test]
    fn pointer_chase_is_single_sector() {
        let instrs = collect(Pattern::PointerChase, 20);
        assert!(instrs.iter().all(|i| i.sectors.len() == 1 && !i.is_store));
    }

    #[test]
    fn stencil_touches_three_planes() {
        let instrs = collect(Pattern::Stencil { plane_bytes: 1 << 14 }, 1);
        let s = &instrs[0].sectors;
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].0 - s[0].0, 1 << 14);
    }

    #[test]
    fn tiled_compression_reduces_sectors() {
        let none = collect(
            Pattern::Tiled { tile_sectors: 8, compression: 0.0, texture_fraction: 0.0 },
            50,
        );
        let heavy = collect(
            Pattern::Tiled { tile_sectors: 8, compression: 0.9, texture_fraction: 0.0 },
            50,
        );
        let count = |v: &[WarpInstruction]| v.iter().map(|i| i.sectors.len()).sum::<usize>();
        assert_eq!(count(&none), 400);
        assert!(count(&heavy) < 150, "{}", count(&heavy));
        assert!(count(&heavy) >= 50, "compressed tiles still transfer one 32 B unit");
        // Compressed transfers are dense runs from the tile base.
        for i in &heavy {
            for (k, s) in i.sectors.iter().enumerate() {
                assert_eq!(s.0, i.sectors[0].0 + k as u64 * 32);
            }
        }
    }

    #[test]
    fn write_fraction_produces_stores() {
        let mut g =
            Generator::new(Pattern::Sequential { sectors_per_instr: 1 }, 0, 1 << 20, 0, 0.5, 7);
        let mut stores = 0;
        for _ in 0..200 {
            let mut w = WarpInstruction::default();
            g.fill_next(&mut w);
            stores += w.is_store as u32;
        }
        assert!((50..150).contains(&stores), "{stores}");
    }

    #[test]
    fn footprint_span_is_respected() {
        let mut g = Generator::new(
            Pattern::Random { sectors_per_instr: 4, rmw: false },
            1 << 30,
            1 << 20,
            0,
            0.0,
            3,
        );
        for _ in 0..100 {
            let mut w = WarpInstruction::default();
            g.fill_next(&mut w);
            for s in &w.sectors {
                assert!(s.0 >= 1 << 30 && s.0 < (1 << 30) + (1 << 20));
            }
        }
    }
}
