//! The paper's workload suites as parameter tables.
//!
//! Section 4.1 evaluates 26 CUDA applications (Rodinia, Lonestar, exascale
//! proxies, GoogLeNet, STREAM, GUPS) and 80 graphics workloads. The traces
//! are proprietary, so each application is mapped to the synthetic pattern
//! and scalar character the paper itself uses to explain its behaviour:
//! GUPS is uniform-random read-modify-write; dmr/sssp/sp/bfs/MCB perform
//! "many sparse data-dependent loads — i.e. pointer chasing"; kmeans/nw/
//! MiniAMR lose row locality to inter-thread interference; STREAM/
//! streamcluster/LULESH/HPGMG/mst stream with high row locality; graphics
//! render in compressed 32 B units over screen tiles.
//!
//! The same stream drives every architecture, so relative results between
//! QB-HBM and FGDRAM are emergent, not encoded.

use fgdram_model::rng::SmallRng;
use fgdram_model::units::MIB;

use crate::generators::Pattern;
use crate::spec::Workload;

const SUITE_SEED: u64 = 0x5EED_2017;

#[allow(clippy::too_many_arguments)]
fn wl(
    name: &str,
    pattern: Pattern,
    footprint_mb: u64,
    think_ns: u64,
    write_fraction: f64,
    mlp: usize,
    toggle_rate: f64,
    memory_intensive: bool,
) -> Workload {
    Workload {
        name: name.to_string(),
        pattern,
        footprint_bytes: footprint_mb * MIB,
        think_ns,
        write_fraction,
        mlp,
        toggle_rate,
        ones_density: toggle_rate, // synthetic data: ones track toggle
        memory_intensive,
        seed: SUITE_SEED
            ^ name.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64)),
    }
}

/// The 26-application compute suite of Figures 8 and 10.
///
/// The first group (not memory-intensive) uses under ~60% of QB-HBM
/// bandwidth; the second (memory-intensive) is bandwidth/power limited.
pub fn compute_suite() -> Vec<Workload> {
    use Pattern::*;
    vec![
        // --- low-bandwidth group -----------------------------------------
        // think_ns values put each app's demand below the baseline's
        // service rate for its pattern (so FGDRAM cannot help), matching
        // the paper's "less than 60% of aggregate bandwidth" grouping.
        wl("dmr", PointerChase, 256, 1500, 0.0, 1, 0.30, false),
        wl("sssp", PointerChase, 512, 1600, 0.0, 2, 0.28, false),
        wl("bh", PointerChase, 256, 2500, 0.0, 2, 0.26, false),
        wl("MCB", PointerChase, 1024, 530, 0.0, 4, 0.33, false),
        wl("CoMD", Stencil { plane_bytes: 1 << 14 }, 256, 1400, 0.15, 4, 0.35, false),
        wl("Nekbone", Sequential { sectors_per_instr: 4 }, 128, 1100, 0.20, 4, 0.40, false),
        wl("GoogLeNet", Sequential { sectors_per_instr: 8 }, 64, 2500, 0.25, 4, 0.45, false),
        wl("pathfinder", Sequential { sectors_per_instr: 4 }, 128, 1900, 0.10, 4, 0.30, false),
        wl("srad_v2", Stencil { plane_bytes: 1 << 13 }, 128, 1700, 0.20, 4, 0.22, false),
        wl("backprop", Sequential { sectors_per_instr: 4 }, 128, 1400, 0.30, 4, 0.33, false),
        wl("hotspot", Stencil { plane_bytes: 1 << 13 }, 128, 1900, 0.15, 4, 0.28, false),
        wl(
            "gaussian",
            Strided { stride_bytes: 1 << 13, sectors_per_instr: 2 },
            128,
            2200,
            0.10,
            4,
            0.27,
            false,
        ),
        wl("lavaMD", Random { sectors_per_instr: 4, rmw: false }, 64, 4500, 0.10, 4, 0.31, false),
        wl("cfd", Stencil { plane_bytes: 1 << 15 }, 256, 950, 0.20, 4, 0.34, false),
        wl("b+tree", PointerChase, 256, 1800, 0.0, 2, 0.29, false),
        // --- memory-intensive group --------------------------------------
        // think_ns calibrated once against Figure 10's reported speedups
        // (see DESIGN.md); the same stream drives every architecture.
        wl("GUPS", Random { sectors_per_instr: 1, rmw: true }, 1024, 0, 0.0, 8, 0.12, true),
        wl(
            "nw",
            Strided { stride_bytes: 1 << 15, sectors_per_instr: 2 },
            512,
            450,
            0.25,
            4,
            0.32,
            true,
        ),
        wl("bfs", PointerChase, 512, 340, 0.0, 6, 0.30, true),
        wl("sp", Random { sectors_per_instr: 2, rmw: false }, 512, 980, 0.10, 4, 0.36, true),
        wl(
            "kmeans",
            Strided { stride_bytes: 1 << 16, sectors_per_instr: 4 },
            512,
            860,
            0.05,
            4,
            0.34,
            true,
        ),
        wl("MiniAMR", Random { sectors_per_instr: 4, rmw: false }, 512, 2100, 0.20, 4, 0.38, true),
        wl("streamcluster", Sequential { sectors_per_instr: 8 }, 64, 1600, 0.05, 4, 0.42, true),
        wl("mst", Sequential { sectors_per_instr: 4 }, 256, 900, 0.10, 4, 0.37, true),
        wl("HPGMG", Stencil { plane_bytes: 1 << 16 }, 512, 360, 0.25, 4, 0.46, true),
        wl("LULESH", Stencil { plane_bytes: 1 << 15 }, 256, 350, 0.25, 4, 0.39, true),
        wl("STREAM", Sequential { sectors_per_instr: 4 }, 512, 680, 0.33, 4, 0.35, true),
    ]
}

/// The 80-workload graphics suite of Figure 9 (games, rendering,
/// professional graphics): tiled render/texture traffic with 32 B-unit
/// compression, spanning the paper's locality and intensity range.
pub fn graphics_suite() -> Vec<Workload> {
    let mut rng = SmallRng::seed_from_u64(SUITE_SEED ^ 0x6F78_1A2B);
    (0..80)
        .map(|i| {
            let tile_sectors = *[4u32, 4, 4, 8].get(rng.random_index(4)).unwrap();
            let compression = 0.45 + 0.35 * rng.random_f64();
            let texture_fraction = 0.04 + 0.11 * rng.random_f64();
            let footprint_mb = *[32u64, 64, 128, 256].get(rng.random_index(4)).unwrap();
            let toggle = 0.22 + 0.28 * rng.random_f64();
            // Frames target a DRAM bandwidth in the 250-550 GB/s range
            // (graphics "are unable to fully utilize the baseline",
            // Section 5.2); think follows from the per-instruction bytes.
            let target_gbps = 470.0 + 130.0 * rng.random_f64();
            let bytes_per_instr = (compression + (1.0 - compression) * tile_sectors as f64) * 32.0
                + texture_fraction * 64.0;
            let think = (3840.0 * bytes_per_instr / target_gbps) as u64;
            let mut w = wl(
                &format!("gfx{i:02}"),
                Pattern::Tiled { tile_sectors, compression, texture_fraction },
                footprint_mb,
                think,
                0.35,
                4,
                toggle,
                false,
            );
            w.seed = SUITE_SEED.wrapping_add(i as u64 * 7919);
            w
        })
        .collect()
}

/// Looks a workload up by figure name across both suites.
pub fn by_name(name: &str) -> Option<Workload> {
    compute_suite().into_iter().chain(graphics_suite()).find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(compute_suite().len(), 26);
        assert_eq!(graphics_suite().len(), 80);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> =
            compute_suite().into_iter().chain(graphics_suite()).map(|w| w.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn memory_intensive_grouping() {
        let suite = compute_suite();
        let intensive: Vec<&str> =
            suite.iter().filter(|w| w.memory_intensive).map(|w| w.name.as_str()).collect();
        assert_eq!(intensive.len(), 11);
        for name in ["GUPS", "STREAM", "bfs", "nw", "kmeans", "MiniAMR", "sp"] {
            assert!(intensive.contains(&name), "{name} should be memory intensive");
        }
    }

    #[test]
    fn by_name_finds_both_suites() {
        assert!(by_name("GUPS").is_some());
        assert!(by_name("gfx42").is_some());
        assert!(by_name("no-such-app").is_none());
    }

    #[test]
    fn suites_are_deterministic() {
        let a = graphics_suite();
        let b = graphics_suite();
        assert_eq!(a, b);
        assert_eq!(compute_suite(), compute_suite());
    }

    #[test]
    fn footprints_exceed_l2_for_memory_intensive() {
        for w in compute_suite().iter().filter(|w| w.memory_intensive) {
            assert!(w.footprint_bytes > 4 * MIB, "{}", w.name);
        }
    }
}
