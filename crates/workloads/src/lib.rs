//! # fgdram-workloads
//!
//! Deterministic synthetic workload suites for the FGDRAM (MICRO 2017)
//! reproduction: the access-pattern generators ([`generators`]), the
//! per-application parameterisation ([`spec::Workload`]), and the paper's
//! 26-application compute suite plus 80-workload graphics suite
//! ([`suites`]).
//!
//! ## Examples
//!
//! ```
//! use fgdram_workloads::suites;
//! use fgdram_model::stream::WarpInstruction;
//!
//! let gups = suites::by_name("GUPS").expect("GUPS is in the suite");
//! let mut warp0 = gups.stream_for_warp(0, 3840);
//! let mut instr = WarpInstruction::default();
//! warp0.fill_next(&mut instr);
//! assert_eq!(instr.sectors.len(), 1); // one random 32 B update at a time
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod spec;
pub mod suites;

pub use generators::Pattern;
pub use spec::Workload;
