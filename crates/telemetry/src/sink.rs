//! Streaming sinks: where a telemetry series goes, decoupled from how it
//! is produced.
//!
//! The exporters in [`crate::export`] are pure functions over a complete
//! [`Telemetry`] series. A *sink* is the stateful counterpart for callers
//! that emit several series incrementally into one output — a suite run
//! appending one series per (workload, architecture) cell to a file, or
//! `fgdram-serve` streaming each cell's series to a client as it
//! completes. The sink owns the cross-series state (the single CSV
//! header) so every front end that writes telemetry shares one
//! implementation instead of re-deriving the header rules.

use std::io::{self, Write};

use crate::export;
use crate::recorder::Telemetry;

/// A destination for a sequence of telemetry series.
///
/// `emit` may be called any number of times (one call per completed
/// cell/run); `finish` flushes whatever the transport buffers.
pub trait SeriesSink {
    /// Appends one series, tagged with `meta` key/value pairs.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    fn emit(&mut self, meta: &[(&str, &str)], t: &Telemetry) -> io::Result<()>;

    /// Flushes the underlying transport.
    ///
    /// # Errors
    ///
    /// Propagates transport flush failures.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// JSON Lines sink: every epoch of every emitted series becomes one
/// self-describing JSON object line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `w`.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> SeriesSink for JsonlSink<W> {
    fn emit(&mut self, meta: &[(&str, &str)], t: &Telemetry) -> io::Result<()> {
        export::write_jsonl(&mut self.w, meta, t)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// CSV sink: one header line derived from the first emitted series, then
/// data rows from every series (all series in one file must share a
/// schema, which holds for same-spec suite cells).
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    w: W,
    header_done: bool,
}

impl<W: Write> CsvSink<W> {
    /// Wraps `w`; the first `emit` writes the header.
    pub fn new(w: W) -> Self {
        CsvSink { w, header_done: false }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> SeriesSink for CsvSink<W> {
    fn emit(&mut self, meta: &[(&str, &str)], t: &Telemetry) -> io::Result<()> {
        export::write_csv_with_header(&mut self.w, meta, t, !self.header_done)?;
        // An empty series writes nothing; keep the header pending so the
        // first non-empty series still gets one.
        if !t.records.is_empty() {
            self.header_done = true;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ComponentRecord, EpochRecord, FieldValue};

    fn series(v: u64) -> Telemetry {
        Telemetry {
            epoch_ns: 1000,
            records: vec![EpochRecord {
                index: 0,
                start_ns: 0,
                end_ns: 1000,
                components: vec![ComponentRecord {
                    component: "c",
                    fields: vec![("n", FieldValue::U64(v))],
                }],
            }],
            dropped_epochs: 0,
        }
    }

    #[test]
    fn jsonl_sink_appends_series() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&[("arch", "QB")], &series(1)).unwrap();
        sink.emit(&[("arch", "FG")], &series(2)).unwrap();
        sink.finish().unwrap();
        let s = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().nth(1).unwrap().contains("\"FG\""));
    }

    #[test]
    fn csv_sink_writes_exactly_one_header() {
        let mut sink = CsvSink::new(Vec::new());
        // An empty leading series must not consume the header.
        sink.emit(
            &[("arch", "QB")],
            &Telemetry { epoch_ns: 1, records: vec![], dropped_epochs: 0 },
        )
        .unwrap();
        sink.emit(&[("arch", "QB")], &series(1)).unwrap();
        sink.emit(&[("arch", "FG")], &series(2)).unwrap();
        let s = String::from_utf8(sink.into_inner()).unwrap();
        let headers = s.lines().filter(|l| l.starts_with("arch,epoch")).count();
        assert_eq!(headers, 1, "{s}");
        assert_eq!(s.lines().count(), 3);
    }
}
