//! The [`Sampled`] trait and raw snapshot buffers.

use fgdram_model::units::Ns;

/// One raw sampled value. The kind decides how the recorder turns two
/// consecutive snapshots into a per-epoch reading.
#[derive(Debug, Clone, PartialEq)]
pub enum RawValue {
    /// Monotonic event count; per-epoch value is the delta.
    Counter(u64),
    /// Monotonic float accumulator (e.g. cumulative picojoules); delta'd.
    CounterF64(f64),
    /// Instantaneous reading (queue occupancy, active warps); passed
    /// through unchanged.
    Gauge(f64),
    /// Array of monotonic counters (per-bank heatmaps); element-wise delta.
    CounterArray(Vec<u64>),
    /// Cumulative log2-histogram buckets (layout of
    /// `fgdram_model::stats::Log2Histogram`); the bucket-wise delta is the
    /// epoch's distribution, summarised as count/p50/p95.
    Log2Hist(Vec<u64>),
}

/// An ordered, named collection of raw values — one component's snapshot.
///
/// Field order is insertion order and must be identical on every
/// [`Sampled::sample`] call: the recorder pairs fields positionally when
/// computing deltas, and exporters derive the schema from it.
#[derive(Debug, Clone, Default)]
pub struct SampleBuf {
    fields: Vec<(&'static str, RawValue)>,
}

impl SampleBuf {
    /// New empty buffer.
    pub fn new() -> Self {
        SampleBuf { fields: Vec::new() }
    }

    /// Appends a monotonic counter.
    pub fn counter(&mut self, name: &'static str, v: u64) {
        self.fields.push((name, RawValue::Counter(v)));
    }

    /// Appends a monotonic float accumulator.
    pub fn counter_f64(&mut self, name: &'static str, v: f64) {
        self.fields.push((name, RawValue::CounterF64(v)));
    }

    /// Appends an instantaneous gauge.
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        self.fields.push((name, RawValue::Gauge(v)));
    }

    /// Appends an array of monotonic counters.
    pub fn counter_array(&mut self, name: &'static str, v: Vec<u64>) {
        self.fields.push((name, RawValue::CounterArray(v)));
    }

    /// Appends cumulative log2-histogram buckets.
    pub fn log2_hist(&mut self, name: &'static str, buckets: &[u64; 64]) {
        self.fields.push((name, RawValue::Log2Hist(buckets.to_vec())));
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(&'static str, RawValue)] {
        &self.fields
    }

    /// Looks a field up by name (for [`Sampled::derive`] implementations).
    pub fn get(&self, name: &str) -> Option<&RawValue> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// A counter field's value, or 0 when absent or of another kind.
    pub fn get_u64(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(RawValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A float-counter or gauge field's value, or 0.0 otherwise.
    pub fn get_f64(&self, name: &str) -> f64 {
        match self.get(name) {
            Some(RawValue::CounterF64(v)) | Some(RawValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Sum of a counter-array field, or 0 when absent.
    pub fn get_array_sum(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(RawValue::CounterArray(v)) => v.iter().sum(),
            _ => 0,
        }
    }

    /// Computes the delta snapshot `cur - prev`.
    ///
    /// Both buffers must come from the same [`Sampled::sample`]
    /// implementation: identical field names, kinds, and array lengths, in
    /// the same order (debug-asserted). Counters subtract saturating so a
    /// mid-window external reset degrades to a zero reading instead of
    /// wrapping.
    pub fn delta(prev: &SampleBuf, cur: &SampleBuf) -> SampleBuf {
        debug_assert_eq!(prev.fields.len(), cur.fields.len(), "snapshot schema changed");
        let fields = cur
            .fields
            .iter()
            .zip(prev.fields.iter())
            .map(|((name, c), (pname, p))| {
                debug_assert_eq!(name, pname, "snapshot field order changed");
                let v = match (c, p) {
                    (RawValue::Counter(c), RawValue::Counter(p)) => {
                        RawValue::Counter(c.saturating_sub(*p))
                    }
                    (RawValue::CounterF64(c), RawValue::CounterF64(p)) => {
                        RawValue::CounterF64(c - p)
                    }
                    (RawValue::Gauge(c), RawValue::Gauge(_)) => RawValue::Gauge(*c),
                    (RawValue::CounterArray(c), RawValue::CounterArray(p)) => {
                        RawValue::CounterArray(
                            c.iter().zip(p.iter()).map(|(c, p)| c.saturating_sub(*p)).collect(),
                        )
                    }
                    (RawValue::Log2Hist(c), RawValue::Log2Hist(p)) => RawValue::Log2Hist(
                        c.iter().zip(p.iter()).map(|(c, p)| c.saturating_sub(*p)).collect(),
                    ),
                    (c, _) => {
                        debug_assert!(false, "snapshot field kind changed for {name}");
                        c.clone()
                    }
                };
                (*name, v)
            })
            .collect();
        SampleBuf { fields }
    }
}

/// A component that can be observed by the epoch sampler.
///
/// Implementations dump *cumulative* counters — never per-epoch state —
/// and may derive rates/ratios from the computed delta afterwards.
pub trait Sampled {
    /// Stable component name; becomes the JSONL object key ("ctrl",
    /// "dram", "gpu", "l2", "energy").
    fn component(&self) -> &'static str;

    /// Writes the cumulative snapshot. Must emit the same fields in the
    /// same order on every call.
    fn sample(&self, out: &mut SampleBuf);

    /// Post-delta hook: append gauge fields computed from the epoch's
    /// delta (`epoch_ns` is the epoch's actual duration — shorter than the
    /// configured epoch for a final partial window). Default: nothing.
    fn derive(&self, _delta: &mut SampleBuf, _epoch_ns: Ns) {}
}

/// Value below which `q` (0..=1) of the samples in a log2-bucket delta
/// fall, at bucket-edge resolution (mirrors
/// `fgdram_model::stats::Log2Histogram::quantile`, which cannot be used
/// directly because a delta exists only as raw buckets). Returns 0 for an
/// empty distribution.
pub fn log2_bucket_quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
    let mut seen = 0;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= target.max(1) {
            return if i == 0 { 1 } else { 1u64 << i };
        }
    }
    // Unreachable for consistent buckets; cap at the top edge.
    1u64 << (buckets.len().min(64) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_and_passes_gauges() {
        let mut prev = SampleBuf::new();
        prev.counter("ops", 10);
        prev.counter_f64("pj", 1.5);
        prev.gauge("depth", 4.0);
        prev.counter_array("heat", vec![1, 2, 3]);
        let mut cur = SampleBuf::new();
        cur.counter("ops", 17);
        cur.counter_f64("pj", 4.0);
        cur.gauge("depth", 9.0);
        cur.counter_array("heat", vec![2, 2, 10]);
        let d = SampleBuf::delta(&prev, &cur);
        assert_eq!(d.get_u64("ops"), 7);
        assert!((d.get_f64("pj") - 2.5).abs() < 1e-12);
        assert_eq!(d.get_f64("depth"), 9.0);
        assert_eq!(d.get_array_sum("heat"), 8); // per-element deltas 1, 0, 7
    }

    #[test]
    fn delta_saturates_on_external_reset() {
        let mut prev = SampleBuf::new();
        prev.counter("ops", 100);
        let mut cur = SampleBuf::new();
        cur.counter("ops", 3); // counter was reset under us
        assert_eq!(SampleBuf::delta(&prev, &cur).get_u64("ops"), 3u64.saturating_sub(100));
    }

    #[test]
    fn hist_delta_is_bucketwise() {
        use fgdram_model::stats::Log2Histogram;
        let mut h = Log2Histogram::new();
        h.record(5);
        let mut prev = SampleBuf::new();
        prev.log2_hist("lat", h.buckets());
        h.record(5);
        h.record(1000);
        let mut cur = SampleBuf::new();
        cur.log2_hist("lat", h.buckets());
        let d = SampleBuf::delta(&prev, &cur);
        let RawValue::Log2Hist(b) = d.get("lat").unwrap() else { panic!("kind") };
        assert_eq!(b.iter().sum::<u64>(), 2);
        assert_eq!(log2_bucket_quantile(b, 0.5), 8); // 5 lands in (4,8]
        assert_eq!(log2_bucket_quantile(b, 1.0), 1024);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(log2_bucket_quantile(&[0; 64], 0.5), 0);
    }

    #[test]
    fn quantile_of_zero_bucket_is_one() {
        let mut b = [0u64; 64];
        b[0] = 10; // ten zero-valued samples
        assert_eq!(log2_bucket_quantile(&b, 0.5), 1);
    }
}
