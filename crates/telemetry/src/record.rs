//! Finished per-epoch records: what exporters and tests consume.

use crate::sample::{log2_bucket_quantile, RawValue, SampleBuf};
use fgdram_model::units::Ns;

/// Summary of a per-epoch latency/depth distribution, computed from
/// delta'd log2-histogram buckets at bucket-edge resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples recorded inside the epoch.
    pub count: u64,
    /// Median (upper bucket edge), 0 when empty.
    pub p50: u64,
    /// 95th percentile (upper bucket edge), 0 when empty.
    pub p95: u64,
}

impl HistSummary {
    /// Summarises a bucket-wise delta.
    pub fn from_buckets(buckets: &[u64]) -> Self {
        HistSummary {
            count: buckets.iter().sum(),
            p50: log2_bucket_quantile(buckets, 0.5),
            p95: log2_bucket_quantile(buckets, 0.95),
        }
    }
}

/// One finished per-epoch field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Delta of a counter (events inside the epoch).
    U64(u64),
    /// Gauge reading or delta of a float accumulator.
    F64(f64),
    /// Element-wise delta of a counter array (heatmap row).
    Array(Vec<u64>),
    /// Summarised histogram delta.
    Hist(HistSummary),
}

/// One component's finished fields for one epoch.
#[derive(Debug, Clone)]
pub struct ComponentRecord {
    /// Component name ("ctrl", "dram", ...), from [`crate::Sampled::component`].
    pub component: &'static str,
    /// Fields in sample order, derived fields last.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl ComponentRecord {
    /// Builds a finished record from a delta'd [`SampleBuf`].
    pub fn from_delta(component: &'static str, delta: &SampleBuf) -> Self {
        let fields = delta
            .fields()
            .iter()
            .map(|(name, v)| {
                let fv = match v {
                    RawValue::Counter(c) => FieldValue::U64(*c),
                    RawValue::CounterF64(c) => FieldValue::F64(*c),
                    RawValue::Gauge(g) => FieldValue::F64(*g),
                    RawValue::CounterArray(a) => FieldValue::Array(a.clone()),
                    RawValue::Log2Hist(b) => FieldValue::Hist(HistSummary::from_buckets(b)),
                };
                (*name, fv)
            })
            .collect();
        ComponentRecord { component, fields }
    }

    /// Looks a finished field up by name.
    pub fn get(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }
}

/// Everything sampled for one epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// 0-based epoch index since recording started.
    pub index: u64,
    /// Inclusive epoch start in simulated ns.
    pub start_ns: Ns,
    /// Exclusive epoch end in simulated ns (may be closer than
    /// `epoch_ns` for a trailing partial epoch).
    pub end_ns: Ns,
    /// One record per sampled component, in source order.
    pub components: Vec<ComponentRecord>,
}

impl EpochRecord {
    /// Looks a component up by name.
    pub fn component(&self, name: &str) -> Option<&ComponentRecord> {
        self.components.iter().find(|c| c.component == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_summary_from_empty() {
        let s = HistSummary::from_buckets(&[0; 64]);
        assert_eq!(s, HistSummary { count: 0, p50: 0, p95: 0 });
    }

    #[test]
    fn component_record_preserves_order_and_kinds() {
        let mut d = SampleBuf::new();
        d.counter("a", 1);
        d.gauge("b", 2.5);
        d.counter_array("c", vec![3, 4]);
        let mut buckets = [0u64; 64];
        buckets[3] = 2; // two samples in (4, 8]
        d.log2_hist("d", &buckets);
        let r = ComponentRecord::from_delta("x", &d);
        assert_eq!(r.fields.iter().map(|(n, _)| *n).collect::<Vec<_>>(), ["a", "b", "c", "d"]);
        assert_eq!(r.get("a"), Some(&FieldValue::U64(1)));
        assert_eq!(r.get("b"), Some(&FieldValue::F64(2.5)));
        assert_eq!(r.get("c"), Some(&FieldValue::Array(vec![3, 4])));
        assert_eq!(r.get("d"), Some(&FieldValue::Hist(HistSummary { count: 2, p50: 8, p95: 8 })));
    }
}
