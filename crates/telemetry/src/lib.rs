//! # fgdram-telemetry
//!
//! Epoch-sampled time-series observability for every simulated component.
//!
//! End-of-run aggregates (`SimReport`, `CtrlStats`) average away exactly
//! the dynamics the paper argues about: activate-rate saturation against
//! tFAW, bank-level-parallelism ramp-up, row-locality phases. This crate
//! snapshots component counters every N *simulated* nanoseconds into
//! ring-buffered time series and exports them as JSONL or CSV with
//! hand-rolled, dependency-free writers (the offline no-registry build
//! stays intact).
//!
//! ## The delta-snapshot pattern
//!
//! Components never maintain per-epoch state. They implement [`Sampled`]
//! by dumping their *cumulative* counters into a [`SampleBuf`]; the
//! [`Recorder`] keeps the previous snapshot per component and subtracts,
//! so each [`EpochRecord`] carries exactly what happened inside one epoch.
//! Monotonic kinds (counters, counter arrays, log2-histogram buckets) are
//! subtracted; gauges pass through as instantaneous readings; a
//! post-delta [`Sampled::derive`] hook turns per-epoch deltas into rates
//! and ratios (row-hit rate, busy fraction, pJ/bit).
//!
//! ## Determinism
//!
//! Epoch boundaries derive from simulated time only — never wall clock,
//! never thread scheduling — so telemetry output is bit-identical across
//! repeated runs and across any `--jobs` worker count.
//!
//! ## Examples
//!
//! ```
//! use fgdram_telemetry::{Recorder, SampleBuf, Sampled, TelemetryConfig};
//!
//! struct Widget {
//!     ops: u64,
//! }
//! impl Sampled for Widget {
//!     fn component(&self) -> &'static str {
//!         "widget"
//!     }
//!     fn sample(&self, out: &mut SampleBuf) {
//!         out.counter("ops", self.ops);
//!     }
//! }
//!
//! let mut w = Widget { ops: 0 };
//! let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 100, capacity: 16 });
//! rec.start(0, &[&w]);
//! w.ops = 7;
//! rec.poll(150, &[&w]); // crosses the boundary at 100
//! let series = rec.finish(150, &[&w]);
//! assert_eq!(series.records.len(), 2); // [0,100) full + [100,150) partial
//! let jsonl = fgdram_telemetry::export::to_jsonl_string(&[], &series);
//! assert!(jsonl.lines().next().unwrap().contains("\"ops\":7"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod export;
pub mod record;
pub mod recorder;
pub mod sample;
pub mod series;
pub mod sink;

pub use record::{ComponentRecord, EpochRecord, FieldValue, HistSummary};
pub use recorder::{Recorder, Telemetry, TelemetryConfig};
pub use sample::{RawValue, SampleBuf, Sampled};
pub use series::RingBuffer;
pub use sink::{CsvSink, JsonlSink, SeriesSink};
