//! Fixed-capacity ring buffer backing each time series.

/// A bounded FIFO that evicts its oldest element on overflow and counts
/// how many were dropped. Keeps long simulations at a fixed memory
/// footprint while preserving the most recent history.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// New buffer holding at most `capacity` elements (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an element, evicting the oldest if full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    /// Number of retained elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of elements evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Consumes the buffer into an oldest-first `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        self.items.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_on_overflow() {
        let mut rb = RingBuffer::new(3);
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.dropped(), 2);
        assert_eq!(rb.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rb = RingBuffer::new(0);
        rb.push('a');
        rb.push('b');
        assert_eq!(rb.len(), 1);
        assert_eq!(rb.dropped(), 1);
        assert_eq!(rb.into_vec(), vec!['b']);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut rb = RingBuffer::new(8);
        rb.push(1);
        rb.push(2);
        assert_eq!(rb.dropped(), 0);
        assert!(!rb.is_empty());
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }
}
