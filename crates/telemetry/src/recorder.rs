//! The epoch recorder: drives delta snapshots off simulated time.

use crate::record::{ComponentRecord, EpochRecord};
use crate::sample::{SampleBuf, Sampled};
use crate::series::RingBuffer;
use fgdram_model::units::Ns;

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Epoch length in simulated nanoseconds (clamped to >= 1).
    pub epoch_ns: Ns,
    /// Ring-buffer capacity in epochs; oldest epochs are evicted (and
    /// counted) beyond this.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { epoch_ns: 1000, capacity: 4096 }
    }
}

impl TelemetryConfig {
    /// Capacity sized so a `window`-long run with this `epoch_ns` never
    /// drops an epoch (full epochs + a trailing partial + slack).
    pub fn for_window(epoch_ns: Ns, window: Ns) -> Self {
        let epoch_ns = epoch_ns.max(1);
        let capacity = (window / epoch_ns) as usize + 2;
        TelemetryConfig { epoch_ns, capacity }
    }
}

/// A finished telemetry series, ready for export.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Configured epoch length in simulated ns.
    pub epoch_ns: Ns,
    /// Retained epoch records, oldest first.
    pub records: Vec<EpochRecord>,
    /// Epochs evicted from the ring buffer (0 unless capacity was
    /// exceeded).
    pub dropped_epochs: u64,
}

/// Samples a set of [`Sampled`] components at epoch boundaries derived
/// purely from simulated time.
///
/// Protocol: [`Recorder::start`] once at the beginning of the observation
/// window (takes the baseline snapshot), [`Recorder::poll`] after every
/// simulation step (emits a record per crossed boundary), and
/// [`Recorder::finish`] at the end (flushes a trailing partial epoch).
/// Component order must be identical across all three calls.
#[derive(Debug)]
pub struct Recorder {
    cfg: TelemetryConfig,
    start_ns: Ns,
    epoch_start: Ns,
    epoch_index: u64,
    prev: Vec<SampleBuf>,
    ring: RingBuffer<EpochRecord>,
    started: bool,
}

impl Recorder {
    /// New recorder; call [`Recorder::start`] before polling.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let cfg = TelemetryConfig { epoch_ns: cfg.epoch_ns.max(1), capacity: cfg.capacity };
        Recorder {
            cfg,
            start_ns: 0,
            epoch_start: 0,
            epoch_index: 0,
            prev: Vec::new(),
            ring: RingBuffer::new(cfg.capacity),
            started: false,
        }
    }

    /// Configured epoch length in simulated ns.
    pub fn epoch_ns(&self) -> Ns {
        self.cfg.epoch_ns
    }

    /// Takes the baseline snapshot at simulated time `now`; epoch 0 spans
    /// `[now, now + epoch_ns)`.
    pub fn start(&mut self, now: Ns, sources: &[&dyn Sampled]) {
        self.start_ns = now;
        self.epoch_start = now;
        self.epoch_index = 0;
        self.prev = sources
            .iter()
            .map(|s| {
                let mut buf = SampleBuf::new();
                s.sample(&mut buf);
                buf
            })
            .collect();
        self.started = true;
    }

    /// Emits one record per epoch boundary crossed up to simulated time
    /// `now`. Counters are cumulative, so sampling several boundaries at
    /// once only loses *attribution between* the skipped epochs, never
    /// events; with per-step polling in the simulator, boundaries are
    /// exact because no events occur between steps.
    pub fn poll(&mut self, now: Ns, sources: &[&dyn Sampled]) {
        debug_assert!(self.started, "poll before start");
        while now >= self.epoch_start + self.cfg.epoch_ns {
            let end = self.epoch_start + self.cfg.epoch_ns;
            self.emit(end, sources);
        }
    }

    /// Flushes any trailing partial epoch `[epoch_start, now)` and returns
    /// the finished series. A zero-length tail (now == epoch_start)
    /// produces no extra record, so a zero-length window yields an empty
    /// series.
    pub fn finish(mut self, now: Ns, sources: &[&dyn Sampled]) -> Telemetry {
        debug_assert!(self.started, "finish before start");
        self.poll(now, sources);
        if now > self.epoch_start {
            self.emit(now, sources);
        }
        Telemetry {
            epoch_ns: self.cfg.epoch_ns,
            dropped_epochs: self.ring.dropped(),
            records: self.ring.into_vec(),
        }
    }

    fn emit(&mut self, end: Ns, sources: &[&dyn Sampled]) {
        debug_assert_eq!(sources.len(), self.prev.len(), "source set changed between polls");
        let epoch_len = end - self.epoch_start;
        let mut components = Vec::with_capacity(sources.len());
        for (src, prev) in sources.iter().zip(self.prev.iter_mut()) {
            let mut cur = SampleBuf::new();
            src.sample(&mut cur);
            let mut delta = SampleBuf::delta(prev, &cur);
            src.derive(&mut delta, epoch_len);
            components.push(ComponentRecord::from_delta(src.component(), &delta));
            *prev = cur;
        }
        self.ring.push(EpochRecord {
            index: self.epoch_index,
            start_ns: self.epoch_start,
            end_ns: end,
            components,
        });
        self.epoch_index += 1;
        self.epoch_start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Fake {
        ops: Cell<u64>,
        depth: Cell<f64>,
    }

    impl Sampled for Fake {
        fn component(&self) -> &'static str {
            "fake"
        }
        fn sample(&self, out: &mut SampleBuf) {
            out.counter("ops", self.ops.get());
            out.gauge("depth", self.depth.get());
        }
        fn derive(&self, delta: &mut SampleBuf, epoch_ns: Ns) {
            let rate = delta.get_u64("ops") as f64 / epoch_ns as f64;
            delta.gauge("ops_per_ns", rate);
        }
    }

    fn record_u64(t: &Telemetry, epoch: usize, field: &str) -> u64 {
        match t.records[epoch].component("fake").unwrap().get(field).unwrap() {
            crate::record::FieldValue::U64(v) => *v,
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn full_and_partial_epochs() {
        let f = Fake { ops: Cell::new(0), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 100, capacity: 16 });
        rec.start(0, &[&f]);
        f.ops.set(3);
        rec.poll(50, &[&f]); // mid-epoch: nothing emitted yet
        f.ops.set(10);
        f.depth.set(4.0);
        rec.poll(120, &[&f]); // crosses 100
        f.ops.set(12);
        let t = rec.finish(150, &[&f]); // partial [100,150)
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.dropped_epochs, 0);
        assert_eq!((t.records[0].start_ns, t.records[0].end_ns), (0, 100));
        assert_eq!((t.records[1].start_ns, t.records[1].end_ns), (100, 150));
        assert_eq!(record_u64(&t, 0, "ops"), 10);
        assert_eq!(record_u64(&t, 1, "ops"), 2);
    }

    #[test]
    fn window_exact_multiple_has_no_partial() {
        let f = Fake { ops: Cell::new(0), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 50, capacity: 16 });
        rec.start(0, &[&f]);
        let t = rec.finish(100, &[&f]);
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[1].end_ns, 100);
    }

    #[test]
    fn zero_length_window_yields_no_records() {
        let f = Fake { ops: Cell::new(5), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig::default());
        rec.start(42, &[&f]);
        let t = rec.finish(42, &[&f]);
        assert!(t.records.is_empty());
    }

    #[test]
    fn nonzero_start_offsets_boundaries() {
        let f = Fake { ops: Cell::new(0), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 100, capacity: 16 });
        rec.start(250, &[&f]); // warmup ended at 250
        f.ops.set(1);
        rec.poll(360, &[&f]);
        let t = rec.finish(360, &[&f]);
        assert_eq!((t.records[0].start_ns, t.records[0].end_ns), (250, 350));
        assert_eq!((t.records[1].start_ns, t.records[1].end_ns), (350, 360));
    }

    #[test]
    fn derive_appends_rates() {
        let f = Fake { ops: Cell::new(0), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 100, capacity: 4 });
        rec.start(0, &[&f]);
        f.ops.set(50);
        let t = rec.finish(100, &[&f]);
        let c = t.records[0].component("fake").unwrap();
        match c.get("ops_per_ns").unwrap() {
            crate::record::FieldValue::F64(v) => assert!((v - 0.5).abs() < 1e-12),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn ring_capacity_drops_oldest() {
        let f = Fake { ops: Cell::new(0), depth: Cell::new(0.0) };
        let mut rec = Recorder::new(TelemetryConfig { epoch_ns: 10, capacity: 2 });
        rec.start(0, &[&f]);
        let t = rec.finish(50, &[&f]); // 5 epochs into capacity 2
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.dropped_epochs, 3);
        assert_eq!(t.records[0].index, 3);
        assert_eq!(t.records[1].index, 4);
    }

    #[test]
    fn epoch_zero_clamps_to_one() {
        let rec = Recorder::new(TelemetryConfig { epoch_ns: 0, capacity: 4 });
        assert_eq!(rec.epoch_ns(), 1);
    }
}
