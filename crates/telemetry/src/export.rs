//! Hand-rolled, dependency-free JSONL and CSV exporters.
//!
//! Output is fully deterministic: field order follows sample order, floats
//! print via Rust's shortest-roundtrip `Display`, and nothing depends on
//! hashing or wall-clock time.

use crate::record::{EpochRecord, FieldValue, HistSummary};
use crate::recorder::Telemetry;
use std::io::{self, Write};

/// Appends `s` JSON-escaped (quotes, backslash, control chars) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Display is shortest-roundtrip but prints integral floats bare
        // ("2"); keep them valid JSON numbers as-is — readers accept both.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_hist(out: &mut String, h: &HistSummary) {
    out.push_str(&format!("{{\"count\":{},\"p50\":{},\"p95\":{}}}", h.count, h.p50, h.p95));
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(u) => out.push_str(&u.to_string()),
        FieldValue::F64(f) => push_json_f64(out, *f),
        FieldValue::Array(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&x.to_string());
            }
            out.push(']');
        }
        FieldValue::Hist(h) => push_hist(out, h),
    }
}

/// Renders one epoch as a single JSON object line (no trailing newline).
/// `meta` key/value pairs (workload name, architecture label, ...) lead
/// the object so every line is self-describing.
pub fn record_to_json(meta: &[(&str, &str)], r: &EpochRecord) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    for (k, v) in meta {
        push_json_str(&mut out, k);
        out.push(':');
        push_json_str(&mut out, v);
        out.push(',');
    }
    out.push_str(&format!(
        "\"epoch\":{},\"start_ns\":{},\"end_ns\":{}",
        r.index, r.start_ns, r.end_ns
    ));
    for c in &r.components {
        out.push(',');
        push_json_str(&mut out, c.component);
        out.push_str(":{");
        for (i, (name, v)) in c.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_field_value(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Writes the whole series as JSON Lines: one object per epoch, `\n`
/// terminated.
pub fn write_jsonl<W: Write>(w: &mut W, meta: &[(&str, &str)], t: &Telemetry) -> io::Result<()> {
    for r in &t.records {
        writeln!(w, "{}", record_to_json(meta, r))?;
    }
    Ok(())
}

/// Renders the whole series to one JSONL string (tests, small series).
pub fn to_jsonl_string(meta: &[(&str, &str)], t: &Telemetry) -> String {
    let mut s = String::new();
    for r in &t.records {
        s.push_str(&record_to_json(meta, r));
        s.push('\n');
    }
    s
}

/// Appends one CSV field, quoting when it contains a comma, quote, or
/// newline.
fn push_csv_field(out: &mut String, s: &str) {
    if s.contains([',', '"', '\n']) {
        out.push('"');
        out.push_str(&s.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Writes the series as CSV. The header comes from the first record:
/// meta keys, then `epoch,start_ns,end_ns`, then one
/// `component.field` column per scalar; histogram fields flatten to
/// `.count`/`.p50`/`.p95` columns and counter arrays to a `.sum` column
/// (full arrays stay JSONL-only).
pub fn write_csv<W: Write>(w: &mut W, meta: &[(&str, &str)], t: &Telemetry) -> io::Result<()> {
    write_csv_with_header(w, meta, t, true)
}

/// Like [`write_csv`], but lets the caller suppress the header line —
/// for appending several same-schema series (e.g. one per architecture)
/// to a single file with one leading header.
pub fn write_csv_with_header<W: Write>(
    w: &mut W,
    meta: &[(&str, &str)],
    t: &Telemetry,
    header_line: bool,
) -> io::Result<()> {
    let Some(first) = t.records.first() else { return Ok(()) };
    if header_line {
        let mut header = String::new();
        let mut cols: Vec<String> = Vec::new();
        for (k, _) in meta {
            cols.push((*k).to_string());
        }
        for c in ["epoch", "start_ns", "end_ns"] {
            cols.push(c.to_string());
        }
        for c in &first.components {
            for (name, v) in &c.fields {
                let base = format!("{}.{}", c.component, name);
                match v {
                    FieldValue::Hist(_) => {
                        cols.push(format!("{base}.count"));
                        cols.push(format!("{base}.p50"));
                        cols.push(format!("{base}.p95"));
                    }
                    FieldValue::Array(_) => cols.push(format!("{base}.sum")),
                    _ => cols.push(base),
                }
            }
        }
        for (i, c) in cols.iter().enumerate() {
            if i > 0 {
                header.push(',');
            }
            push_csv_field(&mut header, c);
        }
        writeln!(w, "{header}")?;
    }

    for r in &t.records {
        let mut line = String::new();
        for (_, v) in meta {
            push_csv_field(&mut line, v);
            line.push(',');
        }
        line.push_str(&format!("{},{},{}", r.index, r.start_ns, r.end_ns));
        for c in &r.components {
            for (_, v) in &c.fields {
                match v {
                    FieldValue::U64(u) => line.push_str(&format!(",{u}")),
                    FieldValue::F64(f) => {
                        line.push(',');
                        if f.is_finite() {
                            line.push_str(&format!("{f}"));
                        }
                    }
                    FieldValue::Array(a) => line.push_str(&format!(",{}", a.iter().sum::<u64>())),
                    FieldValue::Hist(h) => {
                        line.push_str(&format!(",{},{},{}", h.count, h.p50, h.p95))
                    }
                }
            }
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ComponentRecord;

    fn sample_series() -> Telemetry {
        let rec = EpochRecord {
            index: 0,
            start_ns: 0,
            end_ns: 1000,
            components: vec![ComponentRecord {
                component: "ctrl",
                fields: vec![
                    ("reads", FieldValue::U64(42)),
                    ("hit_rate", FieldValue::F64(0.5)),
                    ("heat", FieldValue::Array(vec![1, 2, 3])),
                    ("lat", FieldValue::Hist(HistSummary { count: 9, p50: 64, p95: 128 })),
                ],
            }],
        };
        Telemetry { epoch_ns: 1000, records: vec![rec], dropped_epochs: 0 }
    }

    #[test]
    fn jsonl_shape() {
        let t = sample_series();
        let s = to_jsonl_string(&[("workload", "STREAM"), ("arch", "FGDRAM")], &t);
        assert_eq!(
            s,
            "{\"workload\":\"STREAM\",\"arch\":\"FGDRAM\",\"epoch\":0,\"start_ns\":0,\
             \"end_ns\":1000,\"ctrl\":{\"reads\":42,\"hit_rate\":0.5,\"heat\":[1,2,3],\
             \"lat\":{\"count\":9,\"p50\":64,\"p95\":128}}}\n"
        );
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut f = String::new();
        push_json_f64(&mut f, f64::NAN);
        assert_eq!(f, "null");
        let mut g = String::new();
        push_json_f64(&mut g, 2.0);
        assert_eq!(g, "2");
    }

    #[test]
    fn csv_flattens_hists_and_arrays() {
        let t = sample_series();
        let mut buf = Vec::new();
        write_csv(&mut buf, &[("arch", "QB")], &t).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let mut lines = s.lines();
        assert_eq!(
            lines.next().unwrap(),
            "arch,epoch,start_ns,end_ns,ctrl.reads,ctrl.hit_rate,ctrl.heat.sum,\
             ctrl.lat.count,ctrl.lat.p50,ctrl.lat.p95"
        );
        assert_eq!(lines.next().unwrap(), "QB,0,0,1000,42,0.5,6,9,64,128");
        assert!(lines.next().is_none());
    }

    #[test]
    fn empty_series_exports_empty() {
        let t = Telemetry { epoch_ns: 10, records: vec![], dropped_epochs: 0 };
        assert_eq!(to_jsonl_string(&[], &t), "");
        let mut buf = Vec::new();
        write_csv(&mut buf, &[], &t).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn csv_quotes_special_chars() {
        let mut s = String::new();
        push_csv_field(&mut s, "a,b\"c");
        assert_eq!(s, "\"a,b\"\"c\"");
    }
}
