//! Typed simulation errors and their process exit codes.
//!
//! Every way a simulation can fail has its own [`SimError`] variant and a
//! distinct exit code, so scripts driving `fgdram-sim` can tell a
//! configuration mistake from a protocol bug from a fault storm without
//! parsing stderr. Exit code 2 is reserved for CLI usage errors (bad
//! flags, unknown subcommands) and never produced by this type; codes 3-7
//! map one-to-one onto the variants below via [`SimError::exit_code`].

use fgdram_dram::ProtocolError;
use fgdram_model::config::ConfigError;
use fgdram_model::units::Ns;

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// Invalid configuration (geometry, fault-spec targets). Exit code 3.
    Config(ConfigError),
    /// The scheduler issued an illegal DRAM command (internal bug) or an
    /// injected timing fault was caught by the checker. Exit code 4.
    Protocol(ProtocolError),
    /// The forward-progress watchdog fired: outstanding work exists but no
    /// monotone work counter moved for a full bound. Exit code 5.
    Stall {
        /// Time at which the watchdog gave up.
        at: Ns,
        /// Outstanding items (controller queues, retry queues, events).
        pending: usize,
        /// How long the system had been silent.
        idle_ns: Ns,
        /// The configured watchdog bound.
        bound: Ns,
    },
    /// An output file could not be written. Exit code 6.
    Io {
        /// What was being written (path or flag context).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Grain exclusion would exceed the configured cap: the stack is in an
    /// unrecoverable fault storm. Exit code 7.
    FaultStorm {
        /// Time of the fatal uncorrectable error.
        at: Ns,
        /// Uncorrectable errors observed so far.
        dues: u64,
        /// Grains already excluded.
        excluded: usize,
        /// The exclusion cap that would have been exceeded.
        max_excluded: usize,
    },
}

impl SimError {
    /// The process exit code for this failure (3-7; the CLI reserves 2
    /// for usage errors).
    pub fn exit_code(&self) -> u8 {
        match self {
            SimError::Config(_) => 3,
            SimError::Protocol(_) => 4,
            SimError::Stall { .. } => 5,
            SimError::Io { .. } => 6,
            SimError::FaultStorm { .. } => 7,
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Protocol(e) => write!(f, "protocol violation: {e}"),
            SimError::Stall { at, pending, idle_ns, bound } => write!(
                f,
                "no forward progress for {idle_ns} ns at t={at} ns \
                 ({pending} items outstanding; watchdog bound {bound} ns)"
            ),
            SimError::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
            SimError::FaultStorm { at, dues, excluded, max_excluded } => write!(
                f,
                "unrecoverable fault storm at t={at} ns: {dues} uncorrectable errors, \
                 and excluding another grain would exceed the cap \
                 ({excluded}/{max_excluded} already excluded)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Protocol(e) => Some(e),
            SimError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<ProtocolError> for SimError {
    fn from(e: ProtocolError) -> Self {
        SimError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_skip_usage_code_2() {
        let errs = [
            SimError::Config(ConfigError::NotPowerOfTwo { name: "channels", value: 3 }),
            SimError::Stall { at: 1, pending: 2, idle_ns: 3, bound: 4 },
            SimError::Io {
                context: "out.jsonl".into(),
                source: std::io::Error::other("disk full"),
            },
            SimError::FaultStorm { at: 1, dues: 9, excluded: 2, max_excluded: 2 },
        ];
        let mut codes: Vec<u8> = errs.iter().map(SimError::exit_code).collect();
        codes.push(4); // Protocol, constructed in dram-crate tests.
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn display_names_the_failure() {
        let e = SimError::Stall { at: 500, pending: 7, idle_ns: 100, bound: 100 };
        let s = e.to_string();
        assert!(s.contains("no forward progress") && s.contains("watchdog"), "{s}");
        let e = SimError::FaultStorm { at: 1, dues: 9, excluded: 2, max_excluded: 2 };
        assert!(e.to_string().contains("fault storm"));
    }
}
