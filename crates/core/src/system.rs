//! Full-system composition: GPU front end, sectored L2, memory controller,
//! and DRAM stack, advanced by one event-stepped loop.

use std::collections::VecDeque;

use fgdram_ctrl::Controller;
use fgdram_dram::DramDevice;
use fgdram_energy::floorplan::{EnergyProfile, IoTechnology};
use fgdram_energy::meter::{DataActivity, EnergyMeter, OpCounts};
use fgdram_faults::{DueOutcome, EccOutcome, FaultEngine, FaultSpec, DEFAULT_WATCHDOG_NS};
use fgdram_gpu::{Gpu, L2Access, L2Cache, SectorAccess};
use fgdram_model::addr::{MemRequest, PhysAddr, ReqId};
use fgdram_model::cmd::TimedCommand;
use fgdram_model::config::{ConfigError, CtrlConfig, DramConfig, DramKind, GpuConfig};
use fgdram_model::fxhash::FxHashMap;
use fgdram_model::units::{GbPerSec, Ns};
use fgdram_telemetry::{Recorder, Sampled, Telemetry, TelemetryConfig};
use fgdram_workloads::Workload;

use crate::report::{FaultSummary, SimReport};
use crate::telemetry::EnergySampler;
use fgdram_model::wheel::EventWheel;

pub use crate::error::SimError;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Read data for this fill request reaches the L2.
    Fill(ReqId),
    /// A load sector reaches its warp.
    Wake(u64),
    /// A corrected-error retry re-reads this request from DRAM. (Kept the
    /// last variant: `Ord` drives tie-breaking of same-time events, and a
    /// run without faults must order exactly as before this variant
    /// existed.)
    Retry(u64),
}

/// Builder for a [`System`].
///
/// # Examples
///
/// ```
/// use fgdram_core::SystemBuilder;
/// use fgdram_model::config::DramKind;
/// use fgdram_workloads::suites;
///
/// let report = SystemBuilder::new(DramKind::Fgdram)
///     .workload(suites::by_name("STREAM").expect("in suite"))
///     .run(2_000, 5_000)?;
/// assert!(report.bandwidth.value() > 0.0);
/// # Ok::<(), fgdram_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dram: DramConfig,
    ctrl: CtrlConfig,
    gpu: GpuConfig,
    workload: Option<Workload>,
    io_tech: IoTechnology,
    trace: bool,
    telemetry: Option<TelemetryConfig>,
    faults: Option<FaultSpec>,
    fault_seed: u64,
    engine_threads: usize,
}

impl SystemBuilder {
    /// Starts from the Table 2 configuration of `kind` and the Table 1 GPU.
    pub fn new(kind: DramKind) -> Self {
        let dram = DramConfig::new(kind);
        SystemBuilder {
            ctrl: CtrlConfig::for_dram(&dram),
            dram,
            gpu: GpuConfig::default(),
            workload: None,
            io_tech: IoTechnology::Podl,
            trace: false,
            telemetry: None,
            faults: None,
            fault_seed: 1,
            engine_threads: 1,
        }
    }

    /// Shards the DRAM engine (device + controller) across this many
    /// worker lanes (default 1 = serial). Output is byte-identical at any
    /// value — the lane merge is deterministic — so this is a wall-clock
    /// knob only and deliberately not part of any wire-visible spec.
    pub fn engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads.max(1);
        self
    }

    /// Replaces the DRAM configuration (for ablations), re-deriving the
    /// controller sizing for its channel count.
    pub fn dram_config(mut self, cfg: DramConfig) -> Self {
        self.ctrl = CtrlConfig::for_dram(&cfg);
        self.dram = cfg;
        self
    }

    /// Replaces the controller policy.
    pub fn ctrl_config(mut self, cfg: CtrlConfig) -> Self {
        self.ctrl = cfg;
        self
    }

    /// Replaces the GPU configuration.
    pub fn gpu_config(mut self, cfg: GpuConfig) -> Self {
        self.gpu = cfg;
        self
    }

    /// Sets the workload (required). The workload's `mlp` overrides the
    /// GPU's per-warp outstanding limit, and its L2 sector size must match
    /// the DRAM atom (enforced in [`Self::build`]).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Records the full DRAM command trace (for the protocol checker).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables epoch-sampled telemetry over the measurement window of
    /// [`Self::run_instrumented`] (size the capacity with
    /// [`TelemetryConfig::for_window`] to retain every epoch).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Attaches a fault specification. A spec for which
    /// [`FaultSpec::is_noop`] is true leaves the fault engine disengaged —
    /// the run stays byte-identical to one without this call — but its
    /// `watchdog=` bound is still honoured.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Seeds the fault engine's PRNG (default 1). Same spec + same seed
    /// produce the identical fault stream at any parallelism.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Selects the I/O signaling technology for energy accounting
    /// (Section 3.5): PODL is the paper's conservative baseline, GRS the
    /// constant-current alternative with organic-package reach.
    pub fn io_technology(mut self, tech: IoTechnology) -> Self {
        self.io_tech = tech;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for invalid geometry.
    ///
    /// # Panics
    ///
    /// Panics if no workload was set.
    pub fn build(self) -> Result<System, SimError> {
        let workload = self.workload.expect("SystemBuilder requires a workload");
        let mut gpu_cfg = self.gpu;
        gpu_cfg.max_outstanding_per_warp = workload.mlp.max(1);
        // The L2 sector is the DRAM atom (Section 2.2 / Table 1).
        gpu_cfg.l2.sector_bytes = self.dram.atom_bytes;
        self.dram.validate()?;
        let mut dev = DramDevice::with_lanes(self.dram.clone(), self.engine_threads);
        if self.trace {
            dev.enable_trace();
        }
        let mut ctrl = Controller::with_threads(&self.dram, self.ctrl, self.engine_threads)?;
        let mut faults = None;
        let mut watchdog_ns = DEFAULT_WATCHDOG_NS;
        if let Some(spec) = &self.faults {
            watchdog_ns = spec.watchdog_ns;
            if !spec.is_noop() {
                let channels = self.dram.channels;
                let banks = self.dram.banks_per_channel;
                for &g in &spec.dead_grains {
                    if g as usize >= channels {
                        return Err(ConfigError::FaultTarget {
                            what: "grain",
                            index: g as u64,
                            limit: channels as u64,
                        }
                        .into());
                    }
                }
                for &(ch, b) in &spec.dead_banks {
                    if ch as usize >= channels || b as usize >= banks {
                        return Err(ConfigError::FaultTarget {
                            what: "bank",
                            index: (ch as u64) * banks as u64 + b as u64,
                            limit: (channels * banks) as u64,
                        }
                        .into());
                    }
                }
                let mut engine = FaultEngine::new(spec, self.fault_seed, channels);
                for &g in &spec.dead_grains {
                    engine.exclude_now(g);
                    ctrl.exclude_channel(g);
                }
                if engine.excluded_total() > engine.max_excluded() {
                    return Err(SimError::FaultStorm {
                        at: 0,
                        dues: 0,
                        excluded: engine.excluded_total(),
                        max_excluded: engine.max_excluded(),
                    });
                }
                faults = Some(engine);
            }
        }
        let n_warps = gpu_cfg.sms * gpu_cfg.warps_per_sm;
        let gpu = Gpu::new(gpu_cfg.clone(), workload.streams(n_warps));
        let l2 = L2Cache::new(gpu_cfg.l2, 16_384);
        let mut profile = EnergyProfile::for_kind(self.dram.kind);
        if self.io_tech == IoTechnology::Grs {
            profile = profile.with_grs();
        }
        Ok(System {
            meter: EnergyMeter::with_profile(&self.dram, profile),
            activity: DataActivity {
                toggle_rate: workload.toggle_rate,
                ones_density: workload.ones_density,
            },
            cfg: self.dram,
            gpu_cfg,
            workload_name: workload.name,
            dev,
            ctrl,
            gpu,
            l2,
            events: EventWheel::new(),
            // Pre-size every steady-state container to its backpressure
            // bound so the step loop never grows them: `fill_dest` tracks
            // outstanding misses (bounded by the MSHR count), the retry
            // queues are capped by MAX_RETRY / MAX_L2_BLOCKED.
            fill_dest: FxHashMap::with_capacity_and_hasher(16_384, Default::default()),
            retry_reqs: VecDeque::with_capacity(MAX_RETRY),
            l2_blocked: VecDeque::with_capacity(MAX_L2_BLOCKED),
            access_buf: Vec::with_capacity(256),
            completion_buf: Vec::with_capacity(256),
            // Matches the L2's own writeback reserve: the two buffers swap
            // on every drain, so both must start at the steady capacity.
            wb_buf: Vec::with_capacity(4096),
            waiter_buf: Vec::with_capacity(1024),
            now: 0,
            next_req: 0,
            ctrl_next: 0,
            last_issue: 0,
            telemetry: None,
            faults,
            retry_attempts: FxHashMap::with_capacity_and_hasher(64, Default::default()),
            watchdog_ns,
            progress_sig: 0,
            progress_at: 0,
        })
    }

    /// Builds, warms up for `warmup` ns, measures for `window` ns, and
    /// reports.
    ///
    /// # Errors
    ///
    /// Any [`SimError`].
    pub fn run(self, warmup: Ns, window: Ns) -> Result<SimReport, SimError> {
        self.run_instrumented(warmup, window).map(|(r, _)| r)
    }

    /// Like [`Self::run`], but also returns the telemetry series when
    /// [`Self::telemetry`] was configured. Recording covers exactly the
    /// measurement window: it starts after warmup (with freshly reset
    /// statistics) and flushes the trailing partial epoch at the end.
    ///
    /// # Errors
    ///
    /// Any [`SimError`].
    pub fn run_instrumented(
        self,
        warmup: Ns,
        window: Ns,
    ) -> Result<(SimReport, Option<Telemetry>), SimError> {
        let tcfg = self.telemetry;
        let mut sys = self.build()?;
        sys.run_for(warmup)?;
        sys.reset_stats();
        if let Some(cfg) = tcfg {
            sys.enable_telemetry(cfg);
        }
        sys.run_for(window)?;
        let series = sys.finish_telemetry();
        Ok((sys.report(window), series))
    }
}

/// A complete simulated node: GPU + L2 + controller + DRAM stack.
#[derive(Debug)]
pub struct System {
    cfg: DramConfig,
    gpu_cfg: GpuConfig,
    workload_name: String,
    meter: EnergyMeter,
    activity: DataActivity,
    dev: DramDevice,
    ctrl: Controller,
    gpu: Gpu,
    l2: L2Cache,
    events: EventWheel<Event>,
    fill_dest: FxHashMap<u64, PhysAddr>,
    retry_reqs: VecDeque<MemRequest>,
    l2_blocked: VecDeque<SectorAccess>,
    access_buf: Vec<SectorAccess>,
    completion_buf: Vec<fgdram_model::cmd::Completion>,
    /// Reusable drain buffer for L2 writebacks (no per-step allocation).
    wb_buf: Vec<PhysAddr>,
    /// Reusable buffer for MSHR waiter tokens (no per-fill allocation).
    waiter_buf: Vec<u64>,
    now: Ns,
    next_req: u64,
    ctrl_next: Ns,
    last_issue: Ns,
    telemetry: Option<Recorder>,
    /// Fault engine; `None` when no (effective) fault spec was given, so a
    /// fault-free run does not even consult the fault path.
    faults: Option<FaultEngine>,
    /// Outstanding corrected-error retry counts per request id.
    retry_attempts: FxHashMap<u64, u32>,
    /// Forward-progress watchdog bound.
    watchdog_ns: Ns,
    /// Last observed work signature and when it last changed.
    progress_sig: u64,
    progress_at: Ns,
}

/// Backpressure thresholds: stop issuing new GPU work above these.
const MAX_L2_BLOCKED: usize = 1_024;
const MAX_RETRY: usize = 8_192;

impl System {
    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// The DRAM configuration in effect.
    pub fn dram_config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The DRAM device (counters, per-channel state).
    pub fn device(&self) -> &DramDevice {
        &self.dev
    }

    /// The controller (statistics).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    /// The L2 cache (statistics).
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// The GPU front end (statistics).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Takes the recorded DRAM command trace (empty unless built
    /// [`SystemBuilder::with_trace`]).
    pub fn take_trace(&mut self) -> Vec<TimedCommand> {
        self.dev.take_trace()
    }

    /// Zeroes all statistics (end of warm-up). Fault exclusion state
    /// deliberately persists — a grain dead during warmup stays dead.
    pub fn reset_stats(&mut self) {
        self.dev.reset_counters();
        self.ctrl.reset_stats();
        self.l2.reset_stats();
        self.gpu.reset_stats();
        if let Some(f) = &mut self.faults {
            f.reset_counters();
        }
    }

    /// Refreshes the fault engine's watchdog-slack gauge before sampling.
    fn update_watchdog_slack(&mut self) {
        let idle = self.now.saturating_sub(self.progress_at);
        let slack = self.watchdog_ns.saturating_sub(idle);
        if let Some(f) = &mut self.faults {
            f.set_watchdog_slack(slack);
        }
    }

    /// Starts epoch-sampled telemetry at the current simulated time,
    /// observing the controller, DRAM device, GPU, L2, and energy meter.
    /// Call after [`Self::reset_stats`] so epoch 0 starts from zeroed
    /// counters; collect the series with [`Self::finish_telemetry`].
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.update_watchdog_slack();
        let mut rec = Recorder::new(cfg);
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let mut sources: Vec<&dyn Sampled> = vec![&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        // The faults component is appended only when the engine is engaged,
        // so fault-free telemetry schemas are unchanged.
        if let Some(f) = &self.faults {
            sources.push(f);
        }
        rec.start(self.now, &sources);
        self.telemetry = Some(rec);
    }

    /// Flushes the trailing partial epoch and returns the recorded series
    /// (`None` when telemetry was never enabled). Telemetry is disabled
    /// afterwards.
    pub fn finish_telemetry(&mut self) -> Option<Telemetry> {
        self.update_watchdog_slack();
        let rec = self.telemetry.take()?;
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let mut sources: Vec<&dyn Sampled> = vec![&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        if let Some(f) = &self.faults {
            sources.push(f);
        }
        Some(rec.finish(self.now, &sources))
    }

    /// Samples any epoch boundaries crossed by the last step. Exactness:
    /// `step` advances `now` as its final action and processes events at
    /// the new `now` on the *next* step, so when this poll runs, counters
    /// are exact for every boundary B with `old_now < B <= now` — no
    /// events occur between steps, and events at exactly B belong to the
    /// epoch starting at B.
    fn poll_telemetry(&mut self) {
        if self.telemetry.is_none() {
            return;
        }
        self.update_watchdog_slack();
        let Some(mut rec) = self.telemetry.take() else { return };
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let mut sources: Vec<&dyn Sampled> = vec![&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        if let Some(f) = &self.faults {
            sources.push(f);
        }
        rec.poll(self.now, &sources);
        self.telemetry = Some(rec);
    }

    /// Advances simulated time by `duration`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on scheduler bugs, [`SimError::Stalled`] when
    /// progress stops entirely.
    pub fn run_for(&mut self, duration: Ns) -> Result<(), SimError> {
        let end = self.now.saturating_add(duration);
        if self.telemetry.is_none() {
            while self.now < end {
                self.step(end)?;
            }
            return Ok(());
        }
        while self.now < end {
            self.step(end)?;
            self.poll_telemetry();
        }
        Ok(())
    }

    fn schedule(&mut self, at: Ns, ev: Event) {
        self.events.push(at, ev);
    }

    fn step(&mut self, end: Ns) -> Result<(), SimError> {
        let now = self.now;

        // 1. Deliver due events (including ones scheduled at `now` while
        // draining), in exact (time, event) order.
        while let Some((_, ev)) = self.events.pop_due(now) {
            match ev {
                Event::Fill(req) => {
                    if let Some(sector) = self.fill_dest.remove(&req.0) {
                        let xbar = self.gpu_cfg.xbar_latency;
                        let core = self.gpu_cfg.core_latency;
                        let mut waiters = std::mem::take(&mut self.waiter_buf);
                        self.l2.fill_done_into(sector, &mut waiters);
                        for &token in &waiters {
                            self.schedule(now + xbar + core, Event::Wake(token));
                        }
                        self.waiter_buf = waiters;
                    }
                }
                Event::Wake(token) => {
                    self.gpu.sector_done(fgdram_gpu::AccessToken::from_u64(token), now);
                }
                Event::Retry(req_id) => {
                    // Re-read after a corrected error: back through the
                    // controller (and the fault oracle) like any miss fill.
                    if let Some(&addr) = self.fill_dest.get(&req_id) {
                        let req = MemRequest { id: ReqId(req_id), addr, is_write: false };
                        if !self.ctrl.try_enqueue(req, now) {
                            self.retry_reqs.push_back(req);
                        }
                    }
                }
            }
        }

        // 2. Retry requests the controller previously rejected.
        while let Some(&req) = self.retry_reqs.front() {
            if self.ctrl.try_enqueue(req, now) {
                self.retry_reqs.pop_front();
            } else {
                break;
            }
        }

        // 3. Retry sector accesses the L2 previously blocked.
        while let Some(&access) = self.l2_blocked.front() {
            if self.process_access(access, now) {
                self.l2_blocked.pop_front();
            } else {
                break;
            }
        }

        // 4. Issue new GPU work unless backpressured.
        if self.l2_blocked.len() < MAX_L2_BLOCKED && self.retry_reqs.len() < MAX_RETRY {
            let dt = (now - self.last_issue).clamp(1, 8) as usize;
            let budget = self.gpu_cfg.issue_per_ns * dt;
            let mut buf = std::mem::take(&mut self.access_buf);
            buf.clear();
            self.gpu.issue(now, budget, &mut buf);
            self.last_issue = now;
            for access in buf.drain(..) {
                if !self.process_access(access, now) {
                    self.l2_blocked.push_back(access);
                }
            }
            self.access_buf = buf;
        }

        // 5. Turn L2 evictions into DRAM writes (reusing one drain buffer).
        let mut wbs = std::mem::take(&mut self.wb_buf);
        self.l2.take_writebacks_into(&mut wbs);
        for wb in wbs.drain(..) {
            self.next_req += 1;
            let req = MemRequest { id: ReqId(self.next_req), addr: wb, is_write: true };
            if !self.ctrl.try_enqueue(req, now) {
                self.retry_reqs.push_back(req);
            }
        }
        self.wb_buf = wbs;

        // 6. Apply the fault timeline, then run the memory controller.
        if self.faults.is_some() {
            self.apply_fault_timeline(now);
        }
        if now >= self.ctrl_next {
            self.completion_buf.clear();
            let mut comps = std::mem::take(&mut self.completion_buf);
            self.ctrl_next = self.ctrl.tick(&mut self.dev, now, &mut comps)?;
            let xbar = self.gpu_cfg.xbar_latency;
            for c in comps.drain(..) {
                if c.is_write {
                    continue;
                }
                if self.faults.is_some() {
                    self.complete_read_with_faults(c.req, c.at + xbar, now)?;
                } else {
                    self.schedule(c.at + xbar, Event::Fill(c.req));
                }
            }
            self.completion_buf = comps;
        }

        // 6b. Forward-progress watchdog: if outstanding work exists but no
        // monotone work counter has moved for a full bound, fail typed
        // rather than spinning silently to the end of the window.
        let sig = self.progress_signature();
        if sig != self.progress_sig {
            self.progress_sig = sig;
            self.progress_at = now;
        } else if now.saturating_sub(self.progress_at) >= self.watchdog_ns
            && self.has_pending_work()
        {
            return Err(SimError::Stall {
                at: now,
                pending: self.ctrl.pending()
                    + self.retry_reqs.len()
                    + self.l2_blocked.len()
                    + self.events.len(),
                idle_ns: now - self.progress_at,
                bound: self.watchdog_ns,
            });
        }

        // 7. Advance to the next interesting time.
        let mut next = end;
        if let Some(t) = self.events.next_time() {
            next = next.min(t);
        }
        next = next.min(self.ctrl_next);
        if let Some(t) = self.gpu.next_event() {
            next = next.min(t);
        }
        if !self.retry_reqs.is_empty() || !self.l2_blocked.is_empty() {
            next = next.min(now + 1);
        }
        // Never jump past the watchdog deadline while work is outstanding:
        // a wedged controller reports no next event, and a single leap to
        // `end` would end the window before the silence could be observed.
        if self.has_pending_work() {
            next = next.min(self.progress_at.saturating_add(self.watchdog_ns));
        }
        self.now = next.max(now + 1).min(end.max(now + 1));
        Ok(())
    }

    /// Applies due transient stalls and the one-shot wedge from the fault
    /// engine's timeline to the controller.
    fn apply_fault_timeline(&mut self, now: Ns) {
        let engine = self.faults.as_mut().expect("caller checked engine presence");
        for (ch, until) in engine.stalls_due(now) {
            self.ctrl.stall_channel(ch, until);
        }
        if engine.take_wedge(now) {
            self.ctrl.stall_all(Ns::MAX);
        }
    }

    /// Routes one read completion through the ECC model and the
    /// graceful-degradation policy. `fill_at` is when clean data would
    /// reach the L2.
    fn complete_read_with_faults(
        &mut self,
        req: ReqId,
        fill_at: Ns,
        now: Ns,
    ) -> Result<(), SimError> {
        // A completion without a fill destination is a writeback that
        // never consults the L2; only misses register one.
        let Some(&addr) = self.fill_dest.get(&req.0) else {
            self.schedule(fill_at, Event::Fill(req));
            return Ok(());
        };
        let loc = self.ctrl.route(addr);
        let engine = self.faults.as_mut().expect("caller checked engine presence");
        match engine.classify_read(loc.channel, loc.bank) {
            EccOutcome::Clean => {
                self.retry_attempts.remove(&req.0);
                self.schedule(fill_at, Event::Fill(req));
            }
            EccOutcome::Corrected => {
                // Bounded retry with exponential backoff; once exhausted
                // the corrected data is delivered as-is.
                let attempts = self.retry_attempts.entry(req.0).or_insert(0);
                if *attempts < engine.retry_limit() {
                    *attempts += 1;
                    let delay = engine.backoff(*attempts);
                    engine.note_retry();
                    self.schedule(fill_at + delay, Event::Retry(req.0));
                } else {
                    self.retry_attempts.remove(&req.0);
                    self.schedule(fill_at, Event::Fill(req));
                }
            }
            EccOutcome::Uncorrectable => match engine.record_due(loc.channel) {
                DueOutcome::Storm => {
                    let c = engine.counters();
                    let (excluded, max) = (engine.excluded_total(), engine.max_excluded());
                    return Err(SimError::FaultStorm {
                        at: now,
                        dues: c.due,
                        excluded,
                        max_excluded: max,
                    });
                }
                outcome => {
                    if outcome == DueOutcome::Exclude {
                        self.ctrl.exclude_channel(loc.channel);
                    }
                    // Poisoned data still unblocks the warp; the poison
                    // count records the damage.
                    self.gpu.note_poisoned();
                    self.retry_attempts.remove(&req.0);
                    self.schedule(fill_at, Event::Fill(req));
                }
            },
        }
        Ok(())
    }

    /// A sum of monotone work counters; any change is forward progress.
    /// Deliberately excludes `rejected` (a wedged controller still rejects)
    /// and queue depths (not monotone).
    fn progress_signature(&self) -> u64 {
        let g = self.gpu.stats();
        let k = self.dev.total_counters();
        g.retired
            .wrapping_add(g.sectors)
            .wrapping_add(g.loads_issued)
            .wrapping_add(g.stores_issued)
            // Accepted requests + refreshes, O(lanes) — a full stats merge
            // here would put a per-channel walk on every simulation step.
            .wrapping_add(self.ctrl.progress_probe())
            .wrapping_add(k.activates)
            .wrapping_add(k.read_atoms)
            .wrapping_add(k.write_atoms)
    }

    /// True when anything is still outstanding anywhere in the pipeline —
    /// the precondition for the watchdog to call silence a stall. All the
    /// checks are O(1): every outstanding load has either a `fill_dest`
    /// entry (miss in flight) or a scheduled event, so the GPU needs no
    /// per-warp scan.
    fn has_pending_work(&self) -> bool {
        self.ctrl.pending() > 0
            || !self.retry_reqs.is_empty()
            || !self.l2_blocked.is_empty()
            || !self.events.is_empty()
            || !self.fill_dest.is_empty()
    }

    /// Routes one sector access through the L2; `false` means blocked
    /// (caller must retry).
    fn process_access(&mut self, access: SectorAccess, now: Ns) -> bool {
        match self.l2.access(access.addr, access.is_store, access.token.as_u64()) {
            L2Access::Hit => {
                let done = now + self.gpu_cfg.l2.hit_latency + 2 * self.gpu_cfg.xbar_latency;
                self.schedule(done, Event::Wake(access.token.as_u64()));
                true
            }
            L2Access::StoreDone | L2Access::Merged => true,
            L2Access::Miss { fill } => {
                self.next_req += 1;
                let req = MemRequest { id: ReqId(self.next_req), addr: fill, is_write: false };
                self.fill_dest.insert(self.next_req, fill);
                if !self.ctrl.try_enqueue(req, now) {
                    self.retry_reqs.push_back(req);
                }
                true
            }
            L2Access::Blocked => false,
        }
    }

    /// Builds a report over the last `window` ns (call after
    /// [`Self::reset_stats`] + [`Self::run_for`]).
    pub fn report(&self, window: Ns) -> SimReport {
        let k = self.dev.total_counters();
        let ops = OpCounts {
            activates: k.activates,
            read_atoms: k.read_atoms,
            write_atoms: k.write_atoms,
        };
        let energy = self.meter.energy(&ops, self.activity);
        let bits = self.meter.data_bits(&ops);
        let bytes = (k.read_atoms + k.write_atoms) * self.cfg.atom_bytes;
        let bandwidth = GbPerSec::from_bytes_over(bytes, window);
        let peak = self.cfg.stack_bandwidth();
        let cs = self.ctrl.stats();
        // Per-channel balance: the swizzle should spread traffic evenly.
        let per_channel: Vec<f64> = (0..self.cfg.channels as u32)
            .map(|ch| {
                let k = self.dev.channel_counters(ch);
                (k.read_atoms + k.write_atoms) as f64
            })
            .collect();
        let mean = per_channel.iter().sum::<f64>() / per_channel.len().max(1) as f64;
        let var = per_channel.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / per_channel.len().max(1) as f64;
        let channel_imbalance_cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        SimReport {
            workload: self.workload_name.clone(),
            kind: self.cfg.kind,
            window_ns: window,
            retired: self.gpu.stats().retired,
            read_atoms: k.read_atoms,
            write_atoms: k.write_atoms,
            activates: k.activates,
            refreshes: k.refreshes,
            bandwidth,
            utilisation: if peak.value() > 0.0 { bandwidth.value() / peak.value() } else { 0.0 },
            row_hit_rate: cs.hit_rate(),
            l2_hit_rate: self.l2.stats().hit_rate(),
            avg_read_latency_ns: cs.read_latency.stat().mean(),
            p95_read_latency_ns: cs.read_latency.quantile(0.95),
            channel_imbalance_cv,
            energy,
            energy_per_bit: energy.per_bit(bits),
            faults: self.faults.as_ref().map(|f| {
                let c = f.counters();
                FaultSummary {
                    ce: c.ce,
                    due: c.due,
                    retries: c.retries,
                    excluded: c.excluded,
                    poisoned: self.gpu.stats().poisoned,
                }
            }),
        }
    }

    /// The fault engine's cumulative counters (`None` when no effective
    /// fault spec is attached).
    pub fn fault_counters(&self) -> Option<fgdram_faults::FaultCounters> {
        self.faults.as_ref().map(FaultEngine::counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix executor hands each worker thread its own whole
    /// simulation, so the system (and everything it owns, down through
    /// `fgdram-dram`, `fgdram-ctrl`, `fgdram-gpu` and the boxed
    /// `fgdram-workloads` streams) must stay `Send`. This is a
    /// compile-time audit: it fails to build if any layer grows a
    /// thread-bound type (`Rc`, `RefCell`, raw pointers, non-`Send`
    /// trait objects).
    #[test]
    fn simulation_ownership_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
        assert_send::<SystemBuilder>();
        assert_send::<SimError>();
        assert_send::<SimReport>();
        assert_send::<Workload>();
        assert_send::<fgdram_dram::DramDevice>();
        assert_send::<fgdram_ctrl::Controller>();
        assert_send::<fgdram_gpu::Gpu>();
        assert_send::<fgdram_gpu::L2Cache>();
        assert_send::<Box<dyn fgdram_model::stream::AccessStream>>();
    }
}
