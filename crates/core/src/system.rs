//! Full-system composition: GPU front end, sectored L2, memory controller,
//! and DRAM stack, advanced by one event-stepped loop.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use fgdram_ctrl::Controller;
use fgdram_dram::{DramDevice, ProtocolError};
use fgdram_energy::floorplan::{EnergyProfile, IoTechnology};
use fgdram_energy::meter::{DataActivity, EnergyMeter, OpCounts};
use fgdram_gpu::{Gpu, L2Access, L2Cache, SectorAccess};
use fgdram_model::addr::{MemRequest, PhysAddr, ReqId};
use fgdram_model::cmd::TimedCommand;
use fgdram_model::config::{ConfigError, CtrlConfig, DramConfig, DramKind, GpuConfig};
use fgdram_model::units::{GbPerSec, Ns};
use fgdram_telemetry::{Recorder, Sampled, Telemetry, TelemetryConfig};
use fgdram_workloads::Workload;

use crate::report::SimReport;
use crate::telemetry::EnergySampler;

/// Simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// Invalid configuration.
    Config(ConfigError),
    /// The scheduler issued an illegal DRAM command (internal bug).
    Protocol(ProtocolError),
    /// The system stopped making progress (internal bug).
    Stalled {
        /// Time of the stall.
        at: Ns,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Protocol(e) => write!(f, "protocol violation: {e}"),
            SimError::Stalled { at } => write!(f, "simulation stalled at {at} ns"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<ProtocolError> for SimError {
    fn from(e: ProtocolError) -> Self {
        SimError::Protocol(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Read data for this fill request reaches the L2.
    Fill(ReqId),
    /// A load sector reaches its warp.
    Wake(u64),
}

/// Builder for a [`System`].
///
/// # Examples
///
/// ```
/// use fgdram_core::SystemBuilder;
/// use fgdram_model::config::DramKind;
/// use fgdram_workloads::suites;
///
/// let report = SystemBuilder::new(DramKind::Fgdram)
///     .workload(suites::by_name("STREAM").expect("in suite"))
///     .run(2_000, 5_000)?;
/// assert!(report.bandwidth.value() > 0.0);
/// # Ok::<(), fgdram_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dram: DramConfig,
    ctrl: CtrlConfig,
    gpu: GpuConfig,
    workload: Option<Workload>,
    io_tech: IoTechnology,
    trace: bool,
    telemetry: Option<TelemetryConfig>,
}

impl SystemBuilder {
    /// Starts from the Table 2 configuration of `kind` and the Table 1 GPU.
    pub fn new(kind: DramKind) -> Self {
        let dram = DramConfig::new(kind);
        SystemBuilder {
            ctrl: CtrlConfig::for_dram(&dram),
            dram,
            gpu: GpuConfig::default(),
            workload: None,
            io_tech: IoTechnology::Podl,
            trace: false,
            telemetry: None,
        }
    }

    /// Replaces the DRAM configuration (for ablations), re-deriving the
    /// controller sizing for its channel count.
    pub fn dram_config(mut self, cfg: DramConfig) -> Self {
        self.ctrl = CtrlConfig::for_dram(&cfg);
        self.dram = cfg;
        self
    }

    /// Replaces the controller policy.
    pub fn ctrl_config(mut self, cfg: CtrlConfig) -> Self {
        self.ctrl = cfg;
        self
    }

    /// Replaces the GPU configuration.
    pub fn gpu_config(mut self, cfg: GpuConfig) -> Self {
        self.gpu = cfg;
        self
    }

    /// Sets the workload (required). The workload's `mlp` overrides the
    /// GPU's per-warp outstanding limit, and its L2 sector size must match
    /// the DRAM atom (enforced in [`Self::build`]).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Records the full DRAM command trace (for the protocol checker).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables epoch-sampled telemetry over the measurement window of
    /// [`Self::run_instrumented`] (size the capacity with
    /// [`TelemetryConfig::for_window`] to retain every epoch).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Selects the I/O signaling technology for energy accounting
    /// (Section 3.5): PODL is the paper's conservative baseline, GRS the
    /// constant-current alternative with organic-package reach.
    pub fn io_technology(mut self, tech: IoTechnology) -> Self {
        self.io_tech = tech;
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for invalid geometry.
    ///
    /// # Panics
    ///
    /// Panics if no workload was set.
    pub fn build(self) -> Result<System, SimError> {
        let workload = self.workload.expect("SystemBuilder requires a workload");
        let mut gpu_cfg = self.gpu;
        gpu_cfg.max_outstanding_per_warp = workload.mlp.max(1);
        // The L2 sector is the DRAM atom (Section 2.2 / Table 1).
        gpu_cfg.l2.sector_bytes = self.dram.atom_bytes;
        self.dram.validate()?;
        let mut dev = DramDevice::new(self.dram.clone());
        if self.trace {
            dev.enable_trace();
        }
        let ctrl = Controller::new(&self.dram, self.ctrl)?;
        let n_warps = gpu_cfg.sms * gpu_cfg.warps_per_sm;
        let gpu = Gpu::new(gpu_cfg.clone(), workload.streams(n_warps));
        let l2 = L2Cache::new(gpu_cfg.l2, 16_384);
        let mut profile = EnergyProfile::for_kind(self.dram.kind);
        if self.io_tech == IoTechnology::Grs {
            profile = profile.with_grs();
        }
        Ok(System {
            meter: EnergyMeter::with_profile(&self.dram, profile),
            activity: DataActivity {
                toggle_rate: workload.toggle_rate,
                ones_density: workload.ones_density,
            },
            cfg: self.dram,
            gpu_cfg,
            workload_name: workload.name,
            dev,
            ctrl,
            gpu,
            l2,
            events: BinaryHeap::new(),
            fill_dest: HashMap::new(),
            retry_reqs: VecDeque::new(),
            l2_blocked: VecDeque::new(),
            access_buf: Vec::new(),
            completion_buf: Vec::new(),
            now: 0,
            next_req: 0,
            ctrl_next: 0,
            last_issue: 0,
            telemetry: None,
        })
    }

    /// Builds, warms up for `warmup` ns, measures for `window` ns, and
    /// reports.
    ///
    /// # Errors
    ///
    /// Any [`SimError`].
    pub fn run(self, warmup: Ns, window: Ns) -> Result<SimReport, SimError> {
        self.run_instrumented(warmup, window).map(|(r, _)| r)
    }

    /// Like [`Self::run`], but also returns the telemetry series when
    /// [`Self::telemetry`] was configured. Recording covers exactly the
    /// measurement window: it starts after warmup (with freshly reset
    /// statistics) and flushes the trailing partial epoch at the end.
    ///
    /// # Errors
    ///
    /// Any [`SimError`].
    pub fn run_instrumented(
        self,
        warmup: Ns,
        window: Ns,
    ) -> Result<(SimReport, Option<Telemetry>), SimError> {
        let tcfg = self.telemetry;
        let mut sys = self.build()?;
        sys.run_for(warmup)?;
        sys.reset_stats();
        if let Some(cfg) = tcfg {
            sys.enable_telemetry(cfg);
        }
        sys.run_for(window)?;
        let series = sys.finish_telemetry();
        Ok((sys.report(window), series))
    }
}

/// A complete simulated node: GPU + L2 + controller + DRAM stack.
#[derive(Debug)]
pub struct System {
    cfg: DramConfig,
    gpu_cfg: GpuConfig,
    workload_name: String,
    meter: EnergyMeter,
    activity: DataActivity,
    dev: DramDevice,
    ctrl: Controller,
    gpu: Gpu,
    l2: L2Cache,
    events: BinaryHeap<Reverse<(Ns, Event)>>,
    fill_dest: HashMap<u64, PhysAddr>,
    retry_reqs: VecDeque<MemRequest>,
    l2_blocked: VecDeque<SectorAccess>,
    access_buf: Vec<SectorAccess>,
    completion_buf: Vec<fgdram_model::cmd::Completion>,
    now: Ns,
    next_req: u64,
    ctrl_next: Ns,
    last_issue: Ns,
    telemetry: Option<Recorder>,
}

/// Backpressure thresholds: stop issuing new GPU work above these.
const MAX_L2_BLOCKED: usize = 1_024;
const MAX_RETRY: usize = 8_192;

impl System {
    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// The DRAM configuration in effect.
    pub fn dram_config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The DRAM device (counters, per-channel state).
    pub fn device(&self) -> &DramDevice {
        &self.dev
    }

    /// The controller (statistics).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    /// The L2 cache (statistics).
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// The GPU front end (statistics).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Takes the recorded DRAM command trace (empty unless built
    /// [`SystemBuilder::with_trace`]).
    pub fn take_trace(&mut self) -> Vec<TimedCommand> {
        self.dev.take_trace()
    }

    /// Zeroes all statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.dev.reset_counters();
        self.ctrl.reset_stats();
        self.l2.reset_stats();
        self.gpu.reset_stats();
    }

    /// Starts epoch-sampled telemetry at the current simulated time,
    /// observing the controller, DRAM device, GPU, L2, and energy meter.
    /// Call after [`Self::reset_stats`] so epoch 0 starts from zeroed
    /// counters; collect the series with [`Self::finish_telemetry`].
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let mut rec = Recorder::new(cfg);
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let sources: [&dyn Sampled; 5] = [&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        rec.start(self.now, &sources);
        self.telemetry = Some(rec);
    }

    /// Flushes the trailing partial epoch and returns the recorded series
    /// (`None` when telemetry was never enabled). Telemetry is disabled
    /// afterwards.
    pub fn finish_telemetry(&mut self) -> Option<Telemetry> {
        let rec = self.telemetry.take()?;
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let sources: [&dyn Sampled; 5] = [&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        Some(rec.finish(self.now, &sources))
    }

    /// Samples any epoch boundaries crossed by the last step. Exactness:
    /// `step` advances `now` as its final action and processes events at
    /// the new `now` on the *next* step, so when this poll runs, counters
    /// are exact for every boundary B with `old_now < B <= now` — no
    /// events occur between steps, and events at exactly B belong to the
    /// epoch starting at B.
    fn poll_telemetry(&mut self) {
        let Some(mut rec) = self.telemetry.take() else { return };
        let es = EnergySampler { meter: &self.meter, dev: &self.dev, activity: self.activity };
        let sources: [&dyn Sampled; 5] = [&self.ctrl, &self.dev, &self.gpu, &self.l2, &es];
        rec.poll(self.now, &sources);
        self.telemetry = Some(rec);
    }

    /// Advances simulated time by `duration`.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on scheduler bugs, [`SimError::Stalled`] when
    /// progress stops entirely.
    pub fn run_for(&mut self, duration: Ns) -> Result<(), SimError> {
        let end = self.now.saturating_add(duration);
        if self.telemetry.is_none() {
            while self.now < end {
                self.step(end)?;
            }
            return Ok(());
        }
        while self.now < end {
            self.step(end)?;
            self.poll_telemetry();
        }
        Ok(())
    }

    fn schedule(&mut self, at: Ns, ev: Event) {
        self.events.push(Reverse((at, ev)));
    }

    fn step(&mut self, end: Ns) -> Result<(), SimError> {
        let now = self.now;

        // 1. Deliver due events.
        while let Some(&Reverse((t, ev))) = self.events.peek() {
            if t > now {
                break;
            }
            self.events.pop();
            match ev {
                Event::Fill(req) => {
                    if let Some(sector) = self.fill_dest.remove(&req.0) {
                        let xbar = self.gpu_cfg.xbar_latency;
                        let core = self.gpu_cfg.core_latency;
                        for token in self.l2.fill_done(sector) {
                            self.schedule(now + xbar + core, Event::Wake(token));
                        }
                    }
                }
                Event::Wake(token) => {
                    self.gpu.sector_done(fgdram_gpu::AccessToken::from_u64(token), now);
                }
            }
        }

        // 2. Retry requests the controller previously rejected.
        while let Some(&req) = self.retry_reqs.front() {
            if self.ctrl.try_enqueue(req, now) {
                self.retry_reqs.pop_front();
            } else {
                break;
            }
        }

        // 3. Retry sector accesses the L2 previously blocked.
        while let Some(&access) = self.l2_blocked.front() {
            if self.process_access(access, now) {
                self.l2_blocked.pop_front();
            } else {
                break;
            }
        }

        // 4. Issue new GPU work unless backpressured.
        if self.l2_blocked.len() < MAX_L2_BLOCKED && self.retry_reqs.len() < MAX_RETRY {
            let dt = (now - self.last_issue).clamp(1, 8) as usize;
            let budget = self.gpu_cfg.issue_per_ns * dt;
            let mut buf = std::mem::take(&mut self.access_buf);
            buf.clear();
            self.gpu.issue(now, budget, &mut buf);
            self.last_issue = now;
            for access in buf.drain(..) {
                if !self.process_access(access, now) {
                    self.l2_blocked.push_back(access);
                }
            }
            self.access_buf = buf;
        }

        // 5. Turn L2 evictions into DRAM writes.
        for wb in self.l2.take_writebacks() {
            self.next_req += 1;
            let req = MemRequest { id: ReqId(self.next_req), addr: wb, is_write: true };
            if !self.ctrl.try_enqueue(req, now) {
                self.retry_reqs.push_back(req);
            }
        }

        // 6. Run the memory controller.
        if now >= self.ctrl_next {
            self.completion_buf.clear();
            let mut comps = std::mem::take(&mut self.completion_buf);
            self.ctrl_next = self.ctrl.tick(&mut self.dev, now, &mut comps)?;
            let xbar = self.gpu_cfg.xbar_latency;
            for c in comps.drain(..) {
                if !c.is_write {
                    self.schedule(c.at + xbar, Event::Fill(c.req));
                }
            }
            self.completion_buf = comps;
        }

        // 7. Advance to the next interesting time.
        let mut next = end;
        if let Some(&Reverse((t, _))) = self.events.peek() {
            next = next.min(t);
        }
        next = next.min(self.ctrl_next);
        if let Some(t) = self.gpu.next_event() {
            next = next.min(t);
        }
        if !self.retry_reqs.is_empty() || !self.l2_blocked.is_empty() {
            next = next.min(now + 1);
        }
        if next == Ns::MAX {
            return Err(SimError::Stalled { at: now });
        }
        self.now = next.max(now + 1).min(end.max(now + 1));
        Ok(())
    }

    /// Routes one sector access through the L2; `false` means blocked
    /// (caller must retry).
    fn process_access(&mut self, access: SectorAccess, now: Ns) -> bool {
        match self.l2.access(access.addr, access.is_store, access.token.as_u64()) {
            L2Access::Hit => {
                let done = now + self.gpu_cfg.l2.hit_latency + 2 * self.gpu_cfg.xbar_latency;
                self.schedule(done, Event::Wake(access.token.as_u64()));
                true
            }
            L2Access::StoreDone | L2Access::Merged => true,
            L2Access::Miss { fill } => {
                self.next_req += 1;
                let req = MemRequest { id: ReqId(self.next_req), addr: fill, is_write: false };
                self.fill_dest.insert(self.next_req, fill);
                if !self.ctrl.try_enqueue(req, now) {
                    self.retry_reqs.push_back(req);
                }
                true
            }
            L2Access::Blocked => false,
        }
    }

    /// Builds a report over the last `window` ns (call after
    /// [`Self::reset_stats`] + [`Self::run_for`]).
    pub fn report(&self, window: Ns) -> SimReport {
        let k = self.dev.total_counters();
        let ops = OpCounts {
            activates: k.activates,
            read_atoms: k.read_atoms,
            write_atoms: k.write_atoms,
        };
        let energy = self.meter.energy(&ops, self.activity);
        let bits = self.meter.data_bits(&ops);
        let bytes = (k.read_atoms + k.write_atoms) * self.cfg.atom_bytes;
        let bandwidth = GbPerSec::from_bytes_over(bytes, window);
        let peak = self.cfg.stack_bandwidth();
        let cs = self.ctrl.stats();
        // Per-channel balance: the swizzle should spread traffic evenly.
        let per_channel: Vec<f64> = (0..self.cfg.channels as u32)
            .map(|ch| {
                let k = self.dev.channel_counters(ch);
                (k.read_atoms + k.write_atoms) as f64
            })
            .collect();
        let mean = per_channel.iter().sum::<f64>() / per_channel.len().max(1) as f64;
        let var = per_channel.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / per_channel.len().max(1) as f64;
        let channel_imbalance_cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        SimReport {
            workload: self.workload_name.clone(),
            kind: self.cfg.kind,
            window_ns: window,
            retired: self.gpu.stats().retired,
            read_atoms: k.read_atoms,
            write_atoms: k.write_atoms,
            activates: k.activates,
            refreshes: k.refreshes,
            bandwidth,
            utilisation: if peak.value() > 0.0 { bandwidth.value() / peak.value() } else { 0.0 },
            row_hit_rate: cs.hit_rate(),
            l2_hit_rate: self.l2.stats().hit_rate(),
            avg_read_latency_ns: cs.read_latency.stat().mean(),
            p95_read_latency_ns: cs.read_latency.quantile(0.95),
            channel_imbalance_cv,
            energy,
            energy_per_bit: energy.per_bit(bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix executor hands each worker thread its own whole
    /// simulation, so the system (and everything it owns, down through
    /// `fgdram-dram`, `fgdram-ctrl`, `fgdram-gpu` and the boxed
    /// `fgdram-workloads` streams) must stay `Send`. This is a
    /// compile-time audit: it fails to build if any layer grows a
    /// thread-bound type (`Rc`, `RefCell`, raw pointers, non-`Send`
    /// trait objects).
    #[test]
    fn simulation_ownership_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
        assert_send::<SystemBuilder>();
        assert_send::<SimError>();
        assert_send::<SimReport>();
        assert_send::<Workload>();
        assert_send::<fgdram_dram::DramDevice>();
        assert_send::<fgdram_ctrl::Controller>();
        assert_send::<fgdram_gpu::Gpu>();
        assert_send::<fgdram_gpu::L2Cache>();
        assert_send::<Box<dyn fgdram_model::stream::AccessStream>>();
    }
}
