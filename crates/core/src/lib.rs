//! # fgdram-core
//!
//! System-level composition for the FGDRAM (MICRO 2017) reproduction: a
//! [`SystemBuilder`] wires the Table 1 GPU front end, the sectored L2, the
//! throughput-optimized memory controller, and any of the Table 2 DRAM
//! stacks into one event-stepped simulation, and [`SimReport`] carries the
//! measurements every figure in the paper is drawn from.
//!
//! ## Examples
//!
//! ```no_run
//! use fgdram_core::SystemBuilder;
//! use fgdram_model::config::DramKind;
//! use fgdram_workloads::suites;
//!
//! // Figure 10, one bar: GUPS on FGDRAM vs the QB-HBM baseline.
//! let gups = suites::by_name("GUPS").expect("in suite");
//! let base = SystemBuilder::new(DramKind::QbHbm)
//!     .workload(gups.clone())
//!     .run(20_000, 100_000)?;
//! let fg = SystemBuilder::new(DramKind::Fgdram)
//!     .workload(gups)
//!     .run(20_000, 100_000)?;
//! println!("GUPS speedup: {:.2}x", fg.speedup_over(&base));
//! # Ok::<(), fgdram_core::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod error;
pub mod experiments;
pub mod report;
pub mod suite;
pub mod system;

/// Re-export: the event wheel moved into `fgdram-model` so the
/// controller (which `fgdram-core` depends on) can use it for its due
/// queue; the old `fgdram_core::wheel` path keeps working.
pub use fgdram_model::wheel;
mod telemetry;

pub use error::SimError;
pub use report::{FaultSummary, SimReport};
pub use system::{System, SystemBuilder};
