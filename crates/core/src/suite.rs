//! The shared suite runner: one definition of what a "suite job" is,
//! used by both the `fgdram_sim suite` CLI command and the
//! `fgdram-serve` job server.
//!
//! The serving determinism gate (a suite job submitted over the wire must
//! produce a final report byte-identical to the CLI invocation with the
//! same parameters, at any worker count) holds *by construction* because
//! both front ends run cells through [`SuiteSpec::run_cell`] and render
//! through [`render_report`] — there is no second copy of the formatting
//! to drift.
//!
//! A suite job is `workloads x [QB-HBM, FGDRAM]` cells in workload-major
//! order (the same cell table [`crate::experiments::run_cells`] uses), so
//! any executor — the CLI's sharded thread pool, the server's
//! deficit-round-robin worker pool — can run cells in any order and
//! still reassemble identical output from the input-order table.

use fgdram_model::config::DramKind;
use fgdram_model::units::Ns;
use fgdram_telemetry::{export, Telemetry, TelemetryConfig};
use fgdram_workloads::{suites, Workload};

use crate::report::SimReport;
use crate::system::{SimError, SystemBuilder};

/// Which workload suite a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// The 26-application compute suite (Figures 8/10).
    Compute,
    /// The 80-workload graphics suite (Figure 9).
    Graphics,
}

impl SuiteKind {
    /// Parses the CLI/wire spelling (`compute` | `graphics`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "compute" => Some(SuiteKind::Compute),
            "graphics" => Some(SuiteKind::Graphics),
            _ => None,
        }
    }

    /// The canonical spelling (also used in the final report line).
    pub fn label(&self) -> &'static str {
        match self {
            SuiteKind::Compute => "compute",
            SuiteKind::Graphics => "graphics",
        }
    }

    /// The full workload list of this suite.
    pub fn all_workloads(&self) -> Vec<Workload> {
        match self {
            SuiteKind::Compute => suites::compute_suite(),
            SuiteKind::Graphics => suites::graphics_suite(),
        }
    }
}

/// The two architectures a suite job compares, in cell order.
pub const SUITE_KINDS: [DramKind; 2] = [DramKind::QbHbm, DramKind::Fgdram];

/// A fully parameterised suite job: everything that determines its
/// output, and nothing that does not (worker counts, tenants, transport
/// live outside this struct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteSpec {
    /// Which suite to run.
    pub which: SuiteKind,
    /// Warm-up time before measurement, per cell.
    pub warmup: Ns,
    /// Measurement window, per cell.
    pub window: Ns,
    /// Cap on the number of workloads (`None` = the whole suite).
    pub max_workloads: Option<usize>,
    /// Epoch-sampled telemetry per cell when `Some(epoch_ns)`.
    pub telemetry_epoch: Option<Ns>,
}

impl SuiteSpec {
    /// The workload list after the `max_workloads` cap.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut list = self.which.all_workloads();
        if let Some(n) = self.max_workloads {
            list.truncate(n);
        }
        list
    }

    /// Number of independent simulation cells (`workloads x 2`).
    pub fn cell_count(&self) -> usize {
        self.workloads().len() * SUITE_KINDS.len()
    }

    /// Simulated nanoseconds one cell costs (warmup + window).
    pub fn cell_cost(&self) -> u64 {
        self.warmup.saturating_add(self.window)
    }

    /// Total resource cost of the job in cells x simulated-ns — the
    /// admission-control currency of `fgdram-serve`.
    pub fn cost(&self) -> u64 {
        (self.cell_count() as u64).saturating_mul(self.cell_cost())
    }

    /// The `(workload, architecture)` of cell `index` in the
    /// workload-major cell table.
    pub fn cell<'a>(&self, workloads: &'a [Workload], index: usize) -> (&'a Workload, DramKind) {
        (&workloads[index / SUITE_KINDS.len()], SUITE_KINDS[index % SUITE_KINDS.len()])
    }

    /// Runs one cell on the default Table 1/Table 2 system configuration
    /// (the configuration `fgdram_sim suite` uses when no override flag
    /// is passed).
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the simulation.
    pub fn run_cell(&self, w: &Workload, kind: DramKind) -> Result<SuiteCell, SimError> {
        self.run_cell_threaded(w, kind, 1)
    }

    /// [`Self::run_cell`] with the DRAM engine sharded across
    /// `engine_threads` worker lanes. Output is byte-identical at any
    /// value (the lane merge is deterministic), which is why the thread
    /// count is a run-time argument here and not part of the wire-visible
    /// spec: two jobs differing only in engine threads are the same job.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the simulation.
    pub fn run_cell_threaded(
        &self,
        w: &Workload,
        kind: DramKind,
        engine_threads: usize,
    ) -> Result<SuiteCell, SimError> {
        let mut b = SystemBuilder::new(kind).workload(w.clone()).engine_threads(engine_threads);
        if let Some(epoch) = self.telemetry_epoch {
            b = b.telemetry(TelemetryConfig::for_window(epoch, self.window));
        }
        let (report, telemetry) = b.run_instrumented(self.warmup, self.window)?;
        Ok(SuiteCell { report, telemetry })
    }

    /// Renders one cell's telemetry series as the exact JSONL bytes the
    /// CLI writes for it (meta: workload name, architecture label).
    pub fn telemetry_jsonl(w: &Workload, kind: DramKind, t: &Telemetry) -> String {
        export::to_jsonl_string(&[("workload", &w.name), ("arch", kind.label())], t)
    }
}

/// One completed suite cell.
#[derive(Debug, Clone)]
pub struct SuiteCell {
    /// The cell's measurement report.
    pub report: SimReport,
    /// The cell's telemetry series (when the spec enabled telemetry).
    pub telemetry: Option<Telemetry>,
}

/// Renders the suite's final report — per-workload speedup/energy lines
/// plus the geometric-mean summary — from the input-order report table
/// (`reports[2 * i]` = workload `i` on QB-HBM, `reports[2 * i + 1]` on
/// FGDRAM). These are the exact bytes `fgdram_sim suite` prints.
///
/// # Panics
///
/// Panics if `reports.len() != 2 * workloads.len()`.
pub fn render_report(which: SuiteKind, workloads: &[Workload], reports: &[SimReport]) -> String {
    assert_eq!(reports.len(), workloads.len() * SUITE_KINDS.len(), "one report per cell");
    let mut out = String::new();
    let mut logsum = 0.0;
    let (mut eq, mut ef) = (0.0, 0.0);
    for (wi, w) in workloads.iter().enumerate() {
        let qb = &reports[wi * SUITE_KINDS.len()];
        let fg = &reports[wi * SUITE_KINDS.len() + 1];
        out.push_str(&format!(
            "{:<14} speedup {:>5.2}x   {:>5.2} -> {:>5.2} pJ/b\n",
            w.name,
            fg.speedup_over(qb),
            qb.energy_per_bit.total().value(),
            fg.energy_per_bit.total().value()
        ));
        logsum += fg.speedup_over(qb).max(1e-9).ln();
        eq += qb.energy_per_bit.total().value();
        ef += fg.energy_per_bit.total().value();
    }
    let n = workloads.len() as f64;
    out.push_str(&format!(
        "\n{} suite: gmean speedup {:.2}x, energy {:.2} -> {:.2} pJ/b ({:.0}%)\n",
        which.label(),
        (logsum / n).exp(),
        eq / n,
        ef / n,
        100.0 * (1.0 - (ef / eq))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SuiteSpec {
        SuiteSpec {
            which: SuiteKind::Compute,
            warmup: 500,
            window: 2_000,
            max_workloads: Some(2),
            telemetry_epoch: None,
        }
    }

    #[test]
    fn cell_table_is_workload_major() {
        let spec = tiny_spec();
        let ws = spec.workloads();
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.cell(&ws, 0).1, DramKind::QbHbm);
        assert_eq!(spec.cell(&ws, 1).1, DramKind::Fgdram);
        assert_eq!(spec.cell(&ws, 2).0.name, ws[1].name);
        assert_eq!(spec.cost(), 4 * 2_500);
    }

    #[test]
    fn suite_kind_parses_both_and_rejects_junk() {
        assert_eq!(SuiteKind::parse("compute"), Some(SuiteKind::Compute));
        assert_eq!(SuiteKind::parse("graphics"), Some(SuiteKind::Graphics));
        assert_eq!(SuiteKind::parse("gfx"), None);
        assert_eq!(SuiteKind::Graphics.all_workloads().len(), 80);
    }

    #[test]
    fn render_is_deterministic_and_order_independent_of_executor() {
        let spec = tiny_spec();
        let ws = spec.workloads();
        // Run the 4 cells out of order, then assemble in input order —
        // exactly what an out-of-order executor does.
        let mut slots: Vec<Option<SuiteCell>> = (0..4).map(|_| None).collect();
        for i in [2usize, 0, 3, 1] {
            let (w, k) = spec.cell(&ws, i);
            slots[i] = Some(spec.run_cell(w, k).expect("cell runs"));
        }
        let reports: Vec<SimReport> =
            slots.iter().map(|c| c.as_ref().unwrap().report.clone()).collect();
        let a = render_report(spec.which, &ws, &reports);
        let b = render_report(spec.which, &ws, &reports);
        assert_eq!(a, b);
        assert!(a.contains("speedup") && a.ends_with("%)\n"));
        assert!(a.contains("compute suite: gmean speedup"));
        assert_eq!(a.lines().count(), ws.len() + 2);
    }

    #[test]
    fn telemetry_cells_carry_series() {
        let mut spec = tiny_spec();
        spec.max_workloads = Some(1);
        spec.telemetry_epoch = Some(1_000);
        let ws = spec.workloads();
        let (w, k) = spec.cell(&ws, 0);
        let cell = spec.run_cell(w, k).expect("cell runs");
        let t = cell.telemetry.expect("telemetry enabled");
        assert!(!t.records.is_empty());
        let jsonl = SuiteSpec::telemetry_jsonl(w, k, &t);
        assert!(jsonl.lines().next().unwrap().contains("\"workload\":"));
    }
}
