//! System-level telemetry glue: the energy meter as a [`Sampled`] source.
//!
//! The meter itself is stateless (energy is a pure function of operation
//! counts), so the sampler pairs it with the device's cumulative counters
//! and lets the recorder's delta machinery attribute picojoules to epochs.

use fgdram_dram::DramDevice;
use fgdram_energy::meter::{DataActivity, EnergyMeter, OpCounts};
use fgdram_model::units::Ns;
use fgdram_telemetry::{SampleBuf, Sampled};

/// Samples cumulative energy, decomposed per the paper's breakdown
/// (activation / on-die data movement / I/O), as float counters.
#[derive(Debug)]
pub(crate) struct EnergySampler<'a> {
    pub meter: &'a EnergyMeter,
    pub dev: &'a DramDevice,
    pub activity: DataActivity,
}

impl EnergySampler<'_> {
    fn ops(&self) -> OpCounts {
        let k = self.dev.total_counters();
        OpCounts { activates: k.activates, read_atoms: k.read_atoms, write_atoms: k.write_atoms }
    }
}

impl Sampled for EnergySampler<'_> {
    fn component(&self) -> &'static str {
        "energy"
    }

    fn sample(&self, out: &mut SampleBuf) {
        let ops = self.ops();
        let e = self.meter.energy(&ops, self.activity);
        out.counter_f64("act_pj", e.activation.value());
        out.counter_f64("move_pj", e.data_movement.value());
        out.counter_f64("io_pj", e.io.value());
        out.counter("bits", self.meter.data_bits(&ops));
    }

    fn derive(&self, delta: &mut SampleBuf, _epoch_ns: Ns) {
        let bits = delta.get_u64("bits") as f64;
        let per = |pj: f64| if bits == 0.0 { 0.0 } else { pj / bits };
        let act = delta.get_f64("act_pj");
        let mov = delta.get_f64("move_pj");
        let io = delta.get_f64("io_pj");
        delta.gauge("act_pj_per_bit", per(act));
        delta.gauge("move_pj_per_bit", per(mov));
        delta.gauge("io_pj_per_bit", per(io));
        delta.gauge("pj_per_bit", per(act + mov + io));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::cmd::{BankRef, DramCommand};
    use fgdram_model::config::{DramConfig, DramKind};

    #[test]
    fn energy_deltas_decompose_per_epoch() {
        let cfg = DramConfig::new(DramKind::QbHbm);
        let mut dev = DramDevice::new(cfg.clone());
        let meter = EnergyMeter::new(&cfg);
        let activity = DataActivity::default();
        let mut before = SampleBuf::new();
        EnergySampler { meter: &meter, dev: &dev, activity }.sample(&mut before);
        let b = BankRef { channel: 0, bank: 0 };
        dev.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
        let rd = DramCommand::Read {
            bank: b,
            row: 1,
            col: 0,
            auto_precharge: false,
            req: fgdram_model::addr::ReqId(0),
        };
        let t = dev.earliest(&rd, 0).unwrap();
        dev.issue(rd, t).unwrap();
        let es = EnergySampler { meter: &meter, dev: &dev, activity };
        let mut after = SampleBuf::new();
        es.sample(&mut after);
        let mut d = SampleBuf::delta(&before, &after);
        es.derive(&mut d, 1000);
        assert!(d.get_f64("act_pj") > 0.0);
        assert!(d.get_f64("move_pj") > 0.0);
        assert!(d.get_f64("io_pj") > 0.0);
        assert_eq!(d.get_u64("bits"), cfg.atom_bytes * 8);
        let total = d.get_f64("pj_per_bit");
        let parts =
            d.get_f64("act_pj_per_bit") + d.get_f64("move_pj_per_bit") + d.get_f64("io_pj_per_bit");
        assert!((total - parts).abs() < 1e-9);
    }
}
