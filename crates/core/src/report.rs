//! Simulation reports: the numbers every figure in the paper is built from.

use fgdram_energy::meter::{EnergyBreakdown, EnergyPerBit};
use fgdram_model::config::DramKind;
use fgdram_model::units::{GbPerSec, Ns};

/// Everything measured over one simulation window.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// DRAM architecture simulated.
    pub kind: DramKind,
    /// Measurement window length (after warm-up).
    pub window_ns: Ns,
    /// Warp memory instructions retired in the window (the performance
    /// metric; the paper normalises it to the QB-HBM baseline).
    pub retired: u64,
    /// DRAM atoms read in the window.
    pub read_atoms: u64,
    /// DRAM atoms written in the window.
    pub write_atoms: u64,
    /// Row activations in the window.
    pub activates: u64,
    /// Refresh commands in the window.
    pub refreshes: u64,
    /// Achieved DRAM data bandwidth.
    pub bandwidth: GbPerSec,
    /// Achieved bandwidth over the stack's peak.
    pub utilisation: f64,
    /// Controller row-buffer hit rate.
    pub row_hit_rate: f64,
    /// L2 sector hit rate.
    pub l2_hit_rate: f64,
    /// Mean read latency, enqueue to last data beat (controller-side).
    pub avg_read_latency_ns: f64,
    /// 95th-percentile read latency (log2-bucket resolution).
    pub p95_read_latency_ns: u64,
    /// Coefficient of variation of per-channel atom counts (0 = perfectly
    /// balanced; large = camping that the address swizzle should prevent).
    pub channel_imbalance_cv: f64,
    /// Total energy over the window by component.
    pub energy: EnergyBreakdown,
    /// Energy per useful DRAM bit (the paper's pJ/b axes).
    pub energy_per_bit: EnergyPerBit,
    /// Fault and resilience counters; `None` when the run had no
    /// effective fault spec (keeps fault-free output byte-identical).
    pub faults: Option<FaultSummary>,
}

/// What the fault layer observed and did over the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Corrected (single-bit) ECC errors.
    pub ce: u64,
    /// Detected-uncorrectable ECC errors.
    pub due: u64,
    /// Read retries issued by the corrected-error policy.
    pub retries: u64,
    /// Grains excluded from the address map (including dead-at-build).
    pub excluded: u64,
    /// Sectors delivered to warps with poisoned data.
    pub poisoned: u64,
}

impl SimReport {
    /// Performance as retired warp instructions per microsecond.
    pub fn perf(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.retired as f64 * 1000.0 / self.window_ns as f64
        }
    }

    /// This report's performance normalised to `baseline` (Figure 10's
    /// y-axis).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        let b = baseline.perf();
        if b == 0.0 {
            0.0
        } else {
            self.perf() / b
        }
    }

    /// Atoms transferred per activation (row locality proxy).
    pub fn atoms_per_activate(&self) -> f64 {
        if self.activates == 0 {
            0.0
        } else {
            (self.read_atoms + self.write_atoms) as f64 / self.activates as f64
        }
    }
}

impl core::fmt::Display for SimReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:<14} {:<15} bw {:7.1} GB/s ({:4.1}%)  perf {:9.1} instr/us  {:>6.2} pJ/b \
             (act {:.2} mv {:.2} io {:.2})  lat {:5.0} ns  hit {:4.1}%",
            self.workload,
            self.kind.label(),
            self.bandwidth.value(),
            self.utilisation * 100.0,
            self.perf(),
            self.energy_per_bit.total().value(),
            self.energy_per_bit.activation.value(),
            self.energy_per_bit.data_movement.value(),
            self.energy_per_bit.io.value(),
            self.avg_read_latency_ns,
            self.row_hit_rate * 100.0,
        )?;
        if let Some(fs) = &self.faults {
            write!(
                f,
                "  faults: {} CE {} DUE {} retries {} excluded {} poisoned",
                fs.ce, fs.due, fs.retries, fs.excluded, fs.poisoned
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(retired: u64, window: Ns) -> SimReport {
        SimReport {
            workload: "t".into(),
            kind: DramKind::QbHbm,
            window_ns: window,
            retired,
            read_atoms: 100,
            write_atoms: 50,
            activates: 30,
            refreshes: 0,
            bandwidth: GbPerSec::new(10.0),
            utilisation: 0.1,
            row_hit_rate: 0.5,
            l2_hit_rate: 0.5,
            avg_read_latency_ns: 100.0,
            p95_read_latency_ns: 256,
            channel_imbalance_cv: 0.0,
            energy: EnergyBreakdown::default(),
            energy_per_bit: EnergyPerBit::default(),
            faults: None,
        }
    }

    #[test]
    fn perf_and_speedup() {
        let base = report(1000, 10_000);
        let fast = report(1900, 10_000);
        assert_eq!(base.perf(), 100.0);
        assert!((fast.speedup_over(&base) - 1.9).abs() < 1e-9);
        assert_eq!(report(0, 0).perf(), 0.0);
    }

    #[test]
    fn atoms_per_activate() {
        let r = report(1, 1);
        assert_eq!(r.atoms_per_activate(), 5.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = report(1, 1000).to_string();
        assert!(s.contains("QB-HBM"));
        assert!(s.contains("pJ/b"));
        // Fault-free reports never mention faults (byte-identity with
        // builds predating the fault layer).
        assert!(!s.contains("faults"));
    }

    #[test]
    fn display_appends_fault_summary_when_present() {
        let mut r = report(1, 1000);
        r.faults = Some(FaultSummary { ce: 3, due: 2, retries: 1, excluded: 1, poisoned: 2 });
        let s = r.to_string();
        assert!(s.contains("faults: 3 CE 2 DUE 1 retries 1 excluded 2 poisoned"), "{s}");
    }
}
