//! One function per table/figure of the paper's evaluation.
//!
//! Simulation-backed figures are driven through [`run_matrix`], which runs
//! a workload list across architectures at a chosen [`Scale`]; analytic
//! figures (1a, Table 2, Table 3, area) come straight from the models.
//! The root package's `regen-experiments` binary renders these into
//! `EXPERIMENTS.md`; the Criterion benches exercise the same entry points
//! at [`Scale::quick`].

use fgdram_energy::area::AreaModel;
use fgdram_energy::budget::{self, BudgetPoint, TechPoint};
use fgdram_energy::floorplan::EnergyProfile;
use fgdram_energy::meter::EnergyPerBit;
use fgdram_model::config::{DramConfig, DramKind};
use fgdram_model::units::Ns;
use fgdram_workloads::{suites, Workload};

use crate::report::SimReport;
use crate::system::{SimError, SystemBuilder};

/// How many worker threads a matrix run may use.
///
/// Every (workload, architecture) cell of a matrix is an independent
/// simulation, so — in the same spirit as bank-level parallelism inside
/// the DRAM itself — cells never serialise behind each other unless asked
/// to. The executor stays deterministic at any job count: results land in
/// an input-order slot table, so output rows are bit-identical to a
/// sequential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker-thread cap; `0` means "use the machine's available
    /// parallelism". The effective count is further capped by the number
    /// of cells.
    pub jobs: usize,
    /// Emit one stderr line per completed cell (coarse progress for long
    /// `Scale::full()` runs).
    pub progress: bool,
}

impl Parallelism {
    /// As many workers as the machine offers, no progress output.
    pub fn auto() -> Self {
        Parallelism { jobs: 0, progress: false }
    }

    /// Strictly sequential, in the calling thread.
    pub fn serial() -> Self {
        Parallelism { jobs: 1, progress: false }
    }

    /// Exactly `jobs` workers (`0` = auto).
    pub fn jobs(jobs: usize) -> Self {
        Parallelism { jobs, progress: false }
    }

    /// The actual worker count for `cells` independent jobs.
    pub fn resolve(&self, cells: usize) -> usize {
        let hw = match self.jobs {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        hw.min(cells).max(1)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Simulation effort: the full windows used for `EXPERIMENTS.md`, or a
/// quick subset for CI/benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Warm-up time before measurement.
    pub warmup: Ns,
    /// Measurement window.
    pub window: Ns,
    /// Cap on the number of workloads per suite (`None` = all).
    pub max_workloads: Option<usize>,
    /// Worker threads for matrix runs (does not affect results).
    pub parallelism: Parallelism,
}

impl Scale {
    /// Full-fidelity scale used to regenerate `EXPERIMENTS.md`.
    pub fn full() -> Self {
        Scale {
            warmup: 20_000,
            window: 100_000,
            max_workloads: None,
            parallelism: Parallelism::auto(),
        }
    }

    /// Reduced scale for benches and smoke tests.
    pub fn quick() -> Self {
        Scale {
            warmup: 8_000,
            window: 30_000,
            max_workloads: Some(4),
            parallelism: Parallelism::auto(),
        }
    }

    /// Returns `self` with a worker-thread cap (`0` = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.parallelism.jobs = jobs;
        self
    }

    /// Returns `self` with per-cell completion logging enabled.
    pub fn with_progress(mut self) -> Self {
        self.parallelism.progress = true;
        self
    }

    fn cap<'a>(&self, list: &'a [Workload]) -> &'a [Workload] {
        match self.max_workloads {
            Some(n) => &list[..n.min(list.len())],
            None => list,
        }
    }
}

/// One workload simulated across several architectures.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The workload.
    pub workload: Workload,
    /// One report per architecture, in input order.
    pub reports: Vec<SimReport>,
}

impl MatrixRow {
    /// The report for `kind`, or `None` if that architecture was not part
    /// of this matrix run. Prefer this from any path that may see a
    /// partial matrix (subset of architectures, custom kind lists).
    pub fn try_report(&self, kind: DramKind) -> Option<&SimReport> {
        self.reports.iter().find(|r| r.kind == kind)
    }

    /// The report for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not part of the matrix run; use
    /// [`Self::try_report`] where that is a reachable state.
    pub fn report(&self, kind: DramKind) -> &SimReport {
        self.try_report(kind).expect("kind simulated")
    }
}

/// Runs `workloads` x `kinds` full-system simulations.
///
/// Cells run on up to `scale.parallelism` worker threads; results are
/// identical to a sequential run at any job count (see [`Parallelism`]).
///
/// # Errors
///
/// Propagates the first [`SimError`] in cell order (lowest
/// workload-major index wins), regardless of which worker hit it first.
pub fn run_matrix(
    workloads: &[Workload],
    kinds: &[DramKind],
    scale: Scale,
) -> Result<Vec<MatrixRow>, SimError> {
    run_matrix_with(workloads, kinds, scale, |w, k| SystemBuilder::new(k).workload(w.clone()))
}

/// [`run_matrix`] with a caller-supplied cell builder, for sweeps that
/// customise the system per cell (I/O technology, page policy, overridden
/// configs) while keeping the sharded executor and its determinism.
///
/// `build` must be deterministic: it is invoked once per cell, from
/// whichever worker claims the cell.
///
/// # Errors
///
/// Propagates the first [`SimError`] in cell order.
pub fn run_matrix_with<B>(
    workloads: &[Workload],
    kinds: &[DramKind],
    scale: Scale,
    build: B,
) -> Result<Vec<MatrixRow>, SimError>
where
    B: Fn(&Workload, DramKind) -> SystemBuilder + Sync,
{
    let reports =
        run_cells(workloads, kinds, scale, |w, k| build(w, k).run(scale.warmup, scale.window))?;
    let mut it = reports.into_iter();
    Ok(workloads
        .iter()
        .map(|w| MatrixRow {
            workload: w.clone(),
            reports: it.by_ref().take(kinds.len()).collect(),
        })
        .collect())
}

/// Runs an arbitrary per-cell computation over `workloads` x `kinds` on
/// the sharded executor and returns the results as one flat vector in
/// workload-major input order (`index = workload_idx * kinds.len() +
/// kind_idx`).
///
/// This is the engine under [`run_matrix`]/[`run_matrix_with`], exposed
/// for callers whose cells produce more than a [`SimReport`] — e.g. a
/// report paired with its telemetry series. The executor is deterministic
/// at any job count: workers pull cell indices from a shared counter and
/// write into an input-order slot table, so the returned vector is
/// bit-identical to a sequential run.
///
/// `cell` must be deterministic: it is invoked once per cell, from
/// whichever worker claims the cell.
///
/// # Errors
///
/// Propagates the first cell error in cell order (lowest workload-major
/// index wins), regardless of which worker hit it first.
pub fn run_cells<R, F>(
    workloads: &[Workload],
    kinds: &[DramKind],
    scale: Scale,
    cell: F,
) -> Result<Vec<R>, SimError>
where
    R: Send,
    F: Fn(&Workload, DramKind) -> Result<R, SimError> + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    // Degenerate shapes: no cells to run.
    if workloads.is_empty() || kinds.is_empty() {
        return Ok(Vec::new());
    }

    let cells = workloads.len() * kinds.len();
    let started = std::time::Instant::now();
    let run_cell = |i: usize| -> Result<R, SimError> {
        let w = &workloads[i / kinds.len()];
        let k = kinds[i % kinds.len()];
        let res = cell(w, k);
        if scale.parallelism.progress {
            eprintln!(
                "[matrix {:6.1?}] cell {}/{}: {} on {} {}",
                started.elapsed(),
                i + 1,
                cells,
                w.name,
                k.label(),
                if res.is_ok() { "done" } else { "FAILED" },
            );
        }
        res
    };

    let jobs = scale.parallelism.resolve(cells);
    if jobs == 1 {
        // Strictly sequential reference path: no threads spawned.
        let mut out = Vec::with_capacity(cells);
        for i in 0..cells {
            out.push(run_cell(i)?);
        }
        return Ok(out);
    }

    // Sharded executor: workers pull cell indices from a shared counter
    // and write results into an input-order slot table. Claims happen in
    // index order and every claimed cell runs to completion, so after the
    // scope the filled prefix of the table always contains the
    // lowest-index error (if any) — the same error a sequential run
    // returns.
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<R, SimError>>>> =
        Mutex::new((0..cells).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells {
                    break;
                }
                let res = run_cell(i);
                if res.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                // Infallible: the only code run under this lock is the
                // slot assignment below, which cannot panic.
                slots.lock().expect("matrix slot table poisoned")[i] = Some(res);
            });
        }
    });

    // Infallible: all workers joined above and none panics while holding
    // the lock (see the slot-assignment critical section).
    let slots = slots.into_inner().expect("matrix slot table poisoned");
    let mut out = Vec::with_capacity(cells);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Cells are claimed in index order and claimed cells always
            // complete, so a hole can only follow an error we already
            // returned above.
            None => unreachable!("cell {i} skipped without a prior error"),
        }
    }
    Ok(out)
}

/// Runs the compute suite (Figures 8/10/11) across `kinds`.
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn compute_matrix(kinds: &[DramKind], scale: Scale) -> Result<Vec<MatrixRow>, SimError> {
    run_matrix(scale.cap(&suites::compute_suite()), kinds, scale)
}

/// Runs the graphics suite (Figure 9) across `kinds`.
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn graphics_matrix(kinds: &[DramKind], scale: Scale) -> Result<Vec<MatrixRow>, SimError> {
    run_matrix(scale.cap(&suites::graphics_suite()), kinds, scale)
}

/// Figure 1a: the 60 W power-budget curve plus reference technologies.
pub fn fig1a() -> (Vec<BudgetPoint>, Vec<TechPoint>) {
    let curve = budget::budget_curve(budget::DEFAULT_DRAM_BUDGET, &budget::fig1a_bandwidth_grid());
    (curve, vec![budget::GDDR5, budget::HBM2, budget::TARGET_2PJ])
}

/// Figure 1b: average HBM2 access energy per component, from simulating
/// the compute suite on the HBM2 stack (capped by the scale's workload
/// limit for quick runs).
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn fig1b(scale: Scale) -> Result<EnergyPerBit, SimError> {
    let suite = suites::compute_suite();
    let rows = run_matrix(scale.cap(&suite), &[DramKind::Hbm2], scale)?;
    let mut acc = EnergyPerBit::default();
    for row in &rows {
        let e = row.reports[0].energy_per_bit;
        acc.activation += e.activation;
        acc.data_movement += e.data_movement;
        acc.io += e.io;
    }
    // Guard the capped-to-empty suite (e.g. `max_workloads: Some(0)`):
    // 0/0 would otherwise propagate NaN into every energy component.
    let n = rows.len().max(1) as f64;
    acc.activation = acc.activation / n;
    acc.data_movement = acc.data_movement / n;
    acc.io = acc.io / n;
    Ok(acc)
}

/// One row of the Table 2 rendering.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Parameter name.
    pub name: &'static str,
    /// One value per architecture (HBM2, QB-HBM, FGDRAM).
    pub values: [String; 3],
}

/// Table 2: DRAM configurations, rendered from the actual config structs.
pub fn table2() -> Vec<Table2Row> {
    let cfgs = [
        DramConfig::new(DramKind::Hbm2),
        DramConfig::new(DramKind::QbHbm),
        DramConfig::new(DramKind::Fgdram),
    ];
    let s = |f: &dyn Fn(&DramConfig) -> String| -> [String; 3] {
        [f(&cfgs[0]), f(&cfgs[1]), f(&cfgs[2])]
    };
    vec![
        Table2Row { name: "channels (grains)/stack", values: s(&|c| c.channels.to_string()) },
        Table2Row {
            name: "banks/channel",
            values: s(&|c| {
                if c.kind == DramKind::Fgdram {
                    format!("{} pseudobanks", c.banks_per_channel)
                } else {
                    c.banks_per_channel.to_string()
                }
            }),
        },
        Table2Row { name: "row size/activate (B)", values: s(&|c| c.activation_bytes.to_string()) },
        Table2Row {
            name: "bandwidth/channel (GB/s)",
            values: s(&|c| format!("{:.0}", c.channel_bandwidth().value())),
        },
        Table2Row {
            name: "bandwidth/stack (GB/s)",
            values: s(&|c| format!("{:.0}", c.stack_bandwidth().value())),
        },
        Table2Row { name: "tBURST (ns)", values: s(&|c| c.timing.t_burst.to_string()) },
        Table2Row { name: "tCCDL (ns)", values: s(&|c| c.timing.t_ccd_l.to_string()) },
        Table2Row { name: "tCCDS (ns)", values: s(&|c| c.timing.t_ccd_s.to_string()) },
        Table2Row { name: "activates in tFAW", values: s(&|c| c.timing.acts_in_faw.to_string()) },
    ]
}

/// One row of the Table 3 rendering (per-op energies at 50% activity).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Component name.
    pub name: &'static str,
    /// HBM2 / QB-HBM / FGDRAM values.
    pub values: [f64; 3],
}

/// Table 3: per-operation energies from the floorplan model.
pub fn table3() -> Vec<Table3Row> {
    let p = [
        EnergyProfile::for_kind(DramKind::Hbm2),
        EnergyProfile::for_kind(DramKind::QbHbm),
        EnergyProfile::for_kind(DramKind::Fgdram),
    ];
    let act = [
        p[0].activation(1024).value(),
        p[1].activation(1024).value(),
        p[2].activation(256).value(),
    ];
    vec![
        Table3Row { name: "Row activation (pJ)", values: act },
        Table3Row {
            name: "Pre-GSA data movement (pJ/b)",
            values: [p[0].pre_gsa().value(), p[1].pre_gsa().value(), p[2].pre_gsa().value()],
        },
        Table3Row {
            name: "Post-GSA data movement (pJ/b) @50%",
            values: [
                p[0].post_gsa(0.5).value(),
                p[1].post_gsa(0.5).value(),
                p[2].post_gsa(0.5).value(),
            ],
        },
        Table3Row {
            name: "I/O (pJ/b) @50%",
            values: [
                p[0].io(0.5, 0.5).value(),
                p[1].io(0.5, 0.5).value(),
                p[2].io(0.5, 0.5).value(),
            ],
        },
    ]
}

/// One architecture's area result: kind, total overhead fraction, and the
/// named component contributions.
pub type AreaRow = (DramKind, f64, Vec<(String, f64)>);

/// Section 5.3: area overheads relative to an HBM2 die.
pub fn area_table() -> Vec<AreaRow> {
    DramKind::ALL
        .iter()
        .map(|&k| {
            let m = AreaModel::for_kind(k);
            let comps = m.components().iter().map(|c| (c.name.to_string(), c.fraction)).collect();
            (k, m.total_overhead(), comps)
        })
        .collect()
}

/// Suite-level aggregates for Figures 8/10/11 derived from a matrix.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSummary {
    /// Geometric-mean speedup over the first architecture in the matrix.
    pub gmean_speedup: f64,
    /// Arithmetic-mean energy per bit of the first architecture.
    pub base_energy: f64,
    /// Arithmetic-mean energy per bit of the compared architecture.
    pub other_energy: f64,
    /// Mean activation-energy reduction (fraction).
    pub activation_reduction: f64,
    /// Mean data-movement-energy reduction (fraction).
    pub movement_reduction: f64,
    /// Mean read-latency reduction (fraction).
    pub latency_reduction: f64,
}

/// Summarises `other` vs `base` (both must be present in every row).
pub fn summarise(matrix: &[MatrixRow], base: DramKind, other: DramKind) -> SuiteSummary {
    let n = matrix.len().max(1) as f64;
    let mut log_speedup = 0.0;
    let (mut be, mut oe) = (0.0, 0.0);
    let (mut ba, mut oa) = (0.0, 0.0);
    let (mut bm, mut om) = (0.0, 0.0);
    let (mut bl, mut ol) = (0.0, 0.0);
    for row in matrix {
        let b = row.report(base);
        let o = row.report(other);
        log_speedup += o.speedup_over(b).max(1e-9).ln();
        be += b.energy_per_bit.total().value();
        oe += o.energy_per_bit.total().value();
        ba += b.energy_per_bit.activation.value();
        oa += o.energy_per_bit.activation.value();
        bm += b.energy_per_bit.data_movement.value();
        om += o.energy_per_bit.data_movement.value();
        bl += b.avg_read_latency_ns;
        ol += o.avg_read_latency_ns;
    }
    SuiteSummary {
        gmean_speedup: (log_speedup / n).exp(),
        base_energy: be / n,
        other_energy: oe / n,
        activation_reduction: 1.0 - oa / ba.max(1e-12),
        movement_reduction: 1.0 - om / bm.max(1e-12),
        latency_reduction: 1.0 - ol / bl.max(1e-12),
    }
}

/// Section 2.2 ablation: graphics performance with a 128 B atom vs 32 B
/// on the QB-HBM stack. Returns the mean slowdown fraction (positive =
/// the 128 B atom is slower, the paper's 17%).
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn ablation_atom128(scale: Scale) -> Result<f64, SimError> {
    let suite = suites::graphics_suite();
    let workloads = scale.cap(&suite);
    let mut log_ratio = 0.0;
    for w in workloads {
        let base = SystemBuilder::new(DramKind::QbHbm)
            .workload(w.clone())
            .run(scale.warmup, scale.window)?;
        let big = SystemBuilder::new(DramKind::QbHbm)
            .dram_config(DramConfig::qb_hbm_atom128())
            .workload(w.clone())
            .run(scale.warmup, scale.window)?;
        log_ratio += big.speedup_over(&base).max(1e-9).ln();
    }
    Ok(1.0 - (log_ratio / workloads.len().max(1) as f64).exp())
}

/// Section 2.3 ablation: compute performance of the deep-bank-group
/// 4x-HBM derivative vs QB-HBM. Returns the mean slowdown fraction (the
/// paper's 10.6%).
///
/// # Errors
///
/// Propagates the first [`SimError`].
pub fn ablation_deep_bank_groups(scale: Scale) -> Result<f64, SimError> {
    // Memory-intensive applications first: they are the ones the deep
    // bank grouping hurts, and a capped quick run should see them.
    let mut suite = suites::compute_suite();
    suite.sort_by_key(|w| !w.memory_intensive);
    let workloads = scale.cap(&suite);
    let mut log_ratio = 0.0;
    for w in workloads {
        let base = SystemBuilder::new(DramKind::QbHbm)
            .workload(w.clone())
            .run(scale.warmup, scale.window)?;
        let deep = SystemBuilder::new(DramKind::QbHbm)
            .dram_config(DramConfig::qb_hbm_deep_bank_groups())
            .workload(w.clone())
            .run(scale.warmup, scale.window)?;
        log_ratio += deep.speedup_over(&base).max(1e-9).ln();
    }
    Ok(1.0 - (log_ratio / workloads.len().max(1) as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_matches_paper_anchors() {
        let (curve, techs) = fig1a();
        assert_eq!(curve.len(), 5);
        assert_eq!(techs.len(), 3);
        // 4 TB/s point demands < 2 pJ/b.
        assert!(curve.last().unwrap().max_energy.value() < 2.0);
    }

    #[test]
    fn table2_has_expected_rows() {
        let t = table2();
        assert!(t.len() >= 9);
        let chan = &t[0];
        assert_eq!(chan.values, ["16".to_string(), "64".to_string(), "512".to_string()]);
    }

    #[test]
    fn table3_matches_energy_model() {
        let t = table3();
        assert!((t[0].values[0] - 909.0).abs() < 1.0);
        assert!((t[0].values[2] - 227.0).abs() < 1.0);
        assert!((t[3].values[0] - 0.80).abs() < 0.01);
    }

    #[test]
    fn area_table_matches_section53() {
        let rows = area_table();
        let get = |k: DramKind| rows.iter().find(|(kk, _, _)| *kk == k).unwrap().1;
        assert!((get(DramKind::QbHbm) - 0.0857).abs() < 1e-4);
        assert!((get(DramKind::Fgdram) - 0.1036).abs() < 1e-4);
    }

    #[test]
    fn scale_caps_workloads() {
        let q = Scale::quick();
        let suite = suites::compute_suite();
        assert_eq!(q.cap(&suite).len(), 4);
        assert_eq!(Scale::full().cap(&suite).len(), 26);
    }
}
