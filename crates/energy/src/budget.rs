//! The Figure 1a power-budget analysis: how efficient must DRAM be to hit
//! a bandwidth target inside a fixed power envelope?

use fgdram_model::units::{GbPerSec, PjPerBit, Watts};

/// The paper's DRAM power envelope: ~20% of a 300 W GPU card.
pub const DEFAULT_DRAM_BUDGET: Watts = Watts::new(60.0);

/// A labelled technology point on the Figure 1a plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechPoint {
    /// Technology name.
    pub name: &'static str,
    /// Energy per bit.
    pub energy: PjPerBit,
}

/// Figure 1a's reference technologies.
pub const GDDR5: TechPoint = TechPoint { name: "GDDR5", energy: PjPerBit::new(14.0) };
/// HBM2 reference point (Section 2.1's 3.92 pJ/b, rounded as in Figure 1a).
pub const HBM2: TechPoint = TechPoint { name: "HBM2", energy: PjPerBit::new(3.92) };
/// The paper's target for multi-TB/s systems.
pub const TARGET_2PJ: TechPoint = TechPoint { name: "2 pJ/b target", energy: PjPerBit::new(2.0) };

/// One row of the Figure 1a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPoint {
    /// System bandwidth.
    pub bandwidth: GbPerSec,
    /// Maximum tolerable DRAM energy per bit at that bandwidth.
    pub max_energy: PjPerBit,
}

/// Computes the Figure 1a curve: for each bandwidth, the per-access energy
/// that exactly dissipates `budget`.
///
/// # Examples
///
/// ```
/// use fgdram_energy::budget::{budget_curve, DEFAULT_DRAM_BUDGET};
/// use fgdram_model::units::GbPerSec;
///
/// let curve = budget_curve(DEFAULT_DRAM_BUDGET, &[GbPerSec::new(4096.0)]);
/// // A 4 TB/s system inside 60 W needs < 2 pJ/bit.
/// assert!(curve[0].max_energy.value() < 2.0);
/// ```
pub fn budget_curve(budget: Watts, bandwidths: &[GbPerSec]) -> Vec<BudgetPoint> {
    bandwidths
        .iter()
        .map(|&bw| BudgetPoint { bandwidth: bw, max_energy: budget.energy_budget_at(bw) })
        .collect()
}

/// The bandwidth a technology can reach before exceeding `budget`
/// (Figure 1a's dashed drop-lines).
pub fn max_bandwidth(tech: TechPoint, budget: Watts) -> GbPerSec {
    // P = e * BW  =>  BW = P / e.
    GbPerSec::new(budget.value() / (tech.energy.value() * 8.0e-3))
}

/// The standard bandwidth grid of Figure 1a (256 GB/s to 4 TB/s).
pub fn fig1a_bandwidth_grid() -> Vec<GbPerSec> {
    [256.0, 512.0, 1024.0, 2048.0, 4096.0].iter().map(|&b| GbPerSec::new(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gddr5_tops_out_near_536_gbps() {
        // Figure 1a: 14 pJ/b within 60 W -> ~536 GB/s.
        let bw = max_bandwidth(GDDR5, DEFAULT_DRAM_BUDGET);
        assert!((bw.value() - 535.7).abs() < 1.0, "{bw}");
    }

    #[test]
    fn hbm2_tops_out_near_1_9_tbps() {
        let bw = max_bandwidth(HBM2, DEFAULT_DRAM_BUDGET);
        assert!((bw.value() - 1913.0).abs() < 5.0, "{bw}");
    }

    #[test]
    fn four_tbps_needs_under_2_pj() {
        let grid = fig1a_bandwidth_grid();
        let curve = budget_curve(DEFAULT_DRAM_BUDGET, &grid);
        let four_tb = curve.last().unwrap();
        assert!((four_tb.max_energy.value() - 1.83).abs() < 0.01);
        // HBM2 at 3.92 pJ/b cannot reach 2 TB/s within budget...
        assert!(HBM2.energy > curve[3].max_energy);
        // ...but the 2 pJ/b target can.
        assert!(TARGET_2PJ.energy < curve[3].max_energy);
    }

    #[test]
    fn curve_is_monotonically_decreasing() {
        let curve = budget_curve(DEFAULT_DRAM_BUDGET, &fig1a_bandwidth_grid());
        for pair in curve.windows(2) {
            assert!(pair[1].max_energy < pair[0].max_energy);
        }
    }

    #[test]
    fn paper_quote_4tbps_hbm2_dissipates_over_120w() {
        // Introduction: "A future exascale GPU with 4 TB/s of DRAM
        // bandwidth would dissipate upwards of 120 W of DRAM power."
        let p = HBM2.energy.power_at(GbPerSec::new(4096.0));
        assert!(p.value() > 120.0, "{p}");
    }
}
