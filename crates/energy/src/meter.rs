//! Energy accounting: turns simulator operation counts into the paper's
//! per-component energy breakdowns (Figures 1b, 8, 9, 11).

use fgdram_model::config::DramConfig;
use fgdram_model::units::{Picojoules, PjPerBit};

use crate::floorplan::EnergyProfile;

/// Operation counts consumed by the meter (one channel or a whole stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Row activations.
    pub activates: u64,
    /// Read atoms transferred.
    pub read_atoms: u64,
    /// Written atoms transferred.
    pub write_atoms: u64,
}

impl OpCounts {
    /// Total atoms moved.
    pub fn atoms(&self) -> u64 {
        self.read_atoms + self.write_atoms
    }
}

/// Statistical character of the transferred data, from the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataActivity {
    /// Fraction of bus bits that toggle between consecutive beats (0..=1).
    pub toggle_rate: f64,
    /// Fraction of transmitted bits that are 1 (PODL termination cost).
    pub ones_density: f64,
}

impl Default for DataActivity {
    fn default() -> Self {
        // The 50% point used by Table 3.
        DataActivity { toggle_rate: 0.5, ones_density: 0.5 }
    }
}

/// Per-component energy totals, the unit of every energy figure.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Row activation (precharge + activate) energy.
    pub activation: Picojoules,
    /// On-DRAM data movement (pre-GSA + post-GSA).
    pub data_movement: Picojoules,
    /// I/O (interposer/package signaling).
    pub io: Picojoules,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Picojoules {
        self.activation + self.data_movement + self.io
    }

    /// Divides each component by `bits` of useful transferred data.
    pub fn per_bit(&self, bits: u64) -> EnergyPerBit {
        EnergyPerBit {
            activation: self.activation.per_bits(bits),
            data_movement: self.data_movement.per_bits(bits),
            io: self.io.per_bits(bits),
        }
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.activation += other.activation;
        self.data_movement += other.data_movement;
        self.io += other.io;
    }
}

/// An [`EnergyBreakdown`] normalised per useful bit (the paper's pJ/b axes).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyPerBit {
    /// Activation pJ/b.
    pub activation: PjPerBit,
    /// Data-movement pJ/b.
    pub data_movement: PjPerBit,
    /// I/O pJ/b.
    pub io: PjPerBit,
}

impl EnergyPerBit {
    /// Sum of all components.
    pub fn total(&self) -> PjPerBit {
        self.activation + self.data_movement + self.io
    }
}

impl core::fmt::Display for EnergyPerBit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "act {:.2} + move {:.2} + io {:.2} = {:.2} pJ/b",
            self.activation.value(),
            self.data_movement.value(),
            self.io.value(),
            self.total().value()
        )
    }
}

/// Converts operation counts into energy for one architecture.
///
/// # Examples
///
/// ```
/// use fgdram_energy::meter::{DataActivity, EnergyMeter, OpCounts};
/// use fgdram_model::config::{DramConfig, DramKind};
///
/// let meter = EnergyMeter::new(&DramConfig::new(DramKind::Fgdram));
/// let ops = OpCounts { activates: 1, read_atoms: 8, write_atoms: 0 };
/// let e = meter.energy(&ops, DataActivity::default());
/// // One 256 B activation fully streamed out: activation amortised over
/// // 2048 bits.
/// let per_bit = e.per_bit(8 * 32 * 8);
/// assert!(per_bit.total().value() < 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    profile: EnergyProfile,
    activation_bytes: u64,
    atom_bytes: u64,
    /// Multiplier on stored/moved bits for ECC (9/8 when enabled).
    ecc_factor: f64,
}

impl EnergyMeter {
    /// Meter for `cfg` with the paper's default profile. The Table 3
    /// per-op energies are taken as already carrying the paper's ECC
    /// overhead ("3.92 pJ/bit including ECC overhead"); use
    /// [`Self::with_extra_ecc_bits`] to study transferring ECC as
    /// additional bits (Section 3.4's 9 Gb/s option).
    pub fn new(cfg: &DramConfig) -> Self {
        Self::with_profile(cfg, EnergyProfile::for_kind(cfg.kind))
    }

    /// Meter with a custom energy profile (e.g. GRS I/O).
    pub fn with_profile(cfg: &DramConfig, profile: EnergyProfile) -> Self {
        EnergyMeter {
            profile,
            activation_bytes: cfg.activation_bytes,
            atom_bytes: cfg.atom_bytes,
            ecc_factor: 1.0,
        }
    }

    /// Accounts ECC as 1/8 extra bits on every transfer (sensitivity knob).
    pub fn with_extra_ecc_bits(mut self) -> Self {
        self.ecc_factor = 9.0 / 8.0;
        self
    }

    /// The underlying per-op profile.
    pub fn profile(&self) -> &EnergyProfile {
        &self.profile
    }

    /// Useful data bits implied by `ops` (excludes ECC).
    pub fn data_bits(&self, ops: &OpCounts) -> u64 {
        ops.atoms() * self.atom_bytes * 8
    }

    /// Total energy of `ops` under `activity`.
    pub fn energy(&self, ops: &OpCounts, activity: DataActivity) -> EnergyBreakdown {
        let moved_bits = self.data_bits(ops) as f64 * self.ecc_factor;
        EnergyBreakdown {
            activation: self.profile.activation(self.activation_bytes) * ops.activates as f64,
            data_movement: Picojoules::new(
                self.profile.data_movement(activity.toggle_rate).value() * moved_bits,
            ),
            io: Picojoules::new(
                self.profile.io(activity.toggle_rate, activity.ones_density).value() * moved_bits,
            ),
        }
    }

    /// Convenience: energy per useful bit for `ops` under `activity`.
    pub fn energy_per_bit(&self, ops: &OpCounts, activity: DataActivity) -> EnergyPerBit {
        self.energy(ops, activity).per_bit(self.data_bits(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::config::DramKind;

    fn meter(kind: DramKind) -> EnergyMeter {
        EnergyMeter::new(&DramConfig::new(kind))
    }

    /// Figure 1b: an HBM2 access stream with ~3 atoms per activated row and
    /// application-typical activity lands near 3.92 pJ/b, dominated by data
    /// movement, then activation, then I/O.
    #[test]
    fn fig1b_hbm2_energy_shape() {
        let m = meter(DramKind::Hbm2);
        let ops = OpCounts { activates: 1000, read_atoms: 2950, write_atoms: 0 };
        let act = DataActivity { toggle_rate: 0.31, ones_density: 0.31 };
        let e = m.energy_per_bit(&ops, act);
        assert!((e.total().value() - 3.92).abs() < 0.15, "{e}");
        assert!((e.activation.value() - 1.21).abs() < 0.1, "{e}");
        assert!(e.data_movement > e.activation);
        assert!(e.io < e.activation);
    }

    #[test]
    fn budget_identity_total_is_sum() {
        let m = meter(DramKind::Fgdram);
        let ops = OpCounts { activates: 10, read_atoms: 50, write_atoms: 30 };
        let e = m.energy(&ops, DataActivity::default());
        let sum = e.activation + e.data_movement + e.io;
        assert_eq!(e.total(), sum);
        let pb = e.per_bit(m.data_bits(&ops));
        assert!(
            (pb.total().value() - (pb.activation + pb.data_movement + pb.io).value()).abs() < 1e-12
        );
    }

    #[test]
    fn zero_ops_zero_energy() {
        let m = meter(DramKind::QbHbm);
        let e = m.energy(&OpCounts::default(), DataActivity::default());
        assert_eq!(e.total(), Picojoules::ZERO);
        assert_eq!(m.data_bits(&OpCounts::default()), 0);
        assert_eq!(e.per_bit(0).total(), PjPerBit::ZERO);
    }

    #[test]
    fn ecc_adds_one_eighth_to_movement() {
        let cfg = DramConfig::new(DramKind::QbHbm);
        let with = EnergyMeter::new(&cfg).with_extra_ecc_bits();
        let without = EnergyMeter::new(&cfg);
        let ops = OpCounts { activates: 0, read_atoms: 8, write_atoms: 0 };
        let a = with.energy(&ops, DataActivity::default());
        let b = without.energy(&ops, DataActivity::default());
        let ratio = a.data_movement / b.data_movement;
        assert!((ratio - 1.125).abs() < 1e-9, "{ratio}");
    }

    /// Per-access energy comparison at equal locality: FGDRAM beats QB-HBM
    /// on both activation (smaller rows) and movement (shorter wires).
    #[test]
    fn fgdram_wins_per_bit_at_equal_locality() {
        let act = DataActivity { toggle_rate: 0.4, ones_density: 0.4 };
        // Two atoms used per activated row in both architectures.
        let qb = meter(DramKind::QbHbm)
            .energy_per_bit(&OpCounts { activates: 100, read_atoms: 200, write_atoms: 0 }, act);
        let fg = meter(DramKind::Fgdram)
            .energy_per_bit(&OpCounts { activates: 100, read_atoms: 200, write_atoms: 0 }, act);
        assert!(fg.activation.value() / qb.activation.value() < 0.3);
        assert!(fg.total().value() / qb.total().value() < 0.55, "qb={qb} fg={fg}");
    }

    #[test]
    fn merge_accumulates() {
        let m = meter(DramKind::QbHbm);
        let ops = OpCounts { activates: 1, read_atoms: 4, write_atoms: 4 };
        let e1 = m.energy(&ops, DataActivity::default());
        let mut acc = EnergyBreakdown::default();
        acc.merge(&e1);
        acc.merge(&e1);
        assert!((acc.total().value() - 2.0 * e1.total().value()).abs() < 1e-9);
    }

    #[test]
    fn display_reports_components() {
        let m = meter(DramKind::Fgdram);
        let ops = OpCounts { activates: 1, read_atoms: 8, write_atoms: 0 };
        let s = m.energy_per_bit(&ops, DataActivity::default()).to_string();
        assert!(s.contains("act"), "{s}");
        assert!(s.contains("pJ/b"), "{s}");
    }
}
