//! Block-level DRAM die area model (paper Section 5.3).
//!
//! Area is expressed relative to an HBM2 die (= 1.0). Each architecture
//! adds named component overheads; the totals reproduce the paper's
//! published percentages:
//!
//! * QB-HBM: +3.20% GSAs, +5.11% data routing, +0.26% decode = **+8.57%**
//! * FGDRAM: +3.20% GSAs, +3.41% control, +3.47% pseudobank structures,
//!   +0.28% decode = **+10.36%** (1.65% over QB-HBM)
//! * QB-HBM+SALP+SC: QB-HBM + 3.2% SALP/subchannel logic (1.54% over
//!   FGDRAM)
//! * Without TSV frequency scaling, both 4x parts need 4x the TSVs:
//!   QB-HBM grows to **+23.69%** and FGDRAM stays within **1.45%** of it.

use fgdram_model::config::DramKind;

/// One named area contribution, as a fraction of the HBM2 die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaComponent {
    /// Human-readable component name.
    pub name: &'static str,
    /// Additional area as a fraction of the HBM2 die (0.0320 = 3.20%).
    pub fraction: f64,
}

/// Area model for one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    kind: DramKind,
    components: Vec<AreaComponent>,
}

impl AreaModel {
    /// Model for `kind` assuming TSVs run at 4x today's data rate (the
    /// paper's primary assumption).
    pub fn for_kind(kind: DramKind) -> Self {
        let components = match kind {
            DramKind::Hbm2 => vec![],
            DramKind::QbHbm => vec![
                AreaComponent {
                    name: "global sense amplifiers (4x parallel banks)",
                    fraction: 0.0320,
                },
                AreaComponent { name: "bank-to-I/O data routing channels", fraction: 0.0511 },
                AreaComponent { name: "channel decode logic", fraction: 0.0026 },
            ],
            DramKind::QbHbmSalpSc => vec![
                AreaComponent {
                    name: "global sense amplifiers (4x parallel banks)",
                    fraction: 0.0320,
                },
                AreaComponent { name: "bank-to-I/O data routing channels", fraction: 0.0511 },
                AreaComponent { name: "channel decode logic", fraction: 0.0026 },
                AreaComponent {
                    name: "SALP row buffers + subchannel segmentation",
                    fraction: 0.0347,
                },
            ],
            DramKind::Fgdram => vec![
                AreaComponent {
                    name: "global sense amplifiers (4x parallel banks)",
                    fraction: 0.0320,
                },
                AreaComponent { name: "distributed grain control logic", fraction: 0.0341 },
                AreaComponent {
                    name: "pseudobank structures (LWD stripes, latches, control routing)",
                    fraction: 0.0347,
                },
                AreaComponent { name: "grain decode logic", fraction: 0.0028 },
            ],
        };
        AreaModel { kind, components }
    }

    /// Model assuming TSV data rates *cannot* scale, so 4x-bandwidth parts
    /// need 4x the TSVs (the paper's pessimistic sensitivity in 5.3).
    pub fn without_tsv_scaling(kind: DramKind) -> Self {
        let mut m = Self::for_kind(kind);
        match kind {
            DramKind::Hbm2 => {}
            DramKind::QbHbm | DramKind::QbHbmSalpSc => {
                // +23.69% total for QB-HBM: the extra TSV array area
                // replaces nothing, it adds to the 8.57%.
                m.components
                    .push(AreaComponent { name: "4x TSV arrays", fraction: 0.2369 - 0.0857 });
            }
            DramKind::Fgdram => {
                // FGDRAM ends up 1.45% larger than the no-scaling QB-HBM.
                let target = 1.2369 * 1.0145;
                let current: f64 = 1.0 + m.total_overhead();
                m.components.push(AreaComponent {
                    name: "4x TSV arrays (distributed strips)",
                    fraction: target - current,
                });
            }
        }
        m
    }

    /// Architecture modelled.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// The named components.
    pub fn components(&self) -> &[AreaComponent] {
        &self.components
    }

    /// Total overhead fraction vs. an HBM2 die.
    pub fn total_overhead(&self) -> f64 {
        self.components.iter().map(|c| c.fraction).sum()
    }

    /// Die area relative to HBM2 (1.0 + overhead).
    pub fn relative_area(&self) -> f64 {
        1.0 + self.total_overhead()
    }

    /// Area of this model relative to `other`.
    pub fn relative_to(&self, other: &AreaModel) -> f64 {
        self.relative_area() / other.relative_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(kind: DramKind) -> f64 {
        AreaModel::for_kind(kind).total_overhead() * 100.0
    }

    #[test]
    fn section53_published_overheads() {
        assert_eq!(pct(DramKind::Hbm2), 0.0);
        assert!((pct(DramKind::QbHbm) - 8.57).abs() < 0.01);
        assert!((pct(DramKind::Fgdram) - 10.36).abs() < 0.01);
    }

    #[test]
    fn fgdram_is_1_65pct_over_qb() {
        let qb = AreaModel::for_kind(DramKind::QbHbm);
        let fg = AreaModel::for_kind(DramKind::Fgdram);
        assert!(((fg.relative_to(&qb) - 1.0) * 100.0 - 1.65).abs() < 0.02);
    }

    #[test]
    fn salp_sc_is_3_2pct_over_qb_and_1_5pct_over_fgdram() {
        let qb = AreaModel::for_kind(DramKind::QbHbm);
        let sc = AreaModel::for_kind(DramKind::QbHbmSalpSc);
        let fg = AreaModel::for_kind(DramKind::Fgdram);
        assert!(((sc.relative_to(&qb) - 1.0) * 100.0 - 3.2).abs() < 0.05);
        assert!(((sc.relative_to(&fg) - 1.0) * 100.0 - 1.54).abs() < 0.05);
    }

    #[test]
    fn no_tsv_scaling_sensitivity() {
        let qb = AreaModel::without_tsv_scaling(DramKind::QbHbm);
        assert!((qb.total_overhead() * 100.0 - 23.69).abs() < 0.01);
        let fg = AreaModel::without_tsv_scaling(DramKind::Fgdram);
        assert!(((fg.relative_to(&qb) - 1.0) * 100.0 - 1.45).abs() < 0.02);
    }

    #[test]
    fn components_are_named_and_positive() {
        for kind in DramKind::ALL {
            for c in AreaModel::for_kind(kind).components() {
                assert!(!c.name.is_empty());
                assert!(c.fraction > 0.0, "{kind} {}", c.name);
            }
        }
    }
}
