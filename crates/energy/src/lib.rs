//! # fgdram-energy
//!
//! Energy and area models for the FGDRAM (MICRO 2017) reproduction:
//!
//! * [`floorplan`] — per-operation energies (activation, pre-GSA, post-GSA
//!   data movement, I/O) derived from wire lengths and capacitances,
//!   calibrated to the paper's Table 3;
//! * [`meter`] — turns simulator operation counts and workload data
//!   activity into the per-component breakdowns of Figures 1b, 8, 9, 11;
//! * [`area`] — block-level die area overheads of Section 5.3;
//! * [`budget`] — the Figure 1a power-budget analysis.
//!
//! ## Examples
//!
//! ```
//! use fgdram_energy::meter::{DataActivity, EnergyMeter, OpCounts};
//! use fgdram_model::config::{DramConfig, DramKind};
//!
//! // Two 32 B atoms used per 256 B activated row, typical toggle.
//! let meter = EnergyMeter::new(&DramConfig::new(DramKind::Fgdram));
//! let ops = OpCounts { activates: 100, read_atoms: 200, write_atoms: 0 };
//! let activity = DataActivity { toggle_rate: 0.31, ones_density: 0.31 };
//! let e = meter.energy_per_bit(&ops, activity);
//! // FGDRAM sits at the paper's ~2 pJ/b target even at low row locality;
//! // QB-HBM needs ~3.8 pJ/b for the same stream.
//! assert!(e.total().value() < 2.2, "{e}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod area;
pub mod budget;
pub mod floorplan;
pub mod meter;

pub use area::{AreaComponent, AreaModel};
pub use budget::{budget_curve, max_bandwidth, BudgetPoint, TechPoint};
pub use floorplan::{EnergyProfile, Floorplan, IoTechnology, WireModel};
pub use meter::{DataActivity, EnergyBreakdown, EnergyMeter, EnergyPerBit, OpCounts};
