//! Floorplan-derived per-operation DRAM energies (paper Section 4.2,
//! Table 3).
//!
//! The paper's model (Vogelsang/Rambus-based, 28 nm DRAM) computes energy
//! from the capacitance of every wire a bit traverses between the cell and
//! the GPU pin. The authors' exact floorplans are proprietary; this module
//! keeps the *mechanism* — segment lengths x capacitance/mm x V^2 x
//! switching activity — and fixes the segment lengths to the values that
//! reproduce the paper's published Table 3 outputs. The energies then feed
//! the simulator exactly as in the paper's flow.
//!
//! Components per access (Figure 2):
//! 1. row activation — cell/bitline charge, scales with activated bytes;
//! 2. pre-GSA movement — LDL/MDL traversal, data-*independent* because the
//!    datalines are precharged to a middle voltage before every transfer;
//! 3. post-GSA movement — GSA to TSV to base-layer PHY, scales with the
//!    data toggle rate;
//! 4. I/O — interposer signaling; toggle-dependent for HBM2's unterminated
//!    I/O, ones-density-dependent for the PODL termination of QB-HBM and
//!    FGDRAM, constant for GRS.

use fgdram_model::config::DramKind;
use fgdram_model::units::{Picojoules, PjPerBit};

/// I/O signaling technology (Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoTechnology {
    /// 1.2 V pseudo-open-drain (GDDR5-class), the paper's conservative
    /// baseline. Termination energy scales with ones density.
    #[default]
    Podl,
    /// Ground-referenced signaling: constant 0.54 pJ/b line energy but
    /// data-independent current and longer reach (enables organic packages).
    Grs,
}

/// Physical constants of the wire/energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// On-DRAM-die global wire capacitance (pF/mm).
    pub c_die_pf_per_mm: f64,
    /// Base-layer wire capacitance (pF/mm).
    pub c_base_pf_per_mm: f64,
    /// Per-TSV capacitance (pF), charged once per die hop.
    pub c_tsv_pf: f64,
    /// Average TSV hops in a 4-high stack.
    pub tsv_hops: f64,
    /// Activation energy per activated bit (pJ) — bitline + cell charge.
    pub act_pj_per_bit: f64,
    /// Pre-GSA (LDL+MDL) energy per bit per mm; full swing every bit.
    pub c_dataline_pf_per_mm: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            vdd: 1.2,
            c_die_pf_per_mm: 0.30,
            c_base_pf_per_mm: 0.20,
            c_tsv_pf: 0.050,
            tsv_hops: 2.5,
            act_pj_per_bit: 909.0 / 8192.0, // Table 3: 909 pJ / 1 KB row
            c_dataline_pf_per_mm: 0.35,
        }
    }
}

/// Per-architecture floorplan distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// LDL+MDL distance from sense amplifiers to the GSAs (mm).
    pub pre_gsa_mm: f64,
    /// Average on-die distance from GSAs to the TSV array (mm).
    pub die_route_mm: f64,
    /// Base-layer distance from TSV landing to the PHY (mm).
    pub base_route_mm: f64,
    /// Interposer I/O energy slope (pJ/bit at activity 1.0).
    pub io_pj_per_bit_full: f64,
    /// Whether I/O energy follows toggle rate (unterminated HBM2) or ones
    /// density (terminated PODL).
    pub io_tracks_toggle: bool,
}

impl Floorplan {
    /// The floorplan for one of the paper's architectures.
    ///
    /// Distances are calibrated so [`EnergyProfile`] reproduces Table 3:
    /// HBM2 banks sit up to a die-half from the central TSV stripe
    /// (~4.5 mm average route), QB-HBM shortens the shared bus (~3.8 mm),
    /// and an FGDRAM grain's GSAs sit next to its TSV strip (<1 mm).
    pub fn for_kind(kind: DramKind) -> Self {
        match kind {
            DramKind::Hbm2 => Floorplan {
                pre_gsa_mm: 3.00,
                die_route_mm: 4.50,
                base_route_mm: 0.80,
                io_pj_per_bit_full: 1.60,
                io_tracks_toggle: true,
            },
            DramKind::QbHbm | DramKind::QbHbmSalpSc => Floorplan {
                pre_gsa_mm: 3.00,
                die_route_mm: 3.80,
                base_route_mm: 0.80,
                io_pj_per_bit_full: 1.54,
                io_tracks_toggle: false,
            },
            DramKind::Fgdram => Floorplan {
                pre_gsa_mm: 1.95,
                die_route_mm: 0.92,
                base_route_mm: 0.80,
                io_pj_per_bit_full: 1.54,
                io_tracks_toggle: false,
            },
        }
    }
}

impl Floorplan {
    /// Section 3.6: the non-stacked FGDRAM die — no TSV hops, PHYs where
    /// the TSV strips were, same grain-local routing.
    pub fn fgdram_non_stacked() -> Self {
        Floorplan { base_route_mm: 0.3, ..Self::for_kind(DramKind::Fgdram) }
    }
}

/// Per-operation energies for one architecture, derived from a
/// [`WireModel`] and a [`Floorplan`].
///
/// # Examples
///
/// ```
/// use fgdram_energy::floorplan::EnergyProfile;
/// use fgdram_model::config::DramKind;
///
/// let fg = EnergyProfile::for_kind(DramKind::Fgdram);
/// // Table 3: 227 pJ per 256 B activation.
/// assert!((fg.activation(256).value() - 227.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyProfile {
    kind: DramKind,
    io_tech: IoTechnology,
    act_pj_per_bit: f64,
    pre_gsa_pj_per_bit: f64,
    post_gsa_pj_per_bit_full: f64,
    io_pj_per_bit_full: f64,
    io_tracks_toggle: bool,
}

impl EnergyProfile {
    /// Profile for `kind` with the default wire model and PODL I/O.
    pub fn for_kind(kind: DramKind) -> Self {
        Self::new(kind, &WireModel::default(), Floorplan::for_kind(kind), IoTechnology::Podl)
    }

    /// Section 3.6: the non-stacked FGDRAM die (no TSV traversal).
    pub fn fgdram_non_stacked() -> Self {
        let wire = WireModel { tsv_hops: 0.0, ..WireModel::default() };
        Self::new(DramKind::Fgdram, &wire, Floorplan::fgdram_non_stacked(), IoTechnology::Podl)
    }

    /// Profile with explicit physics, floorplan, and I/O technology.
    pub fn new(kind: DramKind, wire: &WireModel, plan: Floorplan, io_tech: IoTechnology) -> Self {
        let v2 = wire.vdd * wire.vdd;
        let post_full = (plan.die_route_mm * wire.c_die_pf_per_mm
            + wire.tsv_hops * wire.c_tsv_pf
            + plan.base_route_mm * wire.c_base_pf_per_mm)
            * v2;
        EnergyProfile {
            kind,
            io_tech,
            act_pj_per_bit: wire.act_pj_per_bit,
            pre_gsa_pj_per_bit: plan.pre_gsa_mm * wire.c_dataline_pf_per_mm * v2,
            post_gsa_pj_per_bit_full: post_full,
            io_pj_per_bit_full: plan.io_pj_per_bit_full,
            io_tracks_toggle: plan.io_tracks_toggle,
        }
    }

    /// Architecture this profile describes.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// I/O technology in effect.
    pub fn io_technology(&self) -> IoTechnology {
        self.io_tech
    }

    /// Returns a copy of this profile using GRS I/O (Section 3.5).
    pub fn with_grs(mut self) -> Self {
        self.io_tech = IoTechnology::Grs;
        self
    }

    /// Energy of one row activation of `row_bytes` (precharge + activate).
    pub fn activation(&self, row_bytes: u64) -> Picojoules {
        Picojoules::new(self.act_pj_per_bit * (row_bytes * 8) as f64)
    }

    /// Pre-GSA dataline energy per transferred bit (data-independent).
    pub fn pre_gsa(&self) -> PjPerBit {
        PjPerBit::new(self.pre_gsa_pj_per_bit)
    }

    /// Post-GSA movement energy per bit at `toggle_rate` (0..=1).
    pub fn post_gsa(&self, toggle_rate: f64) -> PjPerBit {
        PjPerBit::new(self.post_gsa_pj_per_bit_full * toggle_rate.clamp(0.0, 1.0))
    }

    /// I/O energy per bit given the stream's toggle rate and ones density.
    pub fn io(&self, toggle_rate: f64, ones_density: f64) -> PjPerBit {
        match self.io_tech {
            IoTechnology::Grs => PjPerBit::new(0.54),
            IoTechnology::Podl => {
                let activity = if self.io_tracks_toggle { toggle_rate } else { ones_density };
                PjPerBit::new(self.io_pj_per_bit_full * activity.clamp(0.0, 1.0))
            }
        }
    }

    /// Total data-movement energy per bit (pre-GSA + post-GSA) at
    /// `toggle_rate`.
    pub fn data_movement(&self, toggle_rate: f64) -> PjPerBit {
        self.pre_gsa() + self.post_gsa(toggle_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn near(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    /// Table 3, column by column, at the paper's 50% activity.
    #[test]
    fn table3_reproduced() {
        let hbm2 = EnergyProfile::for_kind(DramKind::Hbm2);
        assert!(near(hbm2.activation(1024).value(), 909.0, 1.0));
        assert!(near(hbm2.pre_gsa().value(), 1.51, 0.01), "{}", hbm2.pre_gsa());
        assert!(near(hbm2.post_gsa(0.5).value(), 1.17, 0.01), "{}", hbm2.post_gsa(0.5));
        assert!(near(hbm2.io(0.5, 0.5).value(), 0.80, 0.01));

        let qb = EnergyProfile::for_kind(DramKind::QbHbm);
        assert!(near(qb.activation(1024).value(), 909.0, 1.0));
        assert!(near(qb.pre_gsa().value(), 1.51, 0.01));
        assert!(near(qb.post_gsa(0.5).value(), 1.02, 0.01), "{}", qb.post_gsa(0.5));
        assert!(near(qb.io(0.5, 0.5).value(), 0.77, 0.01));

        let fg = EnergyProfile::for_kind(DramKind::Fgdram);
        assert!(near(fg.activation(256).value(), 227.0, 1.0));
        assert!(near(fg.pre_gsa().value(), 0.98, 0.01), "{}", fg.pre_gsa());
        assert!(near(fg.post_gsa(0.5).value(), 0.40, 0.01), "{}", fg.post_gsa(0.5));
        assert!(near(fg.io(0.5, 0.5).value(), 0.77, 0.01));
    }

    #[test]
    fn non_stacked_die_moves_data_even_less() {
        // No TSV hops and shorter PHY routing: post-GSA drops below the
        // stacked grain's.
        let stacked = EnergyProfile::for_kind(DramKind::Fgdram);
        let flat = EnergyProfile::fgdram_non_stacked();
        assert!(flat.post_gsa(0.5) < stacked.post_gsa(0.5));
        assert_eq!(flat.pre_gsa(), stacked.pre_gsa());
        assert_eq!(flat.activation(256), stacked.activation(256));
    }

    #[test]
    fn activation_scales_linearly_with_row_size() {
        let qb = EnergyProfile::for_kind(DramKind::QbHbm);
        let full = qb.activation(1024).value();
        let half = qb.activation(512).value();
        assert!(near(full / half, 2.0, 1e-9));
    }

    #[test]
    fn pre_gsa_is_data_independent_post_gsa_is_not() {
        let fg = EnergyProfile::for_kind(DramKind::Fgdram);
        assert_eq!(fg.pre_gsa(), fg.pre_gsa());
        assert!(fg.post_gsa(0.1) < fg.post_gsa(0.9));
        assert_eq!(fg.post_gsa(0.0).value(), 0.0);
    }

    #[test]
    fn grs_io_is_constant_and_slightly_higher_than_typical_podl() {
        // Section 5.1: GRS would raise I/O from 0.43 to 0.54 pJ/bit at
        // application activity (~28% ones density).
        let podl = EnergyProfile::for_kind(DramKind::Fgdram);
        assert!(near(podl.io(0.28, 0.28).value(), 0.43, 0.01));
        let grs = podl.with_grs();
        assert!(near(grs.io(0.28, 0.28).value(), 0.54, 1e-9));
        assert_eq!(grs.io(0.9, 0.9), grs.io(0.1, 0.1));
        assert_eq!(grs.io_technology(), IoTechnology::Grs);
    }

    #[test]
    fn hbm2_io_tracks_toggle_podl_tracks_ones() {
        let hbm2 = EnergyProfile::for_kind(DramKind::Hbm2);
        assert!(hbm2.io(0.8, 0.1) > hbm2.io(0.2, 0.9));
        let qb = EnergyProfile::for_kind(DramKind::QbHbm);
        assert!(qb.io(0.1, 0.8) > qb.io(0.9, 0.2));
    }

    #[test]
    fn fgdram_halves_data_movement_vs_qb() {
        // Section 5.1: FGDRAM reduces average data movement energy ~48%.
        let qb = EnergyProfile::for_kind(DramKind::QbHbm);
        let fg = EnergyProfile::for_kind(DramKind::Fgdram);
        let ratio = fg.data_movement(0.5) / qb.data_movement(0.5);
        assert!(ratio > 0.45 && ratio < 0.62, "ratio {ratio}");
    }

    #[test]
    fn salp_sc_shares_qb_movement_energy() {
        // The enhanced baseline reduces activation granularity but not
        // data movement (Section 5.4).
        let qb = EnergyProfile::for_kind(DramKind::QbHbm);
        let sc = EnergyProfile::for_kind(DramKind::QbHbmSalpSc);
        assert_eq!(qb.data_movement(0.5), sc.data_movement(0.5));
        assert!(near(sc.activation(256).value(), 227.0, 1.0));
    }
}
