//! # fgdram-bench
//!
//! Benchmark harness for the FGDRAM reproduction.
//!
//! * `benches/` — one Criterion bench per paper table/figure. Each bench
//!   prints a reduced-scale rendition of its table/figure once, then
//!   measures the simulator work that produces it.
//! The `regen-experiments` binary that rewrites `EXPERIMENTS.md` lives in
//! the root package (registry-free, runs offline).

#![forbid(unsafe_code)]

use fgdram_core::report::SimReport;
use fgdram_core::system::SystemBuilder;
use fgdram_model::config::{DramConfig, DramKind};
use fgdram_model::units::Ns;
use fgdram_workloads::{suites, Workload};

/// Tiny simulation used inside Criterion measurement loops: long enough to
/// exercise every code path, short enough to iterate.
pub fn tiny_sim(kind: DramKind, workload: &Workload) -> SimReport {
    sim_with(kind, workload, 2_000, 6_000)
}

/// Simulation at explicit warm-up/window.
pub fn sim_with(kind: DramKind, workload: &Workload, warmup: Ns, window: Ns) -> SimReport {
    SystemBuilder::new(kind)
        .workload(workload.clone())
        .run(warmup, window)
        .expect("simulation runs")
}

/// Simulation with a custom DRAM config (ablations).
pub fn sim_with_config(cfg: DramConfig, workload: &Workload, warmup: Ns, window: Ns) -> SimReport {
    SystemBuilder::new(cfg.kind)
        .dram_config(cfg)
        .workload(workload.clone())
        .run(warmup, window)
        .expect("simulation runs")
}

/// Looks up a workload that must exist.
pub fn workload(name: &str) -> Workload {
    suites::by_name(name).expect("workload in suite")
}
