//! # fgdram-bench
//!
//! Benchmark harness for the FGDRAM reproduction.
//!
//! * `benches/` — one Criterion bench per paper table/figure. Each bench
//!   prints a reduced-scale rendition of its table/figure once, then
//!   measures the simulator work that produces it.
//! The `regen-experiments` binary that rewrites `EXPERIMENTS.md` lives in
//! the root package (registry-free, runs offline).

#![forbid(unsafe_code)]

use fgdram_core::report::SimReport;
use fgdram_core::system::SystemBuilder;
use fgdram_core::SimError;
use fgdram_model::config::{DramConfig, DramKind};
use fgdram_model::units::Ns;
use fgdram_workloads::{suites, Workload};

/// Tiny simulation used inside Criterion measurement loops: long enough to
/// exercise every code path, short enough to iterate.
///
/// # Errors
///
/// Propagates any [`SimError`] instead of panicking, so a bench harness
/// can report a typed failure (and a misconfigured ablation doesn't take
/// the whole Criterion session down with an opaque `expect`).
pub fn tiny_sim(kind: DramKind, workload: &Workload) -> Result<SimReport, SimError> {
    sim_with(kind, workload, 2_000, 6_000)
}

/// Simulation at explicit warm-up/window.
///
/// # Errors
///
/// Propagates any [`SimError`] from the run.
pub fn sim_with(
    kind: DramKind,
    workload: &Workload,
    warmup: Ns,
    window: Ns,
) -> Result<SimReport, SimError> {
    SystemBuilder::new(kind).workload(workload.clone()).run(warmup, window)
}

/// Simulation with a custom DRAM config (ablations).
///
/// # Errors
///
/// Propagates any [`SimError`] from the run (invalid ablation geometry
/// surfaces as [`SimError::Config`]).
pub fn sim_with_config(
    cfg: DramConfig,
    workload: &Workload,
    warmup: Ns,
    window: Ns,
) -> Result<SimReport, SimError> {
    SystemBuilder::new(cfg.kind).dram_config(cfg).workload(workload.clone()).run(warmup, window)
}

/// Looks up a workload by suite name.
///
/// # Errors
///
/// [`SimError::Io`] when `name` is not in any suite.
pub fn workload(name: &str) -> Result<Workload, SimError> {
    suites::by_name(name).ok_or_else(|| SimError::Io {
        context: format!("workload {name} not in any suite"),
        source: std::io::Error::other("unknown workload"),
    })
}
