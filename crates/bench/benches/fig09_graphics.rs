//! Figure 9: DRAM energy of the graphics suite on QB-HBM vs FGDRAM.
//! Prints a quick subset once, then benches one tiled-workload simulation
//! per architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments::{self, Scale};
use fgdram_model::config::DramKind;
use std::hint::black_box;

fn print_quick_subset() {
    let kinds = [DramKind::QbHbm, DramKind::Fgdram];
    let matrix = experiments::graphics_matrix(&kinds, Scale::quick()).expect("matrix runs");
    println!("\nFigure 9 (quick subset) — graphics energy per bit:");
    for row in &matrix {
        let qb = row.report(DramKind::QbHbm);
        let fg = row.report(DramKind::Fgdram);
        println!(
            "  {:<8} QB {:>5.2} pJ/b -> FG {:>5.2} pJ/b ({:>4.0}%), speedup {:.2}x",
            row.workload.name,
            qb.energy_per_bit.total().value(),
            fg.energy_per_bit.total().value(),
            100.0 * fg.energy_per_bit.total().value() / qb.energy_per_bit.total().value(),
            fg.speedup_over(qb),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_quick_subset();
    let mut g = c.benchmark_group("fig09_graphics");
    g.sample_size(10);
    for kind in [DramKind::QbHbm, DramKind::Fgdram] {
        g.bench_function(format!("gfx00_tiny_{}", kind.label()), |b| {
            let w = fgdram_bench::workload("gfx00").expect("workload in suite");
            b.iter(|| black_box(fgdram_bench::tiny_sim(kind, &w).expect("sim runs")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
