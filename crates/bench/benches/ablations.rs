//! Section 2.2 / 2.3 ablations: the 128 B-atom prefetch alternative (hurts
//! graphics) and the deep-bank-group alternative (hurts everything).
//! Prints quick-scale deltas once, then benches the ablated stacks.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments::{self, Scale};
use fgdram_model::config::DramConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let atom = experiments::ablation_atom128(Scale::quick()).expect("ablation runs");
    println!("\nSection 2.2 (quick) — 128 B atom graphics slowdown: {:.1}%", atom * 100.0);
    let deep = experiments::ablation_deep_bank_groups(Scale::quick()).expect("ablation runs");
    println!("Section 2.3 (quick) — deep bank-group slowdown: {:.1}%", deep * 100.0);

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("atom128_gfx_tiny", |b| {
        let w = fgdram_bench::workload("gfx00").expect("workload in suite");
        b.iter(|| {
            black_box(
                fgdram_bench::sim_with_config(DramConfig::qb_hbm_atom128(), &w, 2_000, 6_000)
                    .expect("sim runs"),
            )
        });
    });
    g.bench_function("deep_bankgroups_stream_tiny", |b| {
        let w = fgdram_bench::workload("STREAM").expect("workload in suite");
        b.iter(|| {
            black_box(
                fgdram_bench::sim_with_config(
                    DramConfig::qb_hbm_deep_bank_groups(),
                    &w,
                    2_000,
                    6_000,
                )
                .expect("sim runs"),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
