//! Tables 2 and 3 and the Section 5.3 area table, rendered from the
//! models, plus benches of their construction.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments;
use std::hint::black_box;

fn print_tables() {
    println!("\nTable 2 — DRAM configurations (HBM2 / QB-HBM / FGDRAM):");
    for row in experiments::table2() {
        println!(
            "  {:<28} {:>10} {:>10} {:>14}",
            row.name, row.values[0], row.values[1], row.values[2]
        );
    }
    println!("\nTable 3 — DRAM energy (HBM2 / QB-HBM / FGDRAM):");
    for row in experiments::table3() {
        println!(
            "  {:<36} {:>8.2} {:>8.2} {:>8.2}",
            row.name, row.values[0], row.values[1], row.values[2]
        );
    }
    println!("\nSection 5.3 — die area vs HBM2:");
    for (kind, total, comps) in experiments::area_table() {
        println!("  {:<16} +{:.2}%", kind.label(), total * 100.0);
        for (name, frac) in comps {
            println!("     {:<58} +{:.2}%", name, frac * 100.0);
        }
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    c.bench_function("table2_render", |b| b.iter(|| black_box(experiments::table2())));
    c.bench_function("table3_render", |b| b.iter(|| black_box(experiments::table3())));
    c.bench_function("area_model", |b| b.iter(|| black_box(experiments::area_table())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
