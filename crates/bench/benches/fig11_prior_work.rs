//! Figure 11 / Section 5.4: FGDRAM vs the enhanced prior-work baseline
//! QB-HBM+SALP+SC — average energy per component and near-identical
//! performance. Prints a quick subset once, then benches the SALP+SC
//! stack simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments::{self, Scale};
use fgdram_model::config::DramKind;
use std::hint::black_box;

fn print_quick_subset() {
    let kinds = [DramKind::QbHbm, DramKind::QbHbmSalpSc, DramKind::Fgdram];
    let matrix = experiments::compute_matrix(&kinds, Scale::quick()).expect("matrix runs");
    println!("\nFigure 11 (quick subset) — average energy per bit:");
    for kind in kinds {
        let mut acc = [0.0; 3];
        for row in &matrix {
            let e = row.report(kind).energy_per_bit;
            acc[0] += e.activation.value();
            acc[1] += e.data_movement.value();
            acc[2] += e.io.value();
        }
        let n = matrix.len() as f64;
        println!(
            "  {:<16} act {:>5.2} + move {:>5.2} + io {:>5.2} = {:>5.2} pJ/b",
            kind.label(),
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            (acc[0] + acc[1] + acc[2]) / n
        );
    }
    let perf = experiments::summarise(&matrix, DramKind::Fgdram, DramKind::QbHbmSalpSc);
    println!("  SALP+SC performance vs FGDRAM: {:+.1}%", (perf.gmean_speedup - 1.0) * 100.0);
}

fn bench(c: &mut Criterion) {
    print_quick_subset();
    let mut g = c.benchmark_group("fig11_salp_sc");
    g.sample_size(10);
    g.bench_function("salp_sc_gups_tiny", |b| {
        let w = fgdram_bench::workload("GUPS").expect("workload in suite");
        b.iter(|| black_box(fgdram_bench::tiny_sim(DramKind::QbHbmSalpSc, &w).expect("sim runs")));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
