//! Figure 4: overlapping multi-cycle accesses among bank groups. Prints
//! the reproduced command/data timeline once, then benches the channel's
//! column-scheduling hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_dram::DramDevice;
use fgdram_model::addr::ReqId;
use fgdram_model::cmd::{BankRef, DramCommand};
use fgdram_model::config::{DramConfig, DramKind};
use std::hint::black_box;

/// Reproduces Figure 4's schedule: two banks in different groups, columns
/// tCCDS apart, gapless data; same-group columns tCCDL apart.
fn fig4_timeline() -> Vec<(String, u64, u64)> {
    let mut dev = DramDevice::new(DramConfig::new(DramKind::QbHbm));
    let a = BankRef { channel: 0, bank: 0 };
    let b = BankRef { channel: 0, bank: 1 }; // different group
    dev.issue(DramCommand::Activate { bank: a, row: 1, slice: 0 }, 0).unwrap();
    dev.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 2).unwrap();
    let mut rows = Vec::new();
    let mut issue = |dev: &mut DramDevice, bank, label: &str, col| {
        let cmd = DramCommand::Read { bank, row: 1, col, auto_precharge: false, req: ReqId(0) };
        let t = dev.earliest(&cmd, 0).unwrap();
        let done = dev.issue(cmd, t).unwrap().unwrap();
        rows.push((label.to_string(), t, done.at));
    };
    issue(&mut dev, a, "RD bank A (group 0)", 0);
    issue(&mut dev, b, "RD bank B (group 1)", 0);
    issue(&mut dev, a, "RD bank A (group 0)", 1);
    issue(&mut dev, b, "RD bank B (group 1)", 1);
    rows
}

fn bench(c: &mut Criterion) {
    println!("\nFigure 4 — bank-group overlap on one QB-HBM channel:");
    let rows = fig4_timeline();
    for (label, cmd_at, data_end) in &rows {
        println!("  {label:<22} cmd @ {cmd_at:>2} ns, data ends {data_end:>2} ns");
    }
    // Verify the figure's contract: alternate-group commands tCCDS=2 apart,
    // same-group tCCDL=4 apart, data bus gapless.
    assert_eq!(rows[1].1 - rows[0].1, 2, "tCCDS between groups");
    assert_eq!(rows[2].1 - rows[0].1, 4, "tCCDL within a group");
    assert_eq!(rows[1].2 - rows[0].2, 2, "gapless data");

    c.bench_function("fig04_bankgroup_schedule", |b| b.iter(|| black_box(fig4_timeline())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
