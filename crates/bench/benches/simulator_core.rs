//! Library microbenchmarks: the hot paths every experiment leans on
//! (address decode, device command issue, checker replay, stream
//! generation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fgdram_dram::{DramDevice, ProtocolChecker};
use fgdram_model::addr::{AddressMapper, PhysAddr, ReqId};
use fgdram_model::cmd::{BankRef, DramCommand};
use fgdram_model::config::{DramConfig, DramKind};
use fgdram_model::stream::WarpInstruction;
use fgdram_workloads::suites;
use std::hint::black_box;

fn bench_mapper(c: &mut Criterion) {
    let mut g = c.benchmark_group("address_mapper");
    for kind in [DramKind::QbHbm, DramKind::Fgdram] {
        let cfg = DramConfig::new(kind);
        let m = AddressMapper::new(&cfg).unwrap();
        g.throughput(Throughput::Elements(1024));
        g.bench_function(format!("decode_{}", kind.label()), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..1024u64 {
                    acc ^= m.decode(PhysAddr(i * 4097 * 32)).channel;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

/// A row open/stream/close cycle on one bank, the device's hot path.
fn bench_device_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_issue");
    for kind in [DramKind::QbHbm, DramKind::Fgdram] {
        g.bench_function(format!("row_cycle_{}", kind.label()), |b| {
            b.iter_with_setup(
                || DramDevice::new(DramConfig::new(kind)),
                |mut dev| {
                    let bank = BankRef { channel: 0, bank: 0 };
                    let mut now = 0;
                    for row in 0..64u32 {
                        let act = DramCommand::Activate { bank, row, slice: 0 };
                        now = dev.earliest(&act, now).unwrap();
                        dev.issue(act, now).unwrap();
                        for col in 0..4 {
                            let rd = DramCommand::Read {
                                bank,
                                row,
                                col,
                                auto_precharge: col == 3,
                                req: ReqId(0),
                            };
                            now = dev.earliest(&rd, now).unwrap();
                            dev.issue(rd, now).unwrap();
                        }
                    }
                    black_box(dev.total_counters().read_atoms)
                },
            )
        });
    }
    g.finish();
}

fn bench_checker(c: &mut Criterion) {
    // Record a trace once, then bench replay.
    let cfg = DramConfig::new(DramKind::QbHbm);
    let mut dev = DramDevice::new(cfg.clone());
    dev.enable_trace();
    let mut now = 0;
    for row in 0..256u32 {
        let bank = BankRef { channel: row % 64, bank: row % 4 };
        let act = DramCommand::Activate { bank, row, slice: 0 };
        now = dev.earliest(&act, now).unwrap();
        dev.issue(act, now).unwrap();
        let rd = DramCommand::Read { bank, row, col: 0, auto_precharge: true, req: ReqId(0) };
        now = dev.earliest(&rd, now).unwrap();
        dev.issue(rd, now).unwrap();
    }
    let trace = dev.take_trace();
    let mut g = c.benchmark_group("protocol_checker");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("replay", |b| {
        b.iter(|| {
            let mut checker = ProtocolChecker::new(cfg.clone());
            checker.check_trace(black_box(&trace)).unwrap();
        })
    });
    g.finish();
}

fn bench_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_streams");
    for name in ["GUPS", "STREAM", "gfx00"] {
        let w = suites::by_name(name).unwrap();
        g.bench_function(format!("generate_{name}"), |b| {
            let mut s = w.stream_for_warp(7, 3840);
            let mut buf = WarpInstruction::default();
            b.iter(|| {
                buf.clear();
                s.fill_next(&mut buf);
                black_box(buf.sectors.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mapper, bench_device_issue, bench_checker, bench_streams);
criterion_main!(benches);
