//! Figures 8 and 10: per-workload energy and performance of FGDRAM vs the
//! iso-bandwidth QB-HBM baseline over the compute suite. Prints a
//! quick-scale subset once (full fidelity lives in `regen-experiments`),
//! then benches one end-to-end simulation per architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments::{self, Scale};
use fgdram_model::config::DramKind;
use std::hint::black_box;

fn print_quick_subset() {
    let kinds = [DramKind::QbHbm, DramKind::Fgdram];
    let matrix = experiments::compute_matrix(&kinds, Scale::quick()).expect("matrix runs");
    println!("\nFigures 8 + 10 (quick subset) — energy and speedup vs QB-HBM:");
    println!(
        "  {:<14} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "workload", "QB pJ/b", "FG pJ/b", "speedup", "QB util", "FG util"
    );
    for row in &matrix {
        let qb = row.report(DramKind::QbHbm);
        let fg = row.report(DramKind::Fgdram);
        println!(
            "  {:<14} {:>10.2} {:>10.2} {:>8.2}x {:>7.1}% {:>7.1}%",
            row.workload.name,
            qb.energy_per_bit.total().value(),
            fg.energy_per_bit.total().value(),
            fg.speedup_over(qb),
            qb.utilisation * 100.0,
            fg.utilisation * 100.0,
        );
    }
    let s = experiments::summarise(&matrix, DramKind::QbHbm, DramKind::Fgdram);
    println!(
        "  subset gmean speedup {:.2}x, energy {:.2} -> {:.2} pJ/b",
        s.gmean_speedup, s.base_energy, s.other_energy
    );
}

fn bench(c: &mut Criterion) {
    print_quick_subset();
    let mut g = c.benchmark_group("fig08_fig10");
    g.sample_size(10);
    for kind in [DramKind::QbHbm, DramKind::Fgdram] {
        g.bench_function(format!("gups_tiny_{}", kind.label()), |b| {
            let w = fgdram_bench::workload("GUPS").expect("workload in suite");
            b.iter(|| black_box(fgdram_bench::tiny_sim(kind, &w).expect("sim runs")));
        });
        g.bench_function(format!("stream_tiny_{}", kind.label()), |b| {
            let w = fgdram_bench::workload("STREAM").expect("workload in suite");
            b.iter(|| black_box(fgdram_bench::tiny_sim(kind, &w).expect("sim runs")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
