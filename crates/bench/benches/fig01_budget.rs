//! Figure 1a/1b: the DRAM power-budget analysis and the HBM2 energy
//! breakdown. Prints the reproduced series once, then benches the
//! analytic model and a small HBM2 simulation slice.

use criterion::{criterion_group, criterion_main, Criterion};
use fgdram_core::experiments::{self, Scale};
use fgdram_model::config::DramKind;
use std::hint::black_box;

fn print_fig1a() {
    let (curve, techs) = experiments::fig1a();
    println!("\nFigure 1a — max DRAM energy within 60 W:");
    for p in &curve {
        println!("  {:7.0} GB/s -> {:5.2} pJ/b", p.bandwidth.value(), p.max_energy.value());
    }
    for t in &techs {
        println!("  {:<12} {:5.2} pJ/b", t.name, t.energy.value());
    }
}

fn print_fig1b() {
    let e = experiments::fig1b(Scale::quick()).expect("fig1b runs");
    println!("\nFigure 1b — HBM2 access energy breakdown (quick scale): {e}");
}

fn bench(c: &mut Criterion) {
    print_fig1a();
    print_fig1b();
    c.bench_function("fig01a_budget_curve", |b| b.iter(|| black_box(experiments::fig1a())));
    let mut g = c.benchmark_group("fig01b_hbm2_sim");
    g.sample_size(10);
    g.bench_function("hbm2_gups_tiny", |b| {
        let w = fgdram_bench::workload("GUPS").expect("workload in suite");
        b.iter(|| black_box(fgdram_bench::tiny_sim(DramKind::Hbm2, &w).expect("sim runs")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
