//! Lightweight statistics primitives used throughout the simulator.

use crate::units::Ns;

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        core::mem::take(&mut self.0)
    }
}

impl core::fmt::Display for Counter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.0.fmt(f)
    }
}

/// Streaming mean over `u64` samples (e.g. latencies in ns).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanStat {
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl MeanStat {
    /// New empty accumulator.
    pub const fn new() -> Self {
        MeanStat { count: 0, sum: 0, max: 0, min: u64::MAX }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
        self.min = self.min.min(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact, u128 to avoid overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

/// Power-of-two bucketed histogram (bucket 0 holds zero; bucket `i` holds
/// values in `[2^(i-1), 2^i)`).
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    stat: MeanStat,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Log2Histogram { buckets: [0; 64], stat: MeanStat::new() }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let b = 64 - sample.leading_zeros() as usize; // 0 -> bucket 0
        self.buckets[b.min(63)] += 1;
        self.stat.record(sample);
    }

    /// Underlying mean/min/max accumulator.
    pub fn stat(&self) -> &MeanStat {
        &self.stat
    }

    /// Raw bucket counts (bucket 0 holds zero; bucket `i` holds values in
    /// `[2^(i-1), 2^i)`). Exposed for per-epoch delta sampling: bucket
    /// counts are cumulative counters, so subtracting two snapshots yields
    /// the distribution of the interval between them.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Merges another histogram into this one (bucket-wise addition plus
    /// the underlying [`MeanStat`] merge). Used for per-epoch and
    /// cross-channel aggregation.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.stat.merge(&other.stat);
    }

    /// Value below which `q` (0..=1) of the samples fall, estimated at
    /// bucket resolution (upper bucket edge). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.stat.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.stat.max()
    }

    /// Iterates (bucket upper edge, count) over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << i }, c))
    }
}

/// Tracks an interval-averaged utilisation: busy time over a window.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusyTracker {
    busy_until: Ns,
    busy_total: Ns,
}

impl BusyTracker {
    /// New idle tracker.
    pub const fn new() -> Self {
        BusyTracker { busy_until: 0, busy_total: 0 }
    }

    /// Marks the resource busy for `[from, from + dur)`, accumulating only
    /// non-overlapping busy time (back-to-back bursts count once).
    pub fn occupy(&mut self, from: Ns, dur: Ns) {
        let start = from.max(self.busy_until);
        let end = from + dur;
        if end > start {
            self.busy_total += end - start;
        }
        self.busy_until = self.busy_until.max(end);
    }

    /// Time this resource is busy through (exclusive).
    pub fn busy_until(&self) -> Ns {
        self.busy_until
    }

    /// Total accumulated busy time.
    pub fn busy_total(&self) -> Ns {
        self.busy_total
    }

    /// Utilisation over `[0, window)`.
    pub fn utilisation(&self, window: Ns) -> f64 {
        if window == 0 {
            0.0
        } else {
            self.busy_total.min(window) as f64 / window as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn mean_stat() {
        let mut m = MeanStat::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), 0);
        for v in [10, 20, 30] {
            m.record(v);
        }
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), 20.0);
        assert_eq!(m.max(), 30);
        assert_eq!(m.min(), 10);
        let mut o = MeanStat::new();
        o.record(100);
        m.merge(&o);
        assert_eq!(m.count(), 4);
        assert_eq!(m.max(), 100);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.stat().count(), 7);
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 1000);
        let med = h.quantile(0.5);
        assert!((2..=8).contains(&med), "median bucket edge {med}");
        let buckets: Vec<_> = h.iter().collect();
        assert!(!buckets.is_empty());
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn mean_stat_merge_empty_and_one_sided() {
        // Empty into empty: still empty, and min()/max() stay well-defined.
        let mut a = MeanStat::new();
        a.merge(&MeanStat::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!((a.min(), a.max()), (0, 0));
        // Non-empty into empty adopts the other side verbatim.
        let mut filled = MeanStat::new();
        for v in [5, 15] {
            filled.record(v);
        }
        a.merge(&filled);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 10.0);
        assert_eq!((a.min(), a.max()), (5, 15));
        assert_eq!(a.sum(), 20);
        // Empty into non-empty changes nothing.
        a.merge(&MeanStat::new());
        assert_eq!(a.count(), 2);
        assert_eq!((a.min(), a.max()), (5, 15));
    }

    #[test]
    fn histogram_merge_empty_and_one_sided() {
        // Empty into empty.
        let mut a = Log2Histogram::new();
        a.merge(&Log2Histogram::new());
        assert_eq!(a.stat().count(), 0);
        assert_eq!(a.quantile(0.5), 0);
        // Non-empty into empty adopts the distribution.
        let mut b = Log2Histogram::new();
        for v in [1u64, 2, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.stat().count(), 3);
        assert_eq!(a.stat().max(), 1000);
        assert_eq!(a.buckets(), b.buckets());
        // Empty into non-empty changes nothing.
        a.merge(&Log2Histogram::new());
        assert_eq!(a.stat().count(), 3);
        // Two-sided: bucket counts add.
        a.merge(&b);
        assert_eq!(a.stat().count(), 6);
        assert_eq!(a.iter().map(|(_, c)| c).sum::<u64>(), 6);
        assert_eq!(a.stat().sum(), 2 * (1 + 2 + 1000));
    }

    #[test]
    fn busy_tracker_non_overlapping() {
        let mut b = BusyTracker::new();
        b.occupy(0, 10);
        b.occupy(5, 10); // overlaps 5 ns
        assert_eq!(b.busy_total(), 15);
        assert_eq!(b.busy_until(), 15);
        b.occupy(20, 5);
        assert_eq!(b.busy_total(), 20);
        assert_eq!(b.utilisation(25), 0.8);
        assert_eq!(BusyTracker::new().utilisation(0), 0.0);
    }
}
