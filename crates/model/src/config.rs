//! Device, controller, and GPU configurations.
//!
//! [`DramConfig`] encodes the paper's Table 2 for the three evaluated stacks
//! (HBM2, QB-HBM, FGDRAM) plus the enhanced prior-work baseline
//! (QB-HBM + SALP + subchannels) from Section 5.4, and exposes the ablation
//! knobs used in Sections 2.2 and 2.3 (atom size, deep bank grouping).

use crate::units::{GbPerSec, Ns, GIB};

/// Which DRAM stack architecture a configuration models.
///
/// These are the four architectures compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// Contemporary High Bandwidth Memory 2, 16 pseudochannels per stack,
    /// 256 GB/s (the paper's Section 2 reference point).
    Hbm2,
    /// "Quad-bandwidth HBM": the evolutionary 4x baseline with 64 channels
    /// of 4 banks each, 1 TB/s (Section 2.4).
    QbHbm,
    /// QB-HBM enhanced with subarray-level parallelism and the subchannels
    /// bank architecture (Section 5.4's strongest prior-work baseline).
    QbHbmSalpSc,
    /// The paper's proposal: 512 grains, each two pseudobanks with a
    /// private 2 GB/s serial interface, 1 TB/s per stack (Section 3).
    Fgdram,
}

impl DramKind {
    /// All four architectures, in the order the paper's figures present them.
    pub const ALL: [DramKind; 4] =
        [DramKind::Hbm2, DramKind::QbHbm, DramKind::QbHbmSalpSc, DramKind::Fgdram];

    /// Short display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            DramKind::Hbm2 => "HBM2",
            DramKind::QbHbm => "QB-HBM",
            DramKind::QbHbmSalpSc => "QB-HBM+SALP+SC",
            DramKind::Fgdram => "FGDRAM",
        }
    }
}

impl core::fmt::Display for DramKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// DRAM timing parameters in nanoseconds (paper Table 2).
///
/// All values are integral nanoseconds; `t_wl` is the paper's "2 clks" at
/// the 500 MHz core clock, i.e. 4 ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Activate-to-activate delay, same bank (row cycle time).
    pub t_rc: Ns,
    /// Activate-to-column-command delay.
    pub t_rcd: Ns,
    /// Precharge-to-activate delay.
    pub t_rp: Ns,
    /// Activate-to-precharge delay (row active minimum).
    pub t_ras: Ns,
    /// Read column command to first data (CAS latency).
    pub t_cl: Ns,
    /// Activate-to-activate delay, different banks, same channel.
    pub t_rrd: Ns,
    /// Write recovery: end of write data to precharge.
    pub t_wr: Ns,
    /// Rolling activation window (paired with [`Self::acts_in_faw`]).
    pub t_faw: Ns,
    /// Maximum activates inside one `t_faw` window.
    pub acts_in_faw: u32,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: Ns,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: Ns,
    /// Write column command to first data (write latency).
    pub t_wl: Ns,
    /// Data burst duration for one atom on the channel/grain data bus.
    pub t_burst: Ns,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: Ns,
    /// Column-to-column delay, different bank groups.
    pub t_ccd_s: Ns,
    /// Read column command to precharge of the same bank.
    pub t_rtp: Ns,
    /// Average refresh interval per refresh command.
    pub t_refi: Ns,
    /// Refresh cycle time (bank set busy after a refresh command).
    pub t_rfc: Ns,
    /// Occupancy of one column command slot on the command channel.
    pub t_cmd_col: Ns,
    /// Occupancy of one activate slot on the row command channel (FGDRAM
    /// activates need "more than 2 ns" for the long row address).
    pub t_cmd_row: Ns,
}

impl TimingParams {
    /// The common Table 2 timings shared by all three stacks.
    const fn common() -> Self {
        TimingParams {
            t_rc: 45,
            t_rcd: 16,
            t_rp: 16,
            t_ras: 29,
            t_cl: 16,
            t_rrd: 2,
            t_wr: 16,
            t_faw: 12,
            acts_in_faw: 8,
            t_wtr_l: 8,
            t_wtr_s: 3,
            t_wl: 4, // 2 clks @ 500 MHz
            t_burst: 2,
            t_ccd_l: 4,
            t_ccd_s: 2,
            t_rtp: 4,
            t_refi: 3900,
            t_rfc: 160,
            t_cmd_col: 2,
            t_cmd_row: 2,
        }
    }

    /// Table 2 timings for the given architecture.
    pub const fn for_kind(kind: DramKind) -> Self {
        let mut t = Self::common();
        match kind {
            DramKind::Hbm2 | DramKind::QbHbm => t,
            DramKind::QbHbmSalpSc => {
                // Subchannels quarter the activation granularity, which
                // relaxes the power-delivery activate-rate limit 4x.
                t.acts_in_faw = 32;
                t
            }
            DramKind::Fgdram => {
                t.t_burst = 16;
                t.t_ccd_l = 16;
                t.acts_in_faw = 32;
                // The long row address needs "more than 2 ns" on the shared
                // row bus (Section 3.3).
                t.t_cmd_row = 3;
                t
            }
        }
    }
}

/// Full description of one DRAM stack (geometry + timing), paper Table 2.
///
/// For FGDRAM, a *channel* in this struct is one **grain** (the unit with a
/// private data interface) and a *bank* is one **pseudobank**; the stack's
/// 64 shared command channels each serve [`Self::channels_per_cmd_channel`]
/// grains.
///
/// # Examples
///
/// ```
/// use fgdram_model::config::{DramConfig, DramKind};
/// let fg = DramConfig::new(DramKind::Fgdram);
/// assert_eq!(fg.channels, 512);
/// assert_eq!(fg.stack_bandwidth().value(), 1024.0); // 1 TB/s
/// assert_eq!(fg.capacity_bytes(), 4 << 30); // iso-capacity with QB-HBM
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Architecture this configuration models.
    pub kind: DramKind,
    /// Independent data channels per stack (grains for FGDRAM).
    pub channels: usize,
    /// Banks per channel (pseudobanks per grain for FGDRAM).
    pub banks_per_channel: usize,
    /// Bank groups per channel; columns to different groups may be spaced
    /// `t_ccd_s` apart, same group `t_ccd_l`.
    pub bank_groups: usize,
    /// Data channels sharing one command channel (8 grains for FGDRAM).
    pub channels_per_cmd_channel: usize,
    /// Subarrays per bank (HBM2: 32 x 512 rows).
    pub subarrays_per_bank: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Physical row size per bank (determines capacity and column count).
    pub row_bytes: u64,
    /// Bytes brought into sense amplifiers per activate — the *effective*
    /// activation granularity: 1 KB baseline, 256 B with subchannels or
    /// FGDRAM pseudobanks. Must divide [`Self::row_bytes`].
    pub activation_bytes: u64,
    /// DRAM atom (request) size in bytes.
    pub atom_bytes: u64,
    /// Whether subarrays activate independently (SALP).
    pub salp: bool,
    /// Timing parameters.
    pub timing: TimingParams,
}

impl DramConfig {
    /// Builds the paper's Table 2 configuration for `kind`.
    pub fn new(kind: DramKind) -> Self {
        let timing = TimingParams::for_kind(kind);
        match kind {
            DramKind::Hbm2 => DramConfig {
                kind,
                channels: 16,
                banks_per_channel: 16,
                bank_groups: 4,
                channels_per_cmd_channel: 1,
                subarrays_per_bank: 32,
                rows_per_bank: 16_384,
                row_bytes: 1024,
                activation_bytes: 1024,
                atom_bytes: 32,
                salp: false,
                timing,
            },
            DramKind::QbHbm => DramConfig {
                kind,
                channels: 64,
                banks_per_channel: 4,
                // Each of the 4 banks is its own group so two banks can
                // interleave at t_ccd_s, exactly as HBM2's bank grouping
                // lets two banks share the channel (Section 2.3).
                bank_groups: 4,
                channels_per_cmd_channel: 1,
                subarrays_per_bank: 32,
                rows_per_bank: 16_384,
                row_bytes: 1024,
                activation_bytes: 1024,
                atom_bytes: 32,
                salp: false,
                timing,
            },
            DramKind::QbHbmSalpSc => DramConfig {
                kind,
                channels: 64,
                banks_per_channel: 4,
                bank_groups: 4,
                channels_per_cmd_channel: 1,
                subarrays_per_bank: 32,
                rows_per_bank: 16_384,
                row_bytes: 1024,
                // Subchannels cut the effective activation to 256 B.
                activation_bytes: 256,
                atom_bytes: 32,
                salp: true,
                timing,
            },
            DramKind::Fgdram => DramConfig {
                kind,
                // 512 grains; each "bank" below is a pseudobank. The two
                // pseudobanks share the grain's serial data bus, so all
                // column commands within a grain are t_ccd_l apart: one
                // bank group.
                channels: 512,
                banks_per_channel: 2,
                bank_groups: 1,
                channels_per_cmd_channel: 8,
                subarrays_per_bank: 32,
                rows_per_bank: 16_384,
                row_bytes: 256,
                activation_bytes: 256,
                atom_bytes: 32,
                salp: false,
                timing,
            },
        }
    }

    /// Ablation (Section 2.2): QB-HBM with the atom grown to 128 B, the
    /// prefetch-scaling alternative the paper rejects.
    pub fn qb_hbm_atom128() -> Self {
        let mut c = Self::new(DramKind::QbHbm);
        c.atom_bytes = 128;
        // 128 B over the same 16 GB/s channel takes 8 ns.
        c.timing.t_burst = 8;
        c.timing.t_ccd_s = 8;
        c.timing.t_ccd_l = 8;
        c
    }

    /// Ablation (Section 2.3): a 4x-bandwidth HBM derivative that scales
    /// per-channel bandwidth instead of channel count, and must therefore
    /// rotate column commands among 8 bank groups with a long same-group
    /// delay.
    ///
    /// The paper's version runs a 0.5 ns I/O grid (tBURST 0.5 ns,
    /// tCCDL 16 ns); we keep the integer-nanosecond grid at half that
    /// ratio while preserving every mechanism that costs performance:
    /// iso-bandwidth (1 TB/s), iso-capacity, iso bank count (256),
    /// fat 32 GB/s channels with 1 ns bursts, and 8 bank groups whose
    /// rotation exactly covers `t_ccd_l` (zero slack, vs 2x slack in
    /// conventional timing) so back-to-back same-group accesses cost
    /// 8 bursts.
    pub fn qb_hbm_deep_bank_groups() -> Self {
        let mut c = Self::new(DramKind::QbHbm);
        c.channels = 32;
        c.banks_per_channel = 8;
        c.bank_groups = 8;
        c.timing.t_burst = 1;
        c.timing.t_ccd_s = 1;
        c.timing.t_ccd_l = 8;
        c.timing.t_cmd_col = 1;
        c
    }

    /// A multi-stack system: `stacks` iso-configured stacks presented as
    /// one flat channel space (the paper's multi-TB/s future GPUs, e.g.
    /// four 1 TB/s FGDRAM stacks for the 4 TB/s exascale point of
    /// Figure 1a).
    ///
    /// # Panics
    ///
    /// Panics unless `stacks` is a power of two.
    pub fn multi_stack(kind: DramKind, stacks: usize) -> Self {
        assert!(stacks.is_power_of_two(), "stacks must be a power of two");
        let mut c = Self::new(kind);
        c.channels *= stacks;
        c
    }

    /// Section 3.6: a non-stacked (GDDR-class) FGDRAM die — one die's
    /// worth of grains with the PHYs in the former TSV strips. Same grain
    /// architecture, quarter the stack's grains and bandwidth.
    pub fn fgdram_non_stacked() -> Self {
        let mut c = Self::new(DramKind::Fgdram);
        c.channels = 128; // one die
        c
    }

    /// Design-choice ablation: QB-HBM with SALP only (subarray-level
    /// parallelism, full 1 KB activations).
    pub fn qb_hbm_salp_only() -> Self {
        let mut c = Self::new(DramKind::QbHbmSalpSc);
        c.activation_bytes = 1024;
        c.timing.acts_in_faw = 8; // full-row activates keep the HBM2 limit
        c
    }

    /// Design-choice ablation: QB-HBM with subchannels only (256 B
    /// activations, no subarray-level parallelism).
    pub fn qb_hbm_subchannels_only() -> Self {
        let mut c = Self::new(DramKind::QbHbmSalpSc);
        c.salp = false;
        c
    }

    /// Total stack capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.banks_per_channel as u64
            * self.rows_per_bank as u64
            * self.row_bytes
    }

    /// Peak bandwidth of one data channel (grain).
    pub fn channel_bandwidth(&self) -> GbPerSec {
        GbPerSec::from_bytes_over(self.atom_bytes, self.timing.t_burst)
    }

    /// Peak bandwidth of the whole stack.
    pub fn stack_bandwidth(&self) -> GbPerSec {
        GbPerSec::new(self.channel_bandwidth().value() * self.channels as f64)
    }

    /// Number of shared command channels on the stack.
    pub fn cmd_channels(&self) -> usize {
        self.channels / self.channels_per_cmd_channel
    }

    /// Atoms (columns) per physical row.
    pub fn atoms_per_row(&self) -> u64 {
        self.row_bytes / self.atom_bytes
    }

    /// Atoms per activation slice (equal to [`Self::atoms_per_row`] unless
    /// subchannels shrink the activation granularity).
    pub fn atoms_per_activation(&self) -> u64 {
        self.activation_bytes / self.atom_bytes
    }

    /// Independent activation slices per row (1 without subchannels).
    pub fn slices_per_row(&self) -> u64 {
        self.row_bytes / self.activation_bytes
    }

    /// Rows per subarray.
    pub fn rows_per_subarray(&self) -> usize {
        self.rows_per_bank / self.subarrays_per_bank
    }

    /// True when this configuration needs the FGDRAM grain rules
    /// (pseudobank pairs, shared command channel, subarray-conflict guard).
    pub fn is_grain_based(&self) -> bool {
        self.channels_per_cmd_channel > 1 || matches!(self.kind, DramKind::Fgdram)
    }

    /// Deterministic partition of the channel space into contiguous lanes
    /// for the threaded engine: returns `(base_channel, channel_count)`
    /// per lane. Lanes align to command-channel boundaries so no two lanes
    /// ever share a row/column command bus — the property that makes
    /// per-lane device state fully independent. The plan is a pure
    /// function of the geometry and `engine_threads` (clamped to
    /// `[1, min(cmd_channels, MAX_ENGINE_LANES)]`), so the controller and
    /// the device always derive the same partition.
    pub fn lane_plan(&self, engine_threads: usize) -> Vec<(u32, u32)> {
        let cmd_channels = self.cmd_channels().max(1);
        let lanes = engine_threads.clamp(1, cmd_channels.min(MAX_ENGINE_LANES));
        let cpc = self.channels_per_cmd_channel as u32;
        let per = cmd_channels / lanes;
        let extra = cmd_channels % lanes;
        let mut plan = Vec::with_capacity(lanes);
        let mut base_cc = 0u32;
        for i in 0..lanes {
            let n = (per + usize::from(i < extra)) as u32;
            plan.push((base_cc * cpc, n * cpc));
            base_cc += n;
        }
        plan
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a geometric invariant is violated
    /// (non-power-of-two counts, bank groups not dividing banks, atom larger
    /// than row, or zero-sized fields).
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn pow2(name: &'static str, v: u64) -> Result<(), ConfigError> {
            if v == 0 || !v.is_power_of_two() {
                Err(ConfigError::NotPowerOfTwo { name, value: v })
            } else {
                Ok(())
            }
        }
        pow2("channels", self.channels as u64)?;
        pow2("banks_per_channel", self.banks_per_channel as u64)?;
        pow2("bank_groups", self.bank_groups as u64)?;
        pow2("subarrays_per_bank", self.subarrays_per_bank as u64)?;
        pow2("rows_per_bank", self.rows_per_bank as u64)?;
        pow2("row_bytes", self.row_bytes)?;
        pow2("activation_bytes", self.activation_bytes)?;
        pow2("atom_bytes", self.atom_bytes)?;
        pow2("channels_per_cmd_channel", self.channels_per_cmd_channel as u64)?;
        if self.bank_groups > self.banks_per_channel {
            return Err(ConfigError::BankGroups {
                groups: self.bank_groups,
                banks: self.banks_per_channel,
            });
        }
        if self.atom_bytes > self.activation_bytes {
            return Err(ConfigError::AtomLargerThanRow {
                atom: self.atom_bytes,
                row: self.activation_bytes,
            });
        }
        if self.activation_bytes > self.row_bytes {
            return Err(ConfigError::AtomLargerThanRow {
                atom: self.activation_bytes,
                row: self.row_bytes,
            });
        }
        if self.subarrays_per_bank > self.rows_per_bank {
            return Err(ConfigError::BankGroups {
                groups: self.subarrays_per_bank,
                banks: self.rows_per_bank,
            });
        }
        if self.channels % self.channels_per_cmd_channel != 0 {
            return Err(ConfigError::CmdChannelSplit {
                channels: self.channels,
                per_cmd: self.channels_per_cmd_channel,
            });
        }
        Ok(())
    }
}

/// Error returned by [`DramConfig::validate`] and address-mapper setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural count must be a nonzero power of two.
    NotPowerOfTwo {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: u64,
    },
    /// Bank groups must divide (and not exceed) the bank count.
    BankGroups {
        /// Group count.
        groups: usize,
        /// Bank count.
        banks: usize,
    },
    /// The DRAM atom cannot exceed the activated row.
    AtomLargerThanRow {
        /// Atom bytes.
        atom: u64,
        /// Row bytes.
        row: u64,
    },
    /// Channels must split evenly across command channels.
    CmdChannelSplit {
        /// Data channel count.
        channels: usize,
        /// Channels per command channel.
        per_cmd: usize,
    },
    /// A fault-spec target (dead grain or dead bank) is outside the
    /// stack's geometry.
    FaultTarget {
        /// What kind of target ("grain" or "bank").
        what: &'static str,
        /// The offending index.
        index: u64,
        /// One past the largest valid index.
        limit: u64,
    },
    /// An input artifact (e.g. a `--compare` snapshot) is missing a
    /// required field or does not match the shape of the current run.
    Artifact {
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { name, value } => {
                write!(f, "{name} must be a nonzero power of two, got {value}")
            }
            ConfigError::BankGroups { groups, banks } => {
                write!(f, "bank groups ({groups}) exceed banks ({banks})")
            }
            ConfigError::AtomLargerThanRow { atom, row } => {
                write!(f, "atom ({atom} B) larger than activated row ({row} B)")
            }
            ConfigError::CmdChannelSplit { channels, per_cmd } => {
                write!(
                    f,
                    "channels ({channels}) not divisible by channels per command channel ({per_cmd})"
                )
            }
            ConfigError::FaultTarget { what, index, limit } => {
                write!(f, "fault-spec dead {what} {index} outside geometry (< {limit})")
            }
            ConfigError::Artifact { reason } => write!(f, "invalid input artifact: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// GPU configuration (paper Table 1: an NVIDIA Tesla P100-class part).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// Threads per warp.
    pub threads_per_warp: usize,
    /// Maximum outstanding memory instructions per warp.
    pub max_outstanding_per_warp: usize,
    /// Memory instructions one SM can issue per nanosecond.
    pub issue_per_ns: usize,
    /// Thread-block wave scheduling bound: no warp may run more than this
    /// many instructions ahead of the slowest warp (0 disables). Models
    /// the bounded skew of real GPU work distribution.
    pub wave_window: usize,
    /// L2 configuration.
    pub l2: L2Config,
    /// One-way interconnect latency from SM to memory partition, ns.
    pub xbar_latency: Ns,
    /// Minimum round-trip latency added outside the DRAM (SM pipeline etc).
    pub core_latency: Ns,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sms: 60,
            warps_per_sm: 64,
            threads_per_warp: 32,
            max_outstanding_per_warp: 4,
            issue_per_ns: 4,
            wave_window: 4,
            l2: L2Config::default(),
            xbar_latency: 20,
            core_latency: 40,
        }
    }
}

/// Sectored L2 cache configuration (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Cache line (tag granularity) in bytes.
    pub line_bytes: u64,
    /// Sector (fill granularity) in bytes — the DRAM atom.
    pub sector_bytes: u64,
    /// Hit latency in nanoseconds.
    pub hit_latency: Ns,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            capacity_bytes: 4 * 1024 * 1024,
            ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 30,
        }
    }
}

impl L2Config {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize / self.ways
    }

    /// Sectors per line.
    pub fn sectors_per_line(&self) -> usize {
        (self.line_bytes / self.sector_bytes) as usize
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open for reuse; close on conflict, opportunistic
    /// auto-precharge when no queued request can reuse the row, idle
    /// timeout (the paper's throughput-optimized controller).
    #[default]
    Open,
    /// Auto-precharge every column access (ablation baseline).
    Closed,
}

/// Memory-controller configuration (Section 4.1's "throughput-optimized"
/// controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlConfig {
    /// Read-queue capacity per channel (grain group for FGDRAM).
    pub read_queue_depth: usize,
    /// Write-buffer capacity per channel.
    pub write_buffer_depth: usize,
    /// Write drain starts above this occupancy...
    pub write_high_watermark: usize,
    /// ...and stops below this one.
    pub write_low_watermark: usize,
    /// How many queued requests FR-FCFS may inspect for a row hit.
    pub reorder_window: usize,
    /// Close an open row after this long with no pending hit (0 = open-page).
    pub idle_row_timeout: Ns,
    /// Crossbar partition queue depth in front of each channel scheduler.
    pub xbar_queue_depth: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Enable DRAM refresh.
    pub refresh_enabled: bool,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            read_queue_depth: 64,
            write_buffer_depth: 256,
            write_high_watermark: 192,
            write_low_watermark: 32,
            reorder_window: 32,
            idle_row_timeout: 200,
            xbar_queue_depth: 64,
            page_policy: PagePolicy::Open,
            refresh_enabled: true,
        }
    }
}

impl CtrlConfig {
    /// Controller sizing for a stack. Queue depths are kept uniform across
    /// architectures (64 per channel) so performance differences come from
    /// the DRAM itself, not the controller budget. FGDRAM's difference is
    /// the queues' *nature* — per-grain, directly indexed, with far less
    /// reordering actually exercised (Section 3.3: "deep associative
    /// queues ... are much less important in the FGDRAM architecture").
    pub fn for_dram(dram: &DramConfig) -> Self {
        let _ = dram;
        Self::default()
    }
}

/// Capacity helper: the default 4-die stack is 4 GiB for every architecture.
pub const STACK_CAPACITY_BYTES: u64 = 4 * GIB;

/// Upper bound on engine lanes (worker shards) regardless of the
/// requested thread count: beyond this the per-fence merge overhead
/// outgrows any per-lane win on realistic hosts.
pub const MAX_ENGINE_LANES: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidths() {
        // Table 2: 256 GB/s HBM2, 1 TB/s QB-HBM and FGDRAM stacks.
        assert_eq!(DramConfig::new(DramKind::Hbm2).stack_bandwidth().value(), 256.0);
        assert_eq!(DramConfig::new(DramKind::QbHbm).stack_bandwidth().value(), 1024.0);
        assert_eq!(DramConfig::new(DramKind::Fgdram).stack_bandwidth().value(), 1024.0);
        assert_eq!(DramConfig::new(DramKind::QbHbmSalpSc).stack_bandwidth().value(), 1024.0);
    }

    #[test]
    fn table2_channel_bandwidths() {
        // 16 GB/s per channel, 2 GB/s per grain.
        assert_eq!(DramConfig::new(DramKind::Hbm2).channel_bandwidth().value(), 16.0);
        assert_eq!(DramConfig::new(DramKind::QbHbm).channel_bandwidth().value(), 16.0);
        assert_eq!(DramConfig::new(DramKind::Fgdram).channel_bandwidth().value(), 2.0);
    }

    #[test]
    fn iso_capacity() {
        for kind in DramKind::ALL {
            let c = DramConfig::new(kind);
            assert_eq!(c.capacity_bytes(), STACK_CAPACITY_BYTES, "{kind}");
        }
    }

    #[test]
    fn all_table2_configs_validate() {
        for kind in DramKind::ALL {
            DramConfig::new(kind).validate().unwrap();
        }
        DramConfig::qb_hbm_atom128().validate().unwrap();
        DramConfig::qb_hbm_deep_bank_groups().validate().unwrap();
    }

    #[test]
    fn fgdram_grains_and_command_channels() {
        let c = DramConfig::new(DramKind::Fgdram);
        assert_eq!(c.channels, 512);
        assert_eq!(c.cmd_channels(), 64);
        assert_eq!(c.banks_per_channel, 2); // pseudobanks per grain
        assert_eq!(c.atoms_per_row(), 8); // 256 B / 32 B
        assert!(c.is_grain_based());
        assert!(!DramConfig::new(DramKind::QbHbm).is_grain_based());
    }

    #[test]
    fn fgdram_timings_match_table2() {
        let t = TimingParams::for_kind(DramKind::Fgdram);
        assert_eq!(t.t_burst, 16);
        assert_eq!(t.t_ccd_l, 16);
        assert_eq!(t.t_ccd_s, 2);
        assert_eq!(t.acts_in_faw, 32);
        let t = TimingParams::for_kind(DramKind::Hbm2);
        assert_eq!(t.t_burst, 2);
        assert_eq!(t.t_ccd_l, 4);
        assert_eq!(t.acts_in_faw, 8);
        assert_eq!(t.t_rc, 45);
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_ras, 29);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut c = DramConfig::new(DramKind::QbHbm);
        c.channels = 3;
        assert!(matches!(c.validate(), Err(ConfigError::NotPowerOfTwo { name: "channels", .. })));
        let mut c = DramConfig::new(DramKind::QbHbm);
        c.atom_bytes = 4096;
        assert!(matches!(c.validate(), Err(ConfigError::AtomLargerThanRow { .. })));
        let mut c = DramConfig::new(DramKind::QbHbm);
        c.bank_groups = 8;
        assert!(matches!(c.validate(), Err(ConfigError::BankGroups { .. })));
        let mut c = DramConfig::new(DramKind::Fgdram);
        c.channels = 256;
        c.channels_per_cmd_channel = 8; // fine: 32 cmd channels
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ablation_configs_iso_bandwidth() {
        assert_eq!(DramConfig::qb_hbm_atom128().stack_bandwidth().value(), 1024.0);
        let deep = DramConfig::qb_hbm_deep_bank_groups();
        assert_eq!(deep.stack_bandwidth().value(), 1024.0);
        assert_eq!(deep.capacity_bytes(), STACK_CAPACITY_BYTES);
        // Iso bank count with QB-HBM (256 total).
        assert_eq!(deep.channels * deep.banks_per_channel, 256);
        // Zero rotation slack: groups x t_ccd_s == t_ccd_l.
        assert_eq!(deep.bank_groups as u64 * deep.timing.t_ccd_s, deep.timing.t_ccd_l);
    }

    #[test]
    fn multi_stack_scales_bandwidth_and_capacity() {
        let c = DramConfig::multi_stack(DramKind::Fgdram, 4);
        c.validate().unwrap();
        assert_eq!(c.stack_bandwidth().value(), 4096.0); // 4 TB/s
        assert_eq!(c.capacity_bytes(), 4 * STACK_CAPACITY_BYTES);
        assert_eq!(c.channels, 2048);
        assert_eq!(c.cmd_channels(), 256);
        let qb = DramConfig::multi_stack(DramKind::QbHbm, 4);
        assert_eq!(qb.stack_bandwidth().value(), 4096.0);
    }

    #[test]
    fn non_stacked_fgdram_die() {
        let c = DramConfig::fgdram_non_stacked();
        c.validate().unwrap();
        assert_eq!(c.stack_bandwidth().value(), 256.0); // one die
        assert_eq!(c.cmd_channels(), 16);
        assert_eq!(c.capacity_bytes(), STACK_CAPACITY_BYTES / 4);
    }

    #[test]
    fn design_choice_ablations() {
        let salp = DramConfig::qb_hbm_salp_only();
        assert!(salp.salp);
        assert_eq!(salp.activation_bytes, 1024);
        salp.validate().unwrap();
        let sc = DramConfig::qb_hbm_subchannels_only();
        assert!(!sc.salp);
        assert_eq!(sc.activation_bytes, 256);
        assert_eq!(sc.slices_per_row(), 4);
        sc.validate().unwrap();
    }

    #[test]
    fn activation_slices() {
        let sc = DramConfig::new(DramKind::QbHbmSalpSc);
        assert_eq!(sc.slices_per_row(), 4);
        assert_eq!(sc.atoms_per_activation(), 8);
        assert_eq!(sc.atoms_per_row(), 32);
        let fg = DramConfig::new(DramKind::Fgdram);
        assert_eq!(fg.slices_per_row(), 1);
        assert_eq!(fg.atoms_per_activation(), 8);
        let qb = DramConfig::new(DramKind::QbHbm);
        assert_eq!(qb.slices_per_row(), 1);
        assert_eq!(qb.atoms_per_activation(), 32);
    }

    #[test]
    fn lane_plan_is_contiguous_and_bus_aligned() {
        for kind in DramKind::ALL {
            let c = DramConfig::new(kind);
            for threads in [0usize, 1, 2, 3, 8, 16, 64, 1000] {
                let plan = c.lane_plan(threads);
                assert!(!plan.is_empty());
                assert!(plan.len() <= MAX_ENGINE_LANES);
                assert!(plan.len() <= c.cmd_channels());
                let mut next = 0u32;
                for &(base, width) in &plan {
                    assert_eq!(base, next, "{kind} t={threads}: lanes must be contiguous");
                    assert!(width > 0);
                    // Bus alignment: no lane splits a command channel.
                    let cpc = c.channels_per_cmd_channel as u32;
                    assert_eq!(base % cpc, 0, "{kind}: lane base off a cmd-channel boundary");
                    assert_eq!(width % cpc, 0, "{kind}: lane width splits a cmd channel");
                    next += width;
                }
                assert_eq!(next as usize, c.channels, "{kind}: plan must cover every channel");
            }
            // threads=1 is the serial engine: one lane over everything.
            assert_eq!(c.lane_plan(1), vec![(0, c.channels as u32)]);
        }
    }

    #[test]
    fn l2_geometry() {
        let l2 = L2Config::default();
        assert_eq!(l2.sets(), 2048);
        assert_eq!(l2.sectors_per_line(), 4);
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError::NotPowerOfTwo { name: "channels", value: 3 };
        assert!(e.to_string().contains("channels"));
        let e = ConfigError::AtomLargerThanRow { atom: 64, row: 32 };
        assert!(e.to_string().contains("64"));
    }
}
