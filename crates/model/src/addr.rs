//! Physical addresses and the address-to-DRAM-location mapping.
//!
//! The paper's controller uses "an address mapping policy designed to
//! eliminate camping on banks and channels due to pathological access
//! strides" (Section 4.1). [`AddressMapper`] implements a bit-sliced layout
//! with an XOR swizzle of row bits into the channel and bank indices, which
//! is both bijective (property-tested) and stride-robust.

use crate::config::{ConfigError, DramConfig};

/// A byte address in the GPU's physical memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Rounds down to the containing 32 B sector (DRAM atom) address.
    #[inline]
    pub fn sector_base(self, sector_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 & !(sector_bytes - 1))
    }

    /// Rounds down to the containing cache-line address.
    #[inline]
    pub fn line_base(self, line_bytes: u64) -> PhysAddr {
        PhysAddr(self.0 & !(line_bytes - 1))
    }
}

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// Where one DRAM atom lives inside a stack.
///
/// For FGDRAM, `channel` is the grain index and `bank` the pseudobank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Data channel (grain) index.
    pub channel: u32,
    /// Bank (pseudobank) index within the channel.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Atom (column) index within the activated row.
    pub col: u32,
}

impl Location {
    /// Bank group of this location under `cfg`'s grouping.
    #[inline]
    pub fn bank_group(&self, cfg: &DramConfig) -> u32 {
        self.bank % cfg.bank_groups as u32
    }

    /// Subarray holding this row.
    #[inline]
    pub fn subarray(&self, cfg: &DramConfig) -> u32 {
        self.row / cfg.rows_per_subarray() as u32
    }

    /// Subchannel slice holding this column (always 0 without subchannels).
    #[inline]
    pub fn slice(&self, cfg: &DramConfig) -> u32 {
        self.col / cfg.atoms_per_activation() as u32
    }
}

/// Bit-sliced, swizzled physical-address mapper for one stack.
///
/// Layout from least-significant bit upward:
/// `[atom offset][low column (one L2 line)][channel][high column][bank][row]`.
/// Keeping one 128 B L2 line within a channel preserves sectored-fill
/// locality; interleaving lines across channels spreads streams.
/// The swizzle XORs folded row bits into the channel and bank fields.
///
/// # Examples
///
/// ```
/// use fgdram_model::addr::{AddressMapper, PhysAddr};
/// use fgdram_model::config::{DramConfig, DramKind};
/// let m = AddressMapper::new(&DramConfig::new(DramKind::Fgdram))?;
/// let loc = m.decode(PhysAddr(0x1234_5678));
/// assert_eq!(m.encode(loc).0, 0x1234_5660); // atom-aligned inverse
/// # Ok::<(), fgdram_model::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapper {
    atom_shift: u32,
    col_lo_bits: u32,
    col_hi_bits: u32,
    channel_bits: u32,
    bank_bits: u32,
    row_bits: u32,
    swizzle: bool,
    /// XOR offset applied to the row index per bank (multiples of the
    /// subarray size), so sibling pseudobanks walk different subarrays
    /// under sequential streams (Section 3.3's "careful memory address
    /// layout and address swizzling").
    row_xor_stride: u64,
    capacity_mask: u64,
}

impl AddressMapper {
    /// Builds a mapper for `cfg` with swizzling enabled.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails [`DramConfig::validate`].
    pub fn new(cfg: &DramConfig) -> Result<Self, ConfigError> {
        Self::with_swizzle(cfg, true)
    }

    /// Builds a mapper with swizzling explicitly on or off (off is useful
    /// for demonstrating pathological stride camping in tests/examples).
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` fails [`DramConfig::validate`].
    pub fn with_swizzle(cfg: &DramConfig, swizzle: bool) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let atom_shift = cfg.atom_bytes.trailing_zeros();
        let col_bits = (cfg.row_bytes / cfg.atom_bytes).trailing_zeros();
        // Keep up to one 128 B line (4 atoms) of column bits below the
        // channel field.
        let col_lo_bits = col_bits.min(2);
        let col_hi_bits = col_bits - col_lo_bits;
        Ok(AddressMapper {
            atom_shift,
            col_lo_bits,
            col_hi_bits,
            channel_bits: (cfg.channels as u64).trailing_zeros(),
            bank_bits: (cfg.banks_per_channel as u64).trailing_zeros(),
            row_bits: (cfg.rows_per_bank as u64).trailing_zeros(),
            swizzle,
            row_xor_stride: cfg.rows_per_subarray() as u64,
            capacity_mask: cfg.capacity_bytes() - 1,
        })
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_mask + 1
    }

    fn fold(&self, row: u64, bits: u32) -> u64 {
        if bits == 0 {
            return 0;
        }
        let mask = (1u64 << bits) - 1;
        let mut v = row;
        let mut acc = 0u64;
        while v != 0 {
            acc ^= v & mask;
            v >>= bits;
        }
        acc
    }

    /// Decodes a physical address into its DRAM location.
    ///
    /// Addresses beyond capacity wrap (the mapper masks to capacity), so
    /// synthetic workloads may draw from the full `u64` space.
    pub fn decode(&self, addr: PhysAddr) -> Location {
        let mut a = (addr.0 & self.capacity_mask) >> self.atom_shift;
        let take = |a: &mut u64, bits: u32| -> u64 {
            let v = *a & ((1u64 << bits) - 1);
            *a >>= bits;
            v
        };
        let col_lo = take(&mut a, self.col_lo_bits);
        let mut channel = take(&mut a, self.channel_bits);
        let col_hi = take(&mut a, self.col_hi_bits);
        let mut bank = take(&mut a, self.bank_bits);
        let mut row = take(&mut a, self.row_bits);
        if self.swizzle {
            channel ^= self.fold(row, self.channel_bits);
            bank ^= self.fold(row.rotate_right(3), self.bank_bits);
            row ^= self.row_offset(bank);
        }
        Location {
            channel: channel as u32,
            bank: bank as u32,
            row: row as u32,
            col: ((col_hi << self.col_lo_bits) | col_lo) as u32,
        }
    }

    /// XOR offset decorrelating sibling banks' subarrays.
    #[inline]
    fn row_offset(&self, bank_final: u64) -> u64 {
        (bank_final * self.row_xor_stride) & ((1u64 << self.row_bits) - 1)
    }

    /// Re-encodes a location into the (atom-aligned) physical address that
    /// decodes to it. Exact inverse of [`Self::decode`] on atom-aligned
    /// addresses; used by property tests.
    pub fn encode(&self, loc: Location) -> PhysAddr {
        let mut row = loc.row as u64;
        let mut channel = loc.channel as u64;
        let mut bank = loc.bank as u64;
        if self.swizzle {
            row ^= self.row_offset(bank);
            channel ^= self.fold(row, self.channel_bits);
            bank ^= self.fold(row.rotate_right(3), self.bank_bits);
        }
        let col = loc.col as u64;
        let col_lo = col & ((1u64 << self.col_lo_bits) - 1);
        let col_hi = col >> self.col_lo_bits;
        let mut a = row;
        a = (a << self.bank_bits) | bank;
        a = (a << self.col_hi_bits) | col_hi;
        a = (a << self.channel_bits) | channel;
        a = (a << self.col_lo_bits) | col_lo;
        PhysAddr(a << self.atom_shift)
    }
}

/// Monotonically assigned identifier for an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl core::fmt::Display for ReqId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One DRAM-atom-sized memory request as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id (assigned by the issuer; echoed on completion).
    pub id: ReqId,
    /// Atom-aligned physical address.
    pub addr: PhysAddr,
    /// True for a write (dirty-sector writeback), false for a read fill.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, DramKind};

    fn mapper(kind: DramKind) -> (DramConfig, AddressMapper) {
        let cfg = DramConfig::new(kind);
        let m = AddressMapper::new(&cfg).unwrap();
        (cfg, m)
    }

    #[test]
    fn decode_fields_in_range() {
        for kind in DramKind::ALL {
            let (cfg, m) = mapper(kind);
            for i in 0..10_000u64 {
                let a = PhysAddr(i * 0x3_7b1 * 32);
                let loc = m.decode(a);
                assert!((loc.channel as usize) < cfg.channels);
                assert!((loc.bank as usize) < cfg.banks_per_channel);
                assert!((loc.row as usize) < cfg.rows_per_bank);
                assert!((loc.col as u64) < cfg.atoms_per_row());
            }
        }
    }

    #[test]
    fn encode_inverts_decode() {
        for kind in DramKind::ALL {
            let (_, m) = mapper(kind);
            for i in 0..50_000u64 {
                let a = PhysAddr((i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) & (m.capacity_mask) & !31);
                let loc = m.decode(a);
                assert_eq!(m.encode(loc), a, "kind={kind:?} addr={a}");
            }
        }
    }

    #[test]
    fn sequential_stream_interleaves_channels() {
        // Consecutive 128 B lines should land on different channels.
        let (_, m) = mapper(DramKind::QbHbm);
        let c0 = m.decode(PhysAddr(0)).channel;
        let c1 = m.decode(PhysAddr(128)).channel;
        assert_ne!(c0, c1);
        // Atoms within one line share a channel (sectored fill locality).
        let l0 = m.decode(PhysAddr(0));
        let l1 = m.decode(PhysAddr(32));
        assert_eq!(l0.channel, l1.channel);
        assert_eq!(l0.row, l1.row);
        assert_eq!(l1.col, l0.col + 1);
    }

    #[test]
    fn swizzle_breaks_row_stride_camping() {
        // A stride that would revisit channel 0 on every access without
        // swizzling should spread across many channels with it.
        let cfg = DramConfig::new(DramKind::QbHbm);
        let plain = AddressMapper::with_swizzle(&cfg, false).unwrap();
        let swz = AddressMapper::with_swizzle(&cfg, true).unwrap();
        // Stride of exactly one "row span": row++ while channel stays.
        let row_span = cfg.capacity_bytes() / cfg.rows_per_bank as u64;
        let count = |m: &AddressMapper| {
            let mut chans = std::collections::HashSet::new();
            for i in 0..256u64 {
                chans.insert(m.decode(PhysAddr(i * row_span)).channel);
            }
            chans.len()
        };
        assert_eq!(count(&plain), 1, "plain mapping camps on one channel");
        assert!(count(&swz) > 16, "swizzle spreads row strides");
    }

    #[test]
    fn capacity_wrap() {
        let (cfg, m) = mapper(DramKind::Hbm2);
        let a = PhysAddr(cfg.capacity_bytes() + 64);
        assert_eq!(m.decode(a), m.decode(PhysAddr(64)));
        assert_eq!(m.capacity_bytes(), cfg.capacity_bytes());
    }

    #[test]
    fn subarray_and_bank_group_helpers() {
        let (cfg, m) = mapper(DramKind::Hbm2);
        let loc = m.decode(PhysAddr(0));
        assert!(loc.subarray(&cfg) < cfg.subarrays_per_bank as u32);
        assert!(loc.bank_group(&cfg) < cfg.bank_groups as u32);
        // Row 0 is in subarray 0; last row in the last subarray.
        let lo = Location { channel: 0, bank: 0, row: 0, col: 0 };
        assert_eq!(lo.subarray(&cfg), 0);
        let hi = Location { channel: 0, bank: 0, row: 16_383, col: 0 };
        assert_eq!(hi.subarray(&cfg), 31);
    }

    #[test]
    fn phys_addr_alignment_helpers() {
        let a = PhysAddr(0x1_00f3);
        assert_eq!(a.sector_base(32).0, 0x1_00e0);
        assert_eq!(a.line_base(128).0, 0x1_0080);
        assert_eq!(format!("{}", PhysAddr(0x20)), "0x0000000020");
    }
}
