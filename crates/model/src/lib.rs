//! # fgdram-model
//!
//! Shared vocabulary for the Fine-Grained DRAM (MICRO 2017) reproduction:
//! physical units, DRAM/GPU/controller configurations (the paper's Tables 1
//! and 2 as code), the DRAM command set, physical-address mapping, and
//! statistics primitives.
//!
//! Every other crate in the workspace builds on these types; none of them
//! contain simulation behaviour themselves.
//!
//! ## Examples
//!
//! ```
//! use fgdram_model::config::{DramConfig, DramKind};
//! use fgdram_model::addr::{AddressMapper, PhysAddr};
//!
//! // The paper's 1 TB/s FGDRAM stack, straight from Table 2.
//! let cfg = DramConfig::new(DramKind::Fgdram);
//! assert_eq!(cfg.channels, 512); // grains
//! assert_eq!(cfg.row_bytes, 256); // pseudobank activation granularity
//!
//! // Map an address onto a grain.
//! let mapper = AddressMapper::new(&cfg)?;
//! let loc = mapper.decode(PhysAddr(0x4000));
//! assert!((loc.channel as usize) < cfg.channels);
//! # Ok::<(), fgdram_model::config::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod cmd;
pub mod config;
pub mod fxhash;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod units;
pub mod wheel;

pub use addr::{AddressMapper, Location, MemRequest, PhysAddr, ReqId};
pub use cmd::{BankRef, CmdKind, Completion, DramCommand, TimedCommand};
pub use config::{
    ConfigError, CtrlConfig, DramConfig, DramKind, GpuConfig, L2Config, TimingParams,
};
pub use stream::{AccessStream, WarpInstruction};
pub use units::{GbPerSec, Ns, Picojoules, PjPerBit, Watts};
