//! The interface between workload generators and the GPU front end.
//!
//! A workload is modelled per warp: each warp owns an [`AccessStream`] that
//! produces an endless sequence of [`WarpInstruction`]s (the simulator runs
//! for a fixed time window, so streams never terminate). Generators fill a
//! caller-owned buffer to keep the hot path allocation-free.

use crate::addr::PhysAddr;
use crate::units::Ns;

/// One warp-level memory instruction after coalescing: the set of 32 B
/// sectors the warp's 32 threads touch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpInstruction {
    /// Sector-aligned addresses touched by the warp (1..=32 entries).
    pub sectors: Vec<PhysAddr>,
    /// True when the instruction is a store.
    pub is_store: bool,
    /// Compute delay the warp spends before issuing this instruction,
    /// measured from when it becomes schedulable again.
    pub think_ns: Ns,
}

impl WarpInstruction {
    /// Empties the buffer for refilling.
    pub fn clear(&mut self) {
        self.sectors.clear();
        self.is_store = false;
        self.think_ns = 0;
    }
}

/// An endless per-warp instruction stream.
///
/// Implementors must be deterministic given their construction seed.
pub trait AccessStream: Send {
    /// Fills `out` (already cleared by the caller) with the next
    /// instruction. Must push at least one sector.
    fn fill_next(&mut self, out: &mut WarpInstruction);
}

/// Blanket impl so boxed streams compose.
impl AccessStream for Box<dyn AccessStream> {
    fn fill_next(&mut self, out: &mut WarpInstruction) {
        (**self).fill_next(out)
    }
}

/// A trivial stream replaying a fixed cyclic list of single-sector loads;
/// useful for unit tests and microbenchmarks.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    addrs: Vec<PhysAddr>,
    think_ns: Ns,
    pos: usize,
}

impl ReplayStream {
    /// Cycles over `addrs` with `think_ns` compute delay between loads.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<PhysAddr>, think_ns: Ns) -> Self {
        assert!(!addrs.is_empty(), "ReplayStream needs at least one address");
        ReplayStream { addrs, think_ns, pos: 0 }
    }
}

impl AccessStream for ReplayStream {
    fn fill_next(&mut self, out: &mut WarpInstruction) {
        out.sectors.push(self.addrs[self.pos]);
        out.think_ns = self.think_ns;
        self.pos = (self.pos + 1) % self.addrs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_cycles() {
        let mut s = ReplayStream::new(vec![PhysAddr(0), PhysAddr(32)], 7);
        let mut w = WarpInstruction::default();
        s.fill_next(&mut w);
        assert_eq!(w.sectors, vec![PhysAddr(0)]);
        assert_eq!(w.think_ns, 7);
        w.clear();
        s.fill_next(&mut w);
        assert_eq!(w.sectors, vec![PhysAddr(32)]);
        w.clear();
        s.fill_next(&mut w);
        assert_eq!(w.sectors, vec![PhysAddr(0)]);
    }

    #[test]
    fn clear_resets_all_fields() {
        let mut w = WarpInstruction { sectors: vec![PhysAddr(1)], is_store: true, think_ns: 9 };
        w.clear();
        assert!(w.sectors.is_empty());
        assert!(!w.is_store);
        assert_eq!(w.think_ns, 0);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn replay_rejects_empty() {
        let _ = ReplayStream::new(vec![], 0);
    }

    #[test]
    fn boxed_stream_is_usable() {
        let mut s: Box<dyn AccessStream> = Box::new(ReplayStream::new(vec![PhysAddr(64)], 0));
        let mut w = WarpInstruction::default();
        s.fill_next(&mut w);
        assert_eq!(w.sectors, vec![PhysAddr(64)]);
    }
}
