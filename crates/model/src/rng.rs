//! A small, self-contained deterministic PRNG.
//!
//! The workload generators (and the randomized tests) need a seedable,
//! reproducible random source. The tier-1 verify must build with no
//! network access, so instead of the `rand` crate this module carries a
//! from-scratch xoshiro256++ (Blackman & Vigna) seeded through SplitMix64
//! — the same construction `rand`'s `SmallRng` family uses. Streams are
//! stable across platforms and releases: changing them invalidates the
//! checked-in `EXPERIMENTS.md`, so treat the output sequence as part of
//! the crate's public contract.

/// A seedable xoshiro256++ generator.
///
/// Named `SmallRng` after the `rand` type it replaces: not
/// cryptographically secure, cheap to construct, and deterministic for a
/// given seed.
///
/// # Examples
///
/// ```
/// use fgdram_model::rng::SmallRng;
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.random_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// One step of SplitMix64; used to expand a 64-bit seed into the 256-bit
/// xoshiro state (never yields the all-zero state).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[range.start, range.end)`, bias-free via
    /// rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn random_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "random_range: empty range");
        let span = range.end - range.start;
        if span.is_power_of_two() {
            return range.start + (self.next_u64() & (span - 1));
        }
        // Reject the tail of the 2^64 space that does not divide evenly.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// A uniform index in `[0, n)` — convenience for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn random_index(&mut self, n: usize) -> usize {
        self.random_range(0..n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = SmallRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(r.next_u64());
        }
        assert!(distinct.len() > 60);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn range_respects_bounds_and_hits_all_values() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.random_range(10..17);
            assert!((10..17).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn power_of_two_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.random_range(0..8);
            assert!(v < 8);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).random_range(5..5);
    }

    #[test]
    fn bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn known_vector_guards_stream_stability() {
        // xoshiro256++ from a SplitMix64-expanded seed of 42. If this
        // changes, every checked-in experiment number changes with it.
        let mut r = SmallRng::seed_from_u64(42);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(first.len(), 3);
        let mut again = SmallRng::seed_from_u64(42);
        for v in first {
            assert_eq!(v, again.next_u64());
        }
    }
}
