//! Physical-quantity newtypes shared across the simulator.
//!
//! Simulated time is kept as plain integer nanoseconds (see [`Ns`]) because
//! every timing parameter in the paper's Table 2 is an integer number of
//! nanoseconds and the hot simulation loops do dense arithmetic on it.
//! Quantities that cross the public API boundary (energy, power, bandwidth)
//! get dedicated newtypes so that, e.g., a pJ/bit figure can never be
//! confused with a pJ figure.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Simulated time in integer nanoseconds.
///
/// `u64` nanoseconds cover ~584 years of simulated time, far beyond any
/// simulation window this crate runs.
pub type Ns = u64;

/// Number of nanoseconds in one second, as a float (for rate conversions).
pub const NS_PER_SEC: f64 = 1.0e9;

/// One mebibyte in bytes.
pub const MIB: u64 = 1 << 20;
/// One gibibyte in bytes.
pub const GIB: u64 = 1 << 30;

macro_rules! float_unit {
    (
        $(#[$meta:meta])*
        $name:ident, $suffix:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

float_unit!(
    /// Energy in picojoules.
    ///
    /// # Examples
    ///
    /// ```
    /// use fgdram_model::units::Picojoules;
    /// let act = Picojoules::new(909.0);
    /// let two = act + act;
    /// assert_eq!(two.value(), 1818.0);
    /// ```
    Picojoules,
    "pJ"
);

float_unit!(
    /// Energy intensity in picojoules per bit, the paper's headline metric.
    ///
    /// # Examples
    ///
    /// ```
    /// use fgdram_model::units::PjPerBit;
    /// let hbm2 = PjPerBit::new(3.92);
    /// assert!(hbm2 > PjPerBit::new(2.0));
    /// ```
    PjPerBit,
    "pJ/b"
);

float_unit!(
    /// Power in watts.
    Watts,
    "W"
);

float_unit!(
    /// Bandwidth in gigabytes per second (10^9 bytes/s, as the paper uses).
    GbPerSec,
    "GB/s"
);

impl Picojoules {
    /// Divides total energy by a bit count, giving energy intensity.
    ///
    /// Returns [`PjPerBit::ZERO`] when `bits` is zero so aggregate reports
    /// over idle components never produce NaN.
    #[inline]
    pub fn per_bits(self, bits: u64) -> PjPerBit {
        if bits == 0 {
            PjPerBit::ZERO
        } else {
            PjPerBit::new(self.value() / bits as f64)
        }
    }
}

impl PjPerBit {
    /// Multiplies intensity by a bit count, giving total energy.
    #[inline]
    pub fn for_bits(self, bits: u64) -> Picojoules {
        Picojoules::new(self.value() * bits as f64)
    }

    /// The DRAM power drawn when streaming at `bw` with this per-bit energy.
    ///
    /// Used by the Figure 1a budget analysis: `P = e * BW`.
    #[inline]
    pub fn power_at(self, bw: GbPerSec) -> Watts {
        // pJ/bit * GB/s = 1e-12 J/bit * 8e9 bit/s = 8e-3 W
        Watts::new(self.value() * bw.value() * 8.0e-3)
    }
}

impl Watts {
    /// The per-bit energy that exactly dissipates this power at `bw`.
    ///
    /// Inverse of [`PjPerBit::power_at`]; used to draw the Figure 1a curve.
    #[inline]
    pub fn energy_budget_at(self, bw: GbPerSec) -> PjPerBit {
        PjPerBit::new(self.value() / (bw.value() * 8.0e-3))
    }
}

impl GbPerSec {
    /// Bandwidth implied by transferring `bytes` over `dur` nanoseconds.
    ///
    /// Returns [`GbPerSec::ZERO`] for a zero-length window.
    #[inline]
    pub fn from_bytes_over(bytes: u64, dur: Ns) -> Self {
        if dur == 0 {
            Self::ZERO
        } else {
            Self::new(bytes as f64 / dur as f64) // B/ns == GB/s
        }
    }

    /// Bytes transferred in `dur` nanoseconds at this bandwidth.
    #[inline]
    pub fn bytes_over(self, dur: Ns) -> f64 {
        self.value() * dur as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picojoules_arithmetic() {
        let a = Picojoules::new(1.5);
        let b = Picojoules::new(2.5);
        assert_eq!((a + b).value(), 4.0);
        assert_eq!((b - a).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((2.0 * a).value(), 3.0);
        assert_eq!((b / 2.0).value(), 1.25);
        assert_eq!(b / a, 2.5 / 1.5);
        let s: Picojoules = [a, b].into_iter().sum();
        assert_eq!(s.value(), 4.0);
    }

    #[test]
    fn per_bits_handles_zero() {
        assert_eq!(Picojoules::new(10.0).per_bits(0), PjPerBit::ZERO);
        assert_eq!(Picojoules::new(10.0).per_bits(5).value(), 2.0);
    }

    #[test]
    fn power_budget_roundtrip() {
        // Paper Figure 1a anchor: ~3.9 pJ/bit at ~1.9 TB/s is ~60 W.
        let bw = GbPerSec::new(1920.0);
        let budget = Watts::new(60.0).energy_budget_at(bw);
        assert!((budget.value() - 3.906).abs() < 0.01, "{budget}");
        let p = budget.power_at(bw);
        assert!((p.value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn hbm2_power_sanity() {
        // 3.92 pJ/bit at 256 GB/s stack is ~8 W per stack.
        let p = PjPerBit::new(3.92).power_at(GbPerSec::new(256.0));
        assert!((p.value() - 8.028).abs() < 0.01, "{p}");
    }

    #[test]
    fn bandwidth_from_bytes() {
        // 32 B atom every 2 ns = 16 GB/s (one HBM2 channel).
        let bw = GbPerSec::from_bytes_over(32, 2);
        assert_eq!(bw.value(), 16.0);
        assert_eq!(GbPerSec::from_bytes_over(1, 0), GbPerSec::ZERO);
        assert_eq!(bw.bytes_over(4), 64.0);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{:.2}", Picojoules::new(1.234)), "1.23 pJ");
        assert_eq!(format!("{}", PjPerBit::new(2.0)), "2 pJ/b");
    }

    #[test]
    fn min_max() {
        let a = PjPerBit::new(1.0);
        let b = PjPerBit::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(a.is_finite());
    }
}
