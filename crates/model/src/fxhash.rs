//! A fast, non-cryptographic hasher for hot-path maps keyed by small
//! integers (request ids, sector tags).
//!
//! The standard library's default SipHash is DoS-resistant but costs tens
//! of cycles per `u64` key; the simulator's maps are keyed by internal
//! monotone counters that no adversary controls, so the firefox-style
//! multiply-xor hash (as popularised by `rustc-hash`) is the right trade.
//! Kept in-repo because the workspace builds with no registry access.
//!
//! Iteration order over these maps differs from SipHash's — which is why
//! the engine never iterates them (lookup/insert/remove only); the
//! byte-identity suite in `tests/golden_identity.rs` pins that property.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor hasher (FxHash construction).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 2^64 / phi multiplier: spreads low-entropy integer keys across
/// the high bits that `HashMap` actually indexes with.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.add(u64::from_le_bytes(head.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_with_integer_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        for i in (0..10_000u64).step_by(2) {
            assert_eq!(m.remove(&i), Some(i * 3));
        }
        assert_eq!(m.len(), 5_000);
    }

    #[test]
    fn sequential_keys_spread_across_buckets() {
        // The multiply must push entropy into the high bits hashbrown
        // uses; identical low-bit patterns would degenerate to a list.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        let mut top7: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        top7.sort_unstable();
        top7.dedup();
        assert!(top7.len() > 16, "high bits collapse: {} distinct of 64", top7.len());
    }
}
