//! The DRAM command vocabulary shared by the controller, the device model,
//! and the protocol checker.

use crate::addr::ReqId;
use crate::units::Ns;

/// Identifies one bank (pseudobank for FGDRAM) on the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankRef {
    /// Data channel (grain) index.
    pub channel: u32,
    /// Bank (pseudobank) index within the channel.
    pub bank: u32,
}

impl core::fmt::Display for BankRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ch{}.b{}", self.channel, self.bank)
    }
}

/// A command sent over the command channel to the DRAM.
///
/// `subarray`/`slice` carry the SALP and subchannel targeting information;
/// for baseline HBM2/QB-HBM they are derived from the row and ignored by
/// the device FSM. `row` is carried on column commands purely so the device
/// model and the protocol checker can assert the scheduler only reads rows
/// it actually opened (a real DRAM would return garbage instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCommand {
    /// Open `row` into the row buffer of `bank` (or of its subarray/slice).
    Activate {
        /// Target bank.
        bank: BankRef,
        /// Row index within the bank.
        row: u32,
        /// Subchannel slice to activate (0 for parts without subchannels).
        slice: u32,
    },
    /// Read one atom from column `col` of the open row.
    Read {
        /// Target bank.
        bank: BankRef,
        /// Row expected to be open (checked, not transmitted in hardware).
        row: u32,
        /// Atom index within the activated row.
        col: u32,
        /// Precharge automatically after the access completes.
        auto_precharge: bool,
        /// The request this access serves (for completion routing).
        req: ReqId,
    },
    /// Write one atom at column `col` of the open row.
    Write {
        /// Target bank.
        bank: BankRef,
        /// Row expected to be open.
        row: u32,
        /// Atom index within the activated row.
        col: u32,
        /// Precharge automatically after write recovery.
        auto_precharge: bool,
        /// The request this access serves.
        req: ReqId,
    },
    /// Close the open row of `bank`. With SALP/subchannels, closes only the
    /// slot holding (`row`, `slice`) when `row` is `Some`.
    Precharge {
        /// Target bank.
        bank: BankRef,
        /// The specific open row to close; `None` closes every open slot.
        row: Option<u32>,
        /// Slice of the slot to close (ignored when `row` is `None`).
        slice: u32,
    },
    /// Refresh the banks behind one data channel.
    Refresh {
        /// Target channel (grain).
        channel: u32,
    },
}

impl DramCommand {
    /// The coarse kind of this command (row bus vs column bus).
    pub fn kind(&self) -> CmdKind {
        match self {
            DramCommand::Activate { .. } => CmdKind::Activate,
            DramCommand::Read { .. } => CmdKind::Read,
            DramCommand::Write { .. } => CmdKind::Write,
            DramCommand::Precharge { .. } => CmdKind::Precharge,
            DramCommand::Refresh { .. } => CmdKind::Refresh,
        }
    }

    /// The data channel this command addresses.
    pub fn channel(&self) -> u32 {
        match self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Precharge { bank, .. } => bank.channel,
            DramCommand::Refresh { channel } => *channel,
        }
    }

    /// True for commands that travel on the row command bus
    /// (activate/precharge/refresh), false for column commands.
    pub fn is_row_cmd(&self) -> bool {
        matches!(self.kind(), CmdKind::Activate | CmdKind::Precharge | CmdKind::Refresh)
    }
}

/// Command classification used for bus occupancy and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdKind {
    /// Row activation.
    Activate,
    /// Column read.
    Read,
    /// Column write.
    Write,
    /// Precharge.
    Precharge,
    /// Refresh.
    Refresh,
}

impl CmdKind {
    /// All kinds, for stats tables.
    pub const ALL: [CmdKind; 5] =
        [CmdKind::Activate, CmdKind::Read, CmdKind::Write, CmdKind::Precharge, CmdKind::Refresh];
}

impl core::fmt::Display for CmdKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CmdKind::Activate => "ACT",
            CmdKind::Read => "RD",
            CmdKind::Write => "WR",
            CmdKind::Precharge => "PRE",
            CmdKind::Refresh => "REF",
        };
        f.write_str(s)
    }
}

/// A timestamped command, as recorded in a trace for the protocol checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedCommand {
    /// Issue time on the command channel.
    pub at: Ns,
    /// The command.
    pub cmd: DramCommand,
}

/// Notification that a read's data finished returning, or a write's data
/// was consumed, at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The originating request.
    pub req: ReqId,
    /// Time the last data beat left (read) or was absorbed (write).
    pub at: Ns,
    /// Whether this was a write.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankRef {
        BankRef { channel: 3, bank: 1 }
    }

    #[test]
    fn kind_classification() {
        let b = bank();
        assert_eq!(DramCommand::Activate { bank: b, row: 5, slice: 0 }.kind(), CmdKind::Activate);
        assert!(DramCommand::Activate { bank: b, row: 5, slice: 0 }.is_row_cmd());
        let rd =
            DramCommand::Read { bank: b, row: 5, col: 0, auto_precharge: false, req: ReqId(1) };
        assert_eq!(rd.kind(), CmdKind::Read);
        assert!(!rd.is_row_cmd());
        assert!(DramCommand::Precharge { bank: b, row: None, slice: 0 }.is_row_cmd());
        assert!(DramCommand::Refresh { channel: 9 }.is_row_cmd());
    }

    #[test]
    fn channel_extraction() {
        assert_eq!(DramCommand::Refresh { channel: 9 }.channel(), 9);
        assert_eq!(DramCommand::Precharge { bank: bank(), row: None, slice: 0 }.channel(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CmdKind::Activate.to_string(), "ACT");
        assert_eq!(CmdKind::Refresh.to_string(), "REF");
        assert_eq!(bank().to_string(), "ch3.b1");
    }
}
