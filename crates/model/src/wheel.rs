//! A hierarchical event wheel (calendar queue) keyed on [`Ns`].
//!
//! Replaces the `BinaryHeap<Reverse<(Ns, Event)>>` on the simulator hot
//! path: `push` and `pop_due` are O(1) amortised for the near-future
//! events that dominate a simulation (fills, wakes, retries all land
//! within a few hundred ns), with a two-level bitmap locating the next
//! non-empty slot in a handful of word scans instead of a heap sift.
//!
//! Ordering is identical to the heap it replaces: `pop_due` always yields
//! the minimum `(time, event)` pair, with ties on time broken by the
//! event's `Ord` — so a run scheduled through the wheel is byte-identical
//! to one scheduled through the heap.
//!
//! Layout: `W` power-of-two slots, one per ns, holding events in
//! `[base, base + W)`; each slot's occupancy is one bit in a 64-word
//! bitmap with a one-word summary above it. Events further out than the
//! horizon wait in an overflow heap and migrate into the wheel as `base`
//! advances (which it does in a single jump, never slot-by-slot).
//!
//! Slot storage is one inline entry per slot plus a shared node pool
//! (intrusive chains + free list) for the rare slots holding more, not a
//! `Vec` per slot: per-slot buffers grow to each slot's individual
//! worst-case fan-in, and since spike periods are not aligned to the
//! horizon, every lap lands spikes on fresh residues — 4096 buffers that
//! keep growing forever. The inline lane makes the dominant
//! one-event-per-ns case a single array access with no pool touch at
//! all, and the pool's size is bounded by the *total* live overflow-entry
//! count, which the simulator's bounded queues cap at a high-water mark
//! reached during warmup — after that the wheel never touches the
//! allocator. Entries are `Copy` and popped by `(time, event)` value
//! (all entries in one slot share one time — a slot holds a single
//! residue per horizon window), so storage order inside a slot is
//! unobservable and the pop sequence is identical to the per-slot-`Vec`
//! wheel's.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::Ns;

/// Wheel horizon in slots (and ns). 4096 = 64 bitmap words, summarised by
/// exactly one u64.
const W: usize = 4096;
const MASK: u64 = (W as u64) - 1;
const WORDS: usize = W / 64;

/// Null node index for the intrusive slot chains and the free list.
const NIL: u32 = u32::MAX;

/// Time-ordered event queue with O(1) near-future operations.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// All wheel (non-overflow) entries have times in `[base, base + W)`.
    base: Ns,
    /// Entry count in the slots (excludes `overflow`).
    wheel_len: usize,
    /// First entry per slot, present iff the slot's occupancy bit is set.
    /// The common one-event slot lives entirely here.
    inline: Vec<Option<(Ns, T)>>,
    /// Chain head per slot for entries beyond the first (`NIL` if none).
    /// Non-`NIL` implies the inline entry is present.
    more: Vec<u32>,
    /// Node pool for the extra entries: `(time, event, next)`. Live nodes
    /// chain per slot from `more`; free nodes chain from `free_head`.
    pool: Vec<(Ns, T, u32)>,
    free_head: u32,
    /// One occupancy bit per slot.
    words: [u64; WORDS],
    /// One bit per `words` entry.
    summary: u64,
    /// Events at or beyond `base + W`.
    overflow: BinaryHeap<Reverse<(Ns, T)>>,
}

impl<T: Ord + Copy> EventWheel<T> {
    /// An empty wheel based at time 0.
    pub fn new() -> Self {
        EventWheel {
            base: 0,
            wheel_len: 0,
            inline: vec![None; W],
            more: vec![NIL; W],
            // Covers typical multi-event-slot high-water without a
            // mid-run grow; past this the pool doubles amortised, then
            // sticks.
            pool: Vec::with_capacity(1024),
            free_head: NIL,
            words: [0; WORDS],
            summary: 0,
            overflow: BinaryHeap::with_capacity(64),
        }
    }

    /// Links `(t, ev)` into its slot (inline lane first, then the pool
    /// chain) and marks the bitmaps.
    fn link(&mut self, t: Ns, ev: T) {
        let s = (t & MASK) as usize;
        if self.inline[s].is_none() {
            self.inline[s] = Some((t, ev));
        } else {
            let node = if self.free_head != NIL {
                let n = self.free_head;
                self.free_head = self.pool[n as usize].2;
                self.pool[n as usize] = (t, ev, self.more[s]);
                n
            } else {
                self.pool.push((t, ev, self.more[s]));
                (self.pool.len() - 1) as u32
            };
            self.more[s] = node;
        }
        self.words[s / 64] |= 1 << (s % 64);
        self.summary |= 1 << (s / 64);
        self.wheel_len += 1;
    }

    /// Total scheduled events (wheel + overflow).
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `ev` at time `t`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `t >= base`: the simulator never schedules into the
    /// past (`base` trails the last `pop_due` time, which trails `now`).
    pub fn push(&mut self, t: Ns, ev: T) {
        debug_assert!(t >= self.base, "event scheduled into the past: {t} < base {}", self.base);
        if t >= self.base + W as Ns {
            self.overflow.push(Reverse((t, ev)));
            return;
        }
        self.link(t, ev);
    }

    /// The earliest scheduled time, if any. Mutation-free.
    pub fn next_time(&self) -> Option<Ns> {
        let wheel = self.min_wheel_time();
        let over = self.overflow.peek().map(|&Reverse((t, _))| t);
        match (wheel, over) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the minimum `(time, event)` if it is due (`time <= now`).
    /// Repeated calls drain all due events in exact `(time, event)` order,
    /// including events pushed at `now` between calls.
    pub fn pop_due(&mut self, now: Ns) -> Option<(Ns, T)> {
        let m = self.next_time()?;
        if m > now {
            // Not due: still advance the horizon as far as `now` allows —
            // `push` must keep accepting events at `now` (t >= base).
            self.advance_base(m.min(now));
            return None;
        }
        self.advance_base(m);
        self.pop_min()
    }

    /// Moves every due entry (`time <= now`) into `out`, in **slot order
    /// but unordered within a slot** — the whole chain of a multi-entry
    /// slot is unlinked in one O(k) walk instead of k O(k) min-scans.
    /// Callers that need total order must sort `out` themselves; callers
    /// whose downstream is order-insensitive (the controller's due-channel
    /// collection sorts and dedupes its result) get the exact `pop_due`
    /// result set at a fraction of the cost when many events share one
    /// wake time. Base advances exactly as a `pop_due` drain would, so a
    /// subsequent `push` at `now` stays legal.
    pub fn drain_due_unordered(&mut self, now: Ns, out: &mut Vec<(Ns, T)>) {
        loop {
            let Some(m) = self.next_time() else { return };
            if m > now {
                self.advance_base(m.min(now));
                return;
            }
            self.advance_base(m);
            // Overflow entries at exactly `m` that the advance migrated are
            // now in the wheel; any still in the heap are later than `m`.
            if self.wheel_len == 0 {
                // `m` lives in the overflow heap beyond the horizon jump.
                let Some(Reverse(e)) = self.overflow.pop() else { return };
                out.push(e);
                continue;
            }
            let s = (m & MASK) as usize;
            let (it, iev) = self.inline[s].take().expect("bitmap bit set on empty slot");
            debug_assert_eq!(it, m);
            out.push((it, iev));
            self.wheel_len -= 1;
            let mut cur = self.more[s];
            while cur != NIL {
                let (t, ev, next) = self.pool[cur as usize];
                debug_assert_eq!(t, m);
                out.push((t, ev));
                self.pool[cur as usize].2 = self.free_head;
                self.free_head = cur;
                self.wheel_len -= 1;
                cur = next;
            }
            self.more[s] = NIL;
            self.words[s / 64] &= !(1 << (s % 64));
            if self.words[s / 64] == 0 {
                self.summary &= !(1 << (s / 64));
            }
        }
    }

    /// Pops the minimum `(time, event)` unconditionally (heap-`pop`
    /// equivalent, for lazy-deletion users that must discard stale
    /// entries beyond `now`). Does *not* advance `base` — the minimum may
    /// lie arbitrarily far in the future, and moving `base` past `now`
    /// would make legitimate pushes at `now` look like pushes into the
    /// past. A popped entry can always be pushed straight back (its time
    /// is `>= base` by the wheel invariant).
    pub fn pop_min(&mut self) -> Option<(Ns, T)> {
        let wheel_min = self.min_wheel_time();
        let over_min = self.overflow.peek().map(|&Reverse((t, _))| t);
        let m = match (wheel_min, over_min) {
            (None, None) => return None,
            // Overflow times are >= base + W, wheel times < base + W, so
            // the two ranges are disjoint and `<` picks the true minimum.
            (Some(a), Some(b)) if b < a => {
                let Reverse(e) = self.overflow.pop().expect("peeked");
                return Some(e);
            }
            (None, Some(_)) => {
                let Reverse(e) = self.overflow.pop().expect("peeked");
                return Some(e);
            }
            (Some(a), _) => a,
        };
        let s = (m & MASK) as usize;
        let (it, iev) = self.inline[s].expect("bitmap bit set on empty slot");
        debug_assert_eq!(it, m);
        self.wheel_len -= 1;
        if self.more[s] == NIL {
            // Dominant case: a one-event slot never touches the pool.
            self.inline[s] = None;
            self.words[s / 64] &= !(1 << (s % 64));
            if self.words[s / 64] == 0 {
                self.summary &= !(1 << (s / 64));
            }
            return Some((it, iev));
        }
        // All entries in one slot share the same time (one residue per
        // horizon window), so the minimum is decided by the event alone —
        // and equal-minimum entries are indistinguishable `Copy` values,
        // so which of them is removed is unobservable.
        let mut best = NIL; // NIL = the inline entry is the minimum so far
        let mut best_prev = NIL;
        let mut best_key = (it, iev);
        let mut prev = NIL;
        let mut cur = self.more[s];
        while cur != NIL {
            let c = self.pool[cur as usize];
            if (c.0, c.1) < best_key {
                best = cur;
                best_prev = prev;
                best_key = (c.0, c.1);
            }
            prev = cur;
            cur = c.2;
        }
        if best == NIL {
            // Inline wins: promote the chain head into the inline lane.
            let head = self.more[s];
            let (ht, hev, hnext) = self.pool[head as usize];
            self.inline[s] = Some((ht, hev));
            self.more[s] = hnext;
            self.pool[head as usize].2 = self.free_head;
            self.free_head = head;
            return Some((it, iev));
        }
        let next = self.pool[best as usize].2;
        if best_prev == NIL {
            self.more[s] = next;
        } else {
            self.pool[best_prev as usize].2 = next;
        }
        self.pool[best as usize].2 = self.free_head;
        self.free_head = best;
        Some(best_key)
    }

    /// Jumps `base` forward to `nb` (callers guarantee every live entry is
    /// at or after `nb`), migrating overflow events that the move brings
    /// inside the horizon.
    fn advance_base(&mut self, nb: Ns) {
        if nb <= self.base {
            return;
        }
        self.base = nb;
        while let Some(&Reverse((t, _))) = self.overflow.peek() {
            if t >= self.base + W as Ns {
                break;
            }
            let Reverse((t, ev)) = self.overflow.pop().expect("peeked");
            self.link(t, ev);
        }
    }

    /// Earliest time present in the slots, via the bitmaps: first set slot
    /// in circular order starting from `base`'s own slot.
    fn min_wheel_time(&self) -> Option<Ns> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.base & MASK) as usize;
        let s = self.next_set_slot(start)?;
        let dist = (s.wrapping_sub(start) & MASK as usize) as Ns;
        Some(self.base + dist)
    }

    fn next_set_slot(&self, start: usize) -> Option<usize> {
        let (w0, b0) = (start / 64, start % 64);
        // Bits at or after `start` within its own word.
        let word = self.words[w0] & (!0u64 << b0);
        if word != 0 {
            return Some(w0 * 64 + word.trailing_zeros() as usize);
        }
        // Whole words after w0.
        let later = if w0 + 1 < WORDS { self.summary & (!0u64 << (w0 + 1)) } else { 0 };
        if later != 0 {
            let w = later.trailing_zeros() as usize;
            return Some(w * 64 + self.words[w].trailing_zeros() as usize);
        }
        // Wrap: whole words before w0, then w0's bits below b0.
        let earlier = self.summary & !(!0u64 << w0);
        if earlier != 0 {
            let w = earlier.trailing_zeros() as usize;
            return Some(w * 64 + self.words[w].trailing_zeros() as usize);
        }
        let word = self.words[w0] & !(!0u64 << b0);
        if word != 0 {
            return Some(w0 * 64 + word.trailing_zeros() as usize);
        }
        None
    }
}

impl<T: Ord + Copy> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: the exact heap the wheel replaced.
    struct Ref(BinaryHeap<Reverse<(Ns, u32)>>);

    impl Ref {
        fn pop_due(&mut self, now: Ns) -> Option<(Ns, u32)> {
            match self.0.peek() {
                Some(&Reverse((t, _))) if t <= now => {
                    let Reverse(e) = self.0.pop().expect("peeked");
                    Some(e)
                }
                _ => None,
            }
        }
    }

    /// Splitmix64: deterministic test stimulus without external crates.
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The exact-wake regression test for the engine rewrite: across a
    /// long randomised schedule (including same-time ties, same-slot
    /// aliasing across the horizon, and far-overflow events), the wheel
    /// yields exactly the heap's `(time, event)` sequence and its
    /// `next_time` always equals the true minimum — the simulator never
    /// wakes early (polling) or late (missed event).
    #[test]
    fn matches_binary_heap_order_exactly() {
        for seed in [1u64, 7, 42] {
            let mut s = seed;
            let mut wheel = EventWheel::new();
            let mut reference = Ref(BinaryHeap::new());
            let mut now: Ns = 0;
            for round in 0..5_000u64 {
                // Mixed horizon: mostly near events, some at W-aliased
                // offsets, some far in overflow territory.
                let n = (mix(&mut s) % 4) as usize;
                for _ in 0..n {
                    let r = mix(&mut s);
                    let dt = match r % 10 {
                        0..=5 => r % 64,             // near
                        6..=7 => (r % 8) * W as u64, // same-slot alias
                        _ => W as u64 + r % 100_000, // deep overflow
                    };
                    let ev = (mix(&mut s) % 8) as u32; // force ties
                    wheel.push(now + dt, ev);
                    reference.0.push(Reverse((now + dt, ev)));
                }
                assert_eq!(
                    wheel.next_time(),
                    reference.0.peek().map(|&Reverse((t, _))| t),
                    "seed {seed} round {round}: wake time must be exact"
                );
                loop {
                    let (a, b) = (wheel.pop_due(now), reference.pop_due(now));
                    assert_eq!(a, b, "seed {seed} round {round} at {now}");
                    if a.is_none() {
                        break;
                    }
                }
                assert_eq!(wheel.len(), reference.0.len());
                // Advance like the simulator: to the next event or by a
                // small random hop.
                now = match wheel.next_time() {
                    Some(t) if mix(&mut s) % 2 == 0 => t,
                    _ => now + 1 + mix(&mut s) % 32,
                };
            }
        }
    }

    /// The bulk drain must return the exact `pop_due` result *set* (order
    /// within a slot is the caller's problem) and leave the wheel in a
    /// state where pushes at `now` stay legal — across near events, slot
    /// aliasing, heavy same-time pileups (the GUPS pattern), and overflow.
    #[test]
    fn drain_due_unordered_matches_pop_due_set() {
        for seed in [2u64, 13, 99] {
            let mut s = seed;
            let mut a = EventWheel::new();
            let mut b = EventWheel::new();
            let mut now: Ns = 0;
            for round in 0..2_000u64 {
                for _ in 0..(mix(&mut s) % 6) {
                    let r = mix(&mut s);
                    let dt = match r % 10 {
                        // Same-time pileup: many events on one slot.
                        0..=4 => 1,
                        5..=6 => r % 64,
                        7..=8 => (r % 4) * W as u64,
                        _ => W as u64 + r % 50_000,
                    };
                    let ev = (mix(&mut s) % 512) as u32;
                    a.push(now + dt, ev);
                    b.push(now + dt, ev);
                }
                let mut drained = Vec::new();
                a.drain_due_unordered(now, &mut drained);
                drained.sort_unstable();
                let mut popped = Vec::new();
                while let Some(e) = b.pop_due(now) {
                    popped.push(e);
                }
                assert_eq!(drained, popped, "seed {seed} round {round} at {now}");
                assert_eq!(a.len(), b.len());
                assert_eq!(a.next_time(), b.next_time());
                // Both wheels must accept a push at `now` after the drain.
                a.push(now, 7);
                b.push(now, 7);
                now += 1 + mix(&mut s) % 96;
            }
        }
    }

    #[test]
    fn pops_events_pushed_at_now_mid_drain() {
        // The system loop schedules follow-on events at `now` while
        // draining; they must come out in the same drain.
        let mut w = EventWheel::new();
        w.push(10, 5u32);
        assert_eq!(w.pop_due(9), None);
        assert_eq!(w.pop_due(10), Some((10, 5)));
        w.push(10, 3);
        w.push(10, 4);
        assert_eq!(w.pop_due(10), Some((10, 3)), "ties pop in event order");
        assert_eq!(w.pop_due(10), Some((10, 4)));
        assert_eq!(w.pop_due(10), None);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_min_ignores_due_time_and_allows_repush() {
        let mut w = EventWheel::new();
        w.push(100, 1u32);
        w.push(40, 2);
        w.push(5 * W as u64, 3);
        assert_eq!(w.pop_min(), Some((40, 2)), "min pops regardless of now");
        // Lazy-deletion pattern: inspect, then push straight back.
        let (t, ev) = w.pop_min().unwrap();
        assert_eq!((t, ev), (100, 1));
        w.push(t, ev);
        assert_eq!(w.pop_min(), Some((100, 1)));
        assert_eq!(w.pop_min(), Some((5 * W as u64, 3)), "overflow drains too");
        assert_eq!(w.pop_min(), None);
    }

    #[test]
    fn event_exactly_at_the_horizon_goes_to_overflow_and_pops_in_order() {
        let w_ns = W as u64;
        let mut w = EventWheel::new();
        // t == base + W is the first non-representable slot time (it
        // would alias slot 0, base's own slot): it must take the
        // overflow path, not corrupt the wheel.
        w.push(w_ns, 1u32);
        w.push(w_ns - 1, 2); // last in-horizon slot
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_time(), Some(w_ns - 1));
        assert_eq!(w.pop_due(w_ns), Some((w_ns - 1, 2)));
        assert_eq!(w.pop_due(w_ns), Some((w_ns, 1)), "horizon event migrates and pops");
        // The same boundary must hold against the advanced base (w_ns).
        w.push(2 * w_ns, 3); // exactly new base + W: overflow again
        w.push(2 * w_ns - 1, 4);
        assert_eq!(w.next_time(), Some(2 * w_ns - 1));
        assert_eq!(w.pop_due(2 * w_ns), Some((2 * w_ns - 1, 4)));
        assert_eq!(w.pop_due(2 * w_ns), Some((2 * w_ns, 3)));
        assert!(w.is_empty());
    }

    #[test]
    fn push_at_now_stays_legal_as_base_advances() {
        let mut w = EventWheel::new();
        w.push(50, 1u32);
        // Nothing due at 49; base still advances as far as `now` allows,
        // and a push at exactly t == base must then be accepted and sort
        // ahead of the later event.
        assert_eq!(w.pop_due(49), None);
        w.push(49, 2);
        assert_eq!(w.pop_due(49), Some((49, 2)));
        assert_eq!(w.pop_due(50), Some((50, 1)));
        // After a pop advanced base to the popped time, t == base again.
        w.push(50, 3);
        assert_eq!(w.pop_due(50), Some((50, 3)));
        assert!(w.is_empty());
    }

    /// The controller due-queue discipline: cancellations are lazy (stale
    /// entries stay queued; `pop_min` discards them on the way out, and a
    /// live-but-not-due head is pushed straight back). Across seeded
    /// bursts of pushes and cancels the wheel must pop the exact sequence
    /// of the reference heap under the same discipline.
    #[test]
    fn lazy_clean_pop_min_survives_cancellation_bursts() {
        use std::collections::HashSet;
        for seed in [3u64, 11, 2026] {
            let mut s = seed;
            let mut wheel = EventWheel::new();
            let mut reference = BinaryHeap::new();
            let mut live: Vec<(Ns, u32)> = Vec::new();
            let mut canceled: HashSet<u32> = HashSet::new();
            let mut next_id = 0u32;
            let mut now: Ns = 0;
            for _round in 0..400 {
                // Push burst at mixed horizons; unique ids keep the two
                // pop sequences directly comparable.
                for _ in 0..(mix(&mut s) % 6) {
                    let r = mix(&mut s);
                    let dt = match r % 3 {
                        0 => r % 256,
                        1 => r % W as u64,
                        _ => W as u64 + r % 10_000,
                    };
                    let id = next_id;
                    next_id += 1;
                    wheel.push(now + dt, id);
                    reference.push(Reverse((now + dt, id)));
                    live.push((now + dt, id));
                }
                // Cancellation burst: mark a random subset stale without
                // touching either queue.
                for _ in 0..(mix(&mut s) % 4) {
                    if live.is_empty() {
                        break;
                    }
                    let i = (mix(&mut s) % live.len() as u64) as usize;
                    canceled.insert(live.swap_remove(i).1);
                }
                now += 1 + mix(&mut s) % 512;
                loop {
                    match wheel.pop_min() {
                        Some((t, id)) if canceled.contains(&id) => {
                            assert_eq!(reference.pop(), Some(Reverse((t, id))), "seed {seed}");
                        }
                        Some((t, id)) if t <= now => {
                            assert_eq!(reference.pop(), Some(Reverse((t, id))), "seed {seed}");
                            live.retain(|&(_, l)| l != id);
                        }
                        Some((t, id)) => {
                            // Not due: push straight back (pop_min does
                            // not advance base, so this must stay legal).
                            wheel.push(t, id);
                            break;
                        }
                        None => break,
                    }
                }
                assert_eq!(wheel.len(), reference.len(), "seed {seed}");
            }
            // Final full drain: both queues agree to the last entry.
            while let Some(e) = wheel.pop_min() {
                assert_eq!(reference.pop(), Some(Reverse(e)), "seed {seed}");
            }
            assert!(reference.pop().is_none(), "seed {seed}");
        }
    }

    #[test]
    fn overflow_events_migrate_into_the_wheel() {
        let mut w = EventWheel::new();
        let far = 3 * W as u64 + 17;
        w.push(far, 1u32);
        w.push(5, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_time(), Some(5));
        assert_eq!(w.pop_due(5), Some((5, 2)));
        assert_eq!(w.next_time(), Some(far));
        // Nothing due for a long while; base advances with `now`.
        assert_eq!(w.pop_due(far - 1), None);
        assert_eq!(w.pop_due(far), Some((far, 1)));
        assert!(w.is_empty());
    }
}
