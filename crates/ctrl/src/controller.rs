//! The stack-level memory controller: address decode, per-channel
//! schedulers, and the tick loop.
//!
//! The controller mirrors the device's lane sharding (see
//! `fgdram_dram::DevLane`): each [`CtrlLane`] owns the schedulers, wake
//! wheel, completion buffer, and statistics for one contiguous
//! bus-aligned channel slice. A tick runs in three phases — collect due
//! channels per lane (serial, cheap), run every lane's pass (moved to the
//! worker pool when enough channels are due, inline otherwise), merge
//! completions/stats/next-wake in lane order (serial). Lanes never read
//! each other's state and the merge is order-fixed, so output is
//! byte-identical at any thread count.

use fgdram_dram::{DevLane, DramDevice, LaneDevice, ProtocolError};
use fgdram_model::addr::{AddressMapper, Location, MemRequest};
use fgdram_model::cmd::{Completion, TimedCommand};
use fgdram_model::config::{ConfigError, CtrlConfig, DramConfig};
use fgdram_model::units::Ns;
use fgdram_model::wheel::EventWheel;

use crate::pool::{LaneJob, TickPool};
use crate::scheduler::{ChannelSched, Pending};
use crate::stats::CtrlStats;

/// Minimum total due channels in a tick before the pass phase is worth
/// scattering to worker threads; below this the condvar round trip costs
/// more than the passes themselves.
const PARALLEL_DUE_THRESHOLD: usize = 16;

/// One engine lane of the controller: everything the pass phase touches
/// for a contiguous slice of channels, owned by value so a worker thread
/// can run it with no synchronisation.
#[derive(Debug)]
pub(crate) struct CtrlLane {
    base_ch: u32,
    scheds: Vec<ChannelSched>,
    /// Lazy wake-time queue over this lane's schedulers, keyed by
    /// **global** channel id (see the invariant note on [`Controller`]).
    due: EventWheel<u32>,
    /// Channels due this tick, ascending and deduped (reusable scratch).
    due_scratch: Vec<u32>,
    /// Raw `(time, channel)` entries drained from the wheel each tick
    /// (reusable scratch for the unordered bulk drain).
    drain_scratch: Vec<(Ns, u32)>,
    /// One bit per lane channel, set while the channel is due this tick:
    /// walking the set bits yields the ascending deduped due list without
    /// sorting (the wheel drain is unordered).
    due_bits: Vec<u64>,
    /// Completions produced by this lane's passes, drained by the merge
    /// phase each tick (pre-sized; no steady-state allocation).
    out: Vec<Completion>,
    /// Pass-side statistics (row hits, precharge kinds, refreshes, read
    /// latency). Enqueue-side stats live on the controller front end.
    stats: CtrlStats,
    /// Earliest time any of this lane's channels next needs attention.
    next: Ns,
    /// First protocol error of the pass, if any. Recorded rather than
    /// returned so a worker lane's pass has an infallible signature; the
    /// merge phase surfaces the first error in lane order. A
    /// `ProtocolError` is terminal (the system aborts the run), so the
    /// serial engine's abort-mid-tick and the parallel engine's
    /// finish-then-report differ only after determinism stops mattering.
    err: Option<ProtocolError>,
}

impl CtrlLane {
    fn effective_next(&self, ch: u32) -> Ns {
        let s = &self.scheds[(ch - self.base_ch) as usize];
        s.next_try.max(s.stalled_until)
    }

    /// Phase A: pops every wheel entry due at `now`; valid ones name the
    /// channels to run. A stale entry's channel has a valid entry
    /// elsewhere in the wheel (pushed when its wake time changed), so
    /// dropping the stale one loses nothing. Returns the due count (the
    /// parallel gate's input).
    fn collect_due(&mut self, now: Ns) -> usize {
        self.due_scratch.clear();
        self.drain_scratch.clear();
        // Bulk drain: a GUPS-like workload keeps every grain busy, which
        // parks hundreds of wake entries on the *same* nanosecond — a
        // per-entry `pop_due` loop re-scans that slot chain on every pop
        // (O(k^2) per tick). The unordered drain unlinks each chain once;
        // the stale filter is order-independent and the bitmap walk below
        // restores the exact serial order (ascending, deduped) without a
        // sort, so the result is identical.
        self.due.drain_due_unordered(now, &mut self.drain_scratch);
        for i in 0..self.drain_scratch.len() {
            let (t, ch) = self.drain_scratch[i];
            if t == self.effective_next(ch) {
                let local = (ch - self.base_ch) as usize;
                self.due_bits[local / 64] |= 1 << (local % 64);
            }
        }
        // Ascending channel order, deduped: lanes are contiguous ascending
        // slices, so lane-order concatenation of these lists reproduces the
        // exact global issue order of the serial engine.
        for w in 0..self.due_bits.len() {
            let mut bits = self.due_bits[w];
            self.due_bits[w] = 0;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                self.due_scratch.push(self.base_ch + (w * 64) as u32 + b);
            }
        }
        self.due_scratch.len()
    }

    /// Phase B: runs the pass for every due channel against this lane's
    /// device shard, then recomputes `next` (lazily cleaning stale wheel
    /// tops — a valid top goes straight back; `pop_min` leaves `base` at
    /// its time).
    pub(crate) fn run_pass(
        &mut self,
        dev: &mut DevLane,
        trace: Option<&mut Vec<TimedCommand>>,
        now: Ns,
    ) {
        let mut ld = LaneDevice::new(dev, trace);
        for i in 0..self.due_scratch.len() {
            let ch = self.due_scratch[i];
            let sched = &mut self.scheds[(ch - self.base_ch) as usize];
            if let Err(e) = sched.pass(&mut ld, now, &mut self.stats, &mut self.out) {
                self.err = Some(e);
                break;
            }
            self.due.push(sched.next_try.max(sched.stalled_until), ch);
        }
        self.next = loop {
            let Some((t, ch)) = self.due.pop_min() else { break Ns::MAX };
            if t == self.effective_next(ch) {
                self.due.push(t, ch);
                break t;
            }
        };
    }
}

/// GPU memory controller for one DRAM stack.
///
/// The controller owns request queues and scheduling; the [`DramDevice`]
/// (owned by the caller) owns timing truth. Every command is issued at a
/// time the device itself reported legal, so a [`ProtocolError`] escaping
/// [`Controller::tick`] indicates a scheduler bug, not a workload effect.
///
/// # Examples
///
/// ```
/// use fgdram_ctrl::Controller;
/// use fgdram_dram::DramDevice;
/// use fgdram_model::addr::{MemRequest, PhysAddr, ReqId};
/// use fgdram_model::config::{CtrlConfig, DramConfig, DramKind};
///
/// let cfg = DramConfig::new(DramKind::Fgdram);
/// let mut dev = DramDevice::new(cfg.clone());
/// let mut ctrl = Controller::new(&cfg, CtrlConfig::default())?;
/// ctrl.try_enqueue(MemRequest { id: ReqId(1), addr: PhysAddr(0x1000), is_write: false }, 0);
/// let mut done = Vec::new();
/// let mut now = 0;
/// while done.is_empty() {
///     now = ctrl.tick(&mut dev, now, &mut done)?.max(now + 1);
/// }
/// assert_eq!(done[0].req, ReqId(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Controller {
    mapper: AddressMapper,
    /// Per-lane scheduler state. `None` only while a lane is checked out
    /// to a worker during the parallel pass phase; every other method
    /// expects lanes home.
    lanes: Vec<Option<Box<CtrlLane>>>,
    /// Owning lane index per channel (the enqueue-path routing table).
    lane_of: Vec<u16>,
    seq: u64,
    /// Enqueue-side statistics (accepted/rejected/queue depth); the pass
    /// side accumulates per lane and [`Self::stats`] merges on demand.
    front_stats: CtrlStats,
    /// Graceful degradation: grains excluded from the address map, one
    /// bit per channel (FGDRAM's 512 grains fit in 8 words, so the `route`
    /// probe on the hot enqueue path stays in one cache line). With
    /// nothing excluded, `route` is exactly `mapper.decode` and the faults
    /// machinery is invisible to scheduling.
    excluded: Vec<u64>,
    /// Channels still in the map, ascending; the remap target table.
    live: Vec<u32>,
    /// Total queued requests, maintained incrementally: +1 per accepted
    /// enqueue, -1 per completion (every dequeue emits exactly one).
    ///
    /// Each lane's wake wheel holds entries `(t, ch)` valid iff `t`
    /// equals channel `ch`'s current effective wake time
    /// (`next_try.max(stalled_until)`). A fresh entry is pushed whenever
    /// that time changes, so every channel always has exactly one valid
    /// entry; stale ones are discarded as they surface. This keeps
    /// per-tick work O(due + stale) instead of O(channels) — ruinous with
    /// FGDRAM's 512 grains, of which a handful are due. An [`EventWheel`]
    /// rather than a `BinaryHeap`: pops come out in the same ascending
    /// `(t, ch)` order, but push/pop are O(1) instead of a heap sift.
    /// Wheel invariant `t >= base` holds because every pushed time is
    /// `>= now` (`enqueue` clamps `next_try` no lower than `now`, passes
    /// set `next_try > now`) and `base` never passes the minimum entry;
    /// every lane's base advances identically because `collect_due` runs
    /// on all lanes every tick.
    total_pending: usize,
    /// Worker pool for the pass phase; `None` when single-lane.
    pool: Option<TickPool>,
    /// Reusable per-worker job slots for scatter/gather (index = lane-1).
    job_scratch: Vec<Option<LaneJob>>,
}

impl Controller {
    /// Builds a single-lane (serial) controller for `dram` with policy
    /// `ctrl`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the DRAM geometry is invalid.
    pub fn new(dram: &DramConfig, ctrl: CtrlConfig) -> Result<Self, ConfigError> {
        Self::with_threads(dram, ctrl, 1)
    }

    /// Builds a controller sharded for `engine_threads` workers. The lane
    /// count is clamped to the command-channel count (see
    /// `DramConfig::lane_plan`), so any value is safe and `1` reproduces
    /// the serial engine exactly. The paired [`DramDevice`] must be built
    /// with the same thread count (`DramDevice::with_lanes`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the DRAM geometry is invalid.
    pub fn with_threads(
        dram: &DramConfig,
        ctrl: CtrlConfig,
        engine_threads: usize,
    ) -> Result<Self, ConfigError> {
        let mapper = AddressMapper::new(dram)?;
        let channels = dram.channels;
        let plan = dram.lane_plan(engine_threads);
        let mut lane_of = vec![0u16; channels];
        let mut lanes = Vec::with_capacity(plan.len());
        for (li, &(base, width)) in plan.iter().enumerate() {
            let scheds = (base..base + width)
                .map(|ch| {
                    // Stagger refresh across channels to avoid refresh storms.
                    // Phases must stay in [0, t_refi): without the modulo the
                    // last channel gets phase == t_refi, pushing its first
                    // refresh a full interval late.
                    let phase =
                        dram.timing.t_refi * (ch as u64 + 1) / channels as u64 % dram.timing.t_refi;
                    ChannelSched::new(
                        ch,
                        dram.banks_per_channel,
                        dram.atoms_per_activation() as u32,
                        dram.is_grain_based(),
                        ctrl,
                        dram.timing.t_refi,
                        phase,
                        dram.slices_per_row() as usize
                            * if dram.salp { dram.subarrays_per_bank } else { 1 },
                    )
                })
                .collect();
            for ch in base..base + width {
                lane_of[ch as usize] = li as u16;
            }
            lanes.push(Some(Box::new(CtrlLane {
                base_ch: base,
                scheds,
                // Every scheduler starts with an effective wake time of 0.
                due: {
                    let mut w = EventWheel::new();
                    (base..base + width).for_each(|ch| w.push(0, ch));
                    w
                },
                due_scratch: Vec::with_capacity(width as usize),
                // Each channel keeps one valid wheel entry plus a bounded
                // number of stale ones; 2x width covers the steady state.
                drain_scratch: Vec::with_capacity(2 * width as usize),
                due_bits: vec![0u64; (width as usize).div_ceil(64)],
                // Bounded by what one tick's passes can complete; sized so
                // growth stops well before the measurement window.
                out: Vec::with_capacity(256),
                stats: CtrlStats::new(),
                next: 0,
                err: None,
            })));
        }
        let workers = lanes.len().saturating_sub(1);
        Ok(Controller {
            mapper,
            lanes,
            lane_of,
            seq: 0,
            front_stats: CtrlStats::new(),
            excluded: vec![0u64; channels.div_ceil(64)],
            live: (0..channels as u32).collect(),
            total_pending: 0,
            pool: (workers > 0).then(|| TickPool::new(workers)),
            job_scratch: (0..workers).map(|_| None).collect(),
        })
    }

    /// Number of engine lanes the controller is sharded into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Whether `ch`'s grain has been excluded from the address map.
    #[inline]
    fn is_excluded(&self, ch: u32) -> bool {
        self.excluded[ch as usize / 64] & (1u64 << (ch % 64)) != 0
    }

    /// The scheduler owning global channel `ch`.
    #[inline]
    fn sched(&self, ch: u32) -> &ChannelSched {
        let lane =
            self.lanes[self.lane_of[ch as usize] as usize].as_deref().expect("lane checked out");
        &lane.scheds[(ch - lane.base_ch) as usize]
    }

    /// The owning lane of `ch`, mutably.
    #[inline]
    fn lane_of_mut(&mut self, ch: u32) -> &mut CtrlLane {
        self.lanes[self.lane_of[ch as usize] as usize].as_deref_mut().expect("lane checked out")
    }

    /// The controller's address mapping.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics: the enqueue front end merged with every
    /// lane's pass-side stats. Counter sums and histogram bucket adds are
    /// integer-exact and commutative, so the result is independent of the
    /// lane split. O(channels·ε) — fine for reports and telemetry epochs;
    /// the per-step watchdog uses [`Self::progress_probe`] instead.
    pub fn stats(&self) -> CtrlStats {
        let mut s = self.front_stats.clone();
        for lane in &self.lanes {
            s.merge(&lane.as_deref().expect("lane checked out").stats);
        }
        s
    }

    /// Cheap monotone progress witness for the stall watchdog: accepted
    /// requests plus issued refreshes, O(lanes).
    pub fn progress_probe(&self) -> u64 {
        let mut p = self.front_stats.reads_accepted.get() + self.front_stats.writes_accepted.get();
        for lane in &self.lanes {
            p += lane.as_deref().expect("lane checked out").stats.refreshes.get();
        }
        p
    }

    /// Zeroes accumulated statistics (end-of-warmup bookkeeping).
    pub fn reset_stats(&mut self) {
        self.front_stats = CtrlStats::new();
        for lane in &mut self.lanes {
            lane.as_deref_mut().expect("lane checked out").stats = CtrlStats::new();
        }
    }

    /// Total queued requests. O(1): maintained incrementally, because the
    /// system consults this every simulation step.
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.total_pending,
            self.lanes
                .iter()
                .flat_map(|l| l.as_deref().expect("lane checked out").scheds.iter())
                .map(ChannelSched::pending)
                .sum::<usize>(),
            "pending counter diverged from the queues"
        );
        self.total_pending
    }

    /// Decodes `addr` and remaps it off any excluded grain: requests whose
    /// home grain has been excluded are served round-robin by the
    /// remaining live grains (the simulator models timing, not contents,
    /// so the aliased capacity costs nothing extra).
    pub fn route(&self, addr: fgdram_model::addr::PhysAddr) -> Location {
        let mut loc = self.mapper.decode(addr);
        if self.is_excluded(loc.channel) {
            loc.channel = self.live[loc.channel as usize % self.live.len()];
        }
        loc
    }

    /// Removes `channel` from the address map. Returns `false` (a no-op)
    /// when it is already excluded or is the last live grain; queued and
    /// in-flight requests on the grain drain normally either way.
    pub fn exclude_channel(&mut self, channel: u32) -> bool {
        let ch = channel as usize;
        if ch >= self.lane_of.len() || self.is_excluded(channel) || self.live.len() == 1 {
            return false;
        }
        self.excluded[ch / 64] |= 1u64 << (channel % 64);
        self.live.retain(|&c| c != channel);
        true
    }

    /// Grains currently excluded from the address map.
    pub fn excluded_count(&self) -> usize {
        self.excluded.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fault injection: `channel` issues nothing before `until`.
    pub fn stall_channel(&mut self, channel: u32, until: Ns) {
        if (channel as usize) >= self.lane_of.len() {
            return;
        }
        let lane = self.lane_of_mut(channel);
        let sched = &mut lane.scheds[(channel - lane.base_ch) as usize];
        let before = sched.next_try.max(sched.stalled_until);
        sched.stalled_until = sched.stalled_until.max(until);
        let after = sched.next_try.max(sched.stalled_until);
        if after != before {
            lane.due.push(after, channel);
        }
    }

    /// Fault injection: wedges every channel until `until` (pass
    /// `Ns::MAX` for a permanent wedge the watchdog must catch).
    pub fn stall_all(&mut self, until: Ns) {
        for ch in 0..self.lane_of.len() as u32 {
            self.stall_channel(ch, until);
        }
    }

    /// Whether the target channel queue can accept `req` right now.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let loc = self.route(req.addr);
        self.sched(loc.channel).can_accept(req.is_write)
    }

    /// Enqueues `req`, returning `false` (and counting a rejection) when
    /// the target queue is full — the caller should retry later.
    pub fn try_enqueue(&mut self, req: MemRequest, now: Ns) -> bool {
        let loc = self.route(req.addr);
        if !self.sched(loc.channel).can_accept(req.is_write) {
            self.front_stats.rejected.incr();
            return false;
        }
        self.seq += 1;
        if req.is_write {
            self.front_stats.writes_accepted.incr();
        } else {
            self.front_stats.reads_accepted.incr();
        }
        let seq = self.seq;
        let lane = self.lane_of_mut(loc.channel);
        let sched = &mut lane.scheds[(loc.channel - lane.base_ch) as usize];
        let before = sched.next_try.max(sched.stalled_until);
        sched.enqueue(Pending::new(req, loc, now, seq), now);
        let depth = sched.pending() as u64;
        let after = sched.next_try.max(sched.stalled_until);
        if after != before {
            lane.due.push(after, loc.channel);
        }
        self.total_pending += 1;
        self.front_stats.queue_depth.record(depth);
        true
    }

    /// Runs every channel scheduler that is due at `now`, appending data
    /// completions to `out`. Returns the earliest time any channel next
    /// needs attention.
    ///
    /// Three phases: per-lane due collection (serial), per-lane passes
    /// (scattered to the worker pool when at least
    /// [`PARALLEL_DUE_THRESHOLD`] channels are due and tracing is off;
    /// inline otherwise), and an order-fixed merge. Because no lane reads
    /// another lane's state and the merge walks lanes in base-channel
    /// order, the result is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] here means the scheduler issued an illegal
    /// command — an internal bug, never a workload condition. (The
    /// parallel engine finishes every lane before reporting the first
    /// error in lane order; the error itself is terminal either way.)
    pub fn tick(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        out: &mut Vec<Completion>,
    ) -> Result<Ns, ProtocolError> {
        debug_assert_eq!(dev.lane_count(), self.lanes.len(), "device/controller lane mismatch");
        // Phase A: collect due channels per lane (cheap; also the gate
        // input for the parallel decision).
        let mut total_due = 0;
        for lane in &mut self.lanes {
            total_due += lane.as_deref_mut().expect("lane checked out").collect_due(now);
        }
        // Phase B: run the passes.
        let (dev_lanes, mut trace) = dev.lane_parts();
        let parallel =
            self.pool.is_some() && trace.is_none() && total_due >= PARALLEL_DUE_THRESHOLD;
        if parallel {
            let pool = self.pool.as_ref().expect("pool checked above");
            for (slot, (lane, dlane)) in self
                .job_scratch
                .iter_mut()
                .zip(self.lanes[1..].iter_mut().zip(dev_lanes[1..].iter_mut()))
            {
                *slot = Some(LaneJob {
                    ctrl: lane.take().expect("lane checked out"),
                    dev: dlane.take().expect("device lane checked out"),
                    now,
                });
            }
            pool.scatter(&mut self.job_scratch);
            // Lane 0 runs on this thread while the workers run theirs.
            self.lanes[0].as_deref_mut().expect("lane checked out").run_pass(
                dev_lanes[0].as_deref_mut().expect("device lane checked out"),
                None,
                now,
            );
            pool.gather(&mut self.job_scratch);
            for (slot, (lane, dlane)) in self
                .job_scratch
                .iter_mut()
                .zip(self.lanes[1..].iter_mut().zip(dev_lanes[1..].iter_mut()))
            {
                let job = slot.take().expect("gathered job");
                *lane = Some(job.ctrl);
                *dlane = Some(job.dev);
            }
        } else {
            for (slot, dlane) in self.lanes.iter_mut().zip(dev_lanes.iter_mut()) {
                slot.as_deref_mut().expect("lane checked out").run_pass(
                    dlane.as_deref_mut().expect("device lane checked out"),
                    trace.as_deref_mut(),
                    now,
                );
            }
        }
        // Phase C: merge in lane (= ascending channel) order.
        let mut next = Ns::MAX;
        let mut err = None;
        for slot in &mut self.lanes {
            let lane = slot.as_deref_mut().expect("lane checked out");
            if let Some(e) = lane.err.take() {
                err.get_or_insert(e);
            }
            // Every completion is exactly one request leaving a queue.
            self.total_pending -= lane.out.len();
            out.append(&mut lane.out);
            next = next.min(lane.next);
        }
        match err {
            Some(e) => Err(e),
            None => Ok(next),
        }
    }

    /// Test-only variant of [`Self::tick`] that runs the lane passes in
    /// *descending* lane order — the worst-case reordering a racing
    /// worker could produce. Lanes share no state within a fence, so the
    /// output must be byte-identical to the ascending-order tick; the
    /// fence-protocol property test asserts exactly that.
    #[cfg(test)]
    fn tick_lanes_reversed(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        out: &mut Vec<Completion>,
    ) -> Result<Ns, ProtocolError> {
        for lane in &mut self.lanes {
            lane.as_deref_mut().expect("lane checked out").collect_due(now);
        }
        let (dev_lanes, _trace) = dev.lane_parts();
        for (slot, dlane) in self.lanes.iter_mut().zip(dev_lanes.iter_mut()).rev() {
            slot.as_deref_mut().expect("lane checked out").run_pass(
                dlane.as_deref_mut().expect("device lane checked out"),
                None,
                now,
            );
        }
        // The merge stays in ascending lane order regardless.
        let mut next = Ns::MAX;
        let mut err = None;
        for slot in &mut self.lanes {
            let lane = slot.as_deref_mut().expect("lane checked out");
            if let Some(e) = lane.err.take() {
                err.get_or_insert(e);
            }
            self.total_pending -= lane.out.len();
            out.append(&mut lane.out);
            next = next.min(lane.next);
        }
        match err {
            Some(e) => Err(e),
            None => Ok(next),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::{PhysAddr, ReqId};
    use fgdram_model::config::DramKind;

    fn setup(kind: DramKind) -> (DramDevice, Controller) {
        let cfg = DramConfig::new(kind);
        let dev = DramDevice::new(cfg.clone());
        let ctrl = Controller::new(&cfg, CtrlConfig::default()).unwrap();
        (dev, ctrl)
    }

    fn run_until_drained(
        dev: &mut DramDevice,
        ctrl: &mut Controller,
        limit: Ns,
    ) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut now = 0;
        while ctrl.pending() > 0 && now < limit {
            let next = ctrl.tick(dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        out
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let req = MemRequest { id: ReqId(1), addr: PhysAddr(0), is_write: false };
        assert!(ctrl.try_enqueue(req, 0));
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        // ACT at ~0, RD at tRCD=16, data end at 16+tCL+tBURST = 34.
        assert_eq!(done[0].at, 34);
        assert_eq!(ctrl.stats().activates.get(), 1);
    }

    #[test]
    fn row_hits_are_reordered_ahead_of_conflicts() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        // Three requests to one bank: row A, row B (conflict), row A again.
        let a0 = m.encode(Location { channel: 0, bank: 0, row: 10, col: 0 });
        let b0 = m.encode(Location { channel: 0, bank: 0, row: 20, col: 0 });
        let a1 = m.encode(Location { channel: 0, bank: 0, row: 10, col: 1 });
        for (i, addr) in [a0, b0, a1].into_iter().enumerate() {
            assert!(ctrl.try_enqueue(MemRequest { id: ReqId(i as u64), addr, is_write: false }, 0));
        }
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 3);
        // FR-FCFS: the second row-A access (id 2) completes before row B.
        let pos = |id: u64| done.iter().position(|c| c.req == ReqId(id)).unwrap();
        assert!(pos(2) < pos(1), "row hit should bypass the conflict");
        assert!(ctrl.stats().row_hits.get() >= 1);
        // The last row-10 hit sees no further reuse, so the controller
        // closes the row via auto-precharge instead of an explicit
        // conflict precharge.
        assert!(ctrl.stats().auto_precharges.get() + ctrl.stats().conflict_precharges.get() >= 1);
    }

    #[test]
    fn writes_drain_in_batches() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        // Fill past the high watermark with writes to one channel.
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let mut sent = 0;
        'outer: for row in 0..128u32 {
            for col in 0..4u32 {
                let addr = m.encode(Location { channel: 1, bank: (row % 4), row, col });
                if !ctrl.try_enqueue(MemRequest { id: ReqId(sent), addr, is_write: true }, 0) {
                    break 'outer;
                }
                sent += 1;
            }
        }
        // Enough to cross the high watermark and trigger batch draining.
        assert!(sent as usize >= CtrlConfig::default().write_high_watermark, "filled {sent}");
        let done = run_until_drained(&mut dev, &mut ctrl, 100_000);
        assert_eq!(done.len(), sent as usize);
        assert!(ctrl.stats().drain_entries.get() >= 1);
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let (_, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let mut accepted = 0u64;
        for i in 0..100_000u64 {
            let addr = m.encode(Location {
                channel: 0,
                bank: (i % 4) as u32,
                row: (i / 4) as u32 % 16_384,
                col: 0,
            });
            if ctrl.try_enqueue(MemRequest { id: ReqId(i), addr, is_write: false }, 0) {
                accepted += 1;
            } else {
                break;
            }
        }
        // read_queue_depth plus the crossbar overflow queue.
        let cfg = CtrlConfig::default();
        assert_eq!(accepted as usize, cfg.read_queue_depth + cfg.xbar_queue_depth);
        assert_eq!(ctrl.stats().rejected.get(), 1);
        assert!(!ctrl.can_accept(&MemRequest {
            id: ReqId(0),
            addr: m.encode(Location { channel: 0, bank: 0, row: 0, col: 0 }),
            is_write: false
        }));
    }

    #[test]
    fn fgdram_grain_conflicts_are_resolved() {
        let (mut dev, mut ctrl) = setup(DramKind::Fgdram);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        // Pseudobank 0 row 3 and pseudobank 1 row 7 share subarray 0.
        let a = m.encode(Location { channel: 0, bank: 0, row: 3, col: 0 });
        let b = m.encode(Location { channel: 0, bank: 1, row: 7, col: 0 });
        ctrl.try_enqueue(MemRequest { id: ReqId(0), addr: a, is_write: false }, 0);
        ctrl.try_enqueue(MemRequest { id: ReqId(1), addr: b, is_write: false }, 0);
        let done = run_until_drained(&mut dev, &mut ctrl, 100_000);
        assert_eq!(done.len(), 2, "both requests complete despite the conflict");
    }

    #[test]
    fn refresh_happens_periodically() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let mut out = Vec::new();
        let mut now = 0;
        // Idle controller for ~3 refresh intervals.
        while now < 12_000 {
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        let expected = dev.config().channels as u64 * 2; // >= 2 per channel
        assert!(
            ctrl.stats().refreshes.get() >= expected,
            "refreshes {} < {expected}",
            ctrl.stats().refreshes.get()
        );
    }

    #[test]
    fn excluded_channel_remaps_to_live_grains() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let addr = m.encode(Location { channel: 3, bank: 0, row: 10, col: 0 });
        assert_eq!(ctrl.route(addr).channel, 3);
        assert!(ctrl.exclude_channel(3));
        assert!(!ctrl.exclude_channel(3), "double exclusion is a no-op");
        assert_eq!(ctrl.excluded_count(), 1);
        let re = ctrl.route(addr);
        assert_ne!(re.channel, 3, "excluded grain must not be routed to");
        // Requests to the dead grain still complete, on the remap target.
        assert!(ctrl.try_enqueue(MemRequest { id: ReqId(1), addr, is_write: false }, 0));
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn cannot_exclude_the_last_live_grain() {
        let (_, mut ctrl) = setup(DramKind::QbHbm);
        let channels = DramConfig::new(DramKind::QbHbm).channels as u32;
        for ch in 0..channels - 1 {
            assert!(ctrl.exclude_channel(ch));
        }
        assert!(!ctrl.exclude_channel(channels - 1), "last grain must stay in the map");
        assert_eq!(ctrl.excluded_count(), channels as usize - 1);
    }

    #[test]
    fn stalled_channel_issues_nothing_until_the_fence() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let req = MemRequest { id: ReqId(1), addr: PhysAddr(0), is_write: false };
        ctrl.stall_channel(0, 500);
        assert!(ctrl.try_enqueue(req, 0));
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() && now < 10_000 {
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        // Unstalled latency is 34 ns; the stall defers issue to t=500.
        assert_eq!(out.len(), 1);
        assert!(out[0].at >= 500 + 34, "completion at {} leaked through the stall", out[0].at);
    }

    #[test]
    fn sequential_stream_gets_high_hit_rate() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let mut now = 0;
        let mut out = Vec::new();
        let mut issued = 0u64;
        let mut next_addr = 0u64;
        while issued < 2_000 || ctrl.pending() > 0 {
            while issued < 2_000
                && ctrl.try_enqueue(
                    MemRequest { id: ReqId(issued), addr: PhysAddr(next_addr), is_write: false },
                    now,
                )
            {
                issued += 1;
                next_addr += 32;
            }
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
            assert!(now < 1_000_000, "stream run diverged");
        }
        assert_eq!(out.len(), 2_000);
        let s = ctrl.stats();
        assert!(s.hit_rate() > 0.8, "hit rate {}", s.hit_rate());
    }

    /// Fence-protocol property: no worker observes cross-channel state
    /// newer than the fence. Lanes are fully isolated within a fence, so
    /// (a) an 8-lane engine must match a 1-lane engine at *every* fence,
    /// and (b) executing the lane passes in descending lane order — the
    /// worst-case schedule a racing worker could produce — must still
    /// yield byte-identical completions, wake times, and stats. Any
    /// cross-lane read-after-write inside a fence would flip at least one
    /// of these under a pseudo-random mixed read/write stream that
    /// touches every channel.
    #[test]
    fn fence_protocol_isolates_lanes_within_a_fence() {
        use fgdram_model::addr::Location;
        for kind in [DramKind::QbHbm, DramKind::Fgdram] {
            let cfg = DramConfig::new(kind);
            let mk = |threads: usize| {
                let dev = DramDevice::with_lanes(cfg.clone(), threads);
                let ctrl = Controller::with_threads(&cfg, CtrlConfig::default(), threads).unwrap();
                (dev, ctrl)
            };
            let (mut dev_ser, mut ctrl_ser) = mk(1);
            let (mut dev_fwd, mut ctrl_fwd) = mk(8);
            let (mut dev_rev, mut ctrl_rev) = mk(8);
            let m = ctrl_ser.mapper().clone();

            // xorshift64 request stream; deterministic, spans all channels.
            let mut rng = 0x9e37_79b9_7f4a_7c15_u64;
            let mut step = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut now = 0;
            let mut id = 0u64;
            let (mut out_ser, mut out_fwd, mut out_rev) = (Vec::new(), Vec::new(), Vec::new());
            for fence in 0..1_500u32 {
                for _ in 0..step() % 8 {
                    let loc = Location {
                        channel: (step() % cfg.channels as u64) as u32,
                        bank: (step() % cfg.banks_per_channel as u64) as u32,
                        row: (step() % 512) as u32,
                        col: (step() % 8) as u32,
                    };
                    let req = MemRequest {
                        id: ReqId(id),
                        addr: m.encode(loc),
                        is_write: step() % 3 == 0,
                    };
                    id += 1;
                    let a = ctrl_ser.try_enqueue(req, now);
                    assert_eq!(a, ctrl_fwd.try_enqueue(req, now), "admission diverged");
                    assert_eq!(a, ctrl_rev.try_enqueue(req, now), "admission diverged");
                }
                let n_ser = ctrl_ser.tick(&mut dev_ser, now, &mut out_ser).unwrap();
                let n_fwd = ctrl_fwd.tick(&mut dev_fwd, now, &mut out_fwd).unwrap();
                let n_rev = ctrl_rev.tick_lanes_reversed(&mut dev_rev, now, &mut out_rev).unwrap();
                assert_eq!(n_ser, n_fwd, "fence {fence}: 8-lane wake time diverged");
                assert_eq!(n_ser, n_rev, "fence {fence}: reversed-order wake time diverged");
                assert_eq!(out_ser, out_fwd, "fence {fence}: 8-lane completions diverged");
                assert_eq!(out_ser, out_rev, "fence {fence}: reversed-order completions diverged");
                assert_eq!(ctrl_ser.pending(), ctrl_fwd.pending());
                assert_eq!(ctrl_ser.pending(), ctrl_rev.pending());
                out_ser.clear();
                out_fwd.clear();
                out_rev.clear();
                now = n_ser.max(now + 1);
            }
            assert!(id > 1_000, "stream too short to exercise the fence protocol");
            let stats = format!("{:?}", ctrl_ser.stats());
            assert_eq!(stats, format!("{:?}", ctrl_fwd.stats()), "8-lane stats diverged");
            assert_eq!(stats, format!("{:?}", ctrl_rev.stats()), "reversed-order stats diverged");
        }
    }
}
