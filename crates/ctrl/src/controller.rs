//! The stack-level memory controller: address decode, per-channel
//! schedulers, and the tick loop.

use fgdram_dram::{DramDevice, ProtocolError};
use fgdram_model::addr::{AddressMapper, Location, MemRequest};
use fgdram_model::cmd::Completion;
use fgdram_model::config::{ConfigError, CtrlConfig, DramConfig};
use fgdram_model::units::Ns;
use fgdram_model::wheel::EventWheel;

use crate::scheduler::{ChannelSched, Pending};
use crate::stats::CtrlStats;

/// GPU memory controller for one DRAM stack.
///
/// The controller owns request queues and scheduling; the [`DramDevice`]
/// (owned by the caller) owns timing truth. Every command is issued at a
/// time the device itself reported legal, so a [`ProtocolError`] escaping
/// [`Controller::tick`] indicates a scheduler bug, not a workload effect.
///
/// # Examples
///
/// ```
/// use fgdram_ctrl::Controller;
/// use fgdram_dram::DramDevice;
/// use fgdram_model::addr::{MemRequest, PhysAddr, ReqId};
/// use fgdram_model::config::{CtrlConfig, DramConfig, DramKind};
///
/// let cfg = DramConfig::new(DramKind::Fgdram);
/// let mut dev = DramDevice::new(cfg.clone());
/// let mut ctrl = Controller::new(&cfg, CtrlConfig::default())?;
/// ctrl.try_enqueue(MemRequest { id: ReqId(1), addr: PhysAddr(0x1000), is_write: false }, 0);
/// let mut done = Vec::new();
/// let mut now = 0;
/// while done.is_empty() {
///     now = ctrl.tick(&mut dev, now, &mut done)?.max(now + 1);
/// }
/// assert_eq!(done[0].req, ReqId(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Controller {
    mapper: AddressMapper,
    scheds: Vec<ChannelSched>,
    seq: u64,
    stats: CtrlStats,
    /// Graceful degradation: grains excluded from the address map, one
    /// bit per channel (FGDRAM's 512 grains fit in 8 words, so the `route`
    /// probe on the hot enqueue path stays in one cache line). With
    /// nothing excluded, `route` is exactly `mapper.decode` and the faults
    /// machinery is invisible to scheduling.
    excluded: Vec<u64>,
    /// Channels still in the map, ascending; the remap target table.
    live: Vec<u32>,
    /// Lazy wake-time queue over the schedulers: an entry `(t, ch)` is
    /// *valid* iff `t` equals channel `ch`'s current effective wake time
    /// (`next_try.max(stalled_until)`). A fresh entry is pushed whenever
    /// that time changes, so every channel always has exactly one valid
    /// entry; stale ones are discarded as they surface. This turns the
    /// per-tick work from O(channels) — ruinous with FGDRAM's 512 grains,
    /// of which a handful are due — into O(due + stale). An [`EventWheel`]
    /// rather than a `BinaryHeap`: pops come out in the same ascending
    /// `(t, ch)` order, but push/pop are O(1) instead of a heap sift
    /// (ticks at GUPS rates pop thousands of entries per simulated us).
    /// Wheel invariant `t >= base` holds because every pushed time is
    /// `>= now` (`enqueue` clamps `next_try` no lower than `now`, passes
    /// set `next_try > now`) and `base` never passes the minimum entry.
    due: EventWheel<u32>,
    /// Reusable scratch for the due-channel list (no per-tick allocation).
    due_scratch: Vec<u32>,
    /// Total queued requests, maintained incrementally: +1 per accepted
    /// enqueue, -1 per completion (every dequeue emits exactly one).
    total_pending: usize,
}

impl Controller {
    /// Builds a controller for `dram` with policy `ctrl`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the DRAM geometry is invalid.
    pub fn new(dram: &DramConfig, ctrl: CtrlConfig) -> Result<Self, ConfigError> {
        let mapper = AddressMapper::new(dram)?;
        let channels = dram.channels;
        let scheds = (0..channels)
            .map(|ch| {
                // Stagger refresh across channels to avoid refresh storms.
                let phase = dram.timing.t_refi * (ch as u64 + 1) / channels as u64;
                ChannelSched::new(
                    ch as u32,
                    dram.banks_per_channel,
                    dram.atoms_per_activation() as u32,
                    dram.is_grain_based(),
                    ctrl,
                    dram.timing.t_refi,
                    phase,
                    dram.slices_per_row() as usize
                        * if dram.salp { dram.subarrays_per_bank } else { 1 },
                )
            })
            .collect();
        Ok(Controller {
            mapper,
            scheds,
            seq: 0,
            stats: CtrlStats::new(),
            excluded: vec![0u64; channels.div_ceil(64)],
            live: (0..channels as u32).collect(),
            // Every scheduler starts with an effective wake time of 0.
            due: {
                let mut w = EventWheel::new();
                (0..channels as u32).for_each(|ch| w.push(0, ch));
                w
            },
            due_scratch: Vec::new(),
            total_pending: 0,
        })
    }

    /// Whether `ch`'s grain has been excluded from the address map.
    #[inline]
    fn is_excluded(&self, ch: u32) -> bool {
        self.excluded[ch as usize / 64] & (1u64 << (ch % 64)) != 0
    }

    /// Channel `ch`'s effective wake time: an injected stall gates the
    /// channel without touching `next_try` (enqueue pulls `next_try`
    /// forward on arrivals, which must not cancel a stall).
    #[inline]
    fn effective_next(&self, ch: u32) -> Ns {
        let s = &self.scheds[ch as usize];
        s.next_try.max(s.stalled_until)
    }

    /// The controller's address mapping.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Zeroes accumulated statistics (end-of-warmup bookkeeping).
    pub fn reset_stats(&mut self) {
        self.stats = CtrlStats::new();
    }

    /// Total queued requests. O(1): maintained incrementally, because the
    /// system consults this every simulation step.
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.total_pending,
            self.scheds.iter().map(ChannelSched::pending).sum::<usize>(),
            "pending counter diverged from the queues"
        );
        self.total_pending
    }

    /// Decodes `addr` and remaps it off any excluded grain: requests whose
    /// home grain has been excluded are served round-robin by the
    /// remaining live grains (the simulator models timing, not contents,
    /// so the aliased capacity costs nothing extra).
    pub fn route(&self, addr: fgdram_model::addr::PhysAddr) -> Location {
        let mut loc = self.mapper.decode(addr);
        if self.is_excluded(loc.channel) {
            loc.channel = self.live[loc.channel as usize % self.live.len()];
        }
        loc
    }

    /// Removes `channel` from the address map. Returns `false` (a no-op)
    /// when it is already excluded or is the last live grain; queued and
    /// in-flight requests on the grain drain normally either way.
    pub fn exclude_channel(&mut self, channel: u32) -> bool {
        let ch = channel as usize;
        if ch >= self.scheds.len() || self.is_excluded(channel) || self.live.len() == 1 {
            return false;
        }
        self.excluded[ch / 64] |= 1u64 << (channel % 64);
        self.live.retain(|&c| c != channel);
        true
    }

    /// Grains currently excluded from the address map.
    pub fn excluded_count(&self) -> usize {
        self.excluded.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fault injection: `channel` issues nothing before `until`.
    pub fn stall_channel(&mut self, channel: u32, until: Ns) {
        if let Some(sched) = self.scheds.get_mut(channel as usize) {
            let before = sched.next_try.max(sched.stalled_until);
            sched.stalled_until = sched.stalled_until.max(until);
            let after = sched.next_try.max(sched.stalled_until);
            if after != before {
                self.due.push(after, channel);
            }
        }
    }

    /// Fault injection: wedges every channel until `until` (pass
    /// `Ns::MAX` for a permanent wedge the watchdog must catch).
    pub fn stall_all(&mut self, until: Ns) {
        for ch in 0..self.scheds.len() as u32 {
            self.stall_channel(ch, until);
        }
    }

    /// Whether the target channel queue can accept `req` right now.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let loc = self.route(req.addr);
        self.scheds[loc.channel as usize].can_accept(req.is_write)
    }

    /// Enqueues `req`, returning `false` (and counting a rejection) when
    /// the target queue is full — the caller should retry later.
    pub fn try_enqueue(&mut self, req: MemRequest, now: Ns) -> bool {
        let loc = self.route(req.addr);
        let sched = &mut self.scheds[loc.channel as usize];
        if !sched.can_accept(req.is_write) {
            self.stats.rejected.incr();
            return false;
        }
        self.seq += 1;
        if req.is_write {
            self.stats.writes_accepted.incr();
        } else {
            self.stats.reads_accepted.incr();
        }
        let before = sched.next_try.max(sched.stalled_until);
        sched.enqueue(Pending::new(req, loc, now, self.seq), now);
        let depth = sched.pending() as u64;
        let after = sched.next_try.max(sched.stalled_until);
        if after != before {
            self.due.push(after, loc.channel);
        }
        self.total_pending += 1;
        self.stats.queue_depth.record(depth);
        true
    }

    /// Runs every channel scheduler that is due at `now`, appending data
    /// completions to `out`. Returns the earliest time any channel next
    /// needs attention.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] here means the scheduler issued an illegal
    /// command — an internal bug, never a workload condition.
    pub fn tick(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        out: &mut Vec<Completion>,
    ) -> Result<Ns, ProtocolError> {
        // Pop every wheel entry due at `now`; valid ones name the channels
        // to run. A stale entry's channel has a valid entry elsewhere in
        // the wheel (pushed when its wake time changed), so dropping the
        // stale one loses nothing.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some((t, ch)) = self.due.pop_due(now) {
            if t == self.effective_next(ch) {
                due.push(ch);
            }
        }
        // Ascending channel order, deduped: identical issue order on the
        // shared command buses to the full scan this replaces.
        due.sort_unstable();
        due.dedup();
        let already_done = out.len();
        for &ch in &due {
            let sched = &mut self.scheds[ch as usize];
            sched.pass(dev, now, &mut self.stats, out)?;
            self.due.push(sched.next_try.max(sched.stalled_until), ch);
        }
        // Every completion is exactly one request leaving a queue.
        self.total_pending -= out.len() - already_done;
        self.due_scratch = due;
        // The earliest valid entry is the next time any channel needs
        // attention; clean stale tops away lazily (a valid top goes
        // straight back — `pop_min` leaves `base` at its time).
        loop {
            let Some((t, ch)) = self.due.pop_min() else { return Ok(Ns::MAX) };
            if t == self.effective_next(ch) {
                self.due.push(t, ch);
                return Ok(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::{PhysAddr, ReqId};
    use fgdram_model::config::DramKind;

    fn setup(kind: DramKind) -> (DramDevice, Controller) {
        let cfg = DramConfig::new(kind);
        let dev = DramDevice::new(cfg.clone());
        let ctrl = Controller::new(&cfg, CtrlConfig::default()).unwrap();
        (dev, ctrl)
    }

    fn run_until_drained(
        dev: &mut DramDevice,
        ctrl: &mut Controller,
        limit: Ns,
    ) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut now = 0;
        while ctrl.pending() > 0 && now < limit {
            let next = ctrl.tick(dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        out
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let req = MemRequest { id: ReqId(1), addr: PhysAddr(0), is_write: false };
        assert!(ctrl.try_enqueue(req, 0));
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
        // ACT at ~0, RD at tRCD=16, data end at 16+tCL+tBURST = 34.
        assert_eq!(done[0].at, 34);
        assert_eq!(ctrl.stats().activates.get(), 1);
    }

    #[test]
    fn row_hits_are_reordered_ahead_of_conflicts() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        // Three requests to one bank: row A, row B (conflict), row A again.
        let a0 = m.encode(Location { channel: 0, bank: 0, row: 10, col: 0 });
        let b0 = m.encode(Location { channel: 0, bank: 0, row: 20, col: 0 });
        let a1 = m.encode(Location { channel: 0, bank: 0, row: 10, col: 1 });
        for (i, addr) in [a0, b0, a1].into_iter().enumerate() {
            assert!(ctrl.try_enqueue(MemRequest { id: ReqId(i as u64), addr, is_write: false }, 0));
        }
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 3);
        // FR-FCFS: the second row-A access (id 2) completes before row B.
        let pos = |id: u64| done.iter().position(|c| c.req == ReqId(id)).unwrap();
        assert!(pos(2) < pos(1), "row hit should bypass the conflict");
        assert!(ctrl.stats().row_hits.get() >= 1);
        // The last row-10 hit sees no further reuse, so the controller
        // closes the row via auto-precharge instead of an explicit
        // conflict precharge.
        assert!(ctrl.stats().auto_precharges.get() + ctrl.stats().conflict_precharges.get() >= 1);
    }

    #[test]
    fn writes_drain_in_batches() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        // Fill past the high watermark with writes to one channel.
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let mut sent = 0;
        'outer: for row in 0..128u32 {
            for col in 0..4u32 {
                let addr = m.encode(Location { channel: 1, bank: (row % 4), row, col });
                if !ctrl.try_enqueue(MemRequest { id: ReqId(sent), addr, is_write: true }, 0) {
                    break 'outer;
                }
                sent += 1;
            }
        }
        // Enough to cross the high watermark and trigger batch draining.
        assert!(sent as usize >= CtrlConfig::default().write_high_watermark, "filled {sent}");
        let done = run_until_drained(&mut dev, &mut ctrl, 100_000);
        assert_eq!(done.len(), sent as usize);
        assert!(ctrl.stats().drain_entries.get() >= 1);
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let (_, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let mut accepted = 0u64;
        for i in 0..100_000u64 {
            let addr = m.encode(Location {
                channel: 0,
                bank: (i % 4) as u32,
                row: (i / 4) as u32 % 16_384,
                col: 0,
            });
            if ctrl.try_enqueue(MemRequest { id: ReqId(i), addr, is_write: false }, 0) {
                accepted += 1;
            } else {
                break;
            }
        }
        // read_queue_depth plus the crossbar overflow queue.
        let cfg = CtrlConfig::default();
        assert_eq!(accepted as usize, cfg.read_queue_depth + cfg.xbar_queue_depth);
        assert_eq!(ctrl.stats().rejected.get(), 1);
        assert!(!ctrl.can_accept(&MemRequest {
            id: ReqId(0),
            addr: m.encode(Location { channel: 0, bank: 0, row: 0, col: 0 }),
            is_write: false
        }));
    }

    #[test]
    fn fgdram_grain_conflicts_are_resolved() {
        let (mut dev, mut ctrl) = setup(DramKind::Fgdram);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        // Pseudobank 0 row 3 and pseudobank 1 row 7 share subarray 0.
        let a = m.encode(Location { channel: 0, bank: 0, row: 3, col: 0 });
        let b = m.encode(Location { channel: 0, bank: 1, row: 7, col: 0 });
        ctrl.try_enqueue(MemRequest { id: ReqId(0), addr: a, is_write: false }, 0);
        ctrl.try_enqueue(MemRequest { id: ReqId(1), addr: b, is_write: false }, 0);
        let done = run_until_drained(&mut dev, &mut ctrl, 100_000);
        assert_eq!(done.len(), 2, "both requests complete despite the conflict");
    }

    #[test]
    fn refresh_happens_periodically() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let mut out = Vec::new();
        let mut now = 0;
        // Idle controller for ~3 refresh intervals.
        while now < 12_000 {
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        let expected = dev.config().channels as u64 * 2; // >= 2 per channel
        assert!(
            ctrl.stats().refreshes.get() >= expected,
            "refreshes {} < {expected}",
            ctrl.stats().refreshes.get()
        );
    }

    #[test]
    fn excluded_channel_remaps_to_live_grains() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let m = ctrl.mapper().clone();
        use fgdram_model::addr::Location;
        let addr = m.encode(Location { channel: 3, bank: 0, row: 10, col: 0 });
        assert_eq!(ctrl.route(addr).channel, 3);
        assert!(ctrl.exclude_channel(3));
        assert!(!ctrl.exclude_channel(3), "double exclusion is a no-op");
        assert_eq!(ctrl.excluded_count(), 1);
        let re = ctrl.route(addr);
        assert_ne!(re.channel, 3, "excluded grain must not be routed to");
        // Requests to the dead grain still complete, on the remap target.
        assert!(ctrl.try_enqueue(MemRequest { id: ReqId(1), addr, is_write: false }, 0));
        let done = run_until_drained(&mut dev, &mut ctrl, 10_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn cannot_exclude_the_last_live_grain() {
        let (_, mut ctrl) = setup(DramKind::QbHbm);
        let channels = DramConfig::new(DramKind::QbHbm).channels as u32;
        for ch in 0..channels - 1 {
            assert!(ctrl.exclude_channel(ch));
        }
        assert!(!ctrl.exclude_channel(channels - 1), "last grain must stay in the map");
        assert_eq!(ctrl.excluded_count(), channels as usize - 1);
    }

    #[test]
    fn stalled_channel_issues_nothing_until_the_fence() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let req = MemRequest { id: ReqId(1), addr: PhysAddr(0), is_write: false };
        ctrl.stall_channel(0, 500);
        assert!(ctrl.try_enqueue(req, 0));
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() && now < 10_000 {
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
        }
        // Unstalled latency is 34 ns; the stall defers issue to t=500.
        assert_eq!(out.len(), 1);
        assert!(out[0].at >= 500 + 34, "completion at {} leaked through the stall", out[0].at);
    }

    #[test]
    fn sequential_stream_gets_high_hit_rate() {
        let (mut dev, mut ctrl) = setup(DramKind::QbHbm);
        let mut now = 0;
        let mut out = Vec::new();
        let mut issued = 0u64;
        let mut next_addr = 0u64;
        while issued < 2_000 || ctrl.pending() > 0 {
            while issued < 2_000
                && ctrl.try_enqueue(
                    MemRequest { id: ReqId(issued), addr: PhysAddr(next_addr), is_write: false },
                    now,
                )
            {
                issued += 1;
                next_addr += 32;
            }
            let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
            now = next.max(now + 1);
            assert!(now < 1_000_000, "stream run diverged");
        }
        assert_eq!(out.len(), 2_000);
        let s = ctrl.stats();
        assert!(s.hit_rate() > 0.8, "hit rate {}", s.hit_rate());
    }
}
