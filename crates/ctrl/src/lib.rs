//! # fgdram-ctrl
//!
//! The GPU memory controller of the FGDRAM (MICRO 2017) reproduction —
//! Section 4.1's throughput-optimized controller: FR-FCFS row-hit
//! reordering over deep per-bank queues, watermark-batched write draining,
//! camping-resistant address swizzling, per-grain scheduling over shared
//! command channels, and the pseudobank subarray-conflict guard.
//!
//! See [`Controller`] for the entry point; it drives a
//! [`fgdram_dram::DramDevice`] owned by the caller.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod arena;
mod controller;
mod pool;
mod scheduler;
pub mod stats;
mod telemetry;

pub use controller::Controller;
pub use stats::CtrlStats;
