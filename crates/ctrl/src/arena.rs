//! Per-channel request arena: fixed-capacity FIFO rings carved from one
//! flat slab.
//!
//! The scheduler used to keep one `VecDeque<Pending>` per (bank,
//! direction) — on FGDRAM that is 2048 independently growing heap buffers
//! per stack. [`RequestArena`] allocates one slab per channel sized by the
//! admission-control depths, and [`FifoRing`] runs each bank queue as a
//! circular window over its fixed slab segment: enqueue/dequeue never
//! touch the allocator, so the steady-state step loop is allocation-free
//! by construction.
//!
//! Three earlier layouts measured worse than what they replaced:
//!
//! * intrusive `next`/`prev` links through a shared slot slab — every
//!   scan step chased a pointer into an unpredictable line, and ordinal
//!   `get`/`remove` re-walked the chain;
//! * rings of `u32` slot indices into the slab — O(1) ordinal access, but
//!   each scan entry still cost an extra dependent load into a slab whose
//!   layout the LIFO free list scrambles over time;
//! * *circular* inline rings — contiguous scans, but a FIFO's head
//!   marches through the whole worst-case-sized segment over time, so a
//!   queue that only ever holds a handful of live entries still cycles
//!   its footprint through kilobytes of slab per bank.
//!
//! The layout that finally wins stores the requests inline in a
//! *sliding* window: the live block `[start, start+len)` is always
//! contiguous (scans are plain slice iteration, exactly the access
//! pattern `VecDeque` wins with), pop-front just advances `start`, and
//! when the tail reaches the segment end the live block — small, by the
//! same argument — slides back to offset 0 with one `copy_within`. The
//! hot footprint of each queue stays proportional to its *live* size, not
//! its worst-case capacity, while the storage itself never grows.
//!
//! Capacity discipline: admission control bounds a channel's live reads
//! and writes to `read_queue_depth` / `write_buffer_depth`, and any one
//! bank may transiently hold a whole direction's worth — so each ring's
//! capacity is the full per-direction depth and [`FifoRing::push_back`]
//! asserts rather than grows.

use crate::scheduler::Pending;

/// One channel's request slab; every [`FifoRing`] of the channel owns a
/// fixed segment of `buf`.
#[derive(Debug)]
pub(crate) struct RequestArena {
    buf: Vec<Pending>,
    next: u32,
}

impl RequestArena {
    /// A slab with room for `total` queued requests, pre-filled with
    /// `fill` (rings only ever read positions they have written).
    pub fn with_capacity(total: usize, fill: Pending) -> Self {
        RequestArena { buf: vec![fill; total], next: 0 }
    }

    /// Carves the next `cap`-entry ring segment out of the slab.
    ///
    /// # Panics
    ///
    /// Panics when the segments requested exceed what `with_capacity`
    /// sized.
    pub fn new_ring(&mut self, cap: usize) -> FifoRing {
        let off = self.next;
        self.next += cap as u32;
        assert!(
            self.next as usize <= self.buf.len(),
            "RequestArena::new_ring past the pre-sized slab"
        );
        FifoRing { off, cap: cap as u32, start: 0, len: 0 }
    }
}

/// FIFO queue over a fixed [`RequestArena`] segment, live block always
/// contiguous at `[start, start+len)`. Copyable handle — the backing slab
/// always comes in as an explicit argument, so one struct can own many
/// rings plus the shared arena without borrow fights.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FifoRing {
    off: u32,
    cap: u32,
    start: u32,
    len: u32,
}

impl FifoRing {
    pub fn len(self) -> usize {
        self.len as usize
    }

    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Physical slab position of ordinal `i`.
    #[inline]
    fn pos(self, i: u32) -> usize {
        (self.off + self.start + i) as usize
    }

    /// The live block as a slice.
    #[inline]
    fn live(self, arena: &RequestArena) -> &[Pending] {
        &arena.buf[self.pos(0)..self.pos(self.len)]
    }

    /// Appends at the tail, sliding the live block back to the segment
    /// start when the tail has drifted to the segment end.
    ///
    /// # Panics
    ///
    /// Panics when the ring is full — admission control keeps the live
    /// population strictly below every ring's capacity.
    pub fn push_back(&mut self, arena: &mut RequestArena, p: Pending) {
        assert!(self.len < self.cap, "FifoRing full: admission control breached");
        if self.start + self.len == self.cap {
            // Amortized: one record copy per element per lap of the
            // segment, and the block is small whenever laps are frequent.
            arena.buf.copy_within(self.pos(0)..self.pos(self.len), self.off as usize);
            self.start = 0;
        }
        arena.buf[self.pos(self.len)] = p;
        self.len += 1;
    }

    /// The oldest entry, if any.
    pub fn front(self, arena: &RequestArena) -> Option<&Pending> {
        self.get(arena, 0)
    }

    /// The entry `ordinal` positions from the front, O(1).
    pub fn get(self, arena: &RequestArena, ordinal: usize) -> Option<&Pending> {
        if ordinal >= self.len as usize {
            return None;
        }
        Some(&arena.buf[self.pos(ordinal as u32)])
    }

    /// Removes and returns the entry `ordinal` positions from the front,
    /// shifting whichever side of the live block is shorter.
    ///
    /// # Panics
    ///
    /// Panics when `ordinal >= len` (callers index entries they just
    /// scanned).
    pub fn remove_at(&mut self, arena: &mut RequestArena, ordinal: usize) -> Pending {
        let len = self.len as usize;
        assert!(ordinal < len, "FifoRing::remove_at past the tail");
        let removed = arena.buf[self.pos(ordinal as u32)];
        if ordinal < len / 2 {
            // Shift the front portion forward by one, then advance start.
            arena.buf.copy_within(self.pos(0)..self.pos(ordinal as u32), self.pos(1));
            self.start += 1;
        } else {
            // Shift the tail portion back by one.
            arena.buf.copy_within(
                self.pos(ordinal as u32 + 1)..self.pos(len as u32),
                self.pos(ordinal as u32),
            );
        }
        self.len -= 1;
        removed
    }

    /// Iterates front-to-back (plain slice iteration — the live block is
    /// always contiguous).
    pub fn iter(self, arena: &RequestArena) -> std::slice::Iter<'_, Pending> {
        self.live(arena).iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::{Location, MemRequest, PhysAddr, ReqId};

    fn pending(seq: u64) -> Pending {
        Pending {
            req: MemRequest { id: ReqId(seq), addr: PhysAddr(seq), is_write: false },
            loc: Location { channel: 0, bank: 0, row: seq as u32, col: 0 },
            arrived: 0,
            seq,
            slice: 0,
        }
    }

    #[test]
    fn fifo_order_and_middle_removal() {
        let mut arena = RequestArena::with_capacity(4, pending(u64::MAX));
        let mut l = arena.new_ring(4);
        for s in 0..4 {
            l.push_back(&mut arena, pending(s));
        }
        assert_eq!(l.len(), 4);
        assert_eq!(l.iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert_eq!(l.front(&arena).unwrap().seq, 0);
        assert_eq!(l.get(&arena, 2).unwrap().seq, 2);
        assert!(l.get(&arena, 4).is_none());
        // Remove from the middle, the front, and the back.
        assert_eq!(l.remove_at(&mut arena, 1).seq, 1);
        assert_eq!(l.iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [0, 2, 3]);
        assert_eq!(l.remove_at(&mut arena, 0).seq, 0);
        assert_eq!(l.remove_at(&mut arena, 1).seq, 3);
        assert_eq!(l.iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [2]);
        assert_eq!(l.remove_at(&mut arena, 0).seq, 2);
        assert!(l.is_empty());
        assert!(l.front(&arena).is_none());
    }

    #[test]
    fn ring_matches_vec_reference_across_wraps() {
        // Drive the ring with a deterministic push/remove mix long enough
        // for head to lap the segment repeatedly; a plain Vec<u64> is the
        // ordering oracle.
        let mut arena = RequestArena::with_capacity(5, pending(u64::MAX));
        let mut l = arena.new_ring(5);
        let mut oracle: Vec<u64> = Vec::new();
        let mut next = 0u64;
        let mut rng = 0x2545_f491_4f6c_dd1du64;
        for step in 0..500 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (l.len() < 5 && rng & 1 == 0) || l.is_empty() {
                l.push_back(&mut arena, pending(next));
                oracle.push(next);
                next += 1;
            } else {
                let ord = (rng >> 33) as usize % l.len();
                let got = l.remove_at(&mut arena, ord).seq;
                assert_eq!(got, oracle.remove(ord), "step {step}");
            }
            assert_eq!(l.iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), oracle, "step {step}");
            assert_eq!(l.front(&arena).map(|p| p.seq), oracle.first().copied());
        }
        assert_eq!(arena.buf.len(), 5, "slab must never grow");
    }

    #[test]
    fn interleaved_rings_share_one_slab() {
        let mut arena = RequestArena::with_capacity(9, pending(u64::MAX));
        let mut rings = [arena.new_ring(3), arena.new_ring(3), arena.new_ring(3)];
        for s in 0..8 {
            rings[(s % 3) as usize].push_back(&mut arena, pending(s));
        }
        assert_eq!(rings[0].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [0, 3, 6]);
        assert_eq!(rings[1].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [1, 4, 7]);
        assert_eq!(rings[2].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [2, 5]);
        let got = rings[1].remove_at(&mut arena, 1);
        assert_eq!(got.seq, 4);
        assert_eq!(rings[1].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [1, 7]);
        // Neighbouring rings are untouched by the shift.
        assert_eq!(rings[0].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [0, 3, 6]);
        assert_eq!(rings[2].iter(&arena).map(|p| p.seq).collect::<Vec<_>>(), [2, 5]);
        assert_eq!(arena.buf.len(), 9);
    }

    #[test]
    #[should_panic(expected = "admission control")]
    fn push_past_capacity_panics() {
        let mut arena = RequestArena::with_capacity(2, pending(u64::MAX));
        let mut l = arena.new_ring(2);
        for s in 0..3 {
            l.push_back(&mut arena, pending(s));
        }
    }
}
