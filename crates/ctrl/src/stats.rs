//! Memory-controller statistics.

use fgdram_model::stats::{Counter, Log2Histogram};
use fgdram_model::units::Ns;

/// Aggregate controller statistics across all channels.
#[derive(Debug, Clone, Default)]
pub struct CtrlStats {
    /// Read requests accepted.
    pub reads_accepted: Counter,
    /// Write requests accepted.
    pub writes_accepted: Counter,
    /// Requests rejected for a full queue (backpressure events).
    pub rejected: Counter,
    /// Column commands issued to an already-open row.
    pub row_hits: Counter,
    /// Activates issued on behalf of requests.
    pub activates: Counter,
    /// Precharges issued because a different row was needed (conflicts).
    pub conflict_precharges: Counter,
    /// Precharges of rows idle past the controller's timeout.
    pub timeout_precharges: Counter,
    /// Precharges forced by refresh preparation.
    pub refresh_precharges: Counter,
    /// Auto-precharge column commands.
    pub auto_precharges: Counter,
    /// Refresh commands issued.
    pub refreshes: Counter,
    /// Write drain mode entries.
    pub drain_entries: Counter,
    /// Read latency from enqueue to last data beat.
    pub read_latency: Log2Histogram,
    /// Queue occupancy sampled at each enqueue (histogram, so telemetry
    /// can report per-epoch depth quantiles, not just a mean).
    pub queue_depth: Log2Histogram,
}

impl CtrlStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed read's end-to-end controller latency.
    pub fn record_read_latency(&mut self, enqueued: Ns, done: Ns) {
        self.read_latency.record(done.saturating_sub(enqueued));
    }

    /// Merges `other` into `self` (counter addition, histogram bucket
    /// addition). Integer-exact and commutative, so merging per-lane
    /// statistics in any order yields the same totals as serial
    /// accumulation would have.
    pub fn merge(&mut self, other: &CtrlStats) {
        self.reads_accepted.add(other.reads_accepted.get());
        self.writes_accepted.add(other.writes_accepted.get());
        self.rejected.add(other.rejected.get());
        self.row_hits.add(other.row_hits.get());
        self.activates.add(other.activates.get());
        self.conflict_precharges.add(other.conflict_precharges.get());
        self.timeout_precharges.add(other.timeout_precharges.get());
        self.refresh_precharges.add(other.refresh_precharges.get());
        self.auto_precharges.add(other.auto_precharges.get());
        self.refreshes.add(other.refreshes.get());
        self.drain_entries.add(other.drain_entries.get());
        self.read_latency.merge(&other.read_latency);
        self.queue_depth.merge(&other.queue_depth);
    }

    /// Row-buffer hit rate over all issued columns.
    pub fn hit_rate(&self) -> f64 {
        let cols = self.row_hits.get() + self.activates.get();
        if cols == 0 {
            0.0
        } else {
            self.row_hits.get() as f64 / cols as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recording() {
        let mut s = CtrlStats::new();
        s.record_read_latency(100, 180);
        s.record_read_latency(200, 210);
        assert_eq!(s.read_latency.stat().count(), 2);
        assert_eq!(s.read_latency.stat().mean(), 45.0);
        // Saturating on inverted timestamps.
        s.record_read_latency(50, 10);
        assert_eq!(s.read_latency.stat().min(), 0);
    }

    #[test]
    fn hit_rate_handles_empty() {
        let mut s = CtrlStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.row_hits.add(3);
        s.activates.add(1);
        assert_eq!(s.hit_rate(), 0.75);
    }
}
