//! Telemetry instrumentation: the controller as a [`Sampled`] source.

use fgdram_model::units::Ns;
use fgdram_telemetry::{RawValue, SampleBuf, Sampled};

use crate::controller::Controller;

impl Sampled for Controller {
    fn component(&self) -> &'static str {
        "ctrl"
    }

    fn sample(&self, out: &mut SampleBuf) {
        let s = self.stats();
        out.counter("reads", s.reads_accepted.get());
        out.counter("writes", s.writes_accepted.get());
        out.counter("rejected", s.rejected.get());
        out.counter("row_hits", s.row_hits.get());
        out.counter("activates", s.activates.get());
        out.counter("conflict_precharges", s.conflict_precharges.get());
        out.counter("timeout_precharges", s.timeout_precharges.get());
        out.counter("refresh_precharges", s.refresh_precharges.get());
        out.counter("auto_precharges", s.auto_precharges.get());
        out.counter("refreshes", s.refreshes.get());
        out.counter("drain_entries", s.drain_entries.get());
        // Latency sum rides along as a counter so `derive` can turn the
        // epoch's delta into an exact per-epoch mean (the histogram alone
        // only gives bucket-edge quantiles).
        out.counter(
            "read_latency_sum_ns",
            s.read_latency.stat().sum().min(u64::MAX as u128) as u64,
        );
        out.log2_hist("read_latency", s.read_latency.buckets());
        out.log2_hist("queue_depth", s.queue_depth.buckets());
        out.gauge("pending", self.pending() as f64);
    }

    fn derive(&self, delta: &mut SampleBuf, _epoch_ns: Ns) {
        let hits = delta.get_u64("row_hits");
        let acts = delta.get_u64("activates");
        let cols = hits + acts;
        delta.gauge("row_hit_rate", if cols == 0 { 0.0 } else { hits as f64 / cols as f64 });
        let lat_count = match delta.get("read_latency") {
            Some(RawValue::Log2Hist(b)) => b.iter().sum::<u64>(),
            _ => 0,
        };
        let lat_sum = delta.get_u64("read_latency_sum_ns");
        delta.gauge(
            "avg_read_latency_ns",
            if lat_count == 0 { 0.0 } else { lat_sum as f64 / lat_count as f64 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_dram::DramDevice;
    use fgdram_model::addr::{MemRequest, PhysAddr, ReqId};
    use fgdram_model::config::{CtrlConfig, DramConfig, DramKind};

    #[test]
    fn controller_sample_covers_issue_fields() {
        let cfg = DramConfig::new(DramKind::QbHbm);
        let mut dev = DramDevice::new(cfg.clone());
        let mut ctrl = Controller::new(&cfg, CtrlConfig::default()).unwrap();
        let mut before = SampleBuf::new();
        ctrl.sample(&mut before);
        ctrl.try_enqueue(MemRequest { id: ReqId(1), addr: PhysAddr(0), is_write: false }, 0);
        let mut done = Vec::new();
        let mut now = 0;
        while done.is_empty() {
            now = ctrl.tick(&mut dev, now, &mut done).unwrap().max(now + 1);
        }
        let mut after = SampleBuf::new();
        ctrl.sample(&mut after);
        let mut d = SampleBuf::delta(&before, &after);
        ctrl.derive(&mut d, 1000);
        assert_eq!(d.get_u64("reads"), 1);
        assert_eq!(d.get_u64("activates"), 1);
        assert!(d.get_u64("read_latency_sum_ns") > 0);
        // One activate, then the column lands on the open row: 1 hit of 2
        // column opportunities.
        assert_eq!(d.get_f64("row_hit_rate"), 0.5);
        assert!(d.get_f64("avg_read_latency_ns") > 0.0);
        assert_eq!(d.get_f64("pending"), 0.0);
    }
}
