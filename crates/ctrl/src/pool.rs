//! Scoped worker pool for parallel lane ticking.
//!
//! The library forbids `unsafe`, so lane state is not shared with workers
//! by pointer — it is *moved*. Each fence the controller boxes up one
//! [`LaneJob`] per worker lane (its `CtrlLane`, its `DevLane`, the fence
//! time) and places it in that worker's mutex-guarded slot; the worker
//! takes the job by value, runs the pass with exclusive ownership, and
//! puts it back. A `Box` move is a pointer copy, so the steady-state cost
//! is two slot writes and two condvar edges per worker per parallel tick —
//! and zero allocation, which keeps `tests/zero_alloc.rs` honest with
//! threads on.
//!
//! Slots are pre-sized at construction and workers park on a condvar when
//! idle, so the pool is invisible (no spinning, no queue growth) during
//! serial stretches where the threshold gate keeps ticks inline.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use fgdram_dram::DevLane;
use fgdram_model::units::Ns;

use crate::controller::CtrlLane;

/// One lane's complete tick state, moved to a worker for the duration of
/// a fence. Self-contained: both halves carry their own config copies.
#[derive(Debug)]
pub(crate) struct LaneJob {
    pub ctrl: Box<CtrlLane>,
    pub dev: Box<DevLane>,
    pub now: Ns,
}

impl LaneJob {
    fn run(&mut self) {
        // Workers never trace: the controller forces serial ticking
        // whenever command tracing is enabled.
        self.ctrl.run_pass(&mut self.dev, None, self.now);
    }
}

#[derive(Debug)]
struct PoolState {
    /// Inbound slot per worker; `Some` means work is pending.
    jobs: Vec<Option<LaneJob>>,
    /// Outbound slot per worker; `Some` means the pass finished.
    done: Vec<Option<LaneJob>>,
    /// Jobs scattered but not yet finished this fence.
    outstanding: usize,
    shutdown: bool,
}

#[derive(Debug)]
struct PoolShared {
    m: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The worker pool: `workers` parked threads, one slot pair each.
#[derive(Debug)]
pub(crate) struct TickPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl TickPool {
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            m: Mutex::new(PoolState {
                jobs: (0..workers).map(|_| None).collect(),
                done: (0..workers).map(|_| None).collect(),
                outstanding: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgdram-lane-{}", i + 1))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn lane worker")
            })
            .collect();
        TickPool { shared, handles }
    }

    /// Moves every `Some` entry of `jobs` (index = worker slot) to its
    /// worker and wakes the pool. Call [`Self::gather`] with the same
    /// slice before the next scatter.
    pub fn scatter(&self, jobs: &mut [Option<LaneJob>]) {
        debug_assert_eq!(jobs.len(), self.handles.len());
        let mut st = self.shared.m.lock().expect("pool lock");
        debug_assert_eq!(st.outstanding, 0, "scatter before previous gather");
        let mut outstanding = 0;
        for (slot, job) in st.jobs.iter_mut().zip(jobs.iter_mut()) {
            debug_assert!(slot.is_none());
            *slot = job.take();
            outstanding += usize::from(slot.is_some());
        }
        st.outstanding = outstanding;
        drop(st);
        self.work_cv_notify();
    }

    fn work_cv_notify(&self) {
        self.shared.work_cv.notify_all();
    }

    /// Blocks until every scattered job has finished, moving each back
    /// into its slot of `jobs`.
    pub fn gather(&self, jobs: &mut [Option<LaneJob>]) {
        let mut st = self.shared.m.lock().expect("pool lock");
        while st.outstanding > 0 {
            st = self.shared.done_cv.wait(st).expect("pool lock");
        }
        for (slot, job) in st.done.iter_mut().zip(jobs.iter_mut()) {
            debug_assert!(job.is_none());
            *job = slot.take();
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.m.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    loop {
        let mut job = {
            let mut st = shared.m.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.jobs[slot].take() {
                    break job;
                }
                st = shared.work_cv.wait(st).expect("pool lock");
            }
        };
        job.run();
        let mut st = shared.m.lock().expect("pool lock");
        st.done[slot] = Some(job);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            shared.done_cv.notify_all();
        }
    }
}
