//! Per-channel (per-grain-group) FR-FCFS scheduler.
//!
//! Implements the paper's throughput-optimized controller (Section 4.1):
//! deep per-bank request queues with row-hit-first reordering, batched
//! write draining between watermarks, open-page policy with
//! conflict-triggered and idle-timeout precharges, opportunistic
//! auto-precharge when no queued request can reuse the open row, and the
//! FGDRAM-specific subarray-conflict avoidance of Section 3.3.

use std::collections::VecDeque;

use fgdram_dram::{DramDevice, ProtocolError, Rule};
use fgdram_model::addr::{Location, MemRequest};
use fgdram_model::cmd::{BankRef, Completion, DramCommand};
use fgdram_model::config::{CtrlConfig, PagePolicy};
use fgdram_model::units::Ns;

use crate::stats::CtrlStats;

/// A queued request with its decoded location and arrival order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub req: MemRequest,
    pub loc: Location,
    pub arrived: Ns,
    pub seq: u64,
}

/// Result of one scheduling attempt.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// A command was issued (with the data completion for columns).
    Issued(Option<Completion>),
    /// Nothing issuable before this time.
    Sleep(Ns),
}

const FAR_FUTURE: Ns = Ns::MAX / 4;

#[derive(Debug)]
pub(crate) struct ChannelSched {
    channel: u32,
    banks: usize,
    atoms_per_activation: u32,
    cfg: CtrlConfig,
    grain_based: bool,
    read_q: Vec<VecDeque<Pending>>,
    write_q: Vec<VecDeque<Pending>>,
    /// Crossbar partition queue: holds arrivals while the per-bank
    /// scheduler queues are full.
    overflow: VecDeque<Pending>,
    reads: usize,
    writes: usize,
    draining: bool,
    refresh_due: Ns,
    refresh_interval: Ns,
    last_activity: Ns,
    pub next_try: Ns,
    /// Fault-injected stall fence: the channel issues nothing before this
    /// time. Kept separate from `next_try` because `enqueue` pulls
    /// `next_try` forward on every arrival, which must not cancel a stall.
    pub stalled_until: Ns,
}

impl ChannelSched {
    pub fn new(
        channel: u32,
        banks: usize,
        atoms_per_activation: u32,
        grain_based: bool,
        cfg: CtrlConfig,
        refresh_interval: Ns,
        refresh_phase: Ns,
    ) -> Self {
        ChannelSched {
            channel,
            banks,
            atoms_per_activation,
            cfg,
            grain_based,
            read_q: (0..banks).map(|_| VecDeque::new()).collect(),
            write_q: (0..banks).map(|_| VecDeque::new()).collect(),
            overflow: VecDeque::new(),
            reads: 0,
            writes: 0,
            draining: false,
            refresh_due: refresh_phase.max(1),
            refresh_interval,
            last_activity: 0,
            next_try: 0,
            stalled_until: 0,
        }
    }

    pub fn pending(&self) -> usize {
        self.reads + self.writes + self.overflow.len()
    }

    pub fn can_accept(&self, is_write: bool) -> bool {
        let direct = if is_write {
            self.writes < self.cfg.write_buffer_depth
        } else {
            self.reads < self.cfg.read_queue_depth
        };
        direct || self.overflow.len() < self.cfg.xbar_queue_depth
    }

    pub fn enqueue(&mut self, p: Pending, now: Ns) {
        let room = if p.req.is_write {
            self.writes < self.cfg.write_buffer_depth
        } else {
            self.reads < self.cfg.read_queue_depth
        };
        if room && self.overflow.is_empty() {
            self.enqueue_direct(p);
        } else {
            self.overflow.push_back(p);
        }
        self.next_try = self.next_try.min(now);
    }

    fn enqueue_direct(&mut self, p: Pending) {
        let bank = p.loc.bank as usize;
        if p.req.is_write {
            self.write_q[bank].push_back(p);
            self.writes += 1;
        } else {
            self.read_q[bank].push_back(p);
            self.reads += 1;
        }
    }

    /// Moves overflow arrivals into the scheduler queues as room appears.
    fn drain_overflow(&mut self) {
        while let Some(p) = self.overflow.front() {
            let room = if p.req.is_write {
                self.writes < self.cfg.write_buffer_depth
            } else {
                self.reads < self.cfg.read_queue_depth
            };
            if !room {
                break;
            }
            // Infallible: the loop condition just observed a front element
            // and nothing between the peek and the pop can drain the queue.
            let p = self.overflow.pop_front().expect("checked front");
            self.enqueue_direct(p);
        }
    }

    #[inline]
    fn slice_of(&self, loc: &Location) -> u32 {
        loc.col / self.atoms_per_activation
    }

    fn bank_ref(&self, bank: u32) -> BankRef {
        BankRef { channel: self.channel, bank }
    }

    /// One scheduling attempt at `now`.
    pub fn step(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        stats: &mut CtrlStats,
    ) -> Result<Step, ProtocolError> {
        self.drain_overflow();
        let refresh_due = self.cfg.refresh_enabled && now >= self.refresh_due;
        let mut wake = if self.cfg.refresh_enabled { self.refresh_due } else { FAR_FUTURE };

        // Write drain hysteresis.
        if !self.draining && self.writes >= self.cfg.write_high_watermark {
            self.draining = true;
            stats.drain_entries.incr();
        } else if self.draining && self.writes <= self.cfg.write_low_watermark {
            self.draining = false;
        }
        let use_writes = self.draining || self.reads == 0;

        if self.reads + self.writes > 0 {
            // Pass 1: row-buffer hits keep flowing even while a refresh
            // quiesces (rows must drain before they can close anyway).
            if let Some(step) = self.try_column(dev, now, use_writes, stats, &mut wake)? {
                return Ok(step);
            }
            // Pass 2: activates / conflict precharges — but no new rows
            // once a refresh is due.
            if !refresh_due {
                if let Some(step) = self.try_activate(dev, now, use_writes, stats, &mut wake)? {
                    return Ok(step);
                }
            }
        }
        if refresh_due {
            return self.step_refresh(dev, now, stats, wake);
        }
        // Pass 3: close rows idle past the timeout.
        let wake = self.maybe_idle_close(dev, now, stats, wake)?;
        Ok(Step::Sleep(wake.max(now + 1)))
    }

    /// Quiesce-and-refresh: close open rows as their fences pass, then
    /// issue the refresh.
    fn step_refresh(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        stats: &mut CtrlStats,
        mut wake: Ns,
    ) -> Result<Step, ProtocolError> {
        let mut any_open = false;
        for b in 0..self.banks as u32 {
            let open: Vec<(u32, u32)> =
                dev.channel(self.channel).bank(b).open_rows().map(|o| (o.row, o.slice)).collect();
            for (row, slice) in open {
                any_open = true;
                let cmd = DramCommand::Precharge { bank: self.bank_ref(b), row: Some(row), slice };
                let e = dev.earliest(&cmd, now)?;
                if e <= now {
                    dev.issue(cmd, now)?;
                    stats.refresh_precharges.incr();
                    return Ok(Step::Issued(None));
                }
                wake = wake.min(e);
            }
        }
        if !any_open {
            let cmd = DramCommand::Refresh { channel: self.channel };
            let e = dev.earliest(&cmd, now)?;
            if e <= now {
                dev.issue(cmd, now)?;
                stats.refreshes.incr();
                self.refresh_due += self.refresh_interval;
                return Ok(Step::Issued(None));
            }
            wake = wake.min(e);
        }
        Ok(Step::Sleep(wake.max(now + 1)))
    }

    fn queue(&self, is_write: bool) -> &Vec<VecDeque<Pending>> {
        if is_write {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    /// Finds and issues a row-buffer hit; `Ok(None)` when no hit is
    /// issuable at `now` (earliest times folded into `wake`).
    ///
    /// Among per-bank oldest hits, the *earliest-issuable* one wins — this
    /// is the Figure 4 bank-group rotation: alternating groups keeps
    /// columns tCCDS apart where strict age order would serialise
    /// same-group accesses at tCCDL.
    fn try_column(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let scan = self.cfg.reorder_window.max(1);
        let mut best: Option<(Ns, u64, usize, usize)> = None;
        for b in 0..self.banks {
            let ch = dev.channel(self.channel);
            let mut candidate: Option<(usize, &Pending)> = None;
            for (i, p) in self.queue(use_writes)[b].iter().take(scan).enumerate() {
                let slice = self.slice_of(&p.loc);
                let hit =
                    ch.bank(b as u32).open_at(p.loc.row, slice).is_some_and(|o| o.row == p.loc.row);
                if hit {
                    candidate = Some((i, p));
                    break; // first hit in FIFO order is this bank's oldest
                }
            }
            let Some((i, p)) = candidate else { continue };
            let e = ch
                .earliest_col(b as u32, p.loc.row, self.slice_of(&p.loc), p.req.is_write, now)
                .map(|t| t.max(now))
                .unwrap_or(Ns::MAX);
            if best.is_none_or(|(be, bs, _, _)| (e, p.seq) < (be, bs)) {
                best = Some((e, p.seq, b, i));
            }
        }
        let Some((e_hint, _, bank, idx)) = best else { return Ok(None) };
        if e_hint > now {
            *wake = (*wake).min(e_hint);
            return Ok(None);
        }
        let p = self.queue(use_writes)[bank][idx];
        let slice = self.slice_of(&p.loc);
        let auto_precharge = self.cfg.page_policy == PagePolicy::Closed
            || !self.row_reusable(bank, idx, use_writes, p.loc.row, slice);
        let bankref = self.bank_ref(bank as u32);
        let cmd = if p.req.is_write {
            DramCommand::Write {
                bank: bankref,
                row: p.loc.row,
                col: p.loc.col,
                auto_precharge,
                req: p.req.id,
            }
        } else {
            DramCommand::Read {
                bank: bankref,
                row: p.loc.row,
                col: p.loc.col,
                auto_precharge,
                req: p.req.id,
            }
        };
        let e = dev.earliest(&cmd, now)?;
        if e > now {
            // The shared command bus (not the channel) must be busy.
            *wake = (*wake).min(e);
            return Ok(None);
        }
        let completion = dev.issue(cmd, now)?;
        let removed = if use_writes {
            self.writes -= 1;
            self.write_q[bank].remove(idx)
        } else {
            self.reads -= 1;
            self.read_q[bank].remove(idx)
        }
        // Infallible: `idx` came from `best`, which indexed this very
        // queue earlier in the call, and nothing has mutated it since.
        .expect("scheduled request present");
        stats.row_hits.incr();
        if auto_precharge {
            stats.auto_precharges.incr();
        }
        if let Some(c) = completion {
            if !removed.req.is_write {
                stats.record_read_latency(removed.arrived, c.at);
            }
        }
        self.last_activity = now;
        Ok(Some(Step::Issued(completion)))
    }

    /// True when another queued request (read or write) can still use the
    /// open (`row`, `slice`) of `bank`, so the row should stay open.
    fn row_reusable(
        &self,
        bank: usize,
        skip_idx: usize,
        skip_writes: bool,
        row: u32,
        slice: u32,
    ) -> bool {
        let scan = self.cfg.reorder_window.max(1);
        let matches = |p: &Pending| p.loc.row == row && self.slice_of(&p.loc) == slice;
        self.read_q[bank]
            .iter()
            .take(scan)
            .enumerate()
            .any(|(i, p)| (skip_writes || i != skip_idx) && matches(p))
            || self.write_q[bank]
                .iter()
                .take(scan)
                .enumerate()
                .any(|(i, p)| (!skip_writes || i != skip_idx) && matches(p))
    }

    /// Tries to open a row (or clear a conflict) for the oldest
    /// front-of-queue request per bank.
    fn try_activate(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        // Front requests per bank, oldest first.
        let mut fronts: Vec<(u64, usize)> = (0..self.banks)
            .filter_map(|b| self.queue(use_writes)[b].front().map(|p| (p.seq, b)))
            .collect();
        fronts.sort_unstable();
        for (_, b) in fronts {
            // Infallible: `fronts` was built from banks whose `front()` was
            // `Some`, and the queues are untouched between there and here.
            let p = *self.queue(use_writes)[b].front().expect("front exists");
            let slice = self.slice_of(&p.loc);
            let bankref = self.bank_ref(b as u32);
            // Already open with the right row: handled by try_column (it
            // was not issuable now; its wake time is already folded in).
            let open = dev.channel(self.channel).bank(b as u32).open_at(p.loc.row, slice).copied();
            if let Some(o) = open {
                if o.row == p.loc.row {
                    continue;
                }
                // Conflict: close the loser — unless the active queue still
                // has hits for it, which FR-FCFS will serve first.
                if self.row_has_pending(b, o.row, o.slice, use_writes) {
                    *wake = (*wake).min(now + 4);
                    continue;
                }
                if let Some(step) = self.try_precharge(
                    dev,
                    now,
                    bankref,
                    o.row,
                    o.slice,
                    &mut stats.conflict_precharges,
                    wake,
                )? {
                    return Ok(Some(step));
                }
                continue;
            }
            let cmd = DramCommand::Activate { bank: bankref, row: p.loc.row, slice };
            match dev.earliest(&cmd, now) {
                Ok(e) if e <= now => {
                    dev.issue(cmd, now)?;
                    stats.activates.incr();
                    self.last_activity = now;
                    return Ok(Some(Step::Issued(None)));
                }
                Ok(e) => *wake = (*wake).min(e),
                Err(err) => {
                    if let Some(step) = self.resolve_act_block(
                        dev, now, b as u32, &p, err.rule, use_writes, stats, wake,
                    )? {
                        return Ok(Some(step));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Handles structural activate rejections by precharging whichever
    /// open row blocks the request.
    #[allow(clippy::too_many_arguments)]
    fn resolve_act_block(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        bank: u32,
        p: &Pending,
        rule: Rule,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let sub_of = |row: u32| row / dev.config().rows_per_subarray() as u32;
        let want_sub = sub_of(p.loc.row);
        match rule {
            Rule::SubarrayConflict if self.grain_based => {
                // The sibling pseudobank holds a different row of the same
                // subarray (Section 3.3): close it.
                for sib in 0..self.banks as u32 {
                    if sib == bank {
                        continue;
                    }
                    let blocking = dev
                        .channel(self.channel)
                        .bank(sib)
                        .open_rows()
                        .find(|o| o.row != p.loc.row && sub_of(o.row) == want_sub)
                        .map(|o| (o.row, o.slice));
                    if let Some((row, slice)) = blocking {
                        if self.row_has_pending(sib as usize, row, slice, use_writes) {
                            *wake = (*wake).min(now + 4);
                            return Ok(None);
                        }
                        return self.try_precharge(
                            dev,
                            now,
                            self.bank_ref(sib),
                            row,
                            slice,
                            &mut stats.conflict_precharges,
                            wake,
                        );
                    }
                }
                Ok(None)
            }
            Rule::AdjacentSubarray => {
                // SALP: a neighbouring subarray's open row shares the
                // sense-amp stripe; close it.
                let blocking = dev
                    .channel(self.channel)
                    .bank(bank)
                    .open_rows()
                    .find(|o| sub_of(o.row).abs_diff(want_sub) == 1)
                    .map(|o| (o.row, o.slice));
                if let Some((row, slice)) = blocking {
                    if self.row_has_pending(bank as usize, row, slice, use_writes) {
                        *wake = (*wake).min(now + 4);
                        return Ok(None);
                    }
                    return self.try_precharge(
                        dev,
                        now,
                        self.bank_ref(bank),
                        row,
                        slice,
                        &mut stats.conflict_precharges,
                        wake,
                    );
                }
                Ok(None)
            }
            // ActOnOpenRow is handled by the conflict path in
            // `try_activate` before `earliest` is consulted; anything else
            // here is unexpected but non-fatal for scheduling.
            _ => Ok(None),
        }
    }

    /// Whether the active queue (within the reorder window) still targets
    /// the open (`row`, `slice`) of `bank`.
    fn row_has_pending(&self, bank: usize, row: u32, slice: u32, use_writes: bool) -> bool {
        let scan = self.cfg.reorder_window.max(1);
        self.queue(use_writes)[bank]
            .iter()
            .take(scan)
            .any(|p| p.loc.row == row && self.slice_of(&p.loc) == slice)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_precharge(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        bank: BankRef,
        row: u32,
        slice: u32,
        counter: &mut fgdram_model::stats::Counter,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let cmd = DramCommand::Precharge { bank, row: Some(row), slice };
        let e = dev.earliest(&cmd, now)?;
        if e <= now {
            dev.issue(cmd, now)?;
            counter.incr();
            self.last_activity = now;
            return Ok(Some(Step::Issued(None)));
        }
        *wake = (*wake).min(e);
        Ok(None)
    }

    /// Closes rows whose bank has no pending work once they have idled past
    /// the configured timeout. Returns the (possibly earlier) wake time.
    fn maybe_idle_close(
        &mut self,
        dev: &mut DramDevice,
        now: Ns,
        stats: &mut CtrlStats,
        wake: Ns,
    ) -> Result<Ns, ProtocolError> {
        if self.cfg.idle_row_timeout == 0 {
            return Ok(wake);
        }
        let deadline = self.last_activity + self.cfg.idle_row_timeout;
        let mut wake = wake;
        if now < deadline {
            let has_open =
                (0..self.banks as u32).any(|b| dev.channel(self.channel).bank(b).any_open());
            if has_open {
                wake = wake.min(deadline);
            }
            return Ok(wake);
        }
        for b in 0..self.banks as u32 {
            if !self.read_q[b as usize].is_empty() || !self.write_q[b as usize].is_empty() {
                continue;
            }
            let open =
                dev.channel(self.channel).bank(b).open_rows().next().map(|o| (o.row, o.slice));
            if let Some((row, slice)) = open {
                if let Some(step) = self.try_precharge(
                    dev,
                    now,
                    self.bank_ref(b),
                    row,
                    slice,
                    &mut stats.timeout_precharges,
                    &mut wake,
                )? {
                    let _ = step;
                    return Ok(wake.min(now + 1));
                }
            }
        }
        Ok(wake)
    }
}
