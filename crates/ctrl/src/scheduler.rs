//! Per-channel (per-grain-group) FR-FCFS scheduler.
//!
//! Implements the paper's throughput-optimized controller (Section 4.1):
//! deep per-bank request queues with row-hit-first reordering, batched
//! write draining between watermarks, open-page policy with
//! conflict-triggered and idle-timeout precharges, opportunistic
//! auto-precharge when no queued request can reuse the open row, and the
//! FGDRAM-specific subarray-conflict avoidance of Section 3.3.

use std::collections::VecDeque;

use fgdram_dram::{LaneDevice, ProtocolError, Rule};
use fgdram_model::addr::{Location, MemRequest};
use fgdram_model::cmd::{BankRef, Completion, DramCommand};
use fgdram_model::config::{CtrlConfig, PagePolicy};
use fgdram_model::units::Ns;

use crate::arena::{FifoRing, RequestArena};
use crate::stats::CtrlStats;

/// A queued request with its decoded location and arrival order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub req: MemRequest,
    pub loc: Location,
    pub arrived: Ns,
    pub seq: u64,
    /// Subchannel slice of `loc.col`, precomputed on admission
    /// ([`ChannelSched::enqueue`]) so queue scans stop dividing per entry.
    pub slice: u32,
}

impl Pending {
    pub(crate) fn new(req: MemRequest, loc: Location, arrived: Ns, seq: u64) -> Self {
        // `slice` is filled in by the owning scheduler on enqueue (it
        // knows the channel's atoms-per-activation).
        Pending { req, loc, arrived, seq, slice: 0 }
    }
}

/// Cached first row-buffer hit for one (bank, direction) queue within the
/// scan window. `Unknown` forces a rescan; `Known(None)` means no hit in
/// the window; `Known(Some(i))` is the FIFO-oldest hit's queue index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HitCache {
    Unknown,
    Known(Option<u32>),
}

/// Result of one scheduling attempt.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// A command was issued (with the data completion for columns).
    Issued(Option<Completion>),
    /// Nothing issuable before this time.
    Sleep(Ns),
}

const FAR_FUTURE: Ns = Ns::MAX / 4;

/// Upper bound on commands one channel may issue within a single tick
/// (defensive cap; normal operation issues a handful).
const MAX_STEPS_PER_TICK: usize = 64;

#[derive(Debug)]
pub(crate) struct ChannelSched {
    channel: u32,
    banks: usize,
    /// `log2(atoms_per_activation)`: slice decode is a shift on the
    /// per-request enqueue path (the count is a validated power of two).
    slice_shift: u32,
    cfg: CtrlConfig,
    grain_based: bool,
    /// All queued requests of this channel live in one slab; the rings
    /// below hold FIFO order as slab indices (see [`crate::arena`]).
    arena: RequestArena,
    read_q: Vec<FifoRing>,
    write_q: Vec<FifoRing>,
    /// Crossbar partition queue: holds arrivals while the per-bank
    /// scheduler queues are full.
    overflow: VecDeque<Pending>,
    reads: usize,
    writes: usize,
    draining: bool,
    refresh_due: Ns,
    refresh_interval: Ns,
    last_activity: Ns,
    /// Per-bank cached first hit, indexed `[bank][is_write]`. Invalidated
    /// on every queue or open-row mutation (see `note_*` helpers); the
    /// debug build cross-checks each use against a fresh scan.
    hit_cache: Vec<[HitCache; 2]>,
    /// Scratch for `try_activate`'s per-bank front list (seq, bank).
    fronts_scratch: Vec<(u64, usize)>,
    /// Scratch for `step_refresh`'s open-row list (row, slice).
    refresh_scratch: Vec<(u32, u32)>,
    pub next_try: Ns,
    /// Fault-injected stall fence: the channel issues nothing before this
    /// time. Kept separate from `next_try` because `enqueue` pulls
    /// `next_try` forward on every arrival, which must not cancel a stall.
    pub stalled_until: Ns,
}

impl ChannelSched {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        channel: u32,
        banks: usize,
        atoms_per_activation: u32,
        grain_based: bool,
        cfg: CtrlConfig,
        refresh_interval: Ns,
        refresh_phase: Ns,
        open_slots_per_bank: usize,
    ) -> Self {
        // Admission control bounds live reads/writes to the configured
        // depths, and any one bank may transiently hold a whole
        // direction's worth — each ring gets the full per-direction depth.
        let fill = Pending::new(
            MemRequest {
                id: fgdram_model::addr::ReqId(0),
                addr: fgdram_model::addr::PhysAddr(0),
                is_write: false,
            },
            Location { channel: 0, bank: 0, row: 0, col: 0 },
            0,
            0,
        );
        let mut arena = RequestArena::with_capacity(
            banks * (cfg.read_queue_depth + cfg.write_buffer_depth),
            fill,
        );
        let read_q = (0..banks).map(|_| arena.new_ring(cfg.read_queue_depth)).collect();
        let write_q = (0..banks).map(|_| arena.new_ring(cfg.write_buffer_depth)).collect();
        ChannelSched {
            channel,
            banks,
            slice_shift: {
                debug_assert!(atoms_per_activation.is_power_of_two());
                atoms_per_activation.trailing_zeros()
            },
            grain_based,
            arena,
            read_q,
            write_q,
            // Hard bound: `can_accept` admits past a non-empty overflow
            // while *direct* room exists, so overflow can transiently
            // hold xbar + both direct depths. The capacity is virtual
            // until touched (no pre-fill), so over-sizing is free.
            overflow: VecDeque::with_capacity(
                cfg.xbar_queue_depth + cfg.read_queue_depth + cfg.write_buffer_depth,
            ),
            cfg,
            reads: 0,
            writes: 0,
            draining: false,
            refresh_due: refresh_phase.max(1),
            refresh_interval,
            last_activity: 0,
            hit_cache: vec![[HitCache::Known(None); 2]; banks],
            // Pre-sized so first use after warmup stays off the allocator.
            fronts_scratch: Vec::with_capacity(banks),
            refresh_scratch: Vec::with_capacity(open_slots_per_bank),
            next_try: 0,
            stalled_until: 0,
        }
    }

    pub fn pending(&self) -> usize {
        self.reads + self.writes + self.overflow.len()
    }

    pub fn can_accept(&self, is_write: bool) -> bool {
        let direct = if is_write {
            self.writes < self.cfg.write_buffer_depth
        } else {
            self.reads < self.cfg.read_queue_depth
        };
        direct || self.overflow.len() < self.cfg.xbar_queue_depth
    }

    pub fn enqueue(&mut self, mut p: Pending, now: Ns) {
        p.slice = self.slice_of(&p.loc);
        let room = if p.req.is_write {
            self.writes < self.cfg.write_buffer_depth
        } else {
            self.reads < self.cfg.read_queue_depth
        };
        if room && self.overflow.is_empty() {
            self.enqueue_direct(p);
        } else {
            self.overflow.push_back(p);
        }
        self.next_try = self.next_try.min(now);
    }

    fn enqueue_direct(&mut self, p: Pending) {
        let bank = p.loc.bank as usize;
        let dir = p.req.is_write as usize;
        let len_before = if p.req.is_write {
            self.write_q[bank].push_back(&mut self.arena, p);
            self.writes += 1;
            self.write_q[bank].len() - 1
        } else {
            self.read_q[bank].push_back(&mut self.arena, p);
            self.reads += 1;
            self.read_q[bank].len() - 1
        };
        // The new tail entered the scan window: a known-miss window may
        // now contain a hit. A known hit index stays the oldest hit.
        if len_before < self.cfg.reorder_window.max(1)
            && self.hit_cache[bank][dir] == HitCache::Known(None)
        {
            self.hit_cache[bank][dir] = HitCache::Unknown;
        }
    }

    /// Moves overflow arrivals into the scheduler queues as room appears.
    fn drain_overflow(&mut self) {
        while let Some(p) = self.overflow.front() {
            let room = if p.req.is_write {
                self.writes < self.cfg.write_buffer_depth
            } else {
                self.reads < self.cfg.read_queue_depth
            };
            if !room {
                break;
            }
            // Infallible: the loop condition just observed a front element
            // and nothing between the peek and the pop can drain the queue.
            let p = self.overflow.pop_front().expect("checked front");
            self.enqueue_direct(p);
        }
    }

    #[inline]
    fn slice_of(&self, loc: &Location) -> u32 {
        loc.col >> self.slice_shift
    }

    fn bank_ref(&self, bank: u32) -> BankRef {
        BankRef { channel: self.channel, bank }
    }

    /// Fresh scan for the FIFO-oldest row-buffer hit in `bank`'s queue
    /// (the cache's ground truth).
    fn scan_first_hit(
        &self,
        ch: fgdram_dram::Channel<'_>,
        bank: usize,
        use_writes: bool,
    ) -> Option<u32> {
        let bank_view = ch.bank(bank as u32);
        // One open-bitset word test skips the whole window scan for banks
        // with nothing open — the common case on random-access workloads.
        if !bank_view.any_open() {
            return None;
        }
        let scan = self.cfg.reorder_window.max(1);
        self.queue(use_writes)[bank]
            .iter(&self.arena)
            .take(scan)
            .position(|p| bank_view.open_at(p.loc.row, p.slice).is_some_and(|o| o.row == p.loc.row))
            .map(|i| i as u32)
    }

    /// Cache maintenance after removing queue index `idx` of
    /// (`bank`, direction).
    fn note_removal(&mut self, bank: usize, is_write: bool, idx: usize) {
        let dir = is_write as usize;
        let scan = self.cfg.reorder_window.max(1);
        let len_after = self.queue(is_write)[bank].len();
        self.hit_cache[bank][dir] = match self.hit_cache[bank][dir] {
            HitCache::Unknown => HitCache::Unknown,
            // An entry beyond the window slid in; its hit status is
            // unknown. If the queue fit inside the window, nothing new
            // became visible.
            HitCache::Known(None) => {
                if len_after >= scan {
                    HitCache::Unknown
                } else {
                    HitCache::Known(None)
                }
            }
            HitCache::Known(Some(i)) => match (idx as u32).cmp(&i) {
                std::cmp::Ordering::Equal => HitCache::Unknown,
                std::cmp::Ordering::Less => HitCache::Known(Some(i - 1)),
                std::cmp::Ordering::Greater => HitCache::Known(Some(i)),
            },
        };
    }

    /// Cache maintenance after an activate on `bank`: any queued entry may
    /// have become a hit.
    fn note_activate(&mut self, bank: usize) {
        self.hit_cache[bank] = [HitCache::Unknown; 2];
    }

    /// Cache maintenance after a precharge (explicit or auto) on `bank`:
    /// cached hits may have lost their row; a known-miss window stays a
    /// miss (closing rows never creates hits).
    fn note_precharge(&mut self, bank: usize) {
        for dir in 0..2 {
            if let HitCache::Known(Some(_)) = self.hit_cache[bank][dir] {
                self.hit_cache[bank][dir] = HitCache::Unknown;
            }
        }
    }

    /// Runs scheduling attempts at `now` until the channel has issued
    /// every command legal at this instant and goes to sleep (or the
    /// defensive cap trips), pushing data completions into `out` and
    /// leaving `next_try` at the channel's next wake time.
    pub fn pass(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        stats: &mut CtrlStats,
        out: &mut Vec<Completion>,
    ) -> Result<(), ProtocolError> {
        for _ in 0..MAX_STEPS_PER_TICK {
            match self.step(dev, now, stats)? {
                Step::Issued(Some(c)) => out.push(c),
                Step::Issued(None) => {}
                Step::Sleep(t) => {
                    self.next_try = t.max(now + 1);
                    return Ok(());
                }
            }
        }
        self.next_try = now + 1;
        Ok(())
    }

    /// One scheduling attempt at `now`.
    pub fn step(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        stats: &mut CtrlStats,
    ) -> Result<Step, ProtocolError> {
        self.drain_overflow();
        let refresh_due = self.cfg.refresh_enabled && now >= self.refresh_due;
        let mut wake = if self.cfg.refresh_enabled { self.refresh_due } else { FAR_FUTURE };

        // Write drain hysteresis.
        if !self.draining && self.writes >= self.cfg.write_high_watermark {
            self.draining = true;
            stats.drain_entries.incr();
        } else if self.draining && self.writes <= self.cfg.write_low_watermark {
            self.draining = false;
        }
        let use_writes = self.draining || self.reads == 0;

        if self.reads + self.writes > 0 {
            // Pass 1: row-buffer hits keep flowing even while a refresh
            // quiesces (rows must drain before they can close anyway).
            if let Some(step) = self.try_column(dev, now, use_writes, stats, &mut wake)? {
                return Ok(step);
            }
            // Pass 2: activates / conflict precharges — but no new rows
            // once a refresh is due.
            if !refresh_due {
                if let Some(step) = self.try_activate(dev, now, use_writes, stats, &mut wake)? {
                    return Ok(step);
                }
            }
        }
        if refresh_due {
            return self.step_refresh(dev, now, stats, wake);
        }
        // Pass 3: close rows idle past the timeout.
        let wake = self.maybe_idle_close(dev, now, stats, wake)?;
        Ok(Step::Sleep(wake.max(now + 1)))
    }

    /// Quiesce-and-refresh: close open rows as their fences pass, then
    /// issue the refresh.
    ///
    /// Drains every precharge issuable at `now` in one call (restarting
    /// the scan after each issue so fence times reflect the new bus
    /// state), reusing `refresh_scratch` instead of allocating a row
    /// list per bank per call.
    fn step_refresh(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        stats: &mut CtrlStats,
        mut wake: Ns,
    ) -> Result<Step, ProtocolError> {
        let mut issued = false;
        let mut scratch = std::mem::take(&mut self.refresh_scratch);
        'rescan: loop {
            let mut any_open = false;
            for b in 0..self.banks as u32 {
                scratch.clear();
                scratch.extend(
                    dev.channel(self.channel).bank(b).open_rows().map(|o| (o.row, o.slice)),
                );
                for &(row, slice) in scratch.iter() {
                    any_open = true;
                    let cmd =
                        DramCommand::Precharge { bank: self.bank_ref(b), row: Some(row), slice };
                    let e = dev.earliest(&cmd, now)?;
                    if e <= now {
                        dev.issue(cmd, now)?;
                        stats.refresh_precharges.incr();
                        self.note_precharge(b as usize);
                        issued = true;
                        continue 'rescan;
                    }
                    wake = wake.min(e);
                }
            }
            if !any_open {
                let cmd = DramCommand::Refresh { channel: self.channel };
                let e = dev.earliest(&cmd, now)?;
                if e <= now {
                    dev.issue(cmd, now)?;
                    stats.refreshes.incr();
                    self.refresh_due += self.refresh_interval;
                    self.refresh_scratch = scratch;
                    // The refresh advanced `refresh_due`, so the next
                    // `step` takes the normal path — stop here.
                    return Ok(Step::Issued(None));
                }
                wake = wake.min(e);
            }
            break;
        }
        self.refresh_scratch = scratch;
        if issued {
            return Ok(Step::Issued(None));
        }
        Ok(Step::Sleep(wake.max(now + 1)))
    }

    fn queue(&self, is_write: bool) -> &[FifoRing] {
        if is_write {
            &self.write_q
        } else {
            &self.read_q
        }
    }

    /// Finds and issues a row-buffer hit; `Ok(None)` when no hit is
    /// issuable at `now` (earliest times folded into `wake`).
    ///
    /// Among per-bank oldest hits, the *earliest-issuable* one wins — this
    /// is the Figure 4 bank-group rotation: alternating groups keeps
    /// columns tCCDS apart where strict age order would serialise
    /// same-group accesses at tCCDL.
    fn try_column(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let mut best: Option<(Ns, u64, usize, usize)> = None;
        for b in 0..self.banks {
            let ch = dev.channel(self.channel);
            // The cached oldest hit replaces the window scan; `Unknown`
            // (set on any queue/row mutation) falls back to one scan.
            let cand_idx = match self.hit_cache[b][use_writes as usize] {
                HitCache::Known(c) => {
                    debug_assert_eq!(
                        c,
                        self.scan_first_hit(ch, b, use_writes),
                        "stale hit cache: channel {} bank {b} writes {use_writes}",
                        self.channel
                    );
                    c
                }
                HitCache::Unknown => {
                    let c = self.scan_first_hit(ch, b, use_writes);
                    self.hit_cache[b][use_writes as usize] = HitCache::Known(c);
                    c
                }
            };
            let Some(i) = cand_idx else { continue };
            let i = i as usize;
            // Infallible: the hit cache (cross-checked against a fresh scan
            // in debug builds) only holds in-window indices.
            let p = self.queue(use_writes)[b].get(&self.arena, i).expect("cached hit present");
            let e = ch
                .earliest_col(b as u32, p.loc.row, p.slice, p.req.is_write, now)
                .map(|t| t.max(now))
                .unwrap_or(Ns::MAX);
            if best.is_none_or(|(be, bs, _, _)| (e, p.seq) < (be, bs)) {
                best = Some((e, p.seq, b, i));
            }
        }
        let Some((e_hint, _, bank, idx)) = best else { return Ok(None) };
        if e_hint > now {
            *wake = (*wake).min(e_hint);
            return Ok(None);
        }
        let p = *self.queue(use_writes)[bank].get(&self.arena, idx).expect("scheduled request");
        let slice = p.slice;
        let auto_precharge = self.cfg.page_policy == PagePolicy::Closed
            || !self.row_reusable(bank, idx, use_writes, p.loc.row, slice);
        let bankref = self.bank_ref(bank as u32);
        let cmd = if p.req.is_write {
            DramCommand::Write {
                bank: bankref,
                row: p.loc.row,
                col: p.loc.col,
                auto_precharge,
                req: p.req.id,
            }
        } else {
            DramCommand::Read {
                bank: bankref,
                row: p.loc.row,
                col: p.loc.col,
                auto_precharge,
                req: p.req.id,
            }
        };
        let e = dev.earliest(&cmd, now)?;
        if e > now {
            // The shared command bus (not the channel) must be busy.
            *wake = (*wake).min(e);
            return Ok(None);
        }
        let completion = dev.issue(cmd, now)?;
        let removed = if use_writes {
            self.writes -= 1;
            self.write_q[bank].remove_at(&mut self.arena, idx)
        } else {
            self.reads -= 1;
            self.read_q[bank].remove_at(&mut self.arena, idx)
        };
        self.note_removal(bank, use_writes, idx);
        stats.row_hits.incr();
        if auto_precharge {
            stats.auto_precharges.incr();
            self.note_precharge(bank);
        }
        if let Some(c) = completion {
            if !removed.req.is_write {
                stats.record_read_latency(removed.arrived, c.at);
            }
        }
        self.last_activity = now;
        Ok(Some(Step::Issued(completion)))
    }

    /// True when another queued request (read or write) can still use the
    /// open (`row`, `slice`) of `bank`, so the row should stay open.
    fn row_reusable(
        &self,
        bank: usize,
        skip_idx: usize,
        skip_writes: bool,
        row: u32,
        slice: u32,
    ) -> bool {
        let scan = self.cfg.reorder_window.max(1);
        let matches = |p: &Pending| p.loc.row == row && p.slice == slice;
        self.read_q[bank]
            .iter(&self.arena)
            .take(scan)
            .enumerate()
            .any(|(i, p)| (skip_writes || i != skip_idx) && matches(p))
            || self.write_q[bank]
                .iter(&self.arena)
                .take(scan)
                .enumerate()
                .any(|(i, p)| (!skip_writes || i != skip_idx) && matches(p))
    }

    /// Tries to open a row (or clear a conflict) for the oldest
    /// front-of-queue request per bank.
    fn try_activate(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        // Front requests per bank, oldest first (reusable scratch —
        // allocation-free after warm-up).
        let mut fronts = std::mem::take(&mut self.fronts_scratch);
        fronts.clear();
        fronts.extend(
            (0..self.banks)
                .filter_map(|b| self.queue(use_writes)[b].front(&self.arena).map(|p| (p.seq, b))),
        );
        fronts.sort_unstable();
        let mut ret = None;
        for &(_, b) in fronts.iter() {
            // Infallible: `fronts` was built from banks whose `front()` was
            // `Some`, and the queues are untouched between there and here.
            let p = *self.queue(use_writes)[b].front(&self.arena).expect("front exists");
            let slice = p.slice;
            let bankref = self.bank_ref(b as u32);
            // Already open with the right row: handled by try_column (it
            // was not issuable now; its wake time is already folded in).
            let open = dev.channel(self.channel).bank(b as u32).open_at(p.loc.row, slice);
            if let Some(o) = open {
                if o.row == p.loc.row {
                    continue;
                }
                // Conflict: close the loser — unless the active queue still
                // has hits for it, which FR-FCFS will serve first. Wake at
                // the blocking row's column fence (when its hit can drain),
                // not a fixed-interval poll.
                if self.row_has_pending(b, o.row, o.slice, use_writes) {
                    let fence = self.conflict_fence(dev, b as u32, o.row, o.slice, use_writes, now);
                    *wake = (*wake).min(fence);
                    continue;
                }
                if let Some(step) = self.try_precharge(
                    dev,
                    now,
                    bankref,
                    o.row,
                    o.slice,
                    &mut stats.conflict_precharges,
                    wake,
                )? {
                    ret = Some(step);
                    break;
                }
                continue;
            }
            let cmd = DramCommand::Activate { bank: bankref, row: p.loc.row, slice };
            match dev.earliest(&cmd, now) {
                Ok(e) if e <= now => {
                    dev.issue(cmd, now)?;
                    stats.activates.incr();
                    self.note_activate(b);
                    self.last_activity = now;
                    ret = Some(Step::Issued(None));
                    break;
                }
                Ok(e) => *wake = (*wake).min(e),
                Err(err) => {
                    if let Some(step) = self.resolve_act_block(
                        dev, now, b as u32, &p, err.rule, use_writes, stats, wake,
                    )? {
                        ret = Some(step);
                        break;
                    }
                }
            }
        }
        self.fronts_scratch = fronts;
        Ok(ret)
    }

    /// Wake fence for a conflict whose open row still has queued hits: the
    /// row's next column-issue time — when that hit can drain and the
    /// conflict can make progress — clamped past `now`.
    fn conflict_fence(
        &self,
        dev: &LaneDevice<'_>,
        bank: u32,
        row: u32,
        slice: u32,
        use_writes: bool,
        now: Ns,
    ) -> Ns {
        dev.channel(self.channel)
            .earliest_col(bank, row, slice, use_writes, now)
            .map(|t| t.max(now + 1))
            .unwrap_or(now + 1)
    }

    /// Handles structural activate rejections by precharging whichever
    /// open row blocks the request.
    #[allow(clippy::too_many_arguments)]
    fn resolve_act_block(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        bank: u32,
        p: &Pending,
        rule: Rule,
        use_writes: bool,
        stats: &mut CtrlStats,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let sub_of = |row: u32| row / dev.config().rows_per_subarray() as u32;
        let want_sub = sub_of(p.loc.row);
        match rule {
            Rule::SubarrayConflict if self.grain_based => {
                // The sibling pseudobank holds a different row of the same
                // subarray (Section 3.3): close it.
                for sib in 0..self.banks as u32 {
                    if sib == bank {
                        continue;
                    }
                    let blocking = dev
                        .channel(self.channel)
                        .bank(sib)
                        .open_rows()
                        .find(|o| o.row != p.loc.row && sub_of(o.row) == want_sub)
                        .map(|o| (o.row, o.slice));
                    if let Some((row, slice)) = blocking {
                        if self.row_has_pending(sib as usize, row, slice, use_writes) {
                            let fence = self.conflict_fence(dev, sib, row, slice, use_writes, now);
                            *wake = (*wake).min(fence);
                            return Ok(None);
                        }
                        return self.try_precharge(
                            dev,
                            now,
                            self.bank_ref(sib),
                            row,
                            slice,
                            &mut stats.conflict_precharges,
                            wake,
                        );
                    }
                }
                Ok(None)
            }
            Rule::AdjacentSubarray => {
                // SALP: a neighbouring subarray's open row shares the
                // sense-amp stripe; close it.
                let blocking = dev
                    .channel(self.channel)
                    .bank(bank)
                    .open_rows()
                    .find(|o| sub_of(o.row).abs_diff(want_sub) == 1)
                    .map(|o| (o.row, o.slice));
                if let Some((row, slice)) = blocking {
                    if self.row_has_pending(bank as usize, row, slice, use_writes) {
                        let fence = self.conflict_fence(dev, bank, row, slice, use_writes, now);
                        *wake = (*wake).min(fence);
                        return Ok(None);
                    }
                    return self.try_precharge(
                        dev,
                        now,
                        self.bank_ref(bank),
                        row,
                        slice,
                        &mut stats.conflict_precharges,
                        wake,
                    );
                }
                Ok(None)
            }
            // ActOnOpenRow is handled by the conflict path in
            // `try_activate` before `earliest` is consulted; anything else
            // here is unexpected but non-fatal for scheduling.
            _ => Ok(None),
        }
    }

    /// Whether the active queue (within the reorder window) still targets
    /// the open (`row`, `slice`) of `bank`.
    fn row_has_pending(&self, bank: usize, row: u32, slice: u32, use_writes: bool) -> bool {
        let scan = self.cfg.reorder_window.max(1);
        self.queue(use_writes)[bank]
            .iter(&self.arena)
            .take(scan)
            .any(|p| p.loc.row == row && p.slice == slice)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_precharge(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        bank: BankRef,
        row: u32,
        slice: u32,
        counter: &mut fgdram_model::stats::Counter,
        wake: &mut Ns,
    ) -> Result<Option<Step>, ProtocolError> {
        let cmd = DramCommand::Precharge { bank, row: Some(row), slice };
        let e = dev.earliest(&cmd, now)?;
        if e <= now {
            dev.issue(cmd, now)?;
            counter.incr();
            self.note_precharge(bank.bank as usize);
            self.last_activity = now;
            return Ok(Some(Step::Issued(None)));
        }
        *wake = (*wake).min(e);
        Ok(None)
    }

    /// Closes rows whose bank has no pending work once they have idled past
    /// the configured timeout. Returns the (possibly earlier) wake time.
    fn maybe_idle_close(
        &mut self,
        dev: &mut LaneDevice<'_>,
        now: Ns,
        stats: &mut CtrlStats,
        wake: Ns,
    ) -> Result<Ns, ProtocolError> {
        if self.cfg.idle_row_timeout == 0 {
            return Ok(wake);
        }
        let deadline = self.last_activity + self.cfg.idle_row_timeout;
        let mut wake = wake;
        if now < deadline {
            let has_open =
                (0..self.banks as u32).any(|b| dev.channel(self.channel).bank(b).any_open());
            if has_open {
                wake = wake.min(deadline);
            }
            return Ok(wake);
        }
        for b in 0..self.banks as u32 {
            if !self.read_q[b as usize].is_empty() || !self.write_q[b as usize].is_empty() {
                continue;
            }
            let open =
                dev.channel(self.channel).bank(b).open_rows().next().map(|o| (o.row, o.slice));
            if let Some((row, slice)) = open {
                if let Some(step) = self.try_precharge(
                    dev,
                    now,
                    self.bank_ref(b),
                    row,
                    slice,
                    &mut stats.timeout_precharges,
                    &mut wake,
                )? {
                    let _ = step;
                    return Ok(wake.min(now + 1));
                }
            }
        }
        Ok(wake)
    }
}
