//! Protocol violations reported by the device model and the trace checker.

use fgdram_model::cmd::DramCommand;
use fgdram_model::units::Ns;

/// Why a command was illegal at its issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Activate before the bank/subarray row cycle allowed it (tRC/tRP).
    ActTooEarly,
    /// Activate while the target already has an open row.
    ActOnOpenRow,
    /// Activate violating channel tRRD.
    ActRrd,
    /// Activate violating the rolling tFAW window.
    ActFaw,
    /// Activate while the paired pseudobank holds a different row open in
    /// the same subarray (FGDRAM grain rule, Section 3.3).
    SubarrayConflict,
    /// Activate into a subarray adjacent to an open one (SALP shared
    /// sense-amp stripe).
    AdjacentSubarray,
    /// Column command to a closed or mismatched row.
    RowNotOpen,
    /// Column command before tRCD elapsed.
    ColBeforeRcd,
    /// Column command violating tCCDS/tCCDL.
    ColCcd,
    /// Column data would overlap the data bus or break turnaround rules.
    DataBusConflict,
    /// Precharge before tRAS/tRTP/tWR allowed it.
    PreTooEarly,
    /// Precharge of a bank with nothing open.
    PreNothingOpen,
    /// Refresh while rows are open, or command to a refreshing channel.
    RefreshConflict,
    /// Command bus slot already occupied.
    CmdBusBusy,
    /// Command targets a bank/row/column outside the configured geometry.
    OutOfRange,
}

impl Rule {
    /// Every rule the checker can report, for exhaustive coverage tests.
    pub const ALL: [Rule; 15] = [
        Rule::ActTooEarly,
        Rule::ActOnOpenRow,
        Rule::ActRrd,
        Rule::ActFaw,
        Rule::SubarrayConflict,
        Rule::AdjacentSubarray,
        Rule::RowNotOpen,
        Rule::ColBeforeRcd,
        Rule::ColCcd,
        Rule::DataBusConflict,
        Rule::PreTooEarly,
        Rule::PreNothingOpen,
        Rule::RefreshConflict,
        Rule::CmdBusBusy,
        Rule::OutOfRange,
    ];
}

impl core::fmt::Display for Rule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Rule::ActTooEarly => "activate before tRC/tRP expired",
            Rule::ActOnOpenRow => "activate on an already-open row buffer",
            Rule::ActRrd => "activate violates tRRD",
            Rule::ActFaw => "activate violates tFAW window",
            Rule::SubarrayConflict => "pseudobank subarray conflict",
            Rule::AdjacentSubarray => "adjacent SALP subarray already open",
            Rule::RowNotOpen => "column access to closed or wrong row",
            Rule::ColBeforeRcd => "column access before tRCD",
            Rule::ColCcd => "column access violates tCCD",
            Rule::DataBusConflict => "data bus conflict or turnaround violation",
            Rule::PreTooEarly => "precharge before tRAS/tRTP/tWR",
            Rule::PreNothingOpen => "precharge with no open row",
            Rule::RefreshConflict => "refresh conflict",
            Rule::CmdBusBusy => "command bus busy",
            Rule::OutOfRange => "target outside configured geometry",
        };
        f.write_str(s)
    }
}

/// A rejected command: what, when, why, and when it would have been legal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolError {
    /// The offending command.
    pub cmd: DramCommand,
    /// When it was issued.
    pub at: Ns,
    /// The violated rule.
    pub rule: Rule,
    /// Earliest time the command would have been accepted, when known.
    pub earliest: Option<Ns>,
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "at {} ns: {:?}: {}", self.at, self.cmd, self.rule)?;
        if let Some(e) = self.earliest {
            write!(f, " (legal from {e} ns)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ProtocolError {}

/// Maximum violations a [`ViolationReport`] retains before truncating.
pub const MAX_REPORTED_VIOLATIONS: usize = 32;

/// Structured outcome of a full-trace audit: every violation found (up to
/// [`MAX_REPORTED_VIOLATIONS`]), not just the first, so an injected-fault
/// run can show what the checker caught rather than aborting on contact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViolationReport {
    /// Commands examined.
    pub commands_checked: usize,
    /// Violations found, in trace order.
    pub violations: Vec<ProtocolError>,
    /// True when more violations existed than the report retains.
    pub truncated: bool,
}

impl ViolationReport {
    /// True when the trace was fully clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl core::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "protocol audit: {} commands, {} violation(s){}",
            self.commands_checked,
            self.violations.len(),
            if self.truncated { " (truncated)" } else { "" }
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::cmd::BankRef;

    #[test]
    fn display_includes_rule_and_earliest() {
        let e = ProtocolError {
            cmd: DramCommand::Activate { bank: BankRef { channel: 0, bank: 0 }, row: 1, slice: 0 },
            at: 10,
            rule: Rule::ActTooEarly,
            earliest: Some(45),
        };
        let s = e.to_string();
        assert!(s.contains("tRC"), "{s}");
        assert!(s.contains("45"), "{s}");
    }
}
