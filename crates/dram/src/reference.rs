//! Reference object-model timing state (the pre-SoA engine core).
//!
//! [`RefBank`] and [`RefChannel`] are the original heap-per-bank
//! implementations that [`crate::state::DeviceState`] flattened. They are
//! kept as an executable specification: `tests/soa_differential.rs` drives
//! seeded random command streams through both models and asserts identical
//! accept/reject outcomes and timing fences at every step. They are *not*
//! on the hot path.
//!
//! One deliberate divergence from the historical code: `adjacent_open`
//! used to recompute `subarrays = open.len() / slices` and rescan every
//! slice of both neighbouring subarrays on each activate. The reference
//! now keeps a per-subarray open count, so the check is O(1) — same
//! observable behaviour, without the quadratic scan.

use fgdram_model::config::{DramConfig, TimingParams};
use fgdram_model::stats::BusyTracker;
use fgdram_model::units::Ns;

use crate::error::Rule;
use crate::faw::ActWindow;
use crate::state::{ColOutcome, OpenRow, Reject, TURNAROUND_BUBBLE};

/// Row-buffer and row-timing state for one bank (reference model).
#[derive(Debug, Clone)]
pub struct RefBank {
    open: Vec<Option<OpenRow>>,
    next_act: Vec<Ns>,
    last_act: Option<Ns>,
    open_count: usize,
    /// Open-slot count per subarray: `adjacent_open` probes neighbours in
    /// O(1) instead of rescanning every slice.
    sub_open: Vec<u16>,
    salp: bool,
    slices: u32,
    subarrays: u32,
    rows_per_subarray: u32,
    timing: TimingParams,
}

impl RefBank {
    /// New all-closed bank for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        let slices = cfg.slices_per_row() as u32;
        let subarrays = if cfg.salp { cfg.subarrays_per_bank } else { 1 };
        let domains = subarrays * slices as usize;
        RefBank {
            open: vec![None; domains],
            next_act: vec![0; domains],
            last_act: None,
            open_count: 0,
            sub_open: vec![0; subarrays],
            salp: cfg.salp,
            slices,
            subarrays: subarrays as u32,
            rows_per_subarray: cfg.rows_per_subarray() as u32,
            timing: cfg.timing,
        }
    }

    #[inline]
    fn slot(&self, row: u32, slice: u32) -> usize {
        let sub = if self.salp { row / self.rows_per_subarray } else { 0 };
        (sub * self.slices + slice) as usize
    }

    /// The open row covering (`row`, `slice`), if any row is open there.
    pub fn open_at(&self, row: u32, slice: u32) -> Option<&OpenRow> {
        self.open[self.slot(row, slice)].as_ref()
    }

    /// True when any slot holds an open row.
    pub fn any_open(&self) -> bool {
        self.open_count > 0
    }

    /// Iterates currently open rows in slot order.
    pub fn open_rows(&self) -> impl Iterator<Item = &OpenRow> + '_ {
        self.open.iter().filter_map(|s| s.as_ref())
    }

    /// Earliest time an activate of (`row`, `slice`) may issue at or after
    /// `at`, considering this bank's state only (channel adds tRRD/tFAW).
    ///
    /// # Errors
    ///
    /// [`Rule::ActOnOpenRow`] when the slot still holds a row (precharge
    /// first), [`Rule::AdjacentSubarray`] when SALP's shared sense-amp
    /// stripe blocks the neighbouring subarray.
    pub fn earliest_act(&self, row: u32, slice: u32, at: Ns) -> Result<Ns, Rule> {
        let slot = self.slot(row, slice);
        if self.open[slot].is_some() {
            return Err(Rule::ActOnOpenRow);
        }
        if self.salp && self.adjacent_open(row) {
            return Err(Rule::AdjacentSubarray);
        }
        // Shared row decoder: consecutive activates to the same bank keep
        // at least tRRD between them even across subarrays.
        let decoder_free = self.last_act.map_or(0, |t| t + self.timing.t_rrd);
        Ok(at.max(self.next_act[slot]).max(decoder_free))
    }

    fn adjacent_open(&self, row: u32) -> bool {
        let sub = row / self.rows_per_subarray;
        (sub > 0 && self.sub_open[(sub - 1) as usize] > 0)
            || (sub + 1 < self.subarrays && self.sub_open[(sub + 1) as usize] > 0)
    }

    /// Records an accepted activate.
    pub fn activate(&mut self, row: u32, slice: u32, at: Ns) {
        let slot = self.slot(row, slice);
        debug_assert!(self.open[slot].is_none());
        self.open[slot] = Some(OpenRow {
            row,
            slice,
            ready_at: at + self.timing.t_rcd,
            earliest_pre: at + self.timing.t_ras,
            act_at: at,
        });
        self.next_act[slot] = at + self.timing.t_rc;
        self.last_act = Some(at);
        self.open_count += 1;
        self.sub_open[slot / self.slices as usize] += 1;
    }

    /// Earliest column command to (`row`, `slice`) (tRCD gate only).
    ///
    /// # Errors
    ///
    /// [`Rule::RowNotOpen`] when the slot is closed or holds another row.
    pub fn col_ready(&self, row: u32, slice: u32) -> Result<Ns, Rule> {
        match self.open_at(row, slice) {
            Some(o) if o.row == row => Ok(o.ready_at),
            _ => Err(Rule::RowNotOpen),
        }
    }

    /// Pushes the precharge fence after a read issued at `col_at`.
    pub fn note_read(&mut self, row: u32, slice: u32, col_at: Ns) {
        let t_rtp = self.timing.t_rtp;
        let slot = self.slot(row, slice);
        if let Some(o) = self.open[slot].as_mut() {
            o.earliest_pre = o.earliest_pre.max(col_at + t_rtp);
        }
    }

    /// Pushes the precharge fence after a write whose data finishes at
    /// `data_end` (write recovery).
    pub fn note_write(&mut self, row: u32, slice: u32, data_end: Ns) {
        let t_wr = self.timing.t_wr;
        let slot = self.slot(row, slice);
        if let Some(o) = self.open[slot].as_mut() {
            o.earliest_pre = o.earliest_pre.max(data_end + t_wr);
        }
    }

    /// Earliest precharge of the slot holding (`row`, `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::PreNothingOpen`] when nothing is open there.
    pub fn earliest_pre(&self, row: u32, slice: u32) -> Result<Ns, Rule> {
        self.open_at(row, slice).map(|o| o.earliest_pre).ok_or(Rule::PreNothingOpen)
    }

    /// Records an accepted precharge of the slot at `at`.
    pub fn precharge(&mut self, row: u32, slice: u32, at: Ns) {
        let slot = self.slot(row, slice);
        if self.open[slot].take().is_some() {
            self.open_count -= 1;
            self.sub_open[slot / self.slices as usize] -= 1;
        }
        self.next_act[slot] = self.next_act[slot].max(at + self.timing.t_rp);
    }

    /// Blocks every slot until `until` (used for refresh).
    pub fn block_until(&mut self, until: Ns) {
        for t in &mut self.next_act {
            *t = (*t).max(until);
        }
    }
}

/// One data channel / grain (reference model).
#[derive(Debug, Clone)]
pub struct RefChannel {
    banks: Vec<RefBank>,
    bank_groups: usize,
    timing: TimingParams,
    grain_guard: bool,
    rows_per_subarray: u32,
    last_col_any: Option<Ns>,
    last_col_group: Vec<Option<Ns>>,
    last_act: Option<Ns>,
    faw: ActWindow,
    data_bus: BusyTracker,
    last_dir_write: Option<bool>,
    last_write_data_end: Ns,
    last_write_group: u32,
    refresh_until: Ns,
    bank_activates: Vec<u64>,
}

impl RefChannel {
    /// New idle channel for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        RefChannel {
            banks: (0..cfg.banks_per_channel).map(|_| RefBank::new(cfg)).collect(),
            bank_groups: cfg.bank_groups,
            timing: cfg.timing,
            grain_guard: cfg.is_grain_based(),
            rows_per_subarray: cfg.rows_per_subarray() as u32,
            last_col_any: None,
            last_col_group: vec![None; cfg.bank_groups],
            last_act: None,
            faw: ActWindow::new(cfg.timing.acts_in_faw, cfg.timing.t_faw),
            data_bus: BusyTracker::new(),
            last_dir_write: None,
            last_write_data_end: 0,
            last_write_group: u32::MAX,
            refresh_until: 0,
            bank_activates: vec![0; cfg.banks_per_channel],
        }
    }

    /// Read access to a bank's row-buffer state.
    pub fn bank(&self, bank: u32) -> &RefBank {
        &self.banks[bank as usize]
    }

    /// Number of banks (pseudobanks).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    #[inline]
    fn group_of(&self, bank: u32) -> u32 {
        bank % self.bank_groups as u32
    }

    fn check_bank(&self, bank: u32) -> Result<(), Reject> {
        if (bank as usize) < self.banks.len() {
            Ok(())
        } else {
            Err(Reject::structural(Rule::OutOfRange))
        }
    }

    /// Earliest activate of (`bank`, `row`, `slice`) at or after `at`.
    ///
    /// # Errors
    ///
    /// Structural rejections: [`Rule::ActOnOpenRow`],
    /// [`Rule::AdjacentSubarray`], [`Rule::SubarrayConflict`],
    /// [`Rule::OutOfRange`].
    pub fn earliest_act(&self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let mut t =
            self.banks[bank as usize].earliest_act(row, slice, at).map_err(Reject::structural)?;
        if self.grain_guard {
            let sub = row / self.rows_per_subarray;
            for (b, other) in self.banks.iter().enumerate() {
                if b as u32 == bank {
                    continue;
                }
                let conflict = other
                    .open_rows()
                    .any(|o| o.row != row && o.row / self.rows_per_subarray == sub);
                if conflict {
                    return Err(Reject::structural(Rule::SubarrayConflict));
                }
            }
        }
        if let Some(last) = self.last_act {
            t = t.max(last + self.timing.t_rrd);
        }
        t = self.faw.earliest(t);
        Ok(t.max(self.refresh_until))
    }

    /// Issues an activate; `at` must be at or after [`Self::earliest_act`].
    ///
    /// # Errors
    ///
    /// Everything `earliest_act` rejects, plus [`Rule::ActTooEarly`] with
    /// the earliest legal time.
    pub fn activate(&mut self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_act(bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ActTooEarly, earliest: Some(earliest) });
        }
        self.banks[bank as usize].activate(row, slice, at);
        self.last_act = Some(at);
        self.faw.record(at);
        self.bank_activates[bank as usize] += 1;
        Ok(())
    }

    /// Earliest read/write column command for the open (`bank`,`row`,`slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::RowNotOpen`] / [`Rule::OutOfRange`] structurally.
    pub fn earliest_col(
        &self,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let mut t =
            at.max(self.banks[bank as usize].col_ready(row, slice).map_err(Reject::structural)?);
        let group = self.group_of(bank);
        // Bank-group spacing.
        if let Some(any) = self.last_col_any {
            t = t.max(any + self.timing.t_ccd_s);
        }
        if let Some(same) = self.last_col_group[group as usize] {
            t = t.max(same + self.timing.t_ccd_l);
        }
        // Write-to-read turnaround (from end of write data).
        if !is_write && self.last_write_data_end > 0 {
            let wtr = if group == self.last_write_group {
                self.timing.t_wtr_l
            } else {
                self.timing.t_wtr_s
            };
            t = t.max(self.last_write_data_end + wtr);
        }
        // Data bus: in-order, non-overlapping, with a turnaround bubble.
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let mut bus_free = self.data_bus.busy_until();
        if self.last_dir_write.is_some_and(|w| w != is_write) {
            bus_free += TURNAROUND_BUBBLE;
        }
        if bus_free > t + latency {
            t = bus_free - latency;
        }
        Ok(t.max(self.refresh_until))
    }

    /// Issues a column command, returning its data-bus occupancy.
    ///
    /// # Errors
    ///
    /// Everything `earliest_col` rejects, plus [`Rule::ColCcd`] when `at`
    /// is before the legal time.
    pub fn column(
        &mut self,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<ColOutcome, Reject> {
        let earliest = self.earliest_col(bank, row, slice, is_write, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ColCcd, earliest: Some(earliest) });
        }
        let group = self.group_of(bank);
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let data_start = at + latency;
        let data_end = data_start + self.timing.t_burst;
        self.data_bus.occupy(data_start, self.timing.t_burst);
        self.last_col_any = Some(at);
        self.last_col_group[group as usize] = Some(at);
        self.last_dir_write = Some(is_write);
        if is_write {
            self.last_write_data_end = data_end;
            self.last_write_group = group;
            self.banks[bank as usize].note_write(row, slice, data_end);
        } else {
            self.banks[bank as usize].note_read(row, slice, at);
        }
        Ok(ColOutcome { data_start, data_end })
    }

    /// Earliest precharge of the slot holding (`bank`, `row`, `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::PreNothingOpen`] / [`Rule::OutOfRange`].
    pub fn earliest_pre(&self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let t = self.banks[bank as usize].earliest_pre(row, slice).map_err(Reject::structural)?;
        Ok(t.max(at).max(self.refresh_until))
    }

    /// Issues a precharge.
    ///
    /// # Errors
    ///
    /// Everything `earliest_pre` rejects, plus [`Rule::PreTooEarly`].
    pub fn precharge(&mut self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_pre(bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::PreTooEarly, earliest: Some(earliest) });
        }
        self.banks[bank as usize].precharge(row, slice, at);
        Ok(())
    }

    /// Earliest all-bank refresh (requires every row closed).
    ///
    /// # Errors
    ///
    /// [`Rule::RefreshConflict`] while any row is open.
    pub fn earliest_refresh(&self, at: Ns) -> Result<Ns, Reject> {
        if self.banks.iter().any(RefBank::any_open) {
            return Err(Reject::structural(Rule::RefreshConflict));
        }
        Ok(at.max(self.refresh_until))
    }

    /// Issues an all-bank refresh occupying the channel for tRFC.
    ///
    /// # Errors
    ///
    /// Everything `earliest_refresh` rejects.
    pub fn refresh(&mut self, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_refresh(at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::RefreshConflict, earliest: Some(earliest) });
        }
        let until = at + self.timing.t_rfc;
        for b in &mut self.banks {
            b.block_until(until);
        }
        self.refresh_until = until;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::config::DramKind;

    fn bank(kind: DramKind) -> RefBank {
        RefBank::new(&DramConfig::new(kind))
    }

    #[test]
    fn baseline_bank_single_open_row() {
        let mut b = bank(DramKind::QbHbm);
        assert_eq!(b.earliest_act(100, 0, 5).unwrap(), 5);
        b.activate(100, 0, 5);
        assert!(b.any_open());
        // Row 200 shares the single slot: blocked until precharge.
        assert_eq!(b.earliest_act(200, 0, 10), Err(Rule::ActOnOpenRow));
        // Column gated by tRCD.
        assert_eq!(b.col_ready(100, 0).unwrap(), 5 + 16);
        assert_eq!(b.col_ready(200, 0), Err(Rule::RowNotOpen));
        // Precharge gated by tRAS.
        assert_eq!(b.earliest_pre(100, 0).unwrap(), 5 + 29);
        b.precharge(100, 0, 40);
        assert!(!b.any_open());
        // Next activate gated by tRP after precharge and tRC after act.
        let e = b.earliest_act(200, 0, 0).unwrap();
        assert_eq!(e, 56); // max(pre 40 + tRP 16, act 5 + tRC 45)
    }

    #[test]
    fn read_and_write_push_precharge_fence() {
        let mut b = bank(DramKind::QbHbm);
        b.activate(7, 0, 0);
        b.note_read(7, 0, 100);
        assert_eq!(b.earliest_pre(7, 0).unwrap(), 104); // +tRTP
        b.note_write(7, 0, 200);
        assert_eq!(b.earliest_pre(7, 0).unwrap(), 216); // +tWR
    }

    #[test]
    fn salp_subarrays_independent_but_adjacent_blocked() {
        let mut b = bank(DramKind::QbHbmSalpSc);
        // Rows 0 and 5*512 are in subarrays 0 and 5: both can open.
        b.activate(0, 0, 0);
        let e = b.earliest_act(5 * 512, 0, 0).unwrap();
        assert_eq!(e, 2); // decoder tRRD gap only, no tRC serialisation
        b.activate(5 * 512, 0, 2);
        assert_eq!(b.open_rows().count(), 2);
        // Subarray 1 is adjacent to open subarray 0.
        assert_eq!(b.earliest_act(512, 0, 50), Err(Rule::AdjacentSubarray));
        // Subarray 3 is fine (neighbours 2 and 4 closed).
        assert!(b.earliest_act(3 * 512, 0, 50).is_ok());
    }

    #[test]
    fn subchannel_slices_activate_independently() {
        let mut b = bank(DramKind::QbHbmSalpSc);
        b.activate(0, 0, 0);
        // Same subarray, same row, different slice: its own slot.
        assert!(b.earliest_act(0, 1, 10).is_ok());
        b.activate(0, 1, 10);
        assert_eq!(b.col_ready(0, 1).unwrap(), 26);
        // Same slice again: occupied.
        assert_eq!(b.earliest_act(0, 1, 20), Err(Rule::ActOnOpenRow));
    }

    #[test]
    fn adjacent_mask_clears_when_last_slice_closes() {
        // Two slices of subarray 0 open; subarray 1 stays blocked until
        // *both* close (the per-subarray count, not a single flag).
        let mut b = bank(DramKind::QbHbmSalpSc);
        b.activate(0, 0, 0);
        b.activate(0, 1, 2);
        assert_eq!(b.earliest_act(512, 0, 50), Err(Rule::AdjacentSubarray));
        b.precharge(0, 0, 50);
        assert_eq!(b.earliest_act(512, 0, 60), Err(Rule::AdjacentSubarray));
        b.precharge(0, 1, 60);
        assert!(b.earliest_act(512, 0, 70).is_ok());
    }

    #[test]
    fn block_until_delays_all_slots() {
        let mut b = bank(DramKind::QbHbm);
        b.block_until(500);
        assert_eq!(b.earliest_act(0, 0, 0).unwrap(), 500);
    }

    #[test]
    fn fgdram_pseudobank_is_single_slot() {
        let mut b = bank(DramKind::Fgdram);
        b.activate(9, 0, 0);
        assert_eq!(b.earliest_act(10, 0, 0), Err(Rule::ActOnOpenRow));
        let open: Vec<_> = b.open_rows().collect();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].row, 9);
    }
}
