//! Channel and bank *views* over the flat [`DeviceState`].
//!
//! One DRAM data channel (an FGDRAM *grain* is modelled as a narrow
//! channel with two pseudobanks and a private serial data bus) used to be
//! its own heap object; the timing state now lives in
//! [`crate::state::DeviceState`]'s contiguous arrays. [`Channel`] and
//! [`Bank`] are copyable `(state, index)` handles that keep the old
//! read-side API — `dev.channel(ch).bank(b).open_rows()` — working over
//! the struct-of-arrays layout. All mutation goes through `DeviceState`.

use fgdram_model::stats::BusyTracker;
use fgdram_model::units::Ns;

pub use crate::state::{ChannelCounters, ColOutcome, Reject};
use crate::state::{DeviceState, OpenRow, OpenRows};

/// Read-only view of one data channel / grain.
#[derive(Debug, Clone, Copy)]
pub struct Channel<'a> {
    state: &'a DeviceState,
    ch: u32,
}

impl<'a> Channel<'a> {
    pub(crate) fn new(state: &'a DeviceState, ch: u32) -> Self {
        Channel { state, ch }
    }

    /// Read access to a bank's row-buffer state.
    pub fn bank(self, bank: u32) -> Bank<'a> {
        Bank { state: self.state, ch: self.ch, bank }
    }

    /// Number of banks (pseudobanks).
    pub fn banks(self) -> usize {
        self.state.banks()
    }

    /// Operation counters.
    pub fn counters(self) -> &'a ChannelCounters {
        self.state.counters(self.ch)
    }

    /// Data-bus occupancy tracker (for utilisation reports).
    pub fn data_bus(self) -> &'a BusyTracker {
        self.state.data_bus(self.ch)
    }

    /// Per-bank activate counts since the last reset (heatmap row for
    /// telemetry; index = bank/pseudobank).
    pub fn bank_activates(self) -> &'a [u64] {
        self.state.bank_activates(self.ch)
    }

    /// Sum over all activates of the tFAW slots still free at issue time
    /// (beyond the slot the activate itself consumes). Dividing the delta
    /// by the epoch's activate count gives the average tFAW headroom —
    /// near 0 means the activate rate is pinned to the power ceiling.
    pub fn faw_headroom_sum(self) -> u64 {
        self.state.faw_headroom_sum(self.ch)
    }

    /// Earliest activate of (`bank`, `row`, `slice`) at or after `at`.
    ///
    /// # Errors
    ///
    /// See [`DeviceState::earliest_act`].
    pub fn earliest_act(self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.state.earliest_act(self.ch, bank, row, slice, at)
    }

    /// Earliest read/write column command for the open (`bank`,`row`,`slice`).
    ///
    /// # Errors
    ///
    /// See [`DeviceState::earliest_col`].
    pub fn earliest_col(
        self,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.state.earliest_col(self.ch, bank, row, slice, is_write, at)
    }

    /// Earliest precharge of the slot holding (`bank`, `row`, `slice`).
    ///
    /// # Errors
    ///
    /// See [`DeviceState::earliest_pre`].
    pub fn earliest_pre(self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.state.earliest_pre(self.ch, bank, row, slice, at)
    }

    /// Earliest all-bank refresh (requires every row closed).
    ///
    /// # Errors
    ///
    /// See [`DeviceState::earliest_refresh`].
    pub fn earliest_refresh(self, at: Ns) -> Result<Ns, Reject> {
        self.state.earliest_refresh(self.ch, at)
    }
}

/// Read-only view of one bank's (pseudobank's) row-buffer state.
#[derive(Debug, Clone, Copy)]
pub struct Bank<'a> {
    state: &'a DeviceState,
    ch: u32,
    bank: u32,
}

impl<'a> Bank<'a> {
    /// The open row covering (`row`, `slice`), if any row is open there.
    pub fn open_at(self, row: u32, slice: u32) -> Option<OpenRow> {
        self.state.open_at(self.ch, self.bank, row, slice)
    }

    /// True when any slot holds an open row.
    pub fn any_open(self) -> bool {
        self.state.any_open(self.ch, self.bank)
    }

    /// Iterates currently open rows in ascending slot order.
    pub fn open_rows(self) -> OpenRows<'a> {
        self.state.open_rows(self.ch, self.bank)
    }
}
