//! One DRAM data channel (an FGDRAM *grain* is modelled as a narrow
//! channel with two pseudobanks and a private serial data bus).
//!
//! The channel owns everything the banks share: the data bus and its
//! read/write turnaround, bank-group column spacing (tCCDS/tCCDL), the
//! inter-bank activate spacing (tRRD), the rolling tFAW window, refresh
//! occupancy, and — for grain-based parts — the pseudobank
//! subarray-conflict guard of Section 3.3.

use fgdram_model::config::{DramConfig, TimingParams};
use fgdram_model::stats::BusyTracker;
use fgdram_model::units::Ns;

use crate::bank::Bank;
use crate::error::Rule;
use crate::faw::ActWindow;

/// Extra data-bus bubble inserted when the bus changes direction.
const TURNAROUND_BUBBLE: Ns = 2;

/// A rejected channel operation: the violated rule plus, when the rule is
/// purely temporal, the earliest legal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject {
    /// Violated rule.
    pub rule: Rule,
    /// Earliest legal issue time, for temporal rules.
    pub earliest: Option<Ns>,
}

impl Reject {
    fn structural(rule: Rule) -> Self {
        Reject { rule, earliest: None }
    }
}

/// Data-bus occupancy outcome of an accepted column command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColOutcome {
    /// First data beat on the bus.
    pub data_start: Ns,
    /// One past the last data beat.
    pub data_end: Ns,
}

/// Operation counters for energy accounting and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelCounters {
    /// Row activations issued.
    pub activates: u64,
    /// Read atoms transferred.
    pub read_atoms: u64,
    /// Written atoms transferred.
    pub write_atoms: u64,
    /// Refresh commands serviced.
    pub refreshes: u64,
    /// Precharges (explicit + auto).
    pub precharges: u64,
}

/// One data channel / grain.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    bank_groups: usize,
    timing: TimingParams,
    grain_guard: bool,
    rows_per_subarray: u32,
    last_col_any: Option<Ns>,
    last_col_group: Vec<Option<Ns>>,
    last_act: Option<Ns>,
    faw: ActWindow,
    data_bus: BusyTracker,
    last_dir_write: Option<bool>,
    last_write_data_end: Ns,
    last_write_group: u32,
    refresh_until: Ns,
    counters: ChannelCounters,
    bank_activates: Vec<u64>,
    faw_headroom_sum: u64,
}

impl Channel {
    /// New idle channel for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        Channel {
            banks: (0..cfg.banks_per_channel).map(|_| Bank::new(cfg)).collect(),
            bank_groups: cfg.bank_groups,
            timing: cfg.timing,
            grain_guard: cfg.is_grain_based(),
            rows_per_subarray: cfg.rows_per_subarray() as u32,
            last_col_any: None,
            last_col_group: vec![None; cfg.bank_groups],
            last_act: None,
            faw: ActWindow::new(cfg.timing.acts_in_faw, cfg.timing.t_faw),
            data_bus: BusyTracker::new(),
            last_dir_write: None,
            last_write_data_end: 0,
            last_write_group: u32::MAX,
            refresh_until: 0,
            counters: ChannelCounters::default(),
            bank_activates: vec![0; cfg.banks_per_channel],
            faw_headroom_sum: 0,
        }
    }

    /// Read access to a bank's row-buffer state.
    pub fn bank(&self, bank: u32) -> &Bank {
        &self.banks[bank as usize]
    }

    /// Number of banks (pseudobanks).
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Operation counters.
    pub fn counters(&self) -> &ChannelCounters {
        &self.counters
    }

    /// Data-bus occupancy tracker (for utilisation reports).
    pub fn data_bus(&self) -> &BusyTracker {
        &self.data_bus
    }

    /// Per-bank activate counts since the last reset (heatmap row for
    /// telemetry; index = bank/pseudobank).
    pub fn bank_activates(&self) -> &[u64] {
        &self.bank_activates
    }

    /// Sum over all activates of the tFAW slots still free at issue time
    /// (beyond the slot the activate itself consumes). Dividing the delta
    /// by the epoch's activate count gives the average tFAW headroom —
    /// near 0 means the activate rate is pinned to the power ceiling.
    pub fn faw_headroom_sum(&self) -> u64 {
        self.faw_headroom_sum
    }

    /// Zeroes the operation counters (end-of-warmup bookkeeping).
    pub fn reset_counters(&mut self) {
        self.counters = ChannelCounters::default();
        self.bank_activates.iter_mut().for_each(|b| *b = 0);
        self.faw_headroom_sum = 0;
    }

    #[inline]
    fn group_of(&self, bank: u32) -> u32 {
        bank % self.bank_groups as u32
    }

    fn check_bank(&self, bank: u32) -> Result<(), Reject> {
        if (bank as usize) < self.banks.len() {
            Ok(())
        } else {
            Err(Reject::structural(Rule::OutOfRange))
        }
    }

    /// Earliest activate of (`bank`, `row`, `slice`) at or after `at`.
    ///
    /// # Errors
    ///
    /// Structural rejections: [`Rule::ActOnOpenRow`],
    /// [`Rule::AdjacentSubarray`], [`Rule::SubarrayConflict`],
    /// [`Rule::OutOfRange`].
    pub fn earliest_act(&self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let mut t =
            self.banks[bank as usize].earliest_act(row, slice, at).map_err(Reject::structural)?;
        if self.grain_guard {
            let sub = row / self.rows_per_subarray;
            for (b, other) in self.banks.iter().enumerate() {
                if b as u32 == bank {
                    continue;
                }
                let conflict = other
                    .open_rows()
                    .any(|o| o.row != row && o.row / self.rows_per_subarray == sub);
                if conflict {
                    return Err(Reject::structural(Rule::SubarrayConflict));
                }
            }
        }
        if let Some(last) = self.last_act {
            t = t.max(last + self.timing.t_rrd);
        }
        t = self.faw.earliest(t);
        Ok(t.max(self.refresh_until))
    }

    /// Issues an activate; `at` must be at or after [`Self::earliest_act`].
    ///
    /// # Errors
    ///
    /// Everything `earliest_act` rejects, plus [`Rule::ActTooEarly`] /
    /// [`Rule::ActRrd`] / [`Rule::ActFaw`]-class timing violations
    /// (reported with the earliest legal time).
    pub fn activate(&mut self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_act(bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ActTooEarly, earliest: Some(earliest) });
        }
        self.banks[bank as usize].activate(row, slice, at);
        self.last_act = Some(at);
        // Headroom is observed before recording: slots free beyond the one
        // this activate takes.
        self.faw_headroom_sum += self.faw.free_slots(at).saturating_sub(1) as u64;
        self.faw.record(at);
        self.counters.activates += 1;
        self.bank_activates[bank as usize] += 1;
        Ok(())
    }

    /// Earliest read/write column command for the open (`bank`,`row`,`slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::RowNotOpen`] / [`Rule::OutOfRange`] structurally.
    pub fn earliest_col(
        &self,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let mut t =
            at.max(self.banks[bank as usize].col_ready(row, slice).map_err(Reject::structural)?);
        let group = self.group_of(bank);
        // Bank-group spacing.
        if let Some(any) = self.last_col_any {
            t = t.max(any + self.timing.t_ccd_s);
        }
        if let Some(same) = self.last_col_group[group as usize] {
            t = t.max(same + self.timing.t_ccd_l);
        }
        // Write-to-read turnaround (from end of write data).
        if !is_write && self.last_write_data_end > 0 {
            let wtr = if group == self.last_write_group {
                self.timing.t_wtr_l
            } else {
                self.timing.t_wtr_s
            };
            t = t.max(self.last_write_data_end + wtr);
        }
        // Data bus: in-order, non-overlapping, with a turnaround bubble.
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let mut bus_free = self.data_bus.busy_until();
        if self.last_dir_write.is_some_and(|w| w != is_write) {
            bus_free += TURNAROUND_BUBBLE;
        }
        if bus_free > t + latency {
            t = bus_free - latency;
        }
        Ok(t.max(self.refresh_until))
    }

    /// Issues a column command, returning its data-bus occupancy.
    ///
    /// # Errors
    ///
    /// Everything `earliest_col` rejects, plus [`Rule::ColCcd`]-class
    /// timing violations when `at` is before the legal time.
    pub fn column(
        &mut self,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<ColOutcome, Reject> {
        let earliest = self.earliest_col(bank, row, slice, is_write, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ColCcd, earliest: Some(earliest) });
        }
        let group = self.group_of(bank);
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let data_start = at + latency;
        let data_end = data_start + self.timing.t_burst;
        self.data_bus.occupy(data_start, self.timing.t_burst);
        self.last_col_any = Some(at);
        self.last_col_group[group as usize] = Some(at);
        self.last_dir_write = Some(is_write);
        if is_write {
            self.last_write_data_end = data_end;
            self.last_write_group = group;
            self.banks[bank as usize].note_write(row, slice, data_end);
            self.counters.write_atoms += 1;
        } else {
            self.banks[bank as usize].note_read(row, slice, at);
            self.counters.read_atoms += 1;
        }
        Ok(ColOutcome { data_start, data_end })
    }

    /// Earliest precharge of the slot holding (`bank`, `row`, `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::PreNothingOpen`] / [`Rule::OutOfRange`].
    pub fn earliest_pre(&self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let t = self.banks[bank as usize].earliest_pre(row, slice).map_err(Reject::structural)?;
        Ok(t.max(at).max(self.refresh_until))
    }

    /// Issues a precharge.
    ///
    /// # Errors
    ///
    /// Everything `earliest_pre` rejects, plus [`Rule::PreTooEarly`].
    pub fn precharge(&mut self, bank: u32, row: u32, slice: u32, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_pre(bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::PreTooEarly, earliest: Some(earliest) });
        }
        self.banks[bank as usize].precharge(row, slice, at);
        self.counters.precharges += 1;
        Ok(())
    }

    /// Earliest all-bank refresh (requires every row closed).
    ///
    /// # Errors
    ///
    /// [`Rule::RefreshConflict`] while any row is open.
    pub fn earliest_refresh(&self, at: Ns) -> Result<Ns, Reject> {
        if self.banks.iter().any(Bank::any_open) {
            return Err(Reject::structural(Rule::RefreshConflict));
        }
        Ok(at.max(self.refresh_until))
    }

    /// Issues an all-bank refresh occupying the channel for tRFC.
    ///
    /// # Errors
    ///
    /// Everything `earliest_refresh` rejects.
    pub fn refresh(&mut self, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_refresh(at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::RefreshConflict, earliest: Some(earliest) });
        }
        let until = at + self.timing.t_rfc;
        for b in &mut self.banks {
            b.block_until(until);
        }
        self.refresh_until = until;
        self.counters.refreshes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::config::DramKind;

    fn chan(kind: DramKind) -> Channel {
        Channel::new(&DramConfig::new(kind))
    }

    /// Figure 4: commands to different bank groups can be tCCDS apart and
    /// keep the data bus gapless; same group must wait tCCDL.
    #[test]
    fn fig4_bank_group_overlap() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 10, 0, 0).unwrap();
        c.activate(1, 20, 0, 2).unwrap(); // tRRD = 2
        let t0 = c.earliest_col(0, 10, 0, false, 0).unwrap();
        assert_eq!(t0, 16); // tRCD
        let o0 = c.column(0, 10, 0, false, t0).unwrap();
        assert_eq!((o0.data_start, o0.data_end), (32, 34));
        // Different group: tCCDS later; bus stays gapless.
        let t1 = c.earliest_col(1, 20, 0, false, t0).unwrap();
        assert_eq!(t1, 18);
        let o1 = c.column(1, 20, 0, false, t1).unwrap();
        assert_eq!((o1.data_start, o1.data_end), (34, 36));
        // Same group as bank 0: tCCDL after its column.
        let t2 = c.earliest_col(0, 10, 0, false, t0).unwrap();
        assert_eq!(t2, t0 + 4);
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 1, 0, 0).unwrap();
        assert_eq!(c.earliest_act(1, 2, 0, 0).unwrap(), 2);
        let err = c.activate(1, 2, 0, 1).unwrap_err();
        assert_eq!(err.rule, Rule::ActTooEarly);
        assert_eq!(err.earliest, Some(2));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 1, 0, 0).unwrap();
        c.activate(1, 1, 0, 2).unwrap();
        let wt = c.earliest_col(0, 1, 0, true, 0).unwrap();
        let w = c.column(0, 1, 0, true, wt).unwrap();
        // Same-group read: tWTRl after write data end.
        let r_same = c.earliest_col(0, 1, 0, false, 0).unwrap();
        assert!(r_same >= w.data_end + 8, "{r_same} vs {}", w.data_end);
        // Different-group read: only tWTRs.
        let r_diff = c.earliest_col(1, 1, 0, false, 0).unwrap();
        assert!(r_diff >= w.data_end + 3);
        assert!(r_diff < r_same);
    }

    #[test]
    fn data_bus_serialises_and_bubbles_on_turnaround() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 1, 0, 0).unwrap();
        let rt = c.earliest_col(0, 1, 0, false, 0).unwrap();
        let r = c.column(0, 1, 0, false, rt).unwrap();
        // Read->write: write data must start after read data + bubble.
        let wt = c.earliest_col(0, 1, 0, true, rt).unwrap();
        let w = c.column(0, 1, 0, true, wt).unwrap();
        assert!(w.data_start >= r.data_end + TURNAROUND_BUBBLE);
    }

    #[test]
    fn fgdram_grain_serialises_columns_at_tburst() {
        let mut c = chan(DramKind::Fgdram);
        c.activate(0, 1, 0, 0).unwrap();
        c.activate(1, 1, 0, 2).unwrap();
        let t0 = c.earliest_col(0, 1, 0, false, 0).unwrap();
        c.column(0, 1, 0, false, t0).unwrap();
        // Both pseudobanks share the serial bus: next column >= tCCDL = 16.
        let t1 = c.earliest_col(1, 1, 0, false, 0).unwrap();
        assert_eq!(t1, t0 + 16);
    }

    #[test]
    fn grain_subarray_conflict_guard() {
        let mut c = chan(DramKind::Fgdram);
        // Rows 0 and 5 are both in subarray 0 (512 rows/subarray).
        c.activate(0, 5, 0, 0).unwrap();
        let err = c.earliest_act(1, 9, 0, 10).unwrap_err();
        assert_eq!(err.rule, Rule::SubarrayConflict);
        // The *same* row in the other pseudobank is fine (same MWL).
        assert!(c.earliest_act(1, 5, 0, 10).is_ok());
        // A different subarray is fine.
        assert!(c.earliest_act(1, 600, 0, 10).is_ok());
    }

    #[test]
    fn refresh_blocks_channel_for_trfc() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 1, 0, 0).unwrap();
        // Refresh with an open row is rejected.
        assert_eq!(c.earliest_refresh(100).unwrap_err().rule, Rule::RefreshConflict);
        let pre = c.earliest_pre(0, 1, 0, 0).unwrap();
        c.precharge(0, 1, 0, pre).unwrap();
        let t = c.earliest_refresh(pre).unwrap();
        c.refresh(t).unwrap();
        assert_eq!(c.earliest_act(0, 1, 0, t).unwrap(), t + 160);
        assert_eq!(c.counters().refreshes, 1);
    }

    #[test]
    fn faw_limits_activation_bursts() {
        // HBM2 channel, 16 banks: issue 8 activates as fast as legal, then
        // the 9th must respect the 12 ns window.
        let mut c = chan(DramKind::Hbm2);
        let mut t = 0;
        for b in 0..8 {
            t = c.earliest_act(b, 1, 0, t).unwrap();
            c.activate(b, 1, 0, t).unwrap();
        }
        // 8 activates at 0,2,4,...,14 (tRRD=2). Window not binding here
        // (spread is already 14 ns > 12), so this documents tRRD dominance.
        assert_eq!(t, 14);
        let e = c.earliest_act(8, 1, 0, t).unwrap();
        assert_eq!(e, 16);
    }

    #[test]
    fn counters_track_operations() {
        let mut c = chan(DramKind::QbHbm);
        c.activate(0, 1, 0, 0).unwrap();
        let t = c.earliest_col(0, 1, 0, false, 0).unwrap();
        c.column(0, 1, 0, false, t).unwrap();
        let t = c.earliest_col(0, 1, 0, true, t).unwrap();
        c.column(0, 1, 0, true, t).unwrap();
        let t = c.earliest_pre(0, 1, 0, t).unwrap();
        c.precharge(0, 1, 0, t).unwrap();
        let k = c.counters();
        assert_eq!((k.activates, k.read_atoms, k.write_atoms, k.precharges), (1, 1, 1, 1));
    }

    #[test]
    fn out_of_range_bank_rejected() {
        let c = chan(DramKind::QbHbm);
        assert_eq!(c.earliest_act(99, 0, 0, 0).unwrap_err().rule, Rule::OutOfRange);
    }
}
