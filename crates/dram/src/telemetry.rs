//! Telemetry instrumentation: the DRAM stack as a [`Sampled`] source.

use fgdram_model::units::Ns;
use fgdram_telemetry::{SampleBuf, Sampled};

use crate::device::DramDevice;

impl Sampled for DramDevice {
    fn component(&self) -> &'static str {
        "dram"
    }

    fn sample(&self, out: &mut SampleBuf) {
        let k = self.total_counters();
        out.counter("activates", k.activates);
        out.counter("read_atoms", k.read_atoms);
        out.counter("write_atoms", k.write_atoms);
        out.counter("refreshes", k.refreshes);
        out.counter("precharges", k.precharges);
        let channels = self.config().channels;
        let mut act_per_channel = Vec::with_capacity(channels);
        let mut busy_ns_per_channel = Vec::with_capacity(channels);
        let mut faw_headroom = 0u64;
        for ch in 0..channels as u32 {
            let c = self.channel(ch);
            act_per_channel.push(c.counters().activates);
            busy_ns_per_channel.push(c.data_bus().busy_total());
            faw_headroom += c.faw_headroom_sum();
        }
        out.counter_array("act_per_channel", act_per_channel);
        // The per-bank activate heatmap, channel-major: index = channel *
        // banks_per_channel + bank (a grain's pseudobanks are adjacent).
        // Each lane stores its slice flat in exactly this order, so the
        // readout is one contiguous copy per lane, in base-channel order.
        out.counter_array("act_per_bank", self.bank_activates_heatmap());
        // busy_total is monotonic per channel, so the array delta is the
        // data-bus busy time inside the epoch.
        out.counter_array("busy_ns_per_channel", busy_ns_per_channel);
        out.counter("faw_headroom_sum", faw_headroom);
    }

    fn derive(&self, delta: &mut SampleBuf, epoch_ns: Ns) {
        let channels = self.config().channels as u64;
        let busy = delta.get_array_sum("busy_ns_per_channel");
        let denom = channels * epoch_ns;
        delta.gauge("busy_frac", if denom == 0 { 0.0 } else { busy as f64 / denom as f64 });
        let atoms = delta.get_u64("read_atoms") + delta.get_u64("write_atoms");
        let bytes = atoms * self.config().atom_bytes;
        delta.gauge("bw_gbps", if epoch_ns == 0 { 0.0 } else { bytes as f64 / epoch_ns as f64 });
        let acts = delta.get_u64("activates");
        let headroom = delta.get_u64("faw_headroom_sum");
        delta
            .gauge("faw_headroom_avg", if acts == 0 { 0.0 } else { headroom as f64 / acts as f64 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::ReqId;
    use fgdram_model::cmd::{BankRef, DramCommand};
    use fgdram_model::config::{DramConfig, DramKind};
    use fgdram_telemetry::RawValue;

    #[test]
    fn device_sample_exposes_heatmap_and_busy_time() {
        let mut d = DramDevice::new(DramConfig::new(DramKind::QbHbm));
        let mut before = SampleBuf::new();
        d.sample(&mut before);
        let b = BankRef { channel: 1, bank: 2 };
        d.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
        let rd =
            DramCommand::Read { bank: b, row: 1, col: 0, auto_precharge: false, req: ReqId(0) };
        let t = d.earliest(&rd, 0).unwrap();
        d.issue(rd, t).unwrap();
        let mut after = SampleBuf::new();
        d.sample(&mut after);
        let mut delta = SampleBuf::delta(&before, &after);
        d.derive(&mut delta, 1_000);
        assert_eq!(delta.get_u64("activates"), 1);
        assert_eq!(delta.get_u64("read_atoms"), 1);
        let Some(RawValue::CounterArray(heat)) = delta.get("act_per_bank") else {
            panic!("missing heatmap")
        };
        let banks = d.config().banks_per_channel;
        assert_eq!(heat.len(), d.config().channels * banks);
        assert_eq!(heat[banks + 2], 1, "activate attributed to channel 1 bank 2");
        assert_eq!(heat.iter().sum::<u64>(), 1);
        assert!(delta.get_array_sum("busy_ns_per_channel") > 0);
        assert!(delta.get_f64("busy_frac") > 0.0);
        assert!(delta.get_f64("bw_gbps") > 0.0);
        // A lone activate has every other tFAW slot free.
        let free = d.config().timing.acts_in_faw as f64 - 1.0;
        assert_eq!(delta.get_f64("faw_headroom_avg"), free);
    }
}
