//! Data-oriented timing state for the whole DRAM stack.
//!
//! The object-model engine kept one heap-allocated `Bank` per pseudobank
//! (512 grains x 2 pseudobanks on FGDRAM), each holding its own `Vec`s of
//! row slots — every simulated command pointer-chased a scatter of small
//! allocations. [`DeviceState`] flattens all of it into contiguous arrays
//! indexed by a precomputed `(channel, bank, slot)` stride:
//!
//! - one packed [`SlotState`] record per row slot (fences + open-row
//!   payload), one packed [`BankState`] per bank, one packed (cache-line
//!   sized) [`ChannelState`] per channel — so a command touches a handful
//!   of lines instead of walking a per-field array scatter. A pure
//!   one-array-per-field layout was measured first and *lost* to the
//!   legacy engine on 512-grain GUPS: the simulator reads one channel's
//!   whole hot state per command, so splitting fields across arrays turns
//!   every scalar into its own cache miss;
//! - per-bank bitset words for open slots, so `any_open` is a counter test
//!   and SALP's `adjacent_open` is two bit probes of a per-subarray mask
//!   instead of a slot scan;
//! - flat telemetry lanes (per-bank activate counts channel-major, tFAW
//!   rings) that readers consume as one contiguous slice.
//!
//! `Option<Ns>` fences are stored as plain `Ns` with 0 meaning "never":
//! all fence arithmetic is `max`, and `t.max(0) == t`, so the encodings
//! are exactly equivalent. The semantics of every method transcribe the
//! legacy `Bank`/`Channel` logic (kept verbatim in [`crate::reference`])
//! and are pinned to it by the differential test in
//! `tests/soa_differential.rs` plus the byte-identical golden suite.

use fgdram_model::config::{DramConfig, TimingParams};
use fgdram_model::stats::BusyTracker;
use fgdram_model::units::Ns;

use crate::error::Rule;

/// Extra data-bus bubble inserted when the bus changes direction.
pub(crate) const TURNAROUND_BUBBLE: Ns = 2;

/// An activated row resident in sense amplifiers (a value snapshot of one
/// open slot's packed state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRow {
    /// The open row index (bank-relative).
    pub row: u32,
    /// Subchannel slice that was activated.
    pub slice: u32,
    /// First column command allowed (activate + tRCD).
    pub ready_at: Ns,
    /// Earliest legal precharge (tRAS, then pushed by tRTP/tWR).
    pub earliest_pre: Ns,
    /// When the activate issued (for tRC accounting of interest).
    pub act_at: Ns,
}

/// A rejected channel operation: the violated rule plus, when the rule is
/// purely temporal, the earliest legal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject {
    /// Violated rule.
    pub rule: Rule,
    /// Earliest legal issue time, for temporal rules.
    pub earliest: Option<Ns>,
}

impl Reject {
    pub(crate) fn structural(rule: Rule) -> Self {
        Reject { rule, earliest: None }
    }
}

/// Data-bus occupancy outcome of an accepted column command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColOutcome {
    /// First data beat on the bus.
    pub data_start: Ns,
    /// One past the last data beat.
    pub data_end: Ns,
}

/// Operation counters for energy accounting and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelCounters {
    /// Row activations issued.
    pub activates: u64,
    /// Read atoms transferred.
    pub read_atoms: u64,
    /// Written atoms transferred.
    pub write_atoms: u64,
    /// Refresh commands serviced.
    pub refreshes: u64,
    /// Precharges (explicit + auto).
    pub precharges: u64,
}

/// One row slot's timing fences and open-row payload. The payload fields
/// (`row`, `slice`, and the open fences) are valid only while the slot's
/// bit is set in the bank's open bitset; `next_act` is always live.
#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    /// Earliest next activate (tRC from the last activate, tRP from the
    /// last precharge, tRFC from refresh).
    next_act: Ns,
    /// First column command allowed (activate + tRCD).
    ready_at: Ns,
    /// Earliest legal precharge (tRAS, pushed by tRTP/tWR).
    earliest_pre: Ns,
    /// When the activate issued.
    act_at: Ns,
    /// The open row index.
    row: u32,
    /// Subchannel slice that was activated.
    slice: u32,
}

/// One bank's packed hot state.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    /// Shared-row-decoder fence: last activate + tRRD (0 = never).
    decoder_free: Ns,
    /// One bit per subarray with >= 1 open slot. SALP's adjacent-subarray
    /// check probes the two neighbouring bits.
    sub_open_mask: u64,
    /// Open slots in this bank.
    open_count: u32,
}

/// One channel's packed hot state — sized to a cache line so a column
/// command reads its whole channel context in one memory touch.
#[derive(Debug, Clone, Copy)]
struct ChannelState {
    /// Channel tRRD fence: last activate + tRRD (0 = never).
    act_free: Ns,
    /// tCCDS fence: last column (any group) + tCCDS (0 = never).
    ccd_any_free: Ns,
    /// End of the last write's data burst (0 = never written).
    last_write_data_end: Ns,
    /// Channel blocked through this time by an in-progress refresh.
    refresh_until: Ns,
    /// Data-bus occupancy.
    data_bus: BusyTracker,
    /// Bank group of the last write (`u32::MAX` = none).
    last_write_group: u32,
    /// Open slots across the whole channel.
    open_count: u32,
    /// Last data-bus direction: 0 = none, 1 = read, 2 = write.
    last_dir: u8,
}

impl Default for ChannelState {
    fn default() -> Self {
        ChannelState {
            act_free: 0,
            ccd_any_free: 0,
            last_write_data_end: 0,
            refresh_until: 0,
            data_bus: BusyTracker::new(),
            last_write_group: u32::MAX,
            open_count: 0,
            last_dir: 0,
        }
    }
}

/// Flat timing state for every channel, bank, and row slot of a stack.
///
/// Slot index layout: `(channel * banks + bank) * slots_per_bank + slot`,
/// where `slot = subarray * slices + slice` (subarray 0 when SALP is off).
#[derive(Debug, Clone)]
pub struct DeviceState {
    // Geometry (precomputed strides).
    channels: u32,
    banks: u32,
    slots_per_bank: u32,
    words_per_bank: u32,
    slices: u32,
    /// Slot-level subarray count: `subarrays_per_bank` with SALP, else 1.
    subarrays: u32,
    salp: bool,
    grain_guard: bool,
    bank_groups: u32,
    rows_per_subarray: u32,
    timing: TimingParams,

    /// Packed per-slot records (`channels * banks * slots_per_bank`).
    slots: Vec<SlotState>,
    /// Packed per-bank records (`channels * banks`).
    bank_s: Vec<BankState>,
    /// Packed per-channel records (`channels`).
    ch_s: Vec<ChannelState>,

    /// Open-slot bitset, `words_per_bank` words per bank.
    open_bits: Vec<u64>,
    /// Open-slot count per (bank, subarray) — feeds `sub_open_mask`.
    sub_open_count: Vec<u16>,
    /// tCCDL fence per (channel, group): last same-group column + tCCDL.
    ccd_group_free: Vec<Ns>,
    /// Per-bank activate counts, channel-major (telemetry heatmap lane).
    bank_activates: Vec<u64>,
    counters: Vec<ChannelCounters>,
    faw_headroom_sum: Vec<u64>,

    // Flattened tFAW rolling windows (`channels * faw_cap` times).
    faw_cap: u32,
    faw_window: Ns,
    faw_enabled: bool,
    faw_times: Vec<Ns>,
    faw_head: Vec<u32>,
    faw_filled: Vec<u32>,
}

impl DeviceState {
    /// All-idle state for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the SALP subarray count exceeds 64 (the per-subarray
    /// open mask is one `u64` word per bank).
    pub fn new(cfg: &DramConfig) -> Self {
        Self::with_channels(cfg, cfg.channels as u32)
    }

    /// All-idle state covering `channels` channels of `cfg`'s geometry —
    /// the building block for the threaded engine's per-lane shards, where
    /// each lane owns the state of a contiguous channel slice. Every rule
    /// in this type is within-channel, so a lane-local state with
    /// lane-local channel indices behaves identically to the same channels
    /// inside a full-device state.
    ///
    /// # Panics
    ///
    /// As [`Self::new`].
    pub fn with_channels(cfg: &DramConfig, channels: u32) -> Self {
        let banks = cfg.banks_per_channel as u32;
        let slices = cfg.slices_per_row() as u32;
        let subarrays = if cfg.salp { cfg.subarrays_per_bank as u32 } else { 1 };
        assert!(subarrays <= 64, "sub_open_mask holds at most 64 subarrays per bank");
        let slots_per_bank = subarrays * slices;
        let words_per_bank = slots_per_bank.div_ceil(64).max(1);
        let n_banks = (channels * banks) as usize;
        let n_slots = n_banks * slots_per_bank as usize;
        let faw_cap = cfg.timing.acts_in_faw.max(1);
        DeviceState {
            channels,
            banks,
            slots_per_bank,
            words_per_bank,
            slices,
            subarrays,
            salp: cfg.salp,
            grain_guard: cfg.is_grain_based(),
            bank_groups: cfg.bank_groups as u32,
            rows_per_subarray: cfg.rows_per_subarray() as u32,
            timing: cfg.timing,
            slots: vec![SlotState::default(); n_slots],
            bank_s: vec![BankState::default(); n_banks],
            ch_s: vec![ChannelState::default(); channels as usize],
            open_bits: vec![0; n_banks * words_per_bank as usize],
            sub_open_count: vec![0; n_banks * subarrays as usize],
            ccd_group_free: vec![0; (channels * cfg.bank_groups as u32) as usize],
            bank_activates: vec![0; n_banks],
            counters: vec![ChannelCounters::default(); channels as usize],
            faw_headroom_sum: vec![0; channels as usize],
            faw_cap,
            faw_window: cfg.timing.t_faw,
            faw_enabled: cfg.timing.acts_in_faw > 0 && cfg.timing.t_faw > 0,
            faw_times: vec![0; channels as usize * faw_cap as usize],
            faw_head: vec![0; channels as usize],
            faw_filled: vec![0; channels as usize],
        }
    }

    /// Number of channels (grains).
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Number of banks (pseudobanks) per channel.
    pub fn banks(&self) -> usize {
        self.banks as usize
    }

    // ---- index helpers -------------------------------------------------

    #[inline]
    fn bank_index(&self, ch: u32, bank: u32) -> usize {
        (ch * self.banks + bank) as usize
    }

    #[inline]
    fn slot_base(&self, bank_index: usize) -> usize {
        bank_index * self.slots_per_bank as usize
    }

    #[inline]
    fn slot_of(&self, row: u32, slice: u32) -> u32 {
        let sub = if self.salp { row / self.rows_per_subarray } else { 0 };
        sub * self.slices + slice
    }

    #[inline]
    fn slot_open(&self, bank_index: usize, slot: u32) -> bool {
        let w = bank_index * self.words_per_bank as usize + (slot / 64) as usize;
        self.open_bits[w] >> (slot % 64) & 1 != 0
    }

    #[inline]
    fn open_row_at(&self, si: usize) -> OpenRow {
        let s = &self.slots[si];
        OpenRow {
            row: s.row,
            slice: s.slice,
            ready_at: s.ready_at,
            earliest_pre: s.earliest_pre,
            act_at: s.act_at,
        }
    }

    fn check_bank(&self, bank: u32) -> Result<(), Reject> {
        if bank < self.banks {
            Ok(())
        } else {
            Err(Reject::structural(Rule::OutOfRange))
        }
    }

    // ---- read-side accessors (the view API builds on these) ------------

    /// The open row covering (`row`, `slice`) of (`ch`, `bank`), if any.
    pub fn open_at(&self, ch: u32, bank: u32, row: u32, slice: u32) -> Option<OpenRow> {
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        if self.slot_open(bi, slot) {
            Some(self.open_row_at(self.slot_base(bi) + slot as usize))
        } else {
            None
        }
    }

    /// True when any slot of (`ch`, `bank`) holds an open row.
    pub fn any_open(&self, ch: u32, bank: u32) -> bool {
        self.bank_s[self.bank_index(ch, bank)].open_count > 0
    }

    /// True when any bank of `ch` holds an open row.
    pub fn any_open_in_channel(&self, ch: u32) -> bool {
        self.ch_s[ch as usize].open_count > 0
    }

    /// Iterates (`ch`, `bank`)'s open rows in ascending slot order (the
    /// same order the legacy per-slot `Vec` produced).
    pub fn open_rows(&self, ch: u32, bank: u32) -> OpenRows<'_> {
        let bi = self.bank_index(ch, bank);
        OpenRows {
            state: self,
            slot_base: self.slot_base(bi),
            word_base: bi * self.words_per_bank as usize,
            word: 0,
            next_word: 0,
            words: self.words_per_bank,
            cur: 0,
        }
    }

    /// First open slot of (`ch`, `bank`) in slot order, if any.
    pub fn first_open(&self, ch: u32, bank: u32) -> Option<OpenRow> {
        self.open_rows(ch, bank).next()
    }

    /// Operation counters of channel `ch`.
    pub fn counters(&self, ch: u32) -> &ChannelCounters {
        &self.counters[ch as usize]
    }

    /// Data-bus occupancy tracker of channel `ch`.
    pub fn data_bus(&self, ch: u32) -> &BusyTracker {
        &self.ch_s[ch as usize].data_bus
    }

    /// Per-bank activate counts of channel `ch` since the last reset.
    pub fn bank_activates(&self, ch: u32) -> &[u64] {
        let base = self.bank_index(ch, 0);
        &self.bank_activates[base..base + self.banks as usize]
    }

    /// The whole per-bank activate heatmap, channel-major (index =
    /// `channel * banks_per_channel + bank`) — one contiguous slice for
    /// telemetry instead of a per-channel gather.
    pub fn bank_activates_flat(&self) -> &[u64] {
        &self.bank_activates
    }

    /// Sum over all activates of the tFAW slots still free at issue time
    /// (beyond the slot the activate itself consumes).
    pub fn faw_headroom_sum(&self, ch: u32) -> u64 {
        self.faw_headroom_sum[ch as usize]
    }

    /// Zeroes every channel's operation counters (end-of-warmup).
    pub fn reset_counters(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = ChannelCounters::default());
        self.bank_activates.iter_mut().for_each(|b| *b = 0);
        self.faw_headroom_sum.iter_mut().for_each(|s| *s = 0);
    }

    #[inline]
    fn group_of(&self, bank: u32) -> u32 {
        bank % self.bank_groups
    }

    // ---- tFAW ring (flattened `ActWindow` semantics) -------------------

    #[inline]
    fn faw_earliest(&self, ch: u32, at: Ns) -> Ns {
        let filled = self.faw_filled[ch as usize];
        if !self.faw_enabled || filled < self.faw_cap {
            return at;
        }
        let base = ch as usize * self.faw_cap as usize;
        at.max(self.faw_times[base + self.faw_head[ch as usize] as usize] + self.faw_window)
    }

    #[inline]
    fn faw_free_slots(&self, ch: u32, at: Ns) -> u32 {
        if !self.faw_enabled {
            return self.faw_cap;
        }
        let base = ch as usize * self.faw_cap as usize;
        let filled = self.faw_filled[ch as usize] as usize;
        let in_window = self.faw_times[base..base + filled]
            .iter()
            .filter(|&&t| t + self.faw_window > at)
            .count() as u32;
        self.faw_cap - in_window
    }

    #[inline]
    fn faw_record(&mut self, ch: u32, at: Ns) {
        if !self.faw_enabled {
            return;
        }
        let c = ch as usize;
        let head = self.faw_head[c];
        self.faw_times[c * self.faw_cap as usize + head as usize] = at;
        self.faw_head[c] = (head + 1) % self.faw_cap;
        self.faw_filled[c] = (self.faw_filled[c] + 1).min(self.faw_cap);
    }

    // ---- activate ------------------------------------------------------

    /// SALP shared sense-amp stripe check: is a neighbouring subarray of
    /// `row`'s subarray open? Two bit probes of the per-subarray mask (the
    /// legacy path rescanned every slot of both neighbours per activate).
    #[inline]
    fn adjacent_open(&self, bank_index: usize, row: u32) -> bool {
        let sub = row / self.rows_per_subarray;
        let mask = self.bank_s[bank_index].sub_open_mask;
        (sub > 0 && mask & (1 << (sub - 1)) != 0)
            || (sub + 1 < self.subarrays && mask & (1 << (sub + 1)) != 0)
    }

    /// Earliest activate of (`ch`, `bank`, `row`, `slice`) at or after
    /// `at`.
    ///
    /// # Errors
    ///
    /// Structural rejections: [`Rule::ActOnOpenRow`],
    /// [`Rule::AdjacentSubarray`], [`Rule::SubarrayConflict`],
    /// [`Rule::OutOfRange`].
    pub fn earliest_act(
        &self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        if self.slot_open(bi, slot) {
            return Err(Reject::structural(Rule::ActOnOpenRow));
        }
        if self.salp && self.adjacent_open(bi, row) {
            return Err(Reject::structural(Rule::AdjacentSubarray));
        }
        // Shared row decoder: consecutive activates to the same bank keep
        // at least tRRD between them even across subarrays.
        let mut t = at
            .max(self.slots[self.slot_base(bi) + slot as usize].next_act)
            .max(self.bank_s[bi].decoder_free);
        if self.grain_guard {
            // Pseudobank subarray-conflict guard (Section 3.3): a sibling
            // pseudobank holding a *different* row of the same subarray
            // blocks the activate structurally.
            let sub = row / self.rows_per_subarray;
            for other in 0..self.banks {
                if other == bank {
                    continue;
                }
                let conflict = self
                    .open_rows(ch, other)
                    .any(|o| o.row != row && o.row / self.rows_per_subarray == sub);
                if conflict {
                    return Err(Reject::structural(Rule::SubarrayConflict));
                }
            }
        }
        let cs = &self.ch_s[ch as usize];
        t = t.max(cs.act_free);
        t = self.faw_earliest(ch, t);
        Ok(t.max(cs.refresh_until))
    }

    /// Issues an activate; `at` must be at or after [`Self::earliest_act`].
    ///
    /// # Errors
    ///
    /// Everything `earliest_act` rejects, plus [`Rule::ActTooEarly`] with
    /// the earliest legal time.
    pub fn activate(
        &mut self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        at: Ns,
    ) -> Result<(), Reject> {
        let earliest = self.earliest_act(ch, bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ActTooEarly, earliest: Some(earliest) });
        }
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        let si = self.slot_base(bi) + slot as usize;
        debug_assert!(!self.slot_open(bi, slot));
        let w = bi * self.words_per_bank as usize + (slot / 64) as usize;
        self.open_bits[w] |= 1 << (slot % 64);
        let s = &mut self.slots[si];
        s.row = row;
        s.slice = slice;
        s.ready_at = at + self.timing.t_rcd;
        s.earliest_pre = at + self.timing.t_ras;
        s.act_at = at;
        s.next_act = at + self.timing.t_rc;
        let sub = slot / self.slices;
        let sci = bi * self.subarrays as usize + sub as usize;
        let b = &mut self.bank_s[bi];
        b.decoder_free = at + self.timing.t_rrd;
        b.open_count += 1;
        if self.sub_open_count[sci] == 0 {
            b.sub_open_mask |= 1 << sub;
        }
        self.sub_open_count[sci] += 1;
        let c = ch as usize;
        self.ch_s[c].open_count += 1;
        self.ch_s[c].act_free = at + self.timing.t_rrd;
        // Headroom is observed before recording: slots free beyond the one
        // this activate takes.
        self.faw_headroom_sum[c] += self.faw_free_slots(ch, at).saturating_sub(1) as u64;
        self.faw_record(ch, at);
        self.counters[c].activates += 1;
        self.bank_activates[bi] += 1;
        Ok(())
    }

    // ---- column --------------------------------------------------------

    /// Earliest read/write column command for the open
    /// (`ch`, `bank`, `row`, `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::RowNotOpen`] / [`Rule::OutOfRange`] structurally.
    pub fn earliest_col(
        &self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        let si = self.slot_base(bi) + slot as usize;
        // tRCD gate; the slot may hold a *different* row of the same slot.
        if !self.slot_open(bi, slot) || self.slots[si].row != row {
            return Err(Reject::structural(Rule::RowNotOpen));
        }
        let mut t = at.max(self.slots[si].ready_at);
        let c = ch as usize;
        let cs = &self.ch_s[c];
        let group = self.group_of(bank);
        // Bank-group spacing.
        t = t.max(cs.ccd_any_free);
        t = t.max(self.ccd_group_free[c * self.bank_groups as usize + group as usize]);
        // Write-to-read turnaround (from end of write data).
        if !is_write && cs.last_write_data_end > 0 {
            let wtr = if group == cs.last_write_group {
                self.timing.t_wtr_l
            } else {
                self.timing.t_wtr_s
            };
            t = t.max(cs.last_write_data_end + wtr);
        }
        // Data bus: in-order, non-overlapping, with a turnaround bubble.
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let dir = cs.last_dir;
        let mut bus_free = cs.data_bus.busy_until();
        if dir != 0 && (dir == 2) != is_write {
            bus_free += TURNAROUND_BUBBLE;
        }
        if bus_free > t + latency {
            t = bus_free - latency;
        }
        Ok(t.max(cs.refresh_until))
    }

    /// Issues a column command, returning its data-bus occupancy.
    ///
    /// # Errors
    ///
    /// Everything `earliest_col` rejects, plus [`Rule::ColCcd`] when `at`
    /// is before the legal time.
    pub fn column(
        &mut self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        is_write: bool,
        at: Ns,
    ) -> Result<ColOutcome, Reject> {
        let earliest = self.earliest_col(ch, bank, row, slice, is_write, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::ColCcd, earliest: Some(earliest) });
        }
        let c = ch as usize;
        let group = self.group_of(bank);
        let latency = if is_write { self.timing.t_wl } else { self.timing.t_cl };
        let data_start = at + latency;
        let data_end = data_start + self.timing.t_burst;
        let cs = &mut self.ch_s[c];
        cs.data_bus.occupy(data_start, self.timing.t_burst);
        cs.ccd_any_free = at + self.timing.t_ccd_s;
        cs.last_dir = if is_write { 2 } else { 1 };
        if is_write {
            cs.last_write_data_end = data_end;
            cs.last_write_group = group;
        }
        self.ccd_group_free[c * self.bank_groups as usize + group as usize] =
            at + self.timing.t_ccd_l;
        let bi = self.bank_index(ch, bank);
        let si = self.slot_base(bi) + self.slot_of(row, slice) as usize;
        if is_write {
            // Write recovery pushes the precharge fence past data end.
            let s = &mut self.slots[si];
            s.earliest_pre = s.earliest_pre.max(data_end + self.timing.t_wr);
            self.counters[c].write_atoms += 1;
        } else {
            // Read-to-precharge: the fence moves past issue + tRTP.
            let s = &mut self.slots[si];
            s.earliest_pre = s.earliest_pre.max(at + self.timing.t_rtp);
            self.counters[c].read_atoms += 1;
        }
        Ok(ColOutcome { data_start, data_end })
    }

    // ---- precharge -----------------------------------------------------

    /// Earliest precharge of the slot holding (`ch`, `bank`, `row`,
    /// `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::PreNothingOpen`] / [`Rule::OutOfRange`].
    pub fn earliest_pre(
        &self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        at: Ns,
    ) -> Result<Ns, Reject> {
        self.check_bank(bank)?;
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        if !self.slot_open(bi, slot) {
            return Err(Reject::structural(Rule::PreNothingOpen));
        }
        let t = self.slots[self.slot_base(bi) + slot as usize].earliest_pre;
        Ok(t.max(at).max(self.ch_s[ch as usize].refresh_until))
    }

    /// Issues a precharge.
    ///
    /// # Errors
    ///
    /// Everything `earliest_pre` rejects, plus [`Rule::PreTooEarly`].
    pub fn precharge(
        &mut self,
        ch: u32,
        bank: u32,
        row: u32,
        slice: u32,
        at: Ns,
    ) -> Result<(), Reject> {
        let earliest = self.earliest_pre(ch, bank, row, slice, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::PreTooEarly, earliest: Some(earliest) });
        }
        let bi = self.bank_index(ch, bank);
        let slot = self.slot_of(row, slice);
        let si = self.slot_base(bi) + slot as usize;
        let w = bi * self.words_per_bank as usize + (slot / 64) as usize;
        let bit = 1u64 << (slot % 64);
        if self.open_bits[w] & bit != 0 {
            self.open_bits[w] &= !bit;
            self.bank_s[bi].open_count -= 1;
            self.ch_s[ch as usize].open_count -= 1;
            let sub = slot / self.slices;
            let sci = bi * self.subarrays as usize + sub as usize;
            self.sub_open_count[sci] -= 1;
            if self.sub_open_count[sci] == 0 {
                self.bank_s[bi].sub_open_mask &= !(1u64 << sub);
            }
        }
        let s = &mut self.slots[si];
        s.next_act = s.next_act.max(at + self.timing.t_rp);
        self.counters[ch as usize].precharges += 1;
        Ok(())
    }

    // ---- refresh -------------------------------------------------------

    /// Earliest all-bank refresh of `ch` (requires every row closed).
    ///
    /// # Errors
    ///
    /// [`Rule::RefreshConflict`] while any row is open.
    pub fn earliest_refresh(&self, ch: u32, at: Ns) -> Result<Ns, Reject> {
        if self.ch_s[ch as usize].open_count > 0 {
            return Err(Reject::structural(Rule::RefreshConflict));
        }
        Ok(at.max(self.ch_s[ch as usize].refresh_until))
    }

    /// Issues an all-bank refresh occupying `ch` for tRFC.
    ///
    /// # Errors
    ///
    /// Everything `earliest_refresh` rejects.
    pub fn refresh(&mut self, ch: u32, at: Ns) -> Result<(), Reject> {
        let earliest = self.earliest_refresh(ch, at)?;
        if at < earliest {
            return Err(Reject { rule: Rule::RefreshConflict, earliest: Some(earliest) });
        }
        let until = at + self.timing.t_rfc;
        let base = self.slot_base(self.bank_index(ch, 0));
        let len = (self.banks * self.slots_per_bank) as usize;
        for s in &mut self.slots[base..base + len] {
            s.next_act = s.next_act.max(until);
        }
        self.ch_s[ch as usize].refresh_until = until;
        self.counters[ch as usize].refreshes += 1;
        Ok(())
    }
}

/// Iterator over one bank's open rows, ascending slot order.
#[derive(Debug)]
pub struct OpenRows<'a> {
    state: &'a DeviceState,
    slot_base: usize,
    word_base: usize,
    word: u32,
    next_word: u32,
    words: u32,
    cur: u64,
}

impl Iterator for OpenRows<'_> {
    type Item = OpenRow;

    fn next(&mut self) -> Option<OpenRow> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros();
                self.cur &= self.cur - 1;
                let si = self.slot_base + (self.word * 64 + bit) as usize;
                return Some(self.state.open_row_at(si));
            }
            if self.next_word >= self.words {
                return None;
            }
            self.word = self.next_word;
            self.cur = self.state.open_bits[self.word_base + self.next_word as usize];
            self.next_word += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::config::DramKind;

    fn state(kind: DramKind) -> DeviceState {
        DeviceState::new(&DramConfig::new(kind))
    }

    /// Figure 4: commands to different bank groups can be tCCDS apart and
    /// keep the data bus gapless; same group must wait tCCDL.
    #[test]
    fn fig4_bank_group_overlap() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 10, 0, 0).unwrap();
        c.activate(0, 1, 20, 0, 2).unwrap(); // tRRD = 2
        let t0 = c.earliest_col(0, 0, 10, 0, false, 0).unwrap();
        assert_eq!(t0, 16); // tRCD
        let o0 = c.column(0, 0, 10, 0, false, t0).unwrap();
        assert_eq!((o0.data_start, o0.data_end), (32, 34));
        // Different group: tCCDS later; bus stays gapless.
        let t1 = c.earliest_col(0, 1, 20, 0, false, t0).unwrap();
        assert_eq!(t1, 18);
        let o1 = c.column(0, 1, 20, 0, false, t1).unwrap();
        assert_eq!((o1.data_start, o1.data_end), (34, 36));
        // Same group as bank 0: tCCDL after its column.
        let t2 = c.earliest_col(0, 0, 10, 0, false, t0).unwrap();
        assert_eq!(t2, t0 + 4);
    }

    #[test]
    fn trrd_spaces_activates_across_banks() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 1, 0, 0).unwrap();
        assert_eq!(c.earliest_act(0, 1, 2, 0, 0).unwrap(), 2);
        let err = c.activate(0, 1, 2, 0, 1).unwrap_err();
        assert_eq!(err.rule, Rule::ActTooEarly);
        assert_eq!(err.earliest, Some(2));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 1, 0, 0).unwrap();
        c.activate(0, 1, 1, 0, 2).unwrap();
        let wt = c.earliest_col(0, 0, 1, 0, true, 0).unwrap();
        let w = c.column(0, 0, 1, 0, true, wt).unwrap();
        // Same-group read: tWTRl after write data end.
        let r_same = c.earliest_col(0, 0, 1, 0, false, 0).unwrap();
        assert!(r_same >= w.data_end + 8, "{r_same} vs {}", w.data_end);
        // Different-group read: only tWTRs.
        let r_diff = c.earliest_col(0, 1, 1, 0, false, 0).unwrap();
        assert!(r_diff >= w.data_end + 3);
        assert!(r_diff < r_same);
    }

    #[test]
    fn data_bus_serialises_and_bubbles_on_turnaround() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 1, 0, 0).unwrap();
        let rt = c.earliest_col(0, 0, 1, 0, false, 0).unwrap();
        let r = c.column(0, 0, 1, 0, false, rt).unwrap();
        // Read->write: write data must start after read data + bubble.
        let wt = c.earliest_col(0, 0, 1, 0, true, rt).unwrap();
        let w = c.column(0, 0, 1, 0, true, wt).unwrap();
        assert!(w.data_start >= r.data_end + TURNAROUND_BUBBLE);
    }

    #[test]
    fn fgdram_grain_serialises_columns_at_tburst() {
        let mut c = state(DramKind::Fgdram);
        c.activate(0, 0, 1, 0, 0).unwrap();
        c.activate(0, 1, 1, 0, 2).unwrap();
        let t0 = c.earliest_col(0, 0, 1, 0, false, 0).unwrap();
        c.column(0, 0, 1, 0, false, t0).unwrap();
        // Both pseudobanks share the serial bus: next column >= tCCDL = 16.
        let t1 = c.earliest_col(0, 1, 1, 0, false, 0).unwrap();
        assert_eq!(t1, t0 + 16);
    }

    #[test]
    fn grain_subarray_conflict_guard() {
        let mut c = state(DramKind::Fgdram);
        // Rows 0 and 5 are both in subarray 0 (512 rows/subarray).
        c.activate(0, 0, 5, 0, 0).unwrap();
        let err = c.earliest_act(0, 1, 9, 0, 10).unwrap_err();
        assert_eq!(err.rule, Rule::SubarrayConflict);
        // The *same* row in the other pseudobank is fine (same MWL).
        assert!(c.earliest_act(0, 1, 5, 0, 10).is_ok());
        // A different subarray is fine.
        assert!(c.earliest_act(0, 1, 600, 0, 10).is_ok());
    }

    #[test]
    fn refresh_blocks_channel_for_trfc() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 1, 0, 0).unwrap();
        // Refresh with an open row is rejected.
        assert_eq!(c.earliest_refresh(0, 100).unwrap_err().rule, Rule::RefreshConflict);
        let pre = c.earliest_pre(0, 0, 1, 0, 0).unwrap();
        c.precharge(0, 0, 1, 0, pre).unwrap();
        let t = c.earliest_refresh(0, pre).unwrap();
        c.refresh(0, t).unwrap();
        assert_eq!(c.earliest_act(0, 0, 1, 0, t).unwrap(), t + 160);
        assert_eq!(c.counters(0).refreshes, 1);
    }

    #[test]
    fn faw_limits_activation_bursts() {
        // HBM2 channel, 16 banks: issue 8 activates as fast as legal, then
        // the 9th must respect the 12 ns window.
        let mut c = state(DramKind::Hbm2);
        let mut t = 0;
        for b in 0..8 {
            t = c.earliest_act(0, b, 1, 0, t).unwrap();
            c.activate(0, b, 1, 0, t).unwrap();
        }
        // 8 activates at 0,2,4,...,14 (tRRD=2). Window not binding here
        // (spread is already 14 ns > 12), so this documents tRRD dominance.
        assert_eq!(t, 14);
        let e = c.earliest_act(0, 8, 1, 0, t).unwrap();
        assert_eq!(e, 16);
    }

    #[test]
    fn counters_track_operations() {
        let mut c = state(DramKind::QbHbm);
        c.activate(0, 0, 1, 0, 0).unwrap();
        let t = c.earliest_col(0, 0, 1, 0, false, 0).unwrap();
        c.column(0, 0, 1, 0, false, t).unwrap();
        let t = c.earliest_col(0, 0, 1, 0, true, t).unwrap();
        c.column(0, 0, 1, 0, true, t).unwrap();
        let t = c.earliest_pre(0, 0, 1, 0, t).unwrap();
        c.precharge(0, 0, 1, 0, t).unwrap();
        let k = c.counters(0);
        assert_eq!((k.activates, k.read_atoms, k.write_atoms, k.precharges), (1, 1, 1, 1));
    }

    #[test]
    fn out_of_range_bank_rejected() {
        let c = state(DramKind::QbHbm);
        assert_eq!(c.earliest_act(0, 99, 0, 0, 0).unwrap_err().rule, Rule::OutOfRange);
    }

    #[test]
    fn salp_slots_and_masks_track_two_word_bitsets() {
        // QB-HBM+SALP+SC: 32 subarrays x 4 slices = 128 slots per bank,
        // two bitset words. Open rows in both words and iterate in slot
        // order.
        let mut c = state(DramKind::QbHbmSalpSc);
        c.activate(0, 0, 0, 0, 0).unwrap(); // subarray 0, slice 0 -> slot 0
        c.activate(0, 0, 20 * 512, 3, 2).unwrap(); // subarray 20 -> slot 83
        let open: Vec<_> = c.open_rows(0, 0).collect();
        assert_eq!(open.len(), 2);
        assert_eq!((open[0].row, open[0].slice), (0, 0));
        assert_eq!((open[1].row, open[1].slice), (20 * 512, 3));
        // Subarray 1 and 19/21 are adjacent to open subarrays.
        assert_eq!(c.earliest_act(0, 0, 512, 0, 50).unwrap_err().rule, Rule::AdjacentSubarray);
        assert_eq!(c.earliest_act(0, 0, 21 * 512, 0, 50).unwrap_err().rule, Rule::AdjacentSubarray);
        // Subarray 10 is fine.
        assert!(c.earliest_act(0, 0, 10 * 512, 0, 50).is_ok());
        // Closing the subarray-20 row clears its mask bit.
        let pre = c.earliest_pre(0, 0, 20 * 512, 3, 50).unwrap();
        c.precharge(0, 0, 20 * 512, 3, pre).unwrap();
        assert!(c.earliest_act(0, 0, 21 * 512, 0, pre + 10).is_ok());
        assert_eq!(c.open_rows(0, 0).count(), 1);
    }
}
