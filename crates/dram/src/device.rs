//! The whole DRAM stack: channels/grains plus shared command channels.
//!
//! The command interface mirrors HBM2's split row/column command buses
//! (Section 3.3): activates and precharges travel on the row bus, reads and
//! writes on the column bus, and — for FGDRAM — eight grains share one
//! command channel, with activates occupying the row bus for 4 ns (the
//! long row address) and column commands 2 ns.

use fgdram_model::cmd::{Completion, DramCommand, TimedCommand};
use fgdram_model::config::DramConfig;
use fgdram_model::units::Ns;

use crate::channel::{Channel, ChannelCounters, Reject};
use crate::error::{ProtocolError, Rule};
use crate::state::DeviceState;

/// Split row/column command-bus occupancy for one command channel.
#[derive(Debug, Clone, Copy, Default)]
struct CmdBus {
    row_busy_until: Ns,
    col_busy_until: Ns,
}

/// A full DRAM stack device model.
///
/// # Examples
///
/// ```
/// use fgdram_dram::DramDevice;
/// use fgdram_model::cmd::{BankRef, DramCommand};
/// use fgdram_model::config::{DramConfig, DramKind};
/// use fgdram_model::addr::ReqId;
///
/// let mut dev = DramDevice::new(DramConfig::new(DramKind::Fgdram));
/// let bank = BankRef { channel: 0, bank: 0 };
/// let act = DramCommand::Activate { bank, row: 42, slice: 0 };
/// let at = dev.earliest(&act, 0)?;
/// dev.issue(act, at)?;
/// let rd = DramCommand::Read { bank, row: 42, col: 0, auto_precharge: false, req: ReqId(1) };
/// let at = dev.earliest(&rd, at)?;
/// let done = dev.issue(rd, at)?.expect("reads complete");
/// assert!(done.at > at);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DramDevice {
    cfg: DramConfig,
    state: DeviceState,
    cmd_buses: Vec<CmdBus>,
    trace: Option<Vec<TimedCommand>>,
    /// Running aggregate of every channel's counters, maintained
    /// incrementally on [`Self::issue`] so [`Self::total_counters`] is
    /// O(1) — it sits on the per-step progress-watchdog path, where
    /// re-summing 512 grains per step dominated wall time.
    totals: ChannelCounters,
}

impl DramDevice {
    /// Builds an idle device for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`]; construct configs
    /// through [`DramConfig::new`] or validate custom ones first.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DramConfig");
        DramDevice {
            state: DeviceState::new(&cfg),
            cmd_buses: vec![CmdBus::default(); cfg.cmd_channels()],
            trace: None,
            totals: ChannelCounters::default(),
            cfg,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Read access to one channel/grain (a copyable view over the flat
    /// [`DeviceState`]).
    pub fn channel(&self, ch: u32) -> Channel<'_> {
        Channel::new(&self.state, ch)
    }

    /// Read access to the flat struct-of-arrays timing state.
    pub fn state(&self) -> &DeviceState {
        &self.state
    }

    /// Begins recording every accepted command (for the protocol checker).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TimedCommand> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Aggregated operation counters across all channels (O(1): a running
    /// total maintained on every issue).
    pub fn total_counters(&self) -> ChannelCounters {
        self.totals
    }

    /// Per-channel counters.
    pub fn channel_counters(&self, ch: u32) -> &ChannelCounters {
        self.state.counters(ch)
    }

    /// Zeroes every channel's operation counters (end-of-warmup).
    pub fn reset_counters(&mut self) {
        self.state.reset_counters();
        self.totals = ChannelCounters::default();
    }

    #[inline]
    fn cmd_bus_index(&self, channel: u32) -> usize {
        channel as usize / self.cfg.channels_per_cmd_channel
    }

    fn cmd_slot(&self, cmd: &DramCommand, at: Ns) -> Ns {
        let bus = &self.cmd_buses[self.cmd_bus_index(cmd.channel())];
        if cmd.is_row_cmd() {
            at.max(bus.row_busy_until)
        } else {
            at.max(bus.col_busy_until)
        }
    }

    fn occupy_cmd_slot(&mut self, cmd: &DramCommand, at: Ns) {
        let idx = self.cmd_bus_index(cmd.channel());
        let t = &self.cfg.timing;
        let bus = &mut self.cmd_buses[idx];
        match cmd {
            DramCommand::Activate { .. } => bus.row_busy_until = at + t.t_cmd_row,
            DramCommand::Precharge { .. } | DramCommand::Refresh { .. } => {
                bus.row_busy_until = at + t.t_cmd_col
            }
            DramCommand::Read { .. } | DramCommand::Write { .. } => {
                bus.col_busy_until = at + t.t_cmd_col
            }
        }
    }

    fn check_ranges(&self, cmd: &DramCommand) -> Result<(), Reject> {
        let ok = match cmd {
            DramCommand::Activate { bank, row, slice } => {
                (bank.channel as usize) < self.cfg.channels
                    && (bank.bank as usize) < self.cfg.banks_per_channel
                    && (*row as usize) < self.cfg.rows_per_bank
                    && (*slice as u64) < self.cfg.slices_per_row()
            }
            DramCommand::Read { bank, row, col, .. }
            | DramCommand::Write { bank, row, col, .. } => {
                (bank.channel as usize) < self.cfg.channels
                    && (bank.bank as usize) < self.cfg.banks_per_channel
                    && (*row as usize) < self.cfg.rows_per_bank
                    && (*col as u64) < self.cfg.atoms_per_row()
            }
            DramCommand::Precharge { bank, .. } => {
                (bank.channel as usize) < self.cfg.channels
                    && (bank.bank as usize) < self.cfg.banks_per_channel
            }
            DramCommand::Refresh { channel } => (*channel as usize) < self.cfg.channels,
        };
        if ok {
            Ok(())
        } else {
            Err(Reject { rule: Rule::OutOfRange, earliest: None })
        }
    }

    /// Subchannel slice of a column (0 when the config has a single slice).
    #[inline]
    fn slice_of(&self, col: u32) -> u32 {
        col / self.cfg.atoms_per_activation() as u32
    }

    /// Earliest time `cmd` may issue at or after `at`, combining bank,
    /// channel, and command-bus constraints.
    ///
    /// # Errors
    ///
    /// Structural [`ProtocolError`]s (wrong row open, subarray conflicts,
    /// out-of-range targets) that no amount of waiting fixes.
    pub fn earliest(&self, cmd: &DramCommand, at: Ns) -> Result<Ns, ProtocolError> {
        let wrap = |r: Reject| ProtocolError { cmd: *cmd, at, rule: r.rule, earliest: r.earliest };
        self.check_ranges(cmd).map_err(wrap)?;
        let t = match *cmd {
            DramCommand::Activate { bank, row, slice } => {
                self.state.earliest_act(bank.channel, bank.bank, row, slice, at).map_err(wrap)?
            }
            DramCommand::Read { bank, row, col, .. } => self
                .state
                .earliest_col(bank.channel, bank.bank, row, self.slice_of(col), false, at)
                .map_err(wrap)?,
            DramCommand::Write { bank, row, col, .. } => self
                .state
                .earliest_col(bank.channel, bank.bank, row, self.slice_of(col), true, at)
                .map_err(wrap)?,
            DramCommand::Precharge { bank, row, slice } => match row {
                Some(r) => {
                    self.state.earliest_pre(bank.channel, bank.bank, r, slice, at).map_err(wrap)?
                }
                None => self.earliest_pre_all(bank.channel, bank.bank, at).map_err(wrap)?,
            },
            DramCommand::Refresh { channel } => {
                self.state.earliest_refresh(channel, at).map_err(wrap)?
            }
        };
        Ok(self.cmd_slot(cmd, t))
    }

    fn earliest_pre_all(&self, ch: u32, bank: u32, at: Ns) -> Result<Ns, Reject> {
        let mut any = false;
        let mut t = at;
        for o in self.state.open_rows(ch, bank) {
            any = true;
            t = t.max(o.earliest_pre);
        }
        if !any {
            return Err(Reject { rule: Rule::PreNothingOpen, earliest: None });
        }
        Ok(t)
    }

    /// Issues `cmd` at `at`. Returns the data completion for reads/writes.
    ///
    /// # Errors
    ///
    /// Any protocol violation; the device state is unchanged on error.
    pub fn issue(&mut self, cmd: DramCommand, at: Ns) -> Result<Option<Completion>, ProtocolError> {
        let wrap = |r: Reject| ProtocolError { cmd, at, rule: r.rule, earliest: r.earliest };
        self.check_ranges(&cmd).map_err(wrap)?;
        // Command-bus slot check first: it applies to every command kind.
        let slot = self.cmd_slot(&cmd, at);
        if at < slot {
            return Err(ProtocolError { cmd, at, rule: Rule::CmdBusBusy, earliest: Some(slot) });
        }
        // A command touches exactly one channel; capture its counters so
        // the running totals can absorb the delta afterwards. (Failed
        // issues leave channel state — and thus the delta — untouched.)
        let chx = cmd.channel();
        let before = *self.state.counters(chx);
        let completion = match cmd {
            DramCommand::Activate { bank, row, slice } => {
                self.state.activate(bank.channel, bank.bank, row, slice, at).map_err(wrap)?;
                None
            }
            DramCommand::Read { bank, row, col, auto_precharge, req } => {
                let slice = self.slice_of(col);
                let out = self
                    .state
                    .column(bank.channel, bank.bank, row, slice, false, at)
                    .map_err(wrap)?;
                if auto_precharge {
                    self.auto_precharge(bank.channel, bank.bank, row, slice);
                }
                Some(Completion { req, at: out.data_end, is_write: false })
            }
            DramCommand::Write { bank, row, col, auto_precharge, req } => {
                let slice = self.slice_of(col);
                let out = self
                    .state
                    .column(bank.channel, bank.bank, row, slice, true, at)
                    .map_err(wrap)?;
                if auto_precharge {
                    self.auto_precharge(bank.channel, bank.bank, row, slice);
                }
                Some(Completion { req, at: out.data_end, is_write: true })
            }
            DramCommand::Precharge { bank, row, slice } => {
                self.issue_precharge(bank.channel, bank.bank, row, slice, at).map_err(wrap)?;
                None
            }
            DramCommand::Refresh { channel } => {
                self.state.refresh(channel, at).map_err(wrap)?;
                None
            }
        };
        let after = self.state.counters(chx);
        self.totals.activates += after.activates - before.activates;
        self.totals.read_atoms += after.read_atoms - before.read_atoms;
        self.totals.write_atoms += after.write_atoms - before.write_atoms;
        self.totals.refreshes += after.refreshes - before.refreshes;
        self.totals.precharges += after.precharges - before.precharges;
        self.occupy_cmd_slot(&cmd, at);
        if let Some(t) = &mut self.trace {
            t.push(TimedCommand { at, cmd });
        }
        Ok(completion)
    }

    fn issue_precharge(
        &mut self,
        channel: u32,
        bank: u32,
        row: Option<u32>,
        slice: u32,
        at: Ns,
    ) -> Result<(), Reject> {
        match row {
            Some(r) => self.state.precharge(channel, bank, r, slice, at),
            None => {
                // Validate all slots are ready before mutating any.
                let mut any = false;
                for o in self.state.open_rows(channel, bank) {
                    any = true;
                    let e = self.state.earliest_pre(channel, bank, o.row, o.slice, at)?;
                    if at < e {
                        return Err(Reject { rule: Rule::PreTooEarly, earliest: Some(e) });
                    }
                }
                if !any {
                    return Err(Reject { rule: Rule::PreNothingOpen, earliest: None });
                }
                while let Some(o) = self.state.first_open(channel, bank) {
                    self.state.precharge(channel, bank, o.row, o.slice, at)?;
                }
                Ok(())
            }
        }
    }

    /// Internally schedules the precharge implied by auto-precharge: it
    /// occurs as soon as tRAS/tRTP/tWR allow, without a command-bus slot.
    fn auto_precharge(&mut self, channel: u32, bank: u32, row: u32, slice: u32) {
        if let Ok(at) = self.state.earliest_pre(channel, bank, row, slice, 0) {
            let _ = self.state.precharge(channel, bank, row, slice, at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::ReqId;
    use fgdram_model::cmd::BankRef;
    use fgdram_model::config::DramKind;

    fn dev(kind: DramKind) -> DramDevice {
        DramDevice::new(DramConfig::new(kind))
    }

    fn bank(ch: u32, b: u32) -> BankRef {
        BankRef { channel: ch, bank: b }
    }

    #[test]
    fn read_roundtrip_timing_hbm2() {
        let mut d = dev(DramKind::Hbm2);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 3, slice: 0 }, 0).unwrap();
        let rd =
            DramCommand::Read { bank: b, row: 3, col: 1, auto_precharge: false, req: ReqId(7) };
        let t = d.earliest(&rd, 0).unwrap();
        assert_eq!(t, 16); // tRCD
        let done = d.issue(rd, t).unwrap().unwrap();
        // Data: t + tCL + tBURST = 16 + 16 + 2.
        assert_eq!(done.at, 34);
        assert_eq!(done.req, ReqId(7));
    }

    #[test]
    fn fgdram_burst_is_16ns() {
        let mut d = dev(DramKind::Fgdram);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 3, slice: 0 }, 0).unwrap();
        let rd =
            DramCommand::Read { bank: b, row: 3, col: 0, auto_precharge: false, req: ReqId(1) };
        let t = d.earliest(&rd, 0).unwrap();
        let done = d.issue(rd, t).unwrap().unwrap();
        assert_eq!(done.at - (t + 16), 16); // tCL then 16 ns serial burst
    }

    #[test]
    fn shared_command_channel_arbitrates_eight_grains() {
        let mut d = dev(DramKind::Fgdram);
        // Grains 0..8 share command channel 0; activates occupy 4 ns each.
        let a0 = DramCommand::Activate { bank: bank(0, 0), row: 1, slice: 0 };
        let a1 = DramCommand::Activate { bank: bank(1, 0), row: 1, slice: 0 };
        let a8 = DramCommand::Activate { bank: bank(8, 0), row: 1, slice: 0 };
        d.issue(a0, 0).unwrap();
        // Same command channel: must wait for the 3 ns activate slot.
        let t1 = d.earliest(&a1, 0).unwrap();
        assert_eq!(t1, 3);
        // Grain 8 lives on command channel 1: free at 0.
        let t8 = d.earliest(&a8, 0).unwrap();
        assert_eq!(t8, 0);
        let err = d.issue(a1, 1).unwrap_err();
        assert_eq!(err.rule, Rule::CmdBusBusy);
    }

    #[test]
    fn row_and_column_buses_are_independent() {
        let mut d = dev(DramKind::Fgdram);
        let b0 = bank(0, 0);
        let b1 = bank(1, 0);
        d.issue(DramCommand::Activate { bank: b0, row: 1, slice: 0 }, 0).unwrap();
        d.issue(DramCommand::Activate { bank: b1, row: 1, slice: 0 }, 3).unwrap();
        // A read to grain 0 can issue at 16 (tRCD) even though the row bus
        // carried an activate at 3..6: separate buses.
        let rd =
            DramCommand::Read { bank: b0, row: 1, col: 0, auto_precharge: false, req: ReqId(1) };
        assert_eq!(d.earliest(&rd, 0).unwrap(), 16);
    }

    #[test]
    fn auto_precharge_closes_row() {
        let mut d = dev(DramKind::QbHbm);
        let b = bank(2, 1);
        d.issue(DramCommand::Activate { bank: b, row: 9, slice: 0 }, 0).unwrap();
        let rd = DramCommand::Read { bank: b, row: 9, col: 0, auto_precharge: true, req: ReqId(1) };
        let t = d.earliest(&rd, 0).unwrap();
        d.issue(rd, t).unwrap();
        assert!(!d.channel(2).bank(1).any_open());
        // Re-activating the same bank respects tRC/tRP via earliest().
        let act = DramCommand::Activate { bank: b, row: 10, slice: 0 };
        let t2 = d.earliest(&act, 0).unwrap();
        assert!(t2 >= 45.min(t + 4 + 16)); // tRC or tRTP+tRP path
    }

    #[test]
    fn precharge_all_requires_every_slot_ready() {
        let mut d = dev(DramKind::QbHbmSalpSc);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 0, slice: 0 }, 0).unwrap();
        let pre = DramCommand::Precharge { bank: b, row: None, slice: 0 };
        let early = d.issue(pre, 5).unwrap_err();
        assert_eq!(early.rule, Rule::PreTooEarly);
        let t = d.earliest(&pre, 5).unwrap();
        d.issue(pre, t).unwrap();
        assert!(!d.channel(0).bank(0).any_open());
    }

    #[test]
    fn trace_records_accepted_commands_only() {
        let mut d = dev(DramKind::QbHbm);
        d.enable_trace();
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
        // Rejected: same bank still open.
        let _ = d.issue(DramCommand::Activate { bank: b, row: 2, slice: 0 }, 50);
        let trace = d.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].at, 0);
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let mut d = dev(DramKind::QbHbm);
        let err =
            d.issue(DramCommand::Activate { bank: bank(999, 0), row: 0, slice: 0 }, 0).unwrap_err();
        assert_eq!(err.rule, Rule::OutOfRange);
        let err = d
            .issue(DramCommand::Activate { bank: bank(0, 0), row: 1 << 30, slice: 0 }, 0)
            .unwrap_err();
        assert_eq!(err.rule, Rule::OutOfRange);
    }

    #[test]
    fn counters_aggregate_across_channels() {
        let mut d = dev(DramKind::QbHbm);
        for ch in 0..4 {
            let b = bank(ch, 0);
            d.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
            let rd = DramCommand::Read {
                bank: b,
                row: 1,
                col: 0,
                auto_precharge: false,
                req: ReqId(ch as u64),
            };
            let t = d.earliest(&rd, 0).unwrap();
            d.issue(rd, t).unwrap();
        }
        let k = d.total_counters();
        assert_eq!(k.activates, 4);
        assert_eq!(k.read_atoms, 4);
    }

    /// Recomputes the per-channel sum the slow way and checks the O(1)
    /// running totals match after a mixed command sequence, rejected
    /// commands (which must not count), and a reset.
    #[test]
    fn running_totals_match_recomputed_sum() {
        let resum = |d: &DramDevice| {
            let mut total = ChannelCounters::default();
            for ch in 0..d.config().channels as u32 {
                let k = d.channel_counters(ch);
                total.activates += k.activates;
                total.read_atoms += k.read_atoms;
                total.write_atoms += k.write_atoms;
                total.refreshes += k.refreshes;
                total.precharges += k.precharges;
            }
            total
        };
        let check = |d: &DramDevice| {
            let (a, b) = (d.total_counters(), resum(d));
            assert_eq!(a.activates, b.activates);
            assert_eq!(a.read_atoms, b.read_atoms);
            assert_eq!(a.write_atoms, b.write_atoms);
            assert_eq!(a.refreshes, b.refreshes);
            assert_eq!(a.precharges, b.precharges);
        };
        let mut d = dev(DramKind::QbHbm);
        let mut now = 0;
        for ch in 0..4 {
            let b = bank(ch, ch % 2);
            let act = DramCommand::Activate { bank: b, row: ch, slice: 0 };
            now = d.earliest(&act, now).unwrap();
            d.issue(act, now).unwrap();
            // Auto-precharged write: counts a write atom and a precharge.
            let wr = DramCommand::Write {
                bank: b,
                row: ch,
                col: 0,
                auto_precharge: ch % 2 == 0,
                req: ReqId(ch as u64),
            };
            now = d.earliest(&wr, now).unwrap();
            d.issue(wr, now).unwrap();
            check(&d);
        }
        // A rejected command leaves the totals untouched.
        let bad = DramCommand::Activate { bank: bank(0, 0), row: 1 << 30, slice: 0 };
        assert!(d.issue(bad, now).is_err());
        check(&d);
        // Channel 0's only row was auto-precharged above, so it can refresh.
        let rf = DramCommand::Refresh { channel: 0 };
        let t = d.earliest(&rf, now + 200).unwrap();
        d.issue(rf, t).unwrap();
        check(&d);
        assert!(d.total_counters().refreshes >= 1);
        d.reset_counters();
        check(&d);
        assert_eq!(d.total_counters().activates, 0);
    }
}
