//! The whole DRAM stack: channels/grains plus shared command channels.
//!
//! The command interface mirrors HBM2's split row/column command buses
//! (Section 3.3): activates and precharges travel on the row bus, reads and
//! writes on the column bus, and — for FGDRAM — eight grains share one
//! command channel, with activates occupying the row bus for 4 ns (the
//! long row address) and column commands 2 ns.
//!
//! The device is internally sharded into [`DevLane`]s — contiguous channel
//! slices aligned to command-channel boundaries (see
//! `DramConfig::lane_plan`) — so the threaded engine can hand each worker
//! exclusive ownership of one lane's complete timing state with no shared
//! mutation at all. With one lane (the default) the layout is the PR 9
//! flat device, one indirection removed.

use fgdram_model::cmd::{Completion, DramCommand, TimedCommand};
use fgdram_model::config::DramConfig;
use fgdram_model::units::Ns;

use crate::channel::{Channel, ChannelCounters, Reject};
use crate::error::{ProtocolError, Rule};
use crate::state::DeviceState;

/// Split row/column command-bus occupancy for one command channel.
#[derive(Debug, Clone, Copy, Default)]
struct CmdBus {
    row_busy_until: Ns,
    col_busy_until: Ns,
}

/// One engine lane: a contiguous slice of channels with its *own complete*
/// timing state — slot/bank/channel records, command buses, counters.
/// Because lanes align to command-channel boundaries, no DRAM rule ever
/// couples two lanes, so a worker thread that owns a `DevLane` (by value)
/// can tick it with no synchronisation and bit-identical results to the
/// serial engine.
///
/// All channel arguments are **global** channel ids; the lane translates
/// to its local state internally.
#[derive(Debug)]
pub struct DevLane {
    cfg: DramConfig,
    base_ch: u32,
    width: u32,
    state: DeviceState,
    cmd_buses: Vec<CmdBus>,
    /// Running aggregate of this lane's counters, maintained incrementally
    /// on [`Self::issue`] so the device's `total_counters` (on the
    /// per-step progress-watchdog path) is O(lanes), not O(channels).
    totals: ChannelCounters,
}

impl DevLane {
    fn new(cfg: DramConfig, base_ch: u32, width: u32) -> Self {
        debug_assert_eq!(base_ch as usize % cfg.channels_per_cmd_channel, 0);
        debug_assert_eq!(width as usize % cfg.channels_per_cmd_channel, 0);
        DevLane {
            state: DeviceState::with_channels(&cfg, width),
            cmd_buses: vec![
                CmdBus::default();
                (width as usize / cfg.channels_per_cmd_channel).max(1)
            ],
            totals: ChannelCounters::default(),
            base_ch,
            width,
            cfg,
        }
    }

    /// First global channel id of this lane.
    pub fn base_channel(&self) -> u32 {
        self.base_ch
    }

    /// Number of channels in this lane.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The device configuration (each lane carries its own copy so a lane
    /// shipped to a worker thread is self-contained).
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Lane-local index of global channel `ch`.
    #[inline]
    fn local(&self, ch: u32) -> u32 {
        debug_assert!(
            ch >= self.base_ch && ch < self.base_ch + self.width,
            "channel {ch} outside lane [{}, {})",
            self.base_ch,
            self.base_ch + self.width
        );
        ch - self.base_ch
    }

    /// Read access to one channel/grain of this lane (global id).
    pub fn channel(&self, ch: u32) -> Channel<'_> {
        Channel::new(&self.state, self.local(ch))
    }

    /// This lane's running counter totals.
    pub fn totals(&self) -> ChannelCounters {
        self.totals
    }

    /// Per-channel counters (global id).
    pub fn channel_counters(&self, ch: u32) -> &ChannelCounters {
        self.state.counters(self.local(ch))
    }

    /// The lane's per-bank activate heatmap slice, channel-major within
    /// the lane (concatenating lanes in base order rebuilds the device
    /// heatmap).
    pub fn bank_activates_flat(&self) -> &[u64] {
        self.state.bank_activates_flat()
    }

    /// Zeroes the lane's operation counters.
    pub fn reset_counters(&mut self) {
        self.state.reset_counters();
        self.totals = ChannelCounters::default();
    }

    #[inline]
    fn cmd_bus_index(&self, channel: u32) -> usize {
        self.local(channel) as usize / self.cfg.channels_per_cmd_channel
    }

    fn cmd_slot(&self, cmd: &DramCommand, at: Ns) -> Ns {
        let bus = &self.cmd_buses[self.cmd_bus_index(cmd.channel())];
        if cmd.is_row_cmd() {
            at.max(bus.row_busy_until)
        } else {
            at.max(bus.col_busy_until)
        }
    }

    fn occupy_cmd_slot(&mut self, cmd: &DramCommand, at: Ns) {
        let idx = self.cmd_bus_index(cmd.channel());
        let t = &self.cfg.timing;
        let bus = &mut self.cmd_buses[idx];
        match cmd {
            DramCommand::Activate { .. } => bus.row_busy_until = at + t.t_cmd_row,
            DramCommand::Precharge { .. } | DramCommand::Refresh { .. } => {
                bus.row_busy_until = at + t.t_cmd_col
            }
            DramCommand::Read { .. } | DramCommand::Write { .. } => {
                bus.col_busy_until = at + t.t_cmd_col
            }
        }
    }

    fn check_ranges(&self, cmd: &DramCommand) -> Result<(), Reject> {
        let in_lane = |ch: u32| {
            (ch as usize) < self.cfg.channels
                && ch >= self.base_ch
                && ch < self.base_ch + self.width
        };
        let ok = match cmd {
            DramCommand::Activate { bank, row, slice } => {
                in_lane(bank.channel)
                    && (bank.bank as usize) < self.cfg.banks_per_channel
                    && (*row as usize) < self.cfg.rows_per_bank
                    && (*slice as u64) < self.cfg.slices_per_row()
            }
            DramCommand::Read { bank, row, col, .. }
            | DramCommand::Write { bank, row, col, .. } => {
                in_lane(bank.channel)
                    && (bank.bank as usize) < self.cfg.banks_per_channel
                    && (*row as usize) < self.cfg.rows_per_bank
                    && (*col as u64) < self.cfg.atoms_per_row()
            }
            DramCommand::Precharge { bank, .. } => {
                in_lane(bank.channel) && (bank.bank as usize) < self.cfg.banks_per_channel
            }
            DramCommand::Refresh { channel } => in_lane(*channel),
        };
        if ok {
            Ok(())
        } else {
            Err(Reject { rule: Rule::OutOfRange, earliest: None })
        }
    }

    /// Subchannel slice of a column (0 when the config has a single slice).
    #[inline]
    fn slice_of(&self, col: u32) -> u32 {
        col / self.cfg.atoms_per_activation() as u32
    }

    /// Earliest time `cmd` may issue at or after `at`, combining bank,
    /// channel, and command-bus constraints.
    ///
    /// # Errors
    ///
    /// Structural [`ProtocolError`]s (wrong row open, subarray conflicts,
    /// out-of-range targets) that no amount of waiting fixes.
    pub fn earliest(&self, cmd: &DramCommand, at: Ns) -> Result<Ns, ProtocolError> {
        let wrap = |r: Reject| ProtocolError { cmd: *cmd, at, rule: r.rule, earliest: r.earliest };
        self.check_ranges(cmd).map_err(wrap)?;
        let t = match *cmd {
            DramCommand::Activate { bank, row, slice } => self
                .state
                .earliest_act(self.local(bank.channel), bank.bank, row, slice, at)
                .map_err(wrap)?,
            DramCommand::Read { bank, row, col, .. } => self
                .state
                .earliest_col(
                    self.local(bank.channel),
                    bank.bank,
                    row,
                    self.slice_of(col),
                    false,
                    at,
                )
                .map_err(wrap)?,
            DramCommand::Write { bank, row, col, .. } => self
                .state
                .earliest_col(
                    self.local(bank.channel),
                    bank.bank,
                    row,
                    self.slice_of(col),
                    true,
                    at,
                )
                .map_err(wrap)?,
            DramCommand::Precharge { bank, row, slice } => match row {
                Some(r) => self
                    .state
                    .earliest_pre(self.local(bank.channel), bank.bank, r, slice, at)
                    .map_err(wrap)?,
                None => {
                    self.earliest_pre_all(self.local(bank.channel), bank.bank, at).map_err(wrap)?
                }
            },
            DramCommand::Refresh { channel } => {
                self.state.earliest_refresh(self.local(channel), at).map_err(wrap)?
            }
        };
        Ok(self.cmd_slot(cmd, t))
    }

    /// `ch` is lane-local here (callers translate first).
    fn earliest_pre_all(&self, ch: u32, bank: u32, at: Ns) -> Result<Ns, Reject> {
        let mut any = false;
        let mut t = at;
        for o in self.state.open_rows(ch, bank) {
            any = true;
            t = t.max(o.earliest_pre);
        }
        if !any {
            return Err(Reject { rule: Rule::PreNothingOpen, earliest: None });
        }
        Ok(t)
    }

    /// Issues `cmd` at `at`, appending it to `trace` when recording is on.
    /// Returns the data completion for reads/writes.
    ///
    /// # Errors
    ///
    /// Any protocol violation; the lane state is unchanged on error.
    pub fn issue(
        &mut self,
        cmd: DramCommand,
        at: Ns,
        trace: Option<&mut Vec<TimedCommand>>,
    ) -> Result<Option<Completion>, ProtocolError> {
        let wrap = |r: Reject| ProtocolError { cmd, at, rule: r.rule, earliest: r.earliest };
        self.check_ranges(&cmd).map_err(wrap)?;
        // Command-bus slot check first: it applies to every command kind.
        let slot = self.cmd_slot(&cmd, at);
        if at < slot {
            return Err(ProtocolError { cmd, at, rule: Rule::CmdBusBusy, earliest: Some(slot) });
        }
        // A command touches exactly one channel; capture its counters so
        // the running totals can absorb the delta afterwards. (Failed
        // issues leave channel state — and thus the delta — untouched.)
        let chx = self.local(cmd.channel());
        let before = *self.state.counters(chx);
        let completion = match cmd {
            DramCommand::Activate { bank, row, slice } => {
                self.state
                    .activate(self.local(bank.channel), bank.bank, row, slice, at)
                    .map_err(wrap)?;
                None
            }
            DramCommand::Read { bank, row, col, auto_precharge, req } => {
                let slice = self.slice_of(col);
                let local = self.local(bank.channel);
                let out =
                    self.state.column(local, bank.bank, row, slice, false, at).map_err(wrap)?;
                if auto_precharge {
                    self.auto_precharge(local, bank.bank, row, slice);
                }
                Some(Completion { req, at: out.data_end, is_write: false })
            }
            DramCommand::Write { bank, row, col, auto_precharge, req } => {
                let slice = self.slice_of(col);
                let local = self.local(bank.channel);
                let out =
                    self.state.column(local, bank.bank, row, slice, true, at).map_err(wrap)?;
                if auto_precharge {
                    self.auto_precharge(local, bank.bank, row, slice);
                }
                Some(Completion { req, at: out.data_end, is_write: true })
            }
            DramCommand::Precharge { bank, row, slice } => {
                self.issue_precharge(self.local(bank.channel), bank.bank, row, slice, at)
                    .map_err(wrap)?;
                None
            }
            DramCommand::Refresh { channel } => {
                self.state.refresh(self.local(channel), at).map_err(wrap)?;
                None
            }
        };
        let after = self.state.counters(chx);
        self.totals.activates += after.activates - before.activates;
        self.totals.read_atoms += after.read_atoms - before.read_atoms;
        self.totals.write_atoms += after.write_atoms - before.write_atoms;
        self.totals.refreshes += after.refreshes - before.refreshes;
        self.totals.precharges += after.precharges - before.precharges;
        self.occupy_cmd_slot(&cmd, at);
        if let Some(t) = trace {
            t.push(TimedCommand { at, cmd });
        }
        Ok(completion)
    }

    /// `channel` is lane-local here.
    fn issue_precharge(
        &mut self,
        channel: u32,
        bank: u32,
        row: Option<u32>,
        slice: u32,
        at: Ns,
    ) -> Result<(), Reject> {
        match row {
            Some(r) => self.state.precharge(channel, bank, r, slice, at),
            None => {
                // Validate all slots are ready before mutating any.
                let mut any = false;
                for o in self.state.open_rows(channel, bank) {
                    any = true;
                    let e = self.state.earliest_pre(channel, bank, o.row, o.slice, at)?;
                    if at < e {
                        return Err(Reject { rule: Rule::PreTooEarly, earliest: Some(e) });
                    }
                }
                if !any {
                    return Err(Reject { rule: Rule::PreNothingOpen, earliest: None });
                }
                while let Some(o) = self.state.first_open(channel, bank) {
                    self.state.precharge(channel, bank, o.row, o.slice, at)?;
                }
                Ok(())
            }
        }
    }

    /// Internally schedules the precharge implied by auto-precharge: it
    /// occurs as soon as tRAS/tRTP/tWR allow, without a command-bus slot.
    /// `channel` is lane-local here.
    fn auto_precharge(&mut self, channel: u32, bank: u32, row: u32, slice: u32) {
        if let Ok(at) = self.state.earliest_pre(channel, bank, row, slice, 0) {
            let _ = self.state.precharge(channel, bank, row, slice, at);
        }
    }
}

/// A scheduler's handle on one lane: the lane plus the (shared, optional)
/// trace sink. The threaded engine constructs one per lane per fence —
/// workers get `trace: None` (parallel ticking is forced serial whenever
/// tracing is on, so trace order stays chronological).
#[derive(Debug)]
pub struct LaneDevice<'a> {
    lane: &'a mut DevLane,
    trace: Option<&'a mut Vec<TimedCommand>>,
}

impl<'a> LaneDevice<'a> {
    /// Wraps `lane` with an optional trace sink.
    pub fn new(lane: &'a mut DevLane, trace: Option<&'a mut Vec<TimedCommand>>) -> Self {
        LaneDevice { lane, trace }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        self.lane.config()
    }

    /// Read access to one channel/grain (global id; must be in-lane).
    pub fn channel(&self, ch: u32) -> Channel<'_> {
        self.lane.channel(ch)
    }

    /// See [`DevLane::earliest`].
    ///
    /// # Errors
    ///
    /// As [`DevLane::earliest`].
    pub fn earliest(&self, cmd: &DramCommand, at: Ns) -> Result<Ns, ProtocolError> {
        self.lane.earliest(cmd, at)
    }

    /// See [`DevLane::issue`].
    ///
    /// # Errors
    ///
    /// As [`DevLane::issue`].
    pub fn issue(&mut self, cmd: DramCommand, at: Ns) -> Result<Option<Completion>, ProtocolError> {
        self.lane.issue(cmd, at, self.trace.as_deref_mut())
    }
}

/// A full DRAM stack device model.
///
/// # Examples
///
/// ```
/// use fgdram_dram::DramDevice;
/// use fgdram_model::cmd::{BankRef, DramCommand};
/// use fgdram_model::config::{DramConfig, DramKind};
/// use fgdram_model::addr::ReqId;
///
/// let mut dev = DramDevice::new(DramConfig::new(DramKind::Fgdram));
/// let bank = BankRef { channel: 0, bank: 0 };
/// let act = DramCommand::Activate { bank, row: 42, slice: 0 };
/// let at = dev.earliest(&act, 0)?;
/// dev.issue(act, at)?;
/// let rd = DramCommand::Read { bank, row: 42, col: 0, auto_precharge: false, req: ReqId(1) };
/// let at = dev.earliest(&rd, at)?;
/// let done = dev.issue(rd, at)?.expect("reads complete");
/// assert!(done.at > at);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DramDevice {
    cfg: DramConfig,
    /// `starts[i]` is lane `i`'s first global channel (ascending).
    starts: Vec<u32>,
    /// `None` only while a lane is checked out to a worker thread via
    /// [`Self::take_lane`]; every public accessor expects lanes home.
    lanes: Vec<Option<Box<DevLane>>>,
    trace: Option<Vec<TimedCommand>>,
}

impl DramDevice {
    /// Builds an idle single-lane device for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`]; construct configs
    /// through [`DramConfig::new`] or validate custom ones first.
    pub fn new(cfg: DramConfig) -> Self {
        Self::with_lanes(cfg, 1)
    }

    /// Builds an idle device sharded for `engine_threads` workers (see
    /// `DramConfig::lane_plan`; the lane count is clamped, so any value
    /// is safe and `1` reproduces the serial layout).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn with_lanes(cfg: DramConfig, engine_threads: usize) -> Self {
        cfg.validate().expect("invalid DramConfig");
        let plan = cfg.lane_plan(engine_threads);
        let mut starts = Vec::with_capacity(plan.len());
        let mut lanes = Vec::with_capacity(plan.len());
        for &(base, width) in &plan {
            starts.push(base);
            lanes.push(Some(Box::new(DevLane::new(cfg.clone(), base, width))));
        }
        DramDevice { cfg, starts, lanes, trace: None }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Number of engine lanes the device is sharded into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane index owning global channel `ch` (clamped: out-of-range
    /// channels map to the last lane, whose range check then rejects).
    #[inline]
    fn lane_index_of(&self, ch: u32) -> usize {
        self.starts.partition_point(|&b| b <= ch).saturating_sub(1)
    }

    #[inline]
    fn lane_for(&self, ch: u32) -> &DevLane {
        self.lanes[self.lane_index_of(ch)].as_deref().expect("lane checked out")
    }

    /// Shared access to lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if the lane is currently checked out to a worker.
    pub fn lane(&self, i: usize) -> &DevLane {
        self.lanes[i].as_deref().expect("lane checked out")
    }

    /// Removes lane `i` for a worker thread to own during a parallel tick.
    /// The caller must [`Self::put_lane`] it back before any other device
    /// method touches that lane's channels.
    ///
    /// # Panics
    ///
    /// Panics if the lane is already checked out.
    pub fn take_lane(&mut self, i: usize) -> Box<DevLane> {
        self.lanes[i].take().expect("lane already checked out")
    }

    /// Returns a lane taken with [`Self::take_lane`].
    pub fn put_lane(&mut self, i: usize, lane: Box<DevLane>) {
        debug_assert!(self.lanes[i].is_none(), "lane slot occupied");
        debug_assert_eq!(lane.base_channel(), self.starts[i]);
        self.lanes[i] = Some(lane);
    }

    /// Split-borrow for the serial tick path: every lane slot plus the
    /// trace sink, mutably, at once.
    pub fn lane_parts(&mut self) -> (&mut [Option<Box<DevLane>>], Option<&mut Vec<TimedCommand>>) {
        (&mut self.lanes, self.trace.as_mut())
    }

    /// Read access to one channel/grain (a copyable view over the owning
    /// lane's timing state).
    pub fn channel(&self, ch: u32) -> Channel<'_> {
        self.lane_for(ch).channel(ch)
    }

    /// Begins recording every accepted command (for the protocol checker).
    /// The engine forces serial ticking while tracing so the record stays
    /// in global chronological-then-channel order.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<TimedCommand> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Aggregated operation counters across all channels (O(lanes): each
    /// lane maintains a running total on every issue — this sits on the
    /// per-step progress-watchdog path, where re-summing 512 grains per
    /// step dominated wall time).
    pub fn total_counters(&self) -> ChannelCounters {
        let mut total = ChannelCounters::default();
        for lane in &self.lanes {
            let k = lane.as_deref().expect("lane checked out").totals();
            total.activates += k.activates;
            total.read_atoms += k.read_atoms;
            total.write_atoms += k.write_atoms;
            total.refreshes += k.refreshes;
            total.precharges += k.precharges;
        }
        total
    }

    /// Per-channel counters.
    pub fn channel_counters(&self, ch: u32) -> &ChannelCounters {
        self.lane_for(ch).channel_counters(ch)
    }

    /// The device-wide per-bank activate heatmap, channel-major
    /// (lane slices concatenated in base-channel order).
    pub fn bank_activates_heatmap(&self) -> Vec<u64> {
        let mut flat = Vec::with_capacity(self.cfg.channels * self.cfg.banks_per_channel);
        for lane in &self.lanes {
            flat.extend_from_slice(
                lane.as_deref().expect("lane checked out").bank_activates_flat(),
            );
        }
        flat
    }

    /// Zeroes every channel's operation counters (end-of-warmup).
    pub fn reset_counters(&mut self) {
        for lane in &mut self.lanes {
            lane.as_deref_mut().expect("lane checked out").reset_counters();
        }
    }

    /// Earliest time `cmd` may issue at or after `at`, combining bank,
    /// channel, and command-bus constraints.
    ///
    /// # Errors
    ///
    /// Structural [`ProtocolError`]s (wrong row open, subarray conflicts,
    /// out-of-range targets) that no amount of waiting fixes.
    pub fn earliest(&self, cmd: &DramCommand, at: Ns) -> Result<Ns, ProtocolError> {
        self.lane_for(cmd.channel()).earliest(cmd, at)
    }

    /// Issues `cmd` at `at`. Returns the data completion for reads/writes.
    ///
    /// # Errors
    ///
    /// Any protocol violation; the device state is unchanged on error.
    pub fn issue(&mut self, cmd: DramCommand, at: Ns) -> Result<Option<Completion>, ProtocolError> {
        let i = self.lane_index_of(cmd.channel());
        let lane = self.lanes[i].as_deref_mut().expect("lane checked out");
        lane.issue(cmd, at, self.trace.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::ReqId;
    use fgdram_model::cmd::BankRef;
    use fgdram_model::config::DramKind;

    fn dev(kind: DramKind) -> DramDevice {
        DramDevice::new(DramConfig::new(kind))
    }

    fn bank(ch: u32, b: u32) -> BankRef {
        BankRef { channel: ch, bank: b }
    }

    #[test]
    fn read_roundtrip_timing_hbm2() {
        let mut d = dev(DramKind::Hbm2);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 3, slice: 0 }, 0).unwrap();
        let rd =
            DramCommand::Read { bank: b, row: 3, col: 1, auto_precharge: false, req: ReqId(7) };
        let t = d.earliest(&rd, 0).unwrap();
        assert_eq!(t, 16); // tRCD
        let done = d.issue(rd, t).unwrap().unwrap();
        // Data: t + tCL + tBURST = 16 + 16 + 2.
        assert_eq!(done.at, 34);
        assert_eq!(done.req, ReqId(7));
    }

    #[test]
    fn fgdram_burst_is_16ns() {
        let mut d = dev(DramKind::Fgdram);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 3, slice: 0 }, 0).unwrap();
        let rd =
            DramCommand::Read { bank: b, row: 3, col: 0, auto_precharge: false, req: ReqId(1) };
        let t = d.earliest(&rd, 0).unwrap();
        let done = d.issue(rd, t).unwrap().unwrap();
        assert_eq!(done.at - (t + 16), 16); // tCL then 16 ns serial burst
    }

    #[test]
    fn shared_command_channel_arbitrates_eight_grains() {
        let mut d = dev(DramKind::Fgdram);
        // Grains 0..8 share command channel 0; activates occupy 4 ns each.
        let a0 = DramCommand::Activate { bank: bank(0, 0), row: 1, slice: 0 };
        let a1 = DramCommand::Activate { bank: bank(1, 0), row: 1, slice: 0 };
        let a8 = DramCommand::Activate { bank: bank(8, 0), row: 1, slice: 0 };
        d.issue(a0, 0).unwrap();
        // Same command channel: must wait for the 3 ns activate slot.
        let t1 = d.earliest(&a1, 0).unwrap();
        assert_eq!(t1, 3);
        // Grain 8 lives on command channel 1: free at 0.
        let t8 = d.earliest(&a8, 0).unwrap();
        assert_eq!(t8, 0);
        let err = d.issue(a1, 1).unwrap_err();
        assert_eq!(err.rule, Rule::CmdBusBusy);
    }

    #[test]
    fn row_and_column_buses_are_independent() {
        let mut d = dev(DramKind::Fgdram);
        let b0 = bank(0, 0);
        let b1 = bank(1, 0);
        d.issue(DramCommand::Activate { bank: b0, row: 1, slice: 0 }, 0).unwrap();
        d.issue(DramCommand::Activate { bank: b1, row: 1, slice: 0 }, 3).unwrap();
        // A read to grain 0 can issue at 16 (tRCD) even though the row bus
        // carried an activate at 3..6: separate buses.
        let rd =
            DramCommand::Read { bank: b0, row: 1, col: 0, auto_precharge: false, req: ReqId(1) };
        assert_eq!(d.earliest(&rd, 0).unwrap(), 16);
    }

    #[test]
    fn auto_precharge_closes_row() {
        let mut d = dev(DramKind::QbHbm);
        let b = bank(2, 1);
        d.issue(DramCommand::Activate { bank: b, row: 9, slice: 0 }, 0).unwrap();
        let rd = DramCommand::Read { bank: b, row: 9, col: 0, auto_precharge: true, req: ReqId(1) };
        let t = d.earliest(&rd, 0).unwrap();
        d.issue(rd, t).unwrap();
        assert!(!d.channel(2).bank(1).any_open());
        // Re-activating the same bank respects tRC/tRP via earliest().
        let act = DramCommand::Activate { bank: b, row: 10, slice: 0 };
        let t2 = d.earliest(&act, 0).unwrap();
        assert!(t2 >= 45.min(t + 4 + 16)); // tRC or tRTP+tRP path
    }

    #[test]
    fn precharge_all_requires_every_slot_ready() {
        let mut d = dev(DramKind::QbHbmSalpSc);
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 0, slice: 0 }, 0).unwrap();
        let pre = DramCommand::Precharge { bank: b, row: None, slice: 0 };
        let early = d.issue(pre, 5).unwrap_err();
        assert_eq!(early.rule, Rule::PreTooEarly);
        let t = d.earliest(&pre, 5).unwrap();
        d.issue(pre, t).unwrap();
        assert!(!d.channel(0).bank(0).any_open());
    }

    #[test]
    fn trace_records_accepted_commands_only() {
        let mut d = dev(DramKind::QbHbm);
        d.enable_trace();
        let b = bank(0, 0);
        d.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
        // Rejected: same bank still open.
        let _ = d.issue(DramCommand::Activate { bank: b, row: 2, slice: 0 }, 50);
        let trace = d.take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].at, 0);
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let mut d = dev(DramKind::QbHbm);
        let err =
            d.issue(DramCommand::Activate { bank: bank(999, 0), row: 0, slice: 0 }, 0).unwrap_err();
        assert_eq!(err.rule, Rule::OutOfRange);
        let err = d
            .issue(DramCommand::Activate { bank: bank(0, 0), row: 1 << 30, slice: 0 }, 0)
            .unwrap_err();
        assert_eq!(err.rule, Rule::OutOfRange);
    }

    #[test]
    fn counters_aggregate_across_channels() {
        let mut d = dev(DramKind::QbHbm);
        for ch in 0..4 {
            let b = bank(ch, 0);
            d.issue(DramCommand::Activate { bank: b, row: 1, slice: 0 }, 0).unwrap();
            let rd = DramCommand::Read {
                bank: b,
                row: 1,
                col: 0,
                auto_precharge: false,
                req: ReqId(ch as u64),
            };
            let t = d.earliest(&rd, 0).unwrap();
            d.issue(rd, t).unwrap();
        }
        let k = d.total_counters();
        assert_eq!(k.activates, 4);
        assert_eq!(k.read_atoms, 4);
    }

    /// Recomputes the per-channel sum the slow way and checks the O(1)
    /// running totals match after a mixed command sequence, rejected
    /// commands (which must not count), and a reset.
    #[test]
    fn running_totals_match_recomputed_sum() {
        let resum = |d: &DramDevice| {
            let mut total = ChannelCounters::default();
            for ch in 0..d.config().channels as u32 {
                let k = d.channel_counters(ch);
                total.activates += k.activates;
                total.read_atoms += k.read_atoms;
                total.write_atoms += k.write_atoms;
                total.refreshes += k.refreshes;
                total.precharges += k.precharges;
            }
            total
        };
        let check = |d: &DramDevice| {
            let (a, b) = (d.total_counters(), resum(d));
            assert_eq!(a.activates, b.activates);
            assert_eq!(a.read_atoms, b.read_atoms);
            assert_eq!(a.write_atoms, b.write_atoms);
            assert_eq!(a.refreshes, b.refreshes);
            assert_eq!(a.precharges, b.precharges);
        };
        let mut d = dev(DramKind::QbHbm);
        let mut now = 0;
        for ch in 0..4 {
            let b = bank(ch, ch % 2);
            let act = DramCommand::Activate { bank: b, row: ch, slice: 0 };
            now = d.earliest(&act, now).unwrap();
            d.issue(act, now).unwrap();
            // Auto-precharged write: counts a write atom and a precharge.
            let wr = DramCommand::Write {
                bank: b,
                row: ch,
                col: 0,
                auto_precharge: ch % 2 == 0,
                req: ReqId(ch as u64),
            };
            now = d.earliest(&wr, now).unwrap();
            d.issue(wr, now).unwrap();
            check(&d);
        }
        // A rejected command leaves the totals untouched.
        let bad = DramCommand::Activate { bank: bank(0, 0), row: 1 << 30, slice: 0 };
        assert!(d.issue(bad, now).is_err());
        check(&d);
        // Channel 0's only row was auto-precharged above, so it can refresh.
        let rf = DramCommand::Refresh { channel: 0 };
        let t = d.earliest(&rf, now + 200).unwrap();
        d.issue(rf, t).unwrap();
        check(&d);
        assert!(d.total_counters().refreshes >= 1);
        d.reset_counters();
        check(&d);
        assert_eq!(d.total_counters().activates, 0);
    }
}
