//! # fgdram-dram
//!
//! Cycle-accurate DRAM stack timing models for the FGDRAM (MICRO 2017)
//! reproduction: HBM2, the quad-bandwidth QB-HBM baseline, QB-HBM enhanced
//! with SALP + subchannels, and the paper's grain-based FGDRAM.
//!
//! The crate models banks (with per-subarray and per-slice row slots),
//! channels/grains (bank groups, data-bus occupancy and turnaround, tRRD,
//! tFAW, refresh), and the stack's split row/column command buses — eight
//! grains per command channel for FGDRAM. All timing state lives in the
//! struct-of-arrays [`state::DeviceState`]; [`Channel`] and its banks are
//! copyable views over it. An independent [`checker::ProtocolChecker`]
//! replays recorded command traces against the same rules, so scheduler
//! bugs cannot hide inside the device model, and [`reference`] keeps the
//! original object-model core as an executable specification for the
//! differential test suite.
//!
//! ## Examples
//!
//! ```
//! use fgdram_dram::DramDevice;
//! use fgdram_model::addr::ReqId;
//! use fgdram_model::cmd::{BankRef, DramCommand};
//! use fgdram_model::config::{DramConfig, DramKind};
//!
//! let mut dev = DramDevice::new(DramConfig::new(DramKind::QbHbm));
//! let bank = BankRef { channel: 5, bank: 2 };
//! dev.issue(DramCommand::Activate { bank, row: 7, slice: 0 }, 0)?;
//! let rd = DramCommand::Read { bank, row: 7, col: 3, auto_precharge: true, req: ReqId(0) };
//! let at = dev.earliest(&rd, 0)?;
//! let done = dev.issue(rd, at)?.expect("read completes");
//! assert_eq!(done.at, at + 16 + 2); // tCL + tBURST
//! # Ok::<(), fgdram_dram::ProtocolError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod checker;
pub mod device;
pub mod error;
pub mod faw;
pub mod reference;
pub mod state;
mod telemetry;

pub use channel::{Channel, ChannelCounters, ColOutcome, Reject};
pub use checker::ProtocolChecker;
pub use device::{DevLane, DramDevice, LaneDevice};
pub use error::{ProtocolError, Rule, ViolationReport};
pub use state::{DeviceState, OpenRow};
