//! Rolling activation window (tFAW generalised to N activates).

use fgdram_model::units::Ns;

/// Enforces "at most `max_acts` activates in any `window` ns" with a ring
/// buffer of recent activate times.
///
/// The paper's Table 2 allows 8 activates per 12 ns window for HBM2/QB-HBM
/// and 32 for FGDRAM/subchannel parts (power delivery scales with activated
/// bytes, Section 3.3).
#[derive(Debug, Clone)]
pub struct ActWindow {
    times: Vec<Ns>,
    head: usize,
    filled: usize,
    window: Ns,
    enabled: bool,
}

impl ActWindow {
    /// Window allowing `max_acts` activates per `window` ns.
    /// `max_acts == 0` or `window == 0` disables the constraint.
    pub fn new(max_acts: u32, window: Ns) -> Self {
        ActWindow {
            times: vec![0; max_acts.max(1) as usize],
            head: 0,
            filled: 0,
            window,
            enabled: max_acts > 0 && window > 0,
        }
    }

    /// Earliest time at or after `at` an activate may issue.
    pub fn earliest(&self, at: Ns) -> Ns {
        if !self.enabled || self.filled < self.times.len() {
            return at;
        }
        // The oldest of the last `max_acts` activates must have left the
        // window before the next one may enter.
        at.max(self.times[self.head] + self.window)
    }

    /// Number of activate slots still free at `at`: `max_acts` minus the
    /// recorded activates whose window has not yet expired. A disabled
    /// window always reports all slots free. This is the channel's
    /// instantaneous tFAW headroom — how far the activate rate sits below
    /// the power-delivery ceiling.
    pub fn free_slots(&self, at: Ns) -> u32 {
        if !self.enabled {
            return self.times.len() as u32;
        }
        let in_window =
            self.times.iter().take(self.filled).filter(|&&t| t + self.window > at).count();
        (self.times.len() - in_window) as u32
    }

    /// Records an activate at `at`.
    ///
    /// Callers must only record times accepted by [`Self::earliest`];
    /// recording is not validated here.
    pub fn record(&mut self, at: Ns) {
        if !self.enabled {
            return;
        }
        self.times[self.head] = at;
        self.head = (self.head + 1) % self.times.len();
        self.filled = (self.filled + 1).min(self.times.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_up_to_max_in_window() {
        let mut w = ActWindow::new(4, 12);
        for i in 0..4 {
            assert_eq!(w.earliest(i), i);
            w.record(i);
        }
        // 5th activate must wait for the 1st to leave the window.
        assert_eq!(w.earliest(4), 12);
    }

    #[test]
    fn spaced_activates_never_blocked() {
        let mut w = ActWindow::new(2, 10);
        let mut t = 0;
        for _ in 0..20 {
            assert_eq!(w.earliest(t), t);
            w.record(t);
            t += 6;
        }
    }

    #[test]
    fn disabled_window_passes_everything() {
        let mut w = ActWindow::new(0, 12);
        for i in 0..100 {
            assert_eq!(w.earliest(i), i);
            w.record(i);
        }
    }

    #[test]
    fn free_slots_tracks_window_occupancy() {
        let mut w = ActWindow::new(4, 12);
        assert_eq!(w.free_slots(0), 4);
        w.record(0);
        w.record(1);
        assert_eq!(w.free_slots(1), 2);
        // The t=0 activate leaves the window at t=12.
        assert_eq!(w.free_slots(12), 3);
        assert_eq!(w.free_slots(13), 4);
        // Disabled windows always report full headroom.
        let mut d = ActWindow::new(0, 12);
        d.record(5);
        assert_eq!(d.free_slots(5), 1);
    }

    #[test]
    fn table2_hbm2_rate() {
        // 8 activates per 12 ns window: a 9th back-to-back activate slips
        // to t0 + 12.
        let mut w = ActWindow::new(8, 12);
        for i in 0..8 {
            w.record(i);
        }
        assert_eq!(w.earliest(8), 12);
        w.record(12);
        // Next constrained by the activate at t=1.
        assert_eq!(w.earliest(12), 13);
    }
}
