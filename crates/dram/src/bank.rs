//! Per-bank (per-pseudobank) row-buffer state machine.
//!
//! One [`Bank`] owns a set of *row slots*. Baseline HBM2/QB-HBM banks have a
//! single slot (one open row). With SALP every subarray gets its own slot,
//! and with subchannels every (subarray, slice) pair does — each slot keeps
//! its own tRC/tRAS/tRP/tRCD bookkeeping, which is exactly the
//! semi-independence those techniques buy.

use fgdram_model::config::{DramConfig, TimingParams};
use fgdram_model::units::Ns;

use crate::error::Rule;

/// An activated row resident in sense amplifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRow {
    /// The open row index (bank-relative).
    pub row: u32,
    /// Subchannel slice that was activated.
    pub slice: u32,
    /// First column command allowed (activate + tRCD).
    pub ready_at: Ns,
    /// Earliest legal precharge (tRAS, then pushed by tRTP/tWR).
    pub earliest_pre: Ns,
    /// When the activate issued (for tRC accounting of interest).
    pub act_at: Ns,
}

/// Row-buffer and row-timing state for one bank.
#[derive(Debug, Clone)]
pub struct Bank {
    open: Vec<Option<OpenRow>>,
    next_act: Vec<Ns>,
    last_act: Option<Ns>,
    open_count: usize,
    salp: bool,
    slices: u32,
    rows_per_subarray: u32,
    timing: TimingParams,
}

impl Bank {
    /// New all-closed bank for `cfg`.
    pub fn new(cfg: &DramConfig) -> Self {
        let slices = cfg.slices_per_row() as u32;
        let domains = if cfg.salp { cfg.subarrays_per_bank } else { 1 } * slices as usize;
        Bank {
            open: vec![None; domains],
            next_act: vec![0; domains],
            last_act: None,
            open_count: 0,
            salp: cfg.salp,
            slices,
            rows_per_subarray: cfg.rows_per_subarray() as u32,
            timing: cfg.timing,
        }
    }

    #[inline]
    fn slot(&self, row: u32, slice: u32) -> usize {
        let sub = if self.salp { row / self.rows_per_subarray } else { 0 };
        (sub * self.slices + slice) as usize
    }

    /// The open row covering (`row`, `slice`), if any row is open there.
    pub fn open_at(&self, row: u32, slice: u32) -> Option<&OpenRow> {
        self.open[self.slot(row, slice)].as_ref()
    }

    /// True when any slot holds an open row.
    pub fn any_open(&self) -> bool {
        self.open_count > 0
    }

    /// Iterates currently open rows.
    pub fn open_rows(&self) -> impl Iterator<Item = &OpenRow> + '_ {
        self.open.iter().filter_map(|s| s.as_ref())
    }

    /// Earliest time an activate of (`row`, `slice`) may issue at or after
    /// `at`, considering this bank's state only (channel adds tRRD/tFAW).
    ///
    /// # Errors
    ///
    /// [`Rule::ActOnOpenRow`] when the slot still holds a row (precharge
    /// first), [`Rule::AdjacentSubarray`] when SALP's shared sense-amp
    /// stripe blocks the neighbouring subarray.
    pub fn earliest_act(&self, row: u32, slice: u32, at: Ns) -> Result<Ns, Rule> {
        let slot = self.slot(row, slice);
        if self.open[slot].is_some() {
            return Err(Rule::ActOnOpenRow);
        }
        if self.salp && self.adjacent_open(row) {
            return Err(Rule::AdjacentSubarray);
        }
        // Shared row decoder: consecutive activates to the same bank keep
        // at least tRRD between them even across subarrays.
        let decoder_free = self.last_act.map_or(0, |t| t + self.timing.t_rrd);
        Ok(at.max(self.next_act[slot]).max(decoder_free))
    }

    fn adjacent_open(&self, row: u32) -> bool {
        let sub = row / self.rows_per_subarray;
        let subarrays = self.open.len() as u32 / self.slices;
        let check = |s: u32| -> bool {
            (0..self.slices).any(|sl| self.open[(s * self.slices + sl) as usize].is_some())
        };
        (sub > 0 && check(sub - 1)) || (sub + 1 < subarrays && check(sub + 1))
    }

    /// Records an accepted activate.
    pub fn activate(&mut self, row: u32, slice: u32, at: Ns) {
        let slot = self.slot(row, slice);
        debug_assert!(self.open[slot].is_none());
        self.open[slot] = Some(OpenRow {
            row,
            slice,
            ready_at: at + self.timing.t_rcd,
            earliest_pre: at + self.timing.t_ras,
            act_at: at,
        });
        self.next_act[slot] = at + self.timing.t_rc;
        self.last_act = Some(at);
        self.open_count += 1;
    }

    /// Earliest column command to (`row`, `slice`) (tRCD gate only).
    ///
    /// # Errors
    ///
    /// [`Rule::RowNotOpen`] when the slot is closed or holds another row.
    pub fn col_ready(&self, row: u32, slice: u32) -> Result<Ns, Rule> {
        match self.open_at(row, slice) {
            Some(o) if o.row == row => Ok(o.ready_at),
            _ => Err(Rule::RowNotOpen),
        }
    }

    /// Pushes the precharge fence after a read issued at `col_at`.
    pub fn note_read(&mut self, row: u32, slice: u32, col_at: Ns) {
        let t_rtp = self.timing.t_rtp;
        let slot = self.slot(row, slice);
        if let Some(o) = self.open[slot].as_mut() {
            o.earliest_pre = o.earliest_pre.max(col_at + t_rtp);
        }
    }

    /// Pushes the precharge fence after a write whose data finishes at
    /// `data_end` (write recovery).
    pub fn note_write(&mut self, row: u32, slice: u32, data_end: Ns) {
        let t_wr = self.timing.t_wr;
        let slot = self.slot(row, slice);
        if let Some(o) = self.open[slot].as_mut() {
            o.earliest_pre = o.earliest_pre.max(data_end + t_wr);
        }
    }

    /// Earliest precharge of the slot holding (`row`, `slice`).
    ///
    /// # Errors
    ///
    /// [`Rule::PreNothingOpen`] when nothing is open there.
    pub fn earliest_pre(&self, row: u32, slice: u32) -> Result<Ns, Rule> {
        self.open_at(row, slice).map(|o| o.earliest_pre).ok_or(Rule::PreNothingOpen)
    }

    /// Records an accepted precharge of the slot at `at`.
    pub fn precharge(&mut self, row: u32, slice: u32, at: Ns) {
        let slot = self.slot(row, slice);
        if self.open[slot].take().is_some() {
            self.open_count -= 1;
        }
        self.next_act[slot] = self.next_act[slot].max(at + self.timing.t_rp);
    }

    /// Blocks every slot until `until` (used for refresh).
    pub fn block_until(&mut self, until: Ns) {
        for t in &mut self.next_act {
            *t = (*t).max(until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::config::DramKind;

    fn bank(kind: DramKind) -> Bank {
        Bank::new(&DramConfig::new(kind))
    }

    #[test]
    fn baseline_bank_single_open_row() {
        let mut b = bank(DramKind::QbHbm);
        assert_eq!(b.earliest_act(100, 0, 5).unwrap(), 5);
        b.activate(100, 0, 5);
        assert!(b.any_open());
        // Row 200 shares the single slot: blocked until precharge.
        assert_eq!(b.earliest_act(200, 0, 10), Err(Rule::ActOnOpenRow));
        // Column gated by tRCD.
        assert_eq!(b.col_ready(100, 0).unwrap(), 5 + 16);
        assert_eq!(b.col_ready(200, 0), Err(Rule::RowNotOpen));
        // Precharge gated by tRAS.
        assert_eq!(b.earliest_pre(100, 0).unwrap(), 5 + 29);
        b.precharge(100, 0, 40);
        assert!(!b.any_open());
        // Next activate gated by tRP after precharge and tRC after act.
        let e = b.earliest_act(200, 0, 0).unwrap();
        assert_eq!(e, 56); // max(pre 40 + tRP 16, act 5 + tRC 45)
    }

    #[test]
    fn read_and_write_push_precharge_fence() {
        let mut b = bank(DramKind::QbHbm);
        b.activate(7, 0, 0);
        b.note_read(7, 0, 100);
        assert_eq!(b.earliest_pre(7, 0).unwrap(), 104); // +tRTP
        b.note_write(7, 0, 200);
        assert_eq!(b.earliest_pre(7, 0).unwrap(), 216); // +tWR
    }

    #[test]
    fn salp_subarrays_independent_but_adjacent_blocked() {
        let mut b = bank(DramKind::QbHbmSalpSc);
        // Rows 0 and 5*512 are in subarrays 0 and 5: both can open.
        b.activate(0, 0, 0);
        let e = b.earliest_act(5 * 512, 0, 0).unwrap();
        assert_eq!(e, 2); // decoder tRRD gap only, no tRC serialisation
        b.activate(5 * 512, 0, 2);
        assert_eq!(b.open_rows().count(), 2);
        // Subarray 1 is adjacent to open subarray 0.
        assert_eq!(b.earliest_act(512, 0, 50), Err(Rule::AdjacentSubarray));
        // Subarray 3 is fine (neighbours 2 and 4 closed).
        assert!(b.earliest_act(3 * 512, 0, 50).is_ok());
    }

    #[test]
    fn subchannel_slices_activate_independently() {
        let mut b = bank(DramKind::QbHbmSalpSc);
        b.activate(0, 0, 0);
        // Same subarray, same row, different slice: its own slot.
        assert!(b.earliest_act(0, 1, 10).is_ok());
        b.activate(0, 1, 10);
        assert_eq!(b.col_ready(0, 1).unwrap(), 26);
        // Same slice again: occupied.
        assert_eq!(b.earliest_act(0, 1, 20), Err(Rule::ActOnOpenRow));
    }

    #[test]
    fn block_until_delays_all_slots() {
        let mut b = bank(DramKind::QbHbm);
        b.block_until(500);
        assert_eq!(b.earliest_act(0, 0, 0).unwrap(), 500);
    }

    #[test]
    fn fgdram_pseudobank_is_single_slot() {
        let mut b = bank(DramKind::Fgdram);
        b.activate(9, 0, 0);
        assert_eq!(b.earliest_act(10, 0, 0), Err(Rule::ActOnOpenRow));
        let open: Vec<_> = b.open_rows().collect();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].row, 9);
    }
}
