//! Independent protocol checker.
//!
//! [`ProtocolChecker`] replays a recorded command trace and asserts every
//! timing and state rule from scratch — it shares the [`TimingParams`] with
//! the device model but none of its code paths, so a scheduler bug and a
//! device-model bug would have to agree to go unnoticed. Property tests
//! drive randomized schedulers through the device and feed the resulting
//! traces here.

use std::collections::HashMap;

use fgdram_model::cmd::{DramCommand, TimedCommand};
use fgdram_model::config::{DramConfig, TimingParams};
use fgdram_model::units::Ns;

use crate::error::{ProtocolError, Rule, ViolationReport, MAX_REPORTED_VIOLATIONS};

#[derive(Debug, Clone, Copy)]
struct SlotState {
    row: u32,
    act_at: Ns,
    last_read_at: Option<Ns>,
    last_write_end: Option<Ns>,
}

#[derive(Debug, Default)]
struct BankHistory {
    /// Open slots keyed by (domain, slice).
    open: HashMap<(u32, u32), SlotState>,
    /// Per-(domain, slice): earliest next activate (tRC / tRP fences).
    next_act: HashMap<(u32, u32), Ns>,
    last_act: Option<Ns>,
}

#[derive(Debug, Default)]
struct ChannelHistory {
    last_act: Option<Ns>,
    recent_acts: Vec<Ns>,
    last_col: Option<Ns>,
    last_col_per_group: HashMap<u32, Ns>,
    last_data_end: Ns,
    last_write_end: Option<(Ns, u32)>,
    refresh_until: Ns,
}

/// Replays command traces and reports the first violation.
#[derive(Debug)]
pub struct ProtocolChecker {
    cfg: DramConfig,
    timing: TimingParams,
    banks: HashMap<(u32, u32), BankHistory>,
    channels: HashMap<u32, ChannelHistory>,
    cmd_row_bus: HashMap<u32, Ns>,
    cmd_col_bus: HashMap<u32, Ns>,
    last_at: Ns,
}

impl ProtocolChecker {
    /// New checker for `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        ProtocolChecker {
            timing: cfg.timing,
            cfg,
            banks: HashMap::new(),
            channels: HashMap::new(),
            cmd_row_bus: HashMap::new(),
            cmd_col_bus: HashMap::new(),
            last_at: 0,
        }
    }

    /// Verifies an entire trace.
    ///
    /// # Errors
    ///
    /// The first [`ProtocolError`] encountered, if any.
    pub fn check_trace(&mut self, trace: &[TimedCommand]) -> Result<(), ProtocolError> {
        for tc in trace {
            self.check(tc)?;
        }
        Ok(())
    }

    /// Audits an entire trace, collecting every violation instead of
    /// stopping at the first. Checking continues past a violation with the
    /// offending command left unrecorded, so one bad command does not
    /// cascade into spurious reports against the rest of the trace.
    pub fn report_trace(&mut self, trace: &[TimedCommand]) -> ViolationReport {
        let mut report = ViolationReport { commands_checked: trace.len(), ..Default::default() };
        for tc in trace {
            if let Err(e) = self.check(tc) {
                if report.violations.len() < MAX_REPORTED_VIOLATIONS {
                    report.violations.push(e);
                } else {
                    report.truncated = true;
                }
            }
        }
        report
    }

    fn domain(&self, row: u32) -> u32 {
        if self.cfg.salp {
            row / self.cfg.rows_per_subarray() as u32
        } else {
            0
        }
    }

    fn subarray(&self, row: u32) -> u32 {
        row / self.cfg.rows_per_subarray() as u32
    }

    fn err(tc: &TimedCommand, rule: Rule) -> ProtocolError {
        ProtocolError { cmd: tc.cmd, at: tc.at, rule, earliest: None }
    }

    /// Verifies one command against accumulated history, then records it.
    ///
    /// # Errors
    ///
    /// The violated rule, wrapped with the command and its issue time.
    pub fn check(&mut self, tc: &TimedCommand) -> Result<(), ProtocolError> {
        let at = tc.at;
        if at < self.last_at {
            // Traces must be time-ordered; an out-of-order trace is a
            // harness bug, surfaced as a command-bus violation.
            return Err(Self::err(tc, Rule::CmdBusBusy));
        }
        self.last_at = at;
        self.check_range(tc)?;
        self.check_cmd_bus(tc)?;
        match tc.cmd {
            DramCommand::Activate { bank, row, slice } => {
                self.check_act(tc, bank.channel, bank.bank, row, slice)
            }
            DramCommand::Read { bank, row, col, auto_precharge, .. } => {
                self.check_col(tc, bank.channel, bank.bank, row, col, false, auto_precharge)
            }
            DramCommand::Write { bank, row, col, auto_precharge, .. } => {
                self.check_col(tc, bank.channel, bank.bank, row, col, true, auto_precharge)
            }
            DramCommand::Precharge { bank, row, slice } => {
                self.check_pre(tc, bank.channel, bank.bank, row, slice)
            }
            DramCommand::Refresh { channel } => self.check_refresh(tc, channel),
        }
    }

    /// Geometry guard: every command must target a channel/bank/row/column
    /// that exists in the configured part.
    fn check_range(&self, tc: &TimedCommand) -> Result<(), ProtocolError> {
        let cols = self.cfg.atoms_per_row() as u32;
        let in_bank = |b: fgdram_model::cmd::BankRef| {
            (b.channel as usize) < self.cfg.channels
                && (b.bank as usize) < self.cfg.banks_per_channel
        };
        let ok = match tc.cmd {
            DramCommand::Activate { bank, row, .. } => {
                in_bank(bank) && (row as usize) < self.cfg.rows_per_bank
            }
            DramCommand::Read { bank, row, col, .. }
            | DramCommand::Write { bank, row, col, .. } => {
                in_bank(bank) && (row as usize) < self.cfg.rows_per_bank && col < cols
            }
            DramCommand::Precharge { bank, row, .. } => {
                in_bank(bank) && row.is_none_or(|r| (r as usize) < self.cfg.rows_per_bank)
            }
            DramCommand::Refresh { channel } => (channel as usize) < self.cfg.channels,
        };
        if ok {
            Ok(())
        } else {
            Err(Self::err(tc, Rule::OutOfRange))
        }
    }

    fn check_cmd_bus(&mut self, tc: &TimedCommand) -> Result<(), ProtocolError> {
        let bus = tc.cmd.channel() / self.cfg.channels_per_cmd_channel as u32;
        let (map, occupancy) = if tc.cmd.is_row_cmd() {
            let occ = if matches!(tc.cmd, DramCommand::Activate { .. }) {
                self.timing.t_cmd_row
            } else {
                self.timing.t_cmd_col
            };
            (&mut self.cmd_row_bus, occ)
        } else {
            (&mut self.cmd_col_bus, self.timing.t_cmd_col)
        };
        let free = map.get(&bus).copied().unwrap_or(0);
        if tc.at < free {
            return Err(Self::err(tc, Rule::CmdBusBusy));
        }
        map.insert(bus, tc.at + occupancy);
        Ok(())
    }

    fn check_act(
        &mut self,
        tc: &TimedCommand,
        channel: u32,
        bank: u32,
        row: u32,
        slice: u32,
    ) -> Result<(), ProtocolError> {
        let at = tc.at;
        let dom = self.domain(row);
        let sub = self.subarray(row);
        let t = self.timing;
        let salp = self.cfg.salp;
        let subarrays = self.cfg.subarrays_per_bank as u32;
        let rows_per_sub = self.cfg.rows_per_subarray() as u32;
        let grain_guard = self.cfg.is_grain_based();

        // Grain rule: the sibling pseudobanks may not hold a different row
        // of the same subarray open.
        if grain_guard {
            for b in 0..self.cfg.banks_per_channel as u32 {
                if b == bank {
                    continue;
                }
                if let Some(h) = self.banks.get(&(channel, b)) {
                    for s in h.open.values() {
                        if s.row != row && s.row / rows_per_sub == sub {
                            return Err(Self::err(tc, Rule::SubarrayConflict));
                        }
                    }
                }
            }
        }

        let ch = self.channels.entry(channel).or_default();
        if at < ch.refresh_until {
            return Err(Self::err(tc, Rule::RefreshConflict));
        }
        if let Some(last) = ch.last_act {
            if at < last + t.t_rrd {
                return Err(Self::err(tc, Rule::ActRrd));
            }
        }
        // tFAW over the channel's recent activates.
        ch.recent_acts.retain(|&a| a + t.t_faw > at);
        if t.acts_in_faw > 0 && ch.recent_acts.len() >= t.acts_in_faw as usize {
            return Err(Self::err(tc, Rule::ActFaw));
        }
        ch.recent_acts.push(at);
        ch.last_act = Some(at);

        let bh = self.banks.entry((channel, bank)).or_default();
        if bh.open.contains_key(&(dom, slice)) {
            return Err(Self::err(tc, Rule::ActOnOpenRow));
        }
        if salp {
            let adjacent = bh.open.keys().any(|&(d, _)| d + 1 == sub || d == sub + 1);
            let _ = subarrays;
            if adjacent {
                return Err(Self::err(tc, Rule::AdjacentSubarray));
            }
        }
        if let Some(&fence) = bh.next_act.get(&(dom, slice)) {
            if at < fence {
                return Err(Self::err(tc, Rule::ActTooEarly));
            }
        }
        if let Some(last) = bh.last_act {
            if at < last + t.t_rrd {
                return Err(Self::err(tc, Rule::ActRrd));
            }
        }
        bh.last_act = Some(at);
        bh.next_act.insert((dom, slice), at + t.t_rc);
        bh.open.insert(
            (dom, slice),
            SlotState { row, act_at: at, last_read_at: None, last_write_end: None },
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_col(
        &mut self,
        tc: &TimedCommand,
        channel: u32,
        bank: u32,
        row: u32,
        col: u32,
        is_write: bool,
        auto_precharge: bool,
    ) -> Result<(), ProtocolError> {
        let at = tc.at;
        let t = self.timing;
        let dom = self.domain(row);
        let slice = col / self.cfg.atoms_per_activation() as u32;
        let group = bank % self.cfg.bank_groups as u32;

        let ch = self.channels.entry(channel).or_default();
        if at < ch.refresh_until {
            return Err(Self::err(tc, Rule::RefreshConflict));
        }
        if let Some(last) = ch.last_col {
            if at < last + t.t_ccd_s {
                return Err(Self::err(tc, Rule::ColCcd));
            }
        }
        if let Some(&last) = ch.last_col_per_group.get(&group) {
            if at < last + t.t_ccd_l {
                return Err(Self::err(tc, Rule::ColCcd));
            }
        }
        if !is_write {
            if let Some((wend, wgroup)) = ch.last_write_end {
                let wtr = if wgroup == group { t.t_wtr_l } else { t.t_wtr_s };
                if at < wend + wtr {
                    return Err(Self::err(tc, Rule::DataBusConflict));
                }
            }
        }
        let data_start = at + if is_write { t.t_wl } else { t.t_cl };
        let data_end = data_start + t.t_burst;
        if data_start < ch.last_data_end {
            return Err(Self::err(tc, Rule::DataBusConflict));
        }
        ch.last_data_end = data_end;
        ch.last_col = Some(at);
        ch.last_col_per_group.insert(group, at);
        if is_write {
            ch.last_write_end = Some((data_end, group));
        }

        let bh = self.banks.entry((channel, bank)).or_default();
        let slot = bh.open.get_mut(&(dom, slice)).ok_or_else(|| Self::err(tc, Rule::RowNotOpen))?;
        if slot.row != row {
            return Err(Self::err(tc, Rule::RowNotOpen));
        }
        if at < slot.act_at + t.t_rcd {
            return Err(Self::err(tc, Rule::ColBeforeRcd));
        }
        if is_write {
            slot.last_write_end = Some(data_end);
        } else {
            slot.last_read_at = Some(at);
        }
        if auto_precharge {
            let slot = *slot;
            let pre_at = Self::pre_fence(&t, &slot);
            bh.open.remove(&(dom, slice));
            let fence = bh.next_act.entry((dom, slice)).or_insert(0);
            *fence = (*fence).max(pre_at + t.t_rp);
        }
        Ok(())
    }

    fn pre_fence(t: &TimingParams, slot: &SlotState) -> Ns {
        let mut fence = slot.act_at + t.t_ras;
        if let Some(r) = slot.last_read_at {
            fence = fence.max(r + t.t_rtp);
        }
        if let Some(w) = slot.last_write_end {
            fence = fence.max(w + t.t_wr);
        }
        fence
    }

    fn check_pre(
        &mut self,
        tc: &TimedCommand,
        channel: u32,
        bank: u32,
        row: Option<u32>,
        slice: u32,
    ) -> Result<(), ProtocolError> {
        let at = tc.at;
        let t = self.timing;
        if at < self.channels.entry(channel).or_default().refresh_until {
            return Err(Self::err(tc, Rule::RefreshConflict));
        }
        let bh = self.banks.entry((channel, bank)).or_default();
        let keys: Vec<(u32, u32)> = match row {
            Some(r) => {
                let dom = if self.cfg.salp { r / self.cfg.rows_per_subarray() as u32 } else { 0 };
                vec![(dom, slice)]
            }
            None => bh.open.keys().copied().collect(),
        };
        if keys.is_empty() || (row.is_some() && !bh.open.contains_key(&keys[0])) {
            return Err(Self::err(tc, Rule::PreNothingOpen));
        }
        for key in keys {
            let slot = *bh.open.get(&key).ok_or_else(|| Self::err(tc, Rule::PreNothingOpen))?;
            if let Some(r) = row {
                if slot.row != r {
                    return Err(Self::err(tc, Rule::PreNothingOpen));
                }
            }
            if at < Self::pre_fence(&t, &slot) {
                return Err(Self::err(tc, Rule::PreTooEarly));
            }
            bh.open.remove(&key);
            let fence = bh.next_act.entry(key).or_insert(0);
            *fence = (*fence).max(at + t.t_rp);
        }
        Ok(())
    }

    fn check_refresh(&mut self, tc: &TimedCommand, channel: u32) -> Result<(), ProtocolError> {
        let at = tc.at;
        for b in 0..self.cfg.banks_per_channel as u32 {
            if self.banks.get(&(channel, b)).is_some_and(|h| !h.open.is_empty()) {
                return Err(Self::err(tc, Rule::RefreshConflict));
            }
        }
        let ch = self.channels.entry(channel).or_default();
        if at < ch.refresh_until {
            return Err(Self::err(tc, Rule::RefreshConflict));
        }
        ch.refresh_until = at + self.timing.t_rfc;
        for b in 0..self.cfg.banks_per_channel as u32 {
            let bh = self.banks.entry((channel, b)).or_default();
            let keys: Vec<_> = bh.next_act.keys().copied().collect();
            for k in keys {
                let fence = bh.next_act.entry(k).or_insert(0);
                *fence = (*fence).max(at + self.timing.t_rfc);
            }
            // Fresh slots also respect the refresh fence via refresh_until.
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::ReqId;
    use fgdram_model::cmd::BankRef;
    use fgdram_model::config::DramKind;

    fn b(ch: u32, bank: u32) -> BankRef {
        BankRef { channel: ch, bank }
    }

    fn act(ch: u32, bank: u32, row: u32, at: Ns) -> TimedCommand {
        TimedCommand { at, cmd: DramCommand::Activate { bank: b(ch, bank), row, slice: 0 } }
    }

    fn rd(ch: u32, bank: u32, row: u32, col: u32, at: Ns) -> TimedCommand {
        TimedCommand {
            at,
            cmd: DramCommand::Read {
                bank: b(ch, bank),
                row,
                col,
                auto_precharge: false,
                req: ReqId(0),
            },
        }
    }

    fn pre(ch: u32, bank: u32, row: u32, at: Ns) -> TimedCommand {
        TimedCommand {
            at,
            cmd: DramCommand::Precharge { bank: b(ch, bank), row: Some(row), slice: 0 },
        }
    }

    fn checker(kind: DramKind) -> ProtocolChecker {
        ProtocolChecker::new(DramConfig::new(kind))
    }

    #[test]
    fn accepts_legal_sequence() {
        let mut c = checker(DramKind::QbHbm);
        c.check_trace(&[
            act(0, 0, 5, 0),
            rd(0, 0, 5, 0, 16),
            rd(0, 0, 5, 1, 20),
            pre(0, 0, 5, 29),
            act(0, 0, 6, 45),
        ])
        .unwrap();
    }

    #[test]
    fn rejects_read_before_trcd() {
        let mut c = checker(DramKind::QbHbm);
        let err = c.check_trace(&[act(0, 0, 5, 0), rd(0, 0, 5, 0, 10)]).unwrap_err();
        assert_eq!(err.rule, Rule::ColBeforeRcd);
    }

    #[test]
    fn rejects_read_of_wrong_row() {
        let mut c = checker(DramKind::QbHbm);
        let err = c.check_trace(&[act(0, 0, 5, 0), rd(0, 0, 9, 0, 16)]).unwrap_err();
        assert_eq!(err.rule, Rule::RowNotOpen);
    }

    #[test]
    fn rejects_act_violating_trc() {
        let mut c = checker(DramKind::QbHbm);
        let err =
            c.check_trace(&[act(0, 0, 5, 0), pre(0, 0, 5, 29), act(0, 0, 6, 44)]).unwrap_err();
        assert_eq!(err.rule, Rule::ActTooEarly);
    }

    #[test]
    fn rejects_ccd_violations() {
        let mut c = checker(DramKind::QbHbm);
        // Same bank (group): tCCDL = 4.
        let err =
            c.check_trace(&[act(0, 0, 5, 0), rd(0, 0, 5, 0, 16), rd(0, 0, 5, 1, 18)]).unwrap_err();
        assert_eq!(err.rule, Rule::ColCcd);
    }

    #[test]
    fn rejects_precharge_before_tras() {
        let mut c = checker(DramKind::QbHbm);
        let err = c.check_trace(&[act(0, 0, 5, 0), pre(0, 0, 5, 20)]).unwrap_err();
        assert_eq!(err.rule, Rule::PreTooEarly);
    }

    #[test]
    fn rejects_activates_packed_closer_than_trrd() {
        // tRRD equals the row-bus occupancy (2 ns) for QB-HBM, so the bus
        // check fires first; either way a 1 ns gap must be rejected and a
        // 2 ns gap accepted.
        let mut c = checker(DramKind::QbHbm);
        let err = c.check_trace(&[act(0, 0, 5, 0), act(0, 1, 5, 1)]).unwrap_err();
        assert!(matches!(err.rule, Rule::ActRrd | Rule::CmdBusBusy), "{:?}", err.rule);
        let mut c = checker(DramKind::QbHbm);
        c.check_trace(&[act(0, 0, 5, 0), act(0, 1, 5, 2)]).unwrap();
    }

    #[test]
    fn rejects_grain_subarray_conflict() {
        let mut c = checker(DramKind::Fgdram);
        // Rows 3 and 7 share subarray 0 across the two pseudobanks.
        let err = c.check_trace(&[act(0, 0, 3, 0), act(0, 1, 7, 4)]).unwrap_err();
        assert_eq!(err.rule, Rule::SubarrayConflict);
        // Same row in both pseudobanks is legal.
        let mut c = checker(DramKind::Fgdram);
        c.check_trace(&[act(0, 0, 3, 0), act(0, 1, 3, 4)]).unwrap();
    }

    #[test]
    fn rejects_shared_cmd_bus_overlap() {
        let mut c = checker(DramKind::Fgdram);
        // Grains 0 and 1 share a command channel; activates occupy 4 ns.
        let err = c.check_trace(&[act(0, 0, 3, 0), act(1, 0, 900, 2)]).unwrap_err();
        assert_eq!(err.rule, Rule::CmdBusBusy);
    }

    #[test]
    fn rejects_out_of_order_trace() {
        let mut c = checker(DramKind::QbHbm);
        let err = c.check_trace(&[act(0, 0, 5, 10), act(0, 1, 5, 0)]).unwrap_err();
        assert_eq!(err.rule, Rule::CmdBusBusy);
    }

    #[test]
    fn auto_precharge_enforces_trp_on_reactivation() {
        let mut c = checker(DramKind::QbHbm);
        let rd_ap = TimedCommand {
            at: 16,
            cmd: DramCommand::Read {
                bank: b(0, 0),
                row: 5,
                col: 0,
                auto_precharge: true,
                req: ReqId(0),
            },
        };
        // Auto-pre at max(tRAS=29, 16+tRTP=20) = 29; +tRP = 45; also tRC = 45.
        let err = c.check_trace(&[act(0, 0, 5, 0), rd_ap, act(0, 0, 6, 44)]).unwrap_err();
        assert_eq!(err.rule, Rule::ActTooEarly);
        let mut c = checker(DramKind::QbHbm);
        let rd_ap = TimedCommand {
            at: 16,
            cmd: DramCommand::Read {
                bank: b(0, 0),
                row: 5,
                col: 0,
                auto_precharge: true,
                req: ReqId(0),
            },
        };
        c.check_trace(&[act(0, 0, 5, 0), rd_ap, act(0, 0, 6, 45)]).unwrap();
    }

    #[test]
    fn refresh_requires_closed_banks_and_blocks() {
        let mut c = checker(DramKind::QbHbm);
        let refresh = TimedCommand { at: 50, cmd: DramCommand::Refresh { channel: 0 } };
        let err = c.check_trace(&[act(0, 0, 5, 0), refresh]).unwrap_err();
        assert_eq!(err.rule, Rule::RefreshConflict);

        let mut c = checker(DramKind::QbHbm);
        let refresh = TimedCommand { at: 29, cmd: DramCommand::Refresh { channel: 0 } };
        let too_soon = act(0, 0, 5, 100);
        let err = c.check_trace(&[refresh, too_soon]).unwrap_err();
        assert_eq!(err.rule, Rule::RefreshConflict);
    }
}

#[cfg(test)]
mod rule_coverage {
    use super::*;
    use fgdram_model::addr::ReqId;
    use fgdram_model::cmd::BankRef;
    use fgdram_model::config::DramKind;

    fn b(ch: u32, bank: u32) -> BankRef {
        BankRef { channel: ch, bank }
    }

    fn act(ch: u32, bank: u32, row: u32, at: Ns) -> TimedCommand {
        TimedCommand { at, cmd: DramCommand::Activate { bank: b(ch, bank), row, slice: 0 } }
    }

    fn rd(ch: u32, bank: u32, row: u32, col: u32, at: Ns) -> TimedCommand {
        TimedCommand {
            at,
            cmd: DramCommand::Read {
                bank: b(ch, bank),
                row,
                col,
                auto_precharge: false,
                req: ReqId(0),
            },
        }
    }

    fn wr(ch: u32, bank: u32, row: u32, col: u32, at: Ns) -> TimedCommand {
        TimedCommand {
            at,
            cmd: DramCommand::Write {
                bank: b(ch, bank),
                row,
                col,
                auto_precharge: false,
                req: ReqId(0),
            },
        }
    }

    /// Write-to-read turnaround: a same-group read must wait tWTRl after
    /// the write's data ends (wr @16 -> data ends 16+4+2=22, +tWTRl 8 = 30).
    #[test]
    fn catches_wtr_violation() {
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbm));
        let err =
            c.check_trace(&[act(0, 0, 5, 0), wr(0, 0, 5, 0, 16), rd(0, 0, 5, 1, 26)]).unwrap_err();
        assert_eq!(err.rule, Rule::DataBusConflict);
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbm));
        c.check_trace(&[act(0, 0, 5, 0), wr(0, 0, 5, 0, 16), rd(0, 0, 5, 1, 30)]).unwrap();
    }

    /// Data-bus overlap: a write's data (WL=4) landing inside an earlier
    /// read's burst window must be rejected even when tCCD passes.
    #[test]
    fn catches_data_bus_overlap() {
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbm));
        // rd @16: data 32..34. wr @22 (tCCDL ok, 16+4=20 <= 22): data 26..28
        // < 34? 26 < 34 but write data would start before the read's end?
        // Write data 26..28 actually *precedes* the read data; the in-order
        // bus rule (data_start >= last_data_end) catches it.
        let err =
            c.check_trace(&[act(0, 0, 5, 0), rd(0, 0, 5, 0, 16), wr(0, 0, 5, 1, 22)]).unwrap_err();
        assert_eq!(err.rule, Rule::DataBusConflict);
    }

    /// Columns into a subchannel slice that was never activated must be
    /// rejected even when another slice of the same row is open.
    #[test]
    fn catches_wrong_slice_column() {
        let cfg = DramConfig::new(DramKind::QbHbmSalpSc);
        let mut c = ProtocolChecker::new(cfg);
        let a0 =
            TimedCommand { at: 0, cmd: DramCommand::Activate { bank: b(0, 0), row: 7, slice: 0 } };
        // Column 8 lives in slice 1 (8 atoms per 256 B activation).
        let err = c.check_trace(&[a0, rd(0, 0, 7, 8, 16)]).unwrap_err();
        assert_eq!(err.rule, Rule::RowNotOpen);
        // Column 3 (slice 0) is fine.
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbmSalpSc));
        c.check_trace(&[a0, rd(0, 0, 7, 3, 16)]).unwrap();
    }

    /// SALP adjacency: opening a row in the subarray next to an open one
    /// must be rejected.
    #[test]
    fn catches_adjacent_subarray() {
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbmSalpSc));
        // Rows 100 (subarray 0) and 600 (subarray 1) are adjacent.
        let err = c.check_trace(&[act(0, 0, 100, 0), act(0, 0, 600, 4)]).unwrap_err();
        assert_eq!(err.rule, Rule::AdjacentSubarray);
        // Subarray 2 (row 1200) is fine.
        let mut c = ProtocolChecker::new(DramConfig::new(DramKind::QbHbmSalpSc));
        c.check_trace(&[act(0, 0, 100, 0), act(0, 0, 1200, 4)]).unwrap();
    }

    /// tFAW: a 9th activate within the 12 ns window must be rejected on
    /// HBM2-class parts (8 allowed), using distinct banks so tRRD-free
    /// channels... tRRD=2 spaces activates; use two channels to pack more.
    #[test]
    fn catches_faw_violation() {
        // Directly exercise the window on one channel: 8 activates at the
        // tRRD floor occupy 0..14; the 9th at 14 is below 0+12? No — it
        // must satisfy both tRRD (>=16) and tFAW (>= t0+12=12): 16 is
        // legal. Shrink tFAW pressure by raising the configured window.
        let mut cfg = DramConfig::new(DramKind::Hbm2);
        cfg.timing.t_faw = 40;
        cfg.timing.acts_in_faw = 4;
        let mut c = ProtocolChecker::new(cfg.clone());
        let mut trace: Vec<TimedCommand> = (0..4).map(|i| act(0, i, 1, (i as u64) * 2)).collect();
        trace.push(act(0, 4, 1, 8)); // 5th activate 8 ns after the 1st
        let err = c.check_trace(&trace).unwrap_err();
        assert_eq!(err.rule, Rule::ActFaw);
        // At t0 + tFAW it passes.
        let mut c = ProtocolChecker::new(cfg);
        let mut trace: Vec<TimedCommand> = (0..4).map(|i| act(0, i, 1, (i as u64) * 2)).collect();
        trace.push(act(0, 4, 1, 40));
        c.check_trace(&trace).unwrap();
    }
}
