//! Job spooling: per-cell checkpoints that survive a daemon kill.
//!
//! Every completed cell is appended to `<spool>/<job>.ckpt` — the cell's
//! [`SimReport`] (floats as exact IEEE-754 bit patterns, so a resumed
//! job renders byte-identical output) plus its pre-rendered telemetry
//! JSONL. A restarted daemon reloads every unfinished spool file,
//! restores the completed cells, and re-enqueues only the missing ones.
//!
//! The format is line-based and append-only; each cell record is closed
//! by an `end <index>` line, so a record cut short by `kill -9` is
//! simply discarded on load (that cell re-runs — correct, just not
//! free). Terminal markers (`done` / `failed ...` / `canceled`) make
//! finished jobs re-attachable after a restart without re-running
//! anything.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use fgdram_core::report::{FaultSummary, SimReport};
use fgdram_core::suite::SuiteSpec;
use fgdram_energy::meter::{EnergyBreakdown, EnergyPerBit};
use fgdram_model::config::DramKind;
use fgdram_model::units::{GbPerSec, Picojoules, PjPerBit};

use crate::spec;

const MAGIC: &str = "fgdram-serve-ckpt-v1";

/// One persisted (and in-memory) completed cell.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The cell's measurement report.
    pub report: SimReport,
    /// The cell's telemetry series, pre-rendered as the exact JSONL
    /// bytes the stream delivers (`None` when the job has no telemetry).
    pub jsonl: Option<String>,
}

/// How a spooled job had ended (or not) when the daemon stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoolStatus {
    /// Still has cells to run: resume it.
    InProgress,
    /// All cells completed.
    Done,
    /// A cell failed; the typed code and message are preserved.
    Failed {
        /// The stable error code string (e.g. `stall`).
        code: String,
        /// The client exit code.
        exit_code: u8,
        /// Human-readable message.
        message: String,
    },
    /// The job was cancelled.
    Canceled,
}

/// A job reconstructed from its spool file.
#[derive(Debug)]
pub struct LoadedJob {
    /// Job id (`j<N>`), from the file name and header.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// The job spec.
    pub spec: SuiteSpec,
    /// Input-order cell table; `None` cells still need to run.
    pub cells: Vec<Option<Artifact>>,
    /// Terminal state, if the job had reached one.
    pub status: SpoolStatus,
}

/// The spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

/// Append handle for one job's checkpoint file.
#[derive(Debug)]
pub struct CkptWriter {
    w: BufWriter<fs::File>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Spool { dir: dir.to_path_buf() })
    }

    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.ckpt"))
    }

    /// Creates the checkpoint file for a newly admitted job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn create(&self, id: &str, tenant: &str, spec: &SuiteSpec) -> io::Result<CkptWriter> {
        let file = fs::File::create(self.path_for(id))?;
        let mut w = BufWriter::new(file);
        let spec_line = spec::render(spec).trim_end().replace('\n', ";");
        write!(w, "{MAGIC}\nid {id}\ntenant {}\nspec {spec_line}\n", esc(tenant))?;
        w.flush()?;
        Ok(CkptWriter { w })
    }

    /// Reopens a resumed job's checkpoint file for appending.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn reopen(&self, id: &str) -> io::Result<CkptWriter> {
        let file = fs::OpenOptions::new().append(true).open(self.path_for(id))?;
        Ok(CkptWriter { w: BufWriter::new(file) })
    }

    /// Loads every parseable job in the spool directory, sorted by id.
    /// Unreadable or foreign files are skipped with a stderr warning —
    /// a corrupt spool entry must not keep the daemon from starting.
    pub fn load_all(&self) -> Vec<LoadedJob> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return out };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        paths.sort();
        for p in paths {
            match fs::read_to_string(&p).map_err(|e| e.to_string()).and_then(|s| parse_ckpt(&s)) {
                Ok(job) => out.push(job),
                Err(e) => eprintln!("fgdram-serve: skipping spool file {}: {e}", p.display()),
            }
        }
        out
    }
}

impl CkptWriter {
    /// Appends one completed cell and flushes, so the record survives a
    /// kill arriving any time after this returns.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn append_cell(&mut self, index: usize, artifact: &Artifact) -> io::Result<()> {
        writeln!(self.w, "cell {index}")?;
        writeln!(self.w, "report {}", encode_report(&artifact.report))?;
        match &artifact.jsonl {
            Some(j) => {
                writeln!(self.w, "jsonl {}", j.lines().count())?;
                self.w.write_all(j.as_bytes())?;
            }
            None => writeln!(self.w, "notelemetry")?,
        }
        writeln!(self.w, "end {index}")?;
        self.w.flush()
    }

    /// Appends the terminal marker for a completed job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_done(&mut self) -> io::Result<()> {
        writeln!(self.w, "done")?;
        self.w.flush()
    }

    /// Appends the terminal marker for a failed job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_failed(&mut self, code: &str, exit_code: u8, message: &str) -> io::Result<()> {
        writeln!(self.w, "failed {code} {exit_code} {}", esc(message))?;
        self.w.flush()
    }

    /// Appends the terminal marker for a cancelled job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_canceled(&mut self) -> io::Result<()> {
        writeln!(self.w, "canceled")?;
        self.w.flush()
    }
}

fn parse_ckpt(s: &str) -> Result<LoadedJob, String> {
    let mut lines = s.lines();
    if lines.next() != Some(MAGIC) {
        return Err("missing magic header".to_string());
    }
    let take = |lines: &mut std::str::Lines<'_>, key: &str| -> Result<String, String> {
        lines
            .next()
            .and_then(|l| l.strip_prefix(key))
            .map(|v| v.trim().to_string())
            .ok_or_else(|| format!("missing '{key}' header"))
    };
    let id = take(&mut lines, "id ")?;
    let tenant = unesc(&take(&mut lines, "tenant ")?);
    let spec_line = take(&mut lines, "spec ")?.replace(';', "\n");
    let spec = spec::parse(&spec_line).map_err(|e| format!("spec: {e}"))?;
    let total = spec.cell_count();
    let mut cells: Vec<Option<Artifact>> = (0..total).map(|_| None).collect();
    let mut status = SpoolStatus::InProgress;
    // Cell records: any truncated trailing record fails one of the
    // steps below and is discarded (the loop simply ends).
    while let Some(line) = lines.next() {
        if let Some(rest) = line.strip_prefix("cell ") {
            let Ok(index) = rest.trim().parse::<usize>() else { break };
            if index >= total {
                break;
            }
            let Some(report_line) = lines.next().and_then(|l| l.strip_prefix("report ")) else {
                break;
            };
            let Some(report) = decode_report(report_line) else { break };
            let jsonl = match lines.next() {
                Some("notelemetry") => None,
                Some(l) if l.starts_with("jsonl ") => {
                    let Ok(n) = l["jsonl ".len()..].trim().parse::<usize>() else { break };
                    let mut buf = String::new();
                    let mut ok = true;
                    for _ in 0..n {
                        match lines.next() {
                            Some(j) => {
                                buf.push_str(j);
                                buf.push('\n');
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        break;
                    }
                    Some(buf)
                }
                _ => break,
            };
            if lines.next() != Some(format!("end {index}").as_str()) {
                break;
            }
            cells[index] = Some(Artifact { report, jsonl });
        } else if line == "done" {
            status = SpoolStatus::Done;
        } else if line == "canceled" {
            status = SpoolStatus::Canceled;
        } else if let Some(rest) = line.strip_prefix("failed ") {
            let mut it = rest.splitn(3, ' ');
            let code = it.next().unwrap_or("internal").to_string();
            let exit_code = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
            let message = unesc(it.next().unwrap_or(""));
            status = SpoolStatus::Failed { code, exit_code, message };
        } else {
            break;
        }
    }
    Ok(LoadedJob { id, tenant, spec, cells, status })
}

/// Percent-escapes the characters the line format reserves.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'%' && i + 2 < b.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(b[i] as char);
        i += 1;
    }
    out
}

fn kind_from_label(label: &str) -> Option<DramKind> {
    DramKind::ALL.into_iter().find(|k| k.label() == label)
}

/// Encodes a report as one `key=value` line with every float carried as
/// its exact IEEE-754 bit pattern — a decode/encode round trip is the
/// identity, which is what keeps resumed reports byte-identical.
pub fn encode_report(r: &SimReport) -> String {
    let f = |v: f64| format!("{:016x}", v.to_bits());
    let mut out = format!(
        "workload={} kind={} window_ns={} retired={} read_atoms={} write_atoms={} \
         activates={} refreshes={} bandwidth={} utilisation={} row_hit_rate={} \
         l2_hit_rate={} avg_read_latency_ns={} p95_read_latency_ns={} \
         channel_imbalance_cv={} e_act={} e_mv={} e_io={} eb_act={} eb_mv={} eb_io={}",
        esc(&r.workload),
        esc(r.kind.label()),
        r.window_ns,
        r.retired,
        r.read_atoms,
        r.write_atoms,
        r.activates,
        r.refreshes,
        f(r.bandwidth.value()),
        f(r.utilisation),
        f(r.row_hit_rate),
        f(r.l2_hit_rate),
        f(r.avg_read_latency_ns),
        r.p95_read_latency_ns,
        f(r.channel_imbalance_cv),
        f(r.energy.activation.value()),
        f(r.energy.data_movement.value()),
        f(r.energy.io.value()),
        f(r.energy_per_bit.activation.value()),
        f(r.energy_per_bit.data_movement.value()),
        f(r.energy_per_bit.io.value()),
    );
    if let Some(fs) = &r.faults {
        out.push_str(&format!(
            " faults={},{},{},{},{}",
            fs.ce, fs.due, fs.retries, fs.excluded, fs.poisoned
        ));
    }
    out
}

/// Decodes [`encode_report`] output; `None` on any malformed field.
pub fn decode_report(line: &str) -> Option<SimReport> {
    let mut get = std::collections::BTreeMap::new();
    for pair in line.split(' ') {
        let (k, v) = pair.split_once('=')?;
        get.insert(k, v);
    }
    let s = |k: &str| -> Option<String> { get.get(k).map(|v| unesc(v)) };
    let u = |k: &str| -> Option<u64> { get.get(k)?.parse().ok() };
    let f = |k: &str| -> Option<f64> {
        Some(f64::from_bits(u64::from_str_radix(get.get(k)?, 16).ok()?))
    };
    let faults = match get.get("faults") {
        Some(v) => {
            let mut it = v.split(',').map(|x| x.parse::<u64>());
            let mut next = || it.next().and_then(|r| r.ok());
            Some(FaultSummary {
                ce: next()?,
                due: next()?,
                retries: next()?,
                excluded: next()?,
                poisoned: next()?,
            })
        }
        None => None,
    };
    Some(SimReport {
        workload: s("workload")?,
        kind: kind_from_label(&s("kind")?)?,
        window_ns: u("window_ns")?,
        retired: u("retired")?,
        read_atoms: u("read_atoms")?,
        write_atoms: u("write_atoms")?,
        activates: u("activates")?,
        refreshes: u("refreshes")?,
        bandwidth: GbPerSec::new(f("bandwidth")?),
        utilisation: f("utilisation")?,
        row_hit_rate: f("row_hit_rate")?,
        l2_hit_rate: f("l2_hit_rate")?,
        avg_read_latency_ns: f("avg_read_latency_ns")?,
        p95_read_latency_ns: u("p95_read_latency_ns")?,
        channel_imbalance_cv: f("channel_imbalance_cv")?,
        energy: EnergyBreakdown {
            activation: Picojoules::new(f("e_act")?),
            data_movement: Picojoules::new(f("e_mv")?),
            io: Picojoules::new(f("e_io")?),
        },
        energy_per_bit: EnergyPerBit {
            activation: PjPerBit::new(f("eb_act")?),
            data_movement: PjPerBit::new(f("eb_mv")?),
            io: PjPerBit::new(f("eb_io")?),
        },
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_core::suite::SuiteKind;

    fn sample_report(seedish: u64) -> SimReport {
        SimReport {
            workload: "GUPS".into(),
            kind: DramKind::Fgdram,
            window_ns: 30_000,
            retired: 12_345 + seedish,
            read_atoms: 99,
            write_atoms: 42,
            activates: 17,
            refreshes: 3,
            bandwidth: GbPerSec::new(123.456789 + seedish as f64 * 0.1),
            utilisation: 0.1234567891234,
            row_hit_rate: 1.0 / 3.0,
            l2_hit_rate: 2.0 / 7.0,
            avg_read_latency_ns: 101.5e-3 + seedish as f64,
            p95_read_latency_ns: 512,
            channel_imbalance_cv: 0.000123,
            energy: EnergyBreakdown {
                activation: Picojoules::new(1.0 / 3.0),
                data_movement: Picojoules::new(f64::MIN_POSITIVE),
                io: Picojoules::new(1e300),
            },
            energy_per_bit: EnergyPerBit {
                activation: PjPerBit::new(0.1),
                data_movement: PjPerBit::new(0.2),
                io: PjPerBit::new(0.3),
            },
            faults: (seedish % 2 == 0).then_some(FaultSummary {
                ce: 1,
                due: 2,
                retries: 3,
                excluded: 4,
                poisoned: 5,
            }),
        }
    }

    #[test]
    fn report_round_trip_preserves_every_bit() {
        for i in 0..4 {
            let r = sample_report(i);
            let decoded = decode_report(&encode_report(&r)).expect("decodes");
            // Debug formatting round-trips every f64 exactly, so equal
            // strings mean equal bits (same convention as the golden).
            assert_eq!(format!("{r:?}"), format!("{decoded:?}"));
        }
    }

    #[test]
    fn ckpt_survives_truncation_and_resumes_partial() {
        let dir = std::env::temp_dir().join(format!("fgdram_spool_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).expect("open spool");
        let spec = SuiteSpec {
            which: SuiteKind::Compute,
            warmup: 100,
            window: 400,
            max_workloads: Some(2),
            telemetry_epoch: None,
        };
        let mut w = spool.create("j7", "ten ant", &spec).expect("create");
        let a0 =
            Artifact { report: sample_report(0), jsonl: Some("{\"x\":1}\n{\"x\":2}\n".into()) };
        let a2 = Artifact { report: sample_report(1), jsonl: None };
        w.append_cell(0, &a0).expect("cell 0");
        w.append_cell(2, &a2).expect("cell 2");
        drop(w);
        // Simulate a kill mid-append: truncated trailing record.
        let path = dir.join("j7.ckpt");
        let mut body = std::fs::read_to_string(&path).unwrap();
        body.push_str("cell 3\nreport workload=TRUNCATED");
        std::fs::write(&path, &body).unwrap();
        let jobs = spool.load_all();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!((j.id.as_str(), j.tenant.as_str()), ("j7", "ten ant"));
        assert_eq!(j.spec, spec);
        assert_eq!(j.status, SpoolStatus::InProgress);
        assert_eq!(j.cells.len(), 4);
        assert!(j.cells[0].is_some() && j.cells[2].is_some());
        assert!(j.cells[1].is_none() && j.cells[3].is_none(), "truncated record discarded");
        assert_eq!(j.cells[0].as_ref().unwrap().jsonl.as_deref(), Some("{\"x\":1}\n{\"x\":2}\n"));
        // Resume appends through reopen; a done marker then loads as Done.
        let mut w = spool.reopen("j7").expect("reopen");
        // Overwrite the truncated garbage is not needed: append after it
        // is unreachable on load, so re-append the missing cells cleanly.
        w.mark_failed("stall", 5, "no forward progress at t=9").expect("failed marker");
        drop(w);
        // The truncated line still ends parsing before the marker — the
        // job stays resumable, which is the safe direction.
        let jobs = spool.load_all();
        assert_eq!(jobs[0].status, SpoolStatus::InProgress);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn terminal_markers_round_trip() {
        let dir = std::env::temp_dir().join(format!("fgdram_spool_term_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir).expect("open spool");
        let spec = SuiteSpec {
            which: SuiteKind::Compute,
            warmup: 1,
            window: 2,
            max_workloads: Some(1),
            telemetry_epoch: None,
        };
        let mut w = spool.create("j1", "a", &spec).unwrap();
        w.append_cell(0, &Artifact { report: sample_report(0), jsonl: None }).unwrap();
        w.append_cell(1, &Artifact { report: sample_report(1), jsonl: None }).unwrap();
        w.mark_done().unwrap();
        let mut w = spool.create("j2", "a", &spec).unwrap();
        w.mark_failed("protocol", 4, "boom boom").unwrap();
        let mut w = spool.create("j3", "a", &spec).unwrap();
        w.mark_canceled().unwrap();
        let jobs = spool.load_all();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].status, SpoolStatus::Done);
        assert_eq!(
            jobs[1].status,
            SpoolStatus::Failed {
                code: "protocol".into(),
                exit_code: 4,
                message: "boom boom".into()
            }
        );
        assert_eq!(jobs[2].status, SpoolStatus::Canceled);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
