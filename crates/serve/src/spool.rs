//! Job spooling: per-cell checkpoints that survive a daemon kill — and,
//! since v2, survive a *lying disk*.
//!
//! Every completed cell is appended to `<spool>/<job>.ckpt` — the cell's
//! [`SimReport`] (floats as exact IEEE-754 bit patterns, so a resumed
//! job renders byte-identical output) plus its pre-rendered telemetry
//! JSONL. A restarted daemon reloads every unfinished spool file,
//! restores the completed cells, and re-enqueues only the missing ones.
//!
//! The format is line-based and append-only. Each cell record closes
//! with an `end <index> <crc32>` line whose checksum covers the whole
//! record body, so the loader can tell three failure shapes apart:
//!
//! - **truncated** (kill -9 or a short write mid-append): the record is
//!   structurally incomplete — skipped, the cell re-runs;
//! - **corrupted** (bit rot, torn sector): the record parses but its CRC
//!   disagrees — skipped, the cell re-runs. Without the CRC a flipped
//!   digit inside a float's hex bit pattern would *decode successfully
//!   into the wrong number* and poison the resumed report silently;
//! - **duplicated** (an append retried after an unreported success): the
//!   last valid record for a cell wins, and the duplicate is counted.
//!
//! A bad record never ends parsing: the loader resyncs to the next
//! record boundary and keeps going, so one corrupt middle record costs
//! one cell, not every record after it. Every record is also preceded by
//! a guard newline, so a short-written record cannot glue itself onto
//! the next one's `cell` line. Skip/duplicate counts are surfaced on
//! [`LoadedJob`] and logged, never silently swallowed.
//!
//! Terminal markers (`done` / `failed ...` / `canceled`) make finished
//! jobs re-attachable after a restart without re-running anything; a
//! corrupted marker line degrades to "still in progress", the safe
//! direction.
//!
//! Disk-fault injection: when the spool carries a [`Chaos`] engine
//! (`--chaos` with `ckpt-*` rates), each append draws a seeded
//! [`DiskPlan`] — fail outright (ENOSPC-style), write a short prefix, or
//! flip bytes *after* the CRC was computed so the loader must catch it.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fgdram_core::report::{FaultSummary, SimReport};
use fgdram_core::suite::SuiteSpec;
use fgdram_energy::meter::{EnergyBreakdown, EnergyPerBit};
use fgdram_faults::crc32;
use fgdram_model::config::DramKind;
use fgdram_model::units::{GbPerSec, Picojoules, PjPerBit};

use crate::chaos::{Chaos, DiskPlan};
use crate::spec;

const MAGIC: &str = "fgdram-serve-ckpt-v2";

/// One persisted (and in-memory) completed cell.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The cell's measurement report.
    pub report: SimReport,
    /// The cell's telemetry series, pre-rendered as the exact JSONL
    /// bytes the stream delivers (`None` when the job has no telemetry).
    pub jsonl: Option<String>,
}

/// How a spooled job had ended (or not) when the daemon stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoolStatus {
    /// Still has cells to run: resume it.
    InProgress,
    /// All cells completed.
    Done,
    /// A cell failed; the typed code and message are preserved.
    Failed {
        /// The stable error code string (e.g. `stall`).
        code: String,
        /// The client exit code.
        exit_code: u8,
        /// Human-readable message.
        message: String,
    },
    /// The job was cancelled.
    Canceled,
}

/// A job reconstructed from its spool file.
#[derive(Debug)]
pub struct LoadedJob {
    /// Job id (`j<N>`), from the file name and header.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// The client-supplied idempotency key, if the submit carried one.
    pub key: Option<String>,
    /// The job spec.
    pub spec: SuiteSpec,
    /// Input-order cell table; `None` cells still need to run.
    pub cells: Vec<Option<Artifact>>,
    /// Terminal state, if the job had reached one.
    pub status: SpoolStatus,
    /// Records discarded on load (truncated, corrupt, or unparseable).
    pub skipped_records: u64,
    /// Valid records that re-wrote an already-loaded cell (last wins).
    pub duplicate_records: u64,
}

/// The spool directory.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
    chaos: Option<Arc<Chaos>>,
}

/// Append handle for one job's checkpoint file.
#[derive(Debug)]
pub struct CkptWriter {
    w: BufWriter<fs::File>,
    chaos: Option<Arc<Chaos>>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory. `chaos` carries
    /// the daemon's fault-injection engine; appends draw their
    /// [`DiskPlan`] from it (pass `None` for a faithful spool).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path, chaos: Option<Arc<Chaos>>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Spool { dir: dir.to_path_buf(), chaos })
    }

    fn path_for(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.ckpt"))
    }

    /// Creates the checkpoint file for a newly admitted job. `key` is
    /// the client's idempotency key, persisted so a restarted daemon
    /// still deduplicates resubmits.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn create(
        &self,
        id: &str,
        tenant: &str,
        key: Option<&str>,
        spec: &SuiteSpec,
    ) -> io::Result<CkptWriter> {
        let file = fs::File::create(self.path_for(id))?;
        let mut w = BufWriter::new(file);
        let spec_line = spec::render(spec).trim_end().replace('\n', ";");
        write!(w, "{MAGIC}\nid {id}\ntenant {}\n", esc(tenant))?;
        if let Some(k) = key {
            writeln!(w, "key {}", esc(k))?;
        }
        writeln!(w, "spec {spec_line}")?;
        w.flush()?;
        Ok(CkptWriter { w, chaos: self.chaos.clone() })
    }

    /// Reopens a resumed job's checkpoint file for appending.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn reopen(&self, id: &str) -> io::Result<CkptWriter> {
        let file = fs::OpenOptions::new().append(true).open(self.path_for(id))?;
        Ok(CkptWriter { w: BufWriter::new(file), chaos: self.chaos.clone() })
    }

    /// Loads every parseable job in the spool directory, sorted by id.
    /// Unreadable or foreign files are skipped with a stderr warning —
    /// a corrupt spool entry must not keep the daemon from starting —
    /// and per-job skip/duplicate counts are logged the same way.
    pub fn load_all(&self) -> Vec<LoadedJob> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return out };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        paths.sort();
        for p in paths {
            // Lossy decode: corruption can leave invalid UTF-8 inside one
            // record, and that must cost that record (its CRC fails on
            // the replacement bytes), not the whole file.
            match fs::read(&p)
                .map_err(|e| e.to_string())
                .and_then(|b| parse_ckpt(&String::from_utf8_lossy(&b)))
            {
                Ok(job) => {
                    if job.skipped_records > 0 || job.duplicate_records > 0 {
                        eprintln!(
                            "fgdram-serve: spool {}: skipped {} bad record(s), \
                             deduplicated {} (affected cells re-run)",
                            p.display(),
                            job.skipped_records,
                            job.duplicate_records
                        );
                    }
                    out.push(job);
                }
                Err(e) => eprintln!("fgdram-serve: skipping spool file {}: {e}", p.display()),
            }
        }
        out
    }
}

impl CkptWriter {
    /// Appends one completed cell and flushes, so the record survives a
    /// kill arriving any time after this returns. The record body is
    /// CRC-checked end to end; a guard newline in front keeps a
    /// previously short-written record from gluing onto this one.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures (including injected ENOSPC-style
    /// chaos failures). A failed append loses only this record: the
    /// cell's result stays in memory and simply re-runs after a
    /// restart.
    pub fn append_cell(&mut self, index: usize, artifact: &Artifact) -> io::Result<()> {
        let mut rec = format!("cell {index}\nreport {}\n", encode_report(&artifact.report));
        match &artifact.jsonl {
            Some(j) => {
                rec.push_str(&format!("jsonl {}\n", j.lines().count()));
                rec.push_str(j);
                if !j.ends_with('\n') {
                    rec.push('\n');
                }
            }
            None => rec.push_str("notelemetry\n"),
        }
        let crc = crc32(rec.as_bytes());
        rec.push_str(&format!("end {index} {crc:08x}\n"));
        let mut bytes = Vec::with_capacity(rec.len() + 1);
        bytes.push(b'\n'); // guard newline: isolates us from a prior short write
        bytes.extend_from_slice(rec.as_bytes());
        let plan = match &self.chaos {
            Some(c) => c.disk_plan(bytes.len()),
            None => DiskPlan::None,
        };
        match plan {
            DiskPlan::None => self.w.write_all(&bytes)?,
            DiskPlan::Enospc => {
                return Err(io::Error::other("chaos: spool append failed (ENOSPC-style)"));
            }
            // A short write models a torn append: the prefix lands, the
            // writer never learns. The loader discards the partial
            // record, so the cell re-runs — correct, just not free.
            DiskPlan::Short { keep } => self.w.write_all(&bytes[..keep.min(bytes.len())])?,
            DiskPlan::Corrupt { flips, mut dice } => {
                // Flip bytes AFTER the CRC went in: the loader must
                // catch this, or a resumed report silently lies.
                dice.corrupt_bytes(&mut bytes, flips);
                self.w.write_all(&bytes)?;
            }
        }
        self.w.flush()
    }

    fn append_marker(&mut self, marker: &str) -> io::Result<()> {
        // Same guard newline as cell records; markers are single short
        // lines and carry no CRC — a corrupted marker degrades to "still
        // in progress", which only costs re-running, never wrong output.
        write!(self.w, "\n{marker}\n")?;
        self.w.flush()
    }

    /// Appends the terminal marker for a completed job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_done(&mut self) -> io::Result<()> {
        self.append_marker("done")
    }

    /// Appends the terminal marker for a failed job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_failed(&mut self, code: &str, exit_code: u8, message: &str) -> io::Result<()> {
        self.append_marker(&format!("failed {code} {exit_code} {}", esc(message)))
    }

    /// Appends the terminal marker for a cancelled job.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn mark_canceled(&mut self) -> io::Result<()> {
        self.append_marker("canceled")
    }
}

/// True when `line` starts a new top-level element — where the loader
/// resyncs to after a bad record.
fn is_boundary(line: &str) -> bool {
    line.starts_with("cell ") || line == "done" || line == "canceled" || line.starts_with("failed ")
}

/// Parses one cell record starting at `lines[i]` (which starts with
/// `"cell "`). Returns the cell index, artifact, and the line index just
/// past the record. Structure is validated first, then the CRC, and only
/// then is the report decoded — so corruption is caught even when the
/// mangled bytes would still decode.
fn parse_record(
    lines: &[&str],
    i: usize,
    total: usize,
) -> Result<(usize, Artifact, usize), String> {
    let index: usize = lines[i]
        .strip_prefix("cell ")
        .and_then(|r| r.trim().parse().ok())
        .ok_or("bad cell line")?;
    if index >= total {
        return Err(format!("cell index {index} out of range (job has {total})"));
    }
    let mut j = i + 1;
    let report_line =
        lines.get(j).and_then(|l| l.strip_prefix("report ")).ok_or("missing report line")?;
    j += 1;
    let jsonl_lines: Option<std::ops::Range<usize>> = match lines.get(j) {
        Some(&"notelemetry") => {
            j += 1;
            None
        }
        Some(l) if l.starts_with("jsonl ") => {
            let n: usize =
                l["jsonl ".len()..].trim().parse().map_err(|_| "bad jsonl count".to_string())?;
            j += 1;
            if j.checked_add(n).is_none_or(|end| end > lines.len()) {
                return Err("truncated jsonl block".to_string());
            }
            let range = j..j + n;
            j += n;
            Some(range)
        }
        _ => return Err("missing telemetry line".to_string()),
    };
    let end = lines.get(j).ok_or("missing end line")?;
    let mut it = end.strip_prefix("end ").ok_or("missing end line")?.split(' ');
    let end_index: usize =
        it.next().and_then(|v| v.parse().ok()).ok_or("bad end index".to_string())?;
    let crc_stored: u32 = it
        .next()
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or("missing record crc".to_string())?;
    if end_index != index {
        return Err(format!("end index {end_index} does not match cell {index}"));
    }
    let mut content = String::new();
    for l in &lines[i..j] {
        content.push_str(l);
        content.push('\n');
    }
    let crc_actual = crc32(content.as_bytes());
    if crc_actual != crc_stored {
        return Err(format!("crc mismatch (stored {crc_stored:08x}, actual {crc_actual:08x})"));
    }
    // CRC passed, so any decode failure here is a writer bug — still
    // skip rather than poison.
    let report = decode_report(report_line).ok_or("undecodable report")?;
    let jsonl = jsonl_lines.map(|range| {
        let mut buf = String::new();
        for l in &lines[range] {
            buf.push_str(l);
            buf.push('\n');
        }
        buf
    });
    Ok((index, Artifact { report, jsonl }, j + 1))
}

fn parse_ckpt(s: &str) -> Result<LoadedJob, String> {
    let lines: Vec<&str> = s.lines().collect();
    if lines.first().copied() != Some(MAGIC) {
        return Err(format!("missing or foreign magic header (want {MAGIC})"));
    }
    let mut i = 1;
    let mut take = |key: &str| -> Result<String, String> {
        let v = lines
            .get(i)
            .and_then(|l| l.strip_prefix(key))
            .map(|v| v.trim().to_string())
            .ok_or_else(|| format!("missing '{key}' header"))?;
        i += 1;
        Ok(v)
    };
    let id = take("id ")?;
    let tenant = unesc(&take("tenant ")?);
    let key = match lines.get(i).and_then(|l| l.strip_prefix("key ")) {
        Some(v) => {
            i += 1;
            Some(unesc(v.trim()))
        }
        None => None,
    };
    let spec_line = {
        let v = lines
            .get(i)
            .and_then(|l| l.strip_prefix("spec "))
            .map(|v| v.trim().to_string())
            .ok_or("missing 'spec ' header")?;
        i += 1;
        v.replace(';', "\n")
    };
    let spec = spec::parse(&spec_line).map_err(|e| format!("spec: {e}"))?;
    let total = spec.cell_count();
    let mut cells: Vec<Option<Artifact>> = (0..total).map(|_| None).collect();
    let mut status = SpoolStatus::InProgress;
    let mut skipped_records = 0u64;
    let mut duplicate_records = 0u64;
    // One bad record skips to the next boundary; it never ends parsing.
    while i < lines.len() {
        let line = lines[i];
        if line.is_empty() {
            i += 1; // guard newline between records
        } else if line.starts_with("cell ") {
            match parse_record(&lines, i, total) {
                Ok((index, artifact, next)) => {
                    if cells[index].is_some() {
                        duplicate_records += 1;
                    }
                    cells[index] = Some(artifact);
                    i = next;
                }
                Err(_) => {
                    skipped_records += 1;
                    i += 1;
                    while i < lines.len() && !is_boundary(lines[i]) {
                        i += 1;
                    }
                }
            }
        } else if line == "done" {
            status = SpoolStatus::Done;
            i += 1;
        } else if line == "canceled" {
            status = SpoolStatus::Canceled;
            i += 1;
        } else if let Some(rest) = line.strip_prefix("failed ") {
            let mut it = rest.splitn(3, ' ');
            let code = it.next().unwrap_or("internal").to_string();
            let exit_code = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
            let message = unesc(it.next().unwrap_or(""));
            status = SpoolStatus::Failed { code, exit_code, message };
            i += 1;
        } else {
            // Orphan garbage (e.g. the tail of a short write): one skip,
            // then resync.
            skipped_records += 1;
            i += 1;
            while i < lines.len() && !is_boundary(lines[i]) {
                i += 1;
            }
        }
    }
    Ok(LoadedJob { id, tenant, key, spec, cells, status, skipped_records, duplicate_records })
}

/// Percent-escapes the characters the line format reserves.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'%' && i + 2 < b.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(b[i] as char);
        i += 1;
    }
    out
}

fn kind_from_label(label: &str) -> Option<DramKind> {
    DramKind::ALL.into_iter().find(|k| k.label() == label)
}

/// Encodes a report as one `key=value` line with every float carried as
/// its exact IEEE-754 bit pattern — a decode/encode round trip is the
/// identity, which is what keeps resumed reports byte-identical.
pub fn encode_report(r: &SimReport) -> String {
    let f = |v: f64| format!("{:016x}", v.to_bits());
    let mut out = format!(
        "workload={} kind={} window_ns={} retired={} read_atoms={} write_atoms={} \
         activates={} refreshes={} bandwidth={} utilisation={} row_hit_rate={} \
         l2_hit_rate={} avg_read_latency_ns={} p95_read_latency_ns={} \
         channel_imbalance_cv={} e_act={} e_mv={} e_io={} eb_act={} eb_mv={} eb_io={}",
        esc(&r.workload),
        esc(r.kind.label()),
        r.window_ns,
        r.retired,
        r.read_atoms,
        r.write_atoms,
        r.activates,
        r.refreshes,
        f(r.bandwidth.value()),
        f(r.utilisation),
        f(r.row_hit_rate),
        f(r.l2_hit_rate),
        f(r.avg_read_latency_ns),
        r.p95_read_latency_ns,
        f(r.channel_imbalance_cv),
        f(r.energy.activation.value()),
        f(r.energy.data_movement.value()),
        f(r.energy.io.value()),
        f(r.energy_per_bit.activation.value()),
        f(r.energy_per_bit.data_movement.value()),
        f(r.energy_per_bit.io.value()),
    );
    if let Some(fs) = &r.faults {
        out.push_str(&format!(
            " faults={},{},{},{},{}",
            fs.ce, fs.due, fs.retries, fs.excluded, fs.poisoned
        ));
    }
    out
}

/// Decodes [`encode_report`] output; `None` on any malformed field.
pub fn decode_report(line: &str) -> Option<SimReport> {
    let mut get = std::collections::BTreeMap::new();
    for pair in line.split(' ') {
        let (k, v) = pair.split_once('=')?;
        get.insert(k, v);
    }
    let s = |k: &str| -> Option<String> { get.get(k).map(|v| unesc(v)) };
    let u = |k: &str| -> Option<u64> { get.get(k)?.parse().ok() };
    let f = |k: &str| -> Option<f64> {
        Some(f64::from_bits(u64::from_str_radix(get.get(k)?, 16).ok()?))
    };
    let faults = match get.get("faults") {
        Some(v) => {
            let mut it = v.split(',').map(|x| x.parse::<u64>());
            let mut next = || it.next().and_then(|r| r.ok());
            Some(FaultSummary {
                ce: next()?,
                due: next()?,
                retries: next()?,
                excluded: next()?,
                poisoned: next()?,
            })
        }
        None => None,
    };
    Some(SimReport {
        workload: s("workload")?,
        kind: kind_from_label(&s("kind")?)?,
        window_ns: u("window_ns")?,
        retired: u("retired")?,
        read_atoms: u("read_atoms")?,
        write_atoms: u("write_atoms")?,
        activates: u("activates")?,
        refreshes: u("refreshes")?,
        bandwidth: GbPerSec::new(f("bandwidth")?),
        utilisation: f("utilisation")?,
        row_hit_rate: f("row_hit_rate")?,
        l2_hit_rate: f("l2_hit_rate")?,
        avg_read_latency_ns: f("avg_read_latency_ns")?,
        p95_read_latency_ns: u("p95_read_latency_ns")?,
        channel_imbalance_cv: f("channel_imbalance_cv")?,
        energy: EnergyBreakdown {
            activation: Picojoules::new(f("e_act")?),
            data_movement: Picojoules::new(f("e_mv")?),
            io: Picojoules::new(f("e_io")?),
        },
        energy_per_bit: EnergyPerBit {
            activation: PjPerBit::new(f("eb_act")?),
            data_movement: PjPerBit::new(f("eb_mv")?),
            io: PjPerBit::new(f("eb_io")?),
        },
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosSpec;
    use fgdram_core::suite::SuiteKind;

    fn sample_report(seedish: u64) -> SimReport {
        SimReport {
            workload: "GUPS".into(),
            kind: DramKind::Fgdram,
            window_ns: 30_000,
            retired: 12_345 + seedish,
            read_atoms: 99,
            write_atoms: 42,
            activates: 17,
            refreshes: 3,
            bandwidth: GbPerSec::new(123.456789 + seedish as f64 * 0.1),
            utilisation: 0.1234567891234,
            row_hit_rate: 1.0 / 3.0,
            l2_hit_rate: 2.0 / 7.0,
            avg_read_latency_ns: 101.5e-3 + seedish as f64,
            p95_read_latency_ns: 512,
            channel_imbalance_cv: 0.000123,
            energy: EnergyBreakdown {
                activation: Picojoules::new(1.0 / 3.0),
                data_movement: Picojoules::new(f64::MIN_POSITIVE),
                io: Picojoules::new(1e300),
            },
            energy_per_bit: EnergyPerBit {
                activation: PjPerBit::new(0.1),
                data_movement: PjPerBit::new(0.2),
                io: PjPerBit::new(0.3),
            },
            faults: (seedish % 2 == 0).then_some(FaultSummary {
                ce: 1,
                due: 2,
                retries: 3,
                excluded: 4,
                poisoned: 5,
            }),
        }
    }

    fn test_spec() -> SuiteSpec {
        SuiteSpec {
            which: SuiteKind::Compute,
            warmup: 100,
            window: 400,
            max_workloads: Some(2),
            telemetry_epoch: None,
        }
    }

    fn tmp_spool(tag: &str) -> (PathBuf, Spool) {
        let dir = std::env::temp_dir().join(format!("fgdram_spool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = Spool::open(&dir, None).expect("open spool");
        (dir, spool)
    }

    #[test]
    fn report_round_trip_preserves_every_bit() {
        for i in 0..4 {
            let r = sample_report(i);
            let decoded = decode_report(&encode_report(&r)).expect("decodes");
            // Debug formatting round-trips every f64 exactly, so equal
            // strings mean equal bits (same convention as the golden).
            assert_eq!(format!("{r:?}"), format!("{decoded:?}"));
        }
    }

    #[test]
    fn ckpt_survives_truncation_and_resumes_partial() {
        let (dir, spool) = tmp_spool("trunc");
        let spec = test_spec();
        let mut w = spool.create("j7", "ten ant", None, &spec).expect("create");
        let a0 =
            Artifact { report: sample_report(0), jsonl: Some("{\"x\":1}\n{\"x\":2}\n".into()) };
        let a2 = Artifact { report: sample_report(1), jsonl: None };
        w.append_cell(0, &a0).expect("cell 0");
        w.append_cell(2, &a2).expect("cell 2");
        drop(w);
        // Simulate a kill mid-append: truncated trailing record.
        let path = dir.join("j7.ckpt");
        let mut body = std::fs::read_to_string(&path).unwrap();
        body.push_str("cell 3\nreport workload=TRUNCATED");
        std::fs::write(&path, &body).unwrap();
        let jobs = spool.load_all();
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!((j.id.as_str(), j.tenant.as_str()), ("j7", "ten ant"));
        assert_eq!(j.key, None);
        assert_eq!(j.spec, spec);
        assert_eq!(j.status, SpoolStatus::InProgress);
        assert_eq!(j.cells.len(), 4);
        assert!(j.cells[0].is_some() && j.cells[2].is_some());
        assert!(j.cells[1].is_none() && j.cells[3].is_none(), "truncated record discarded");
        assert_eq!(j.skipped_records, 1);
        assert_eq!(j.cells[0].as_ref().unwrap().jsonl.as_deref(), Some("{\"x\":1}\n{\"x\":2}\n"));
        // A marker appended after the garbage is still honoured: the
        // loader resyncs past the truncated record instead of giving up.
        let mut w = spool.reopen("j7").expect("reopen");
        w.mark_failed("stall", 5, "no forward progress at t=9").expect("failed marker");
        drop(w);
        let jobs = spool.load_all();
        assert_eq!(
            jobs[0].status,
            SpoolStatus::Failed {
                code: "stall".into(),
                exit_code: 5,
                message: "no forward progress at t=9".into()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn terminal_markers_and_key_round_trip() {
        let (dir, spool) = tmp_spool("term");
        let spec = test_spec();
        let mut w = spool.create("j1", "a", Some("order%66 retry"), &spec).unwrap();
        w.append_cell(0, &Artifact { report: sample_report(0), jsonl: None }).unwrap();
        w.append_cell(1, &Artifact { report: sample_report(1), jsonl: None }).unwrap();
        w.mark_done().unwrap();
        let mut w = spool.create("j2", "a", None, &spec).unwrap();
        w.mark_failed("protocol", 4, "boom boom").unwrap();
        let mut w = spool.create("j3", "a", None, &spec).unwrap();
        w.mark_canceled().unwrap();
        let jobs = spool.load_all();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].status, SpoolStatus::Done);
        assert_eq!(jobs[0].key.as_deref(), Some("order%66 retry"), "idempotency key survives");
        assert_eq!(jobs[0].skipped_records, 0);
        assert_eq!(jobs[0].duplicate_records, 0);
        assert_eq!(
            jobs[1].status,
            SpoolStatus::Failed {
                code: "protocol".into(),
                exit_code: 4,
                message: "boom boom".into()
            }
        );
        assert_eq!(jobs[1].key, None);
        assert_eq!(jobs[2].status, SpoolStatus::Canceled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_is_skipped_without_poisoning_the_rest() {
        let (dir, spool) = tmp_spool("corrupt");
        let spec = test_spec();
        let mut w = spool.create("j4", "a", None, &spec).unwrap();
        for i in 0..3 {
            w.append_cell(i, &Artifact { report: sample_report(i as u64), jsonl: None }).unwrap();
        }
        w.mark_done().unwrap();
        drop(w);
        // Flip one decimal digit of the MIDDLE record's retired count:
        // without the CRC this would decode cleanly into the wrong
        // number — the silent-poisoning failure v1 had.
        let path = dir.join("j4.ckpt");
        let body = std::fs::read_to_string(&path).unwrap();
        let honest = format!("retired={}", sample_report(1).retired);
        let lying = format!("retired={}", sample_report(1).retired + 50);
        assert_eq!(body.matches(&honest).count(), 1);
        std::fs::write(&path, body.replace(&honest, &lying)).unwrap();
        let jobs = spool.load_all();
        let j = &jobs[0];
        assert_eq!(j.skipped_records, 1, "corrupt record skipped, not trusted");
        assert!(j.cells[1].is_none(), "the lying cell re-runs");
        assert!(j.cells[0].is_some() && j.cells[2].is_some(), "neighbours survive");
        assert_eq!(j.status, SpoolStatus::Done, "marker after the corruption still parsed");
        assert_eq!(
            format!("{:?}", j.cells[2].as_ref().unwrap().report),
            format!("{:?}", sample_report(2)),
            "surviving cells are bit-exact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_records_dedupe_last_valid_wins() {
        let (dir, spool) = tmp_spool("dup");
        let spec = test_spec();
        let mut w = spool.create("j5", "a", None, &spec).unwrap();
        // An append retried after an unreported success: same cell twice.
        w.append_cell(1, &Artifact { report: sample_report(7), jsonl: None }).unwrap();
        w.append_cell(1, &Artifact { report: sample_report(8), jsonl: None }).unwrap();
        drop(w);
        let jobs = spool.load_all();
        let j = &jobs[0];
        assert_eq!(j.duplicate_records, 1);
        assert_eq!(j.skipped_records, 0);
        assert_eq!(
            format!("{:?}", j.cells[1].as_ref().unwrap().report),
            format!("{:?}", sample_report(8)),
            "last valid record wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_prefix_loads_safely() {
        let (dir, spool) = tmp_spool("sweep");
        let spec = test_spec();
        let mut w = spool.create("j6", "a", None, &spec).unwrap();
        for i in 0..4 {
            let jsonl = (i % 2 == 0).then(|| "{\"epoch\":1}\n".to_string());
            w.append_cell(i, &Artifact { report: sample_report(i as u64), jsonl }).unwrap();
        }
        w.mark_done().unwrap();
        drop(w);
        let path = dir.join("j6.ckpt");
        let full = std::fs::read(&path).unwrap();
        // Every kill -9 point: any prefix must load without panicking,
        // and every cell it does restore must be bit-exact.
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            for j in spool.load_all() {
                for (i, cell) in j.cells.iter().enumerate() {
                    if let Some(a) = cell {
                        assert_eq!(
                            format!("{:?}", a.report),
                            format!("{:?}", sample_report(i as u64)),
                            "prefix {cut}: restored cell {i} must be bit-exact"
                        );
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_disk_faults_never_corrupt_a_loaded_cell() {
        let dir =
            std::env::temp_dir().join(format!("fgdram_spool_chaosdisk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let chaos = Arc::new(Chaos::new(
            ChaosSpec::parse("ckpt-corrupt=0.3,ckpt-short=0.25,ckpt-enospc=0.2").unwrap(),
            4242,
        ));
        let spool = Spool::open(&dir, Some(chaos.clone())).expect("open spool");
        let spec = test_spec();
        let mut w = spool.create("j8", "a", None, &spec).unwrap();
        let mut enospc_seen = 0;
        // Retry loop, like the server after a failed append: keep
        // re-appending each cell until one append reports success.
        for round in 0..12 {
            for i in 0..4 {
                let jsonl = (i == 0).then(|| "{\"epoch\":1}\n{\"epoch\":2}\n".to_string());
                let art = Artifact { report: sample_report(i as u64), jsonl };
                if w.append_cell(i, &art).is_err() {
                    enospc_seen += 1;
                }
            }
            let _ = round;
        }
        drop(w);
        let jobs = spool.load_all();
        let j = &jobs[0];
        let total_bad = chaos.stats.ckpt_corrupt.load(std::sync::atomic::Ordering::Relaxed)
            + chaos.stats.ckpt_short.load(std::sync::atomic::Ordering::Relaxed);
        assert!(total_bad > 0, "chaos actually injected disk faults");
        assert!(enospc_seen > 0, "ENOSPC-style appends surfaced as errors");
        assert!(j.skipped_records > 0 || j.duplicate_records > 0, "loader saw the damage");
        for (i, cell) in j.cells.iter().enumerate() {
            let a = cell.as_ref().expect("12 rounds outlast the fault rates");
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", sample_report(i as u64)),
                "cell {i}: loaded record is bit-exact or absent, never wrong"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
