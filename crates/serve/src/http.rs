//! A deliberately small HTTP/1.1 implementation over `std::net` — just
//! the subset the job protocol needs, hand-rolled so the main workspace
//! keeps its zero-registry-dependency property.
//!
//! Server side: request-line + header parsing, `Content-Length` bodies,
//! fixed responses, and a [`ChunkedWriter`] for streaming bodies
//! (`Transfer-Encoding: chunked`). Client side: [`request`] sends one
//! request and decodes either body framing, and [`BodyReader`] exposes
//! streamed bodies incrementally so telemetry can be relayed line by
//! line as epochs arrive. Connections are `close`-only: one request per
//! TCP connection keeps the state machine trivial and the daemon robust.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ServeError;

/// Cap on request head + body sizes; a job spec is a few hundred bytes,
/// so anything near this is a protocol error, not a workload.
pub const MAX_BODY: usize = 64 * 1024;
const MAX_HEAD_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path (no query handling; the protocol does not need it).
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn read_line_crlf<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_HEAD_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "header line too long"));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 head"))
}

/// Reads and parses one request from `r`.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing, or the underlying
/// I/O error wrapped the same way (the connection is torn down either
/// way, so the distinction does not matter to callers).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(m.to_string());
    let line = read_line_crlf(r).map_err(|e| ServeError::BadRequest(format!("read: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_uppercase();
    let path = parts.next().ok_or_else(|| bad("request line missing path"))?.to_string();
    let version = parts.next().ok_or_else(|| bad("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line_crlf(r).map_err(|e| ServeError::BadRequest(format!("read: {e}")))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (k, v) =
            line.split_once(':').ok_or_else(|| bad("header line missing ':' separator"))?;
        headers.push((k.trim().to_lowercase(), v.trim().to_string()));
    }
    let len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse::<usize>().map_err(|_| bad("unparseable content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| ServeError::BadRequest(format!("body read: {e}")))?;
    Ok(Request { method, path, headers, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a complete response with a known body.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the typed JSON error body for `e`.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_error<W: Write>(w: &mut W, e: &ServeError) -> io::Result<()> {
    write_response(w, e.http_status(), "application/json", e.json_body().as_bytes())
}

/// A `Transfer-Encoding: chunked` body writer. Each [`Self::chunk`] call
/// is flushed immediately so clients observe epochs as they happen;
/// [`Self::finish`] writes the terminating zero chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head for a streamed body and returns the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
             Connection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Streams one chunk (empty input is a no-op: a zero-length chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A client-side response: status, headers, and a body reader that
/// decodes both framings.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased response headers.
    pub headers: Vec<(String, String)>,
    body: BodyReader,
}

impl Response {
    /// Reads the whole body into memory.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn into_body(mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(chunk) = self.body.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Streams the body chunk by chunk through `f`, returning the total
    /// byte count.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and errors from `f`.
    pub fn stream_body<F: FnMut(&[u8]) -> io::Result<()>>(mut self, mut f: F) -> io::Result<usize> {
        let mut total = 0;
        while let Some(chunk) = self.body.next_chunk()? {
            total += chunk.len();
            f(&chunk)?;
        }
        Ok(total)
    }
}

/// Incremental body decoder (chunked or content-length framing).
#[derive(Debug)]
enum Framing {
    Length(usize),
    Chunked,
    /// No framing header: read to connection close.
    Eof,
}

#[derive(Debug)]
struct BodyReader {
    r: BufReader<TcpStream>,
    framing: Framing,
    done: bool,
}

impl BodyReader {
    /// The next piece of the body, or `None` at the end.
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        match self.framing {
            Framing::Length(remaining) => {
                if remaining == 0 {
                    self.done = true;
                    return Ok(None);
                }
                let take = remaining.min(16 * 1024);
                let mut buf = vec![0u8; take];
                self.r.read_exact(&mut buf)?;
                self.framing = Framing::Length(remaining - take);
                Ok(Some(buf))
            }
            Framing::Chunked => {
                let line = read_line_crlf(&mut self.r)?;
                let size = usize::from_str_radix(line.trim(), 16).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad chunk size line")
                })?;
                if size == 0 {
                    // Trailing CRLF after the last-chunk line.
                    let _ = read_line_crlf(&mut self.r);
                    self.done = true;
                    return Ok(None);
                }
                let mut buf = vec![0u8; size];
                self.r.read_exact(&mut buf)?;
                let mut crlf = [0u8; 2];
                self.r.read_exact(&mut crlf)?;
                Ok(Some(buf))
            }
            Framing::Eof => {
                let mut buf = vec![0u8; 16 * 1024];
                let n = self.r.read(&mut buf)?;
                if n == 0 {
                    self.done = true;
                    return Ok(None);
                }
                buf.truncate(n);
                Ok(Some(buf))
            }
        }
    }
}

/// Sends one request to `addr` and returns the parsed response head with
/// a streaming body reader. `headers` are extra request headers.
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    write!(w, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n")?;
    for (k, v) in headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "Content-Length: {}\r\n\r\n", body.len())?;
    w.write_all(body)?;
    w.flush()?;
    let mut r = BufReader::new(stream);
    let status_line = read_line_crlf(&mut r)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut resp_headers = Vec::new();
    loop {
        let line = read_line_crlf(&mut r)?;
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            resp_headers.push((k.trim().to_lowercase(), v.trim().to_string()));
        }
    }
    let framing = if resp_headers.iter().any(|(k, v)| k == "transfer-encoding" && v == "chunked") {
        Framing::Chunked
    } else if let Some((_, v)) = resp_headers.iter().find(|(k, _)| k == "content-length") {
        Framing::Length(
            v.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?,
        )
    } else {
        Framing::Eof
    };
    Ok(Response { status, headers: resp_headers, body: BodyReader { r, framing, done: false } })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\n\
                    Content-Length: 5\r\n\r\nhello";
        let mut r = io::BufReader::new(&raw[..]);
        let req = read_request(&mut r).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"[..],
        ] {
            let mut r = io::BufReader::new(raw);
            assert!(read_request(&mut r).is_err());
        }
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut buf, 200, "text/plain").expect("head");
            w.chunk(b"hello ").expect("chunk");
            w.chunk(b"").expect("empty chunk is a no-op");
            w.chunk(b"world").expect("chunk");
            w.finish().expect("finish");
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Transfer-Encoding: chunked"), "{s}");
        assert!(s.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"), "{s}");
    }

    #[test]
    fn request_response_round_trip_over_tcp() {
        // A one-shot echo server: proves the client decodes both
        // framings produced by our own writers.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for i in 0..2 {
                let (stream, _) = listener.accept().expect("accept");
                let mut r = BufReader::new(stream.try_clone().expect("clone"));
                let req = read_request(&mut r).expect("request");
                let mut w = stream;
                if i == 0 {
                    write_response(&mut w, 200, "text/plain", &req.body).expect("respond");
                } else {
                    let mut cw = ChunkedWriter::start(&mut w, 200, "text/plain").expect("head");
                    for piece in req.body.chunks(3) {
                        cw.chunk(piece).expect("chunk");
                    }
                    cw.finish().expect("finish");
                }
            }
        });
        for _ in 0..2 {
            let resp =
                request(&addr, "POST", "/echo", &[("x-tenant", "t")], b"payload-bytes").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.into_body().unwrap(), b"payload-bytes");
        }
        server.join().expect("server thread");
    }
}
