//! A deliberately small HTTP/1.1 implementation over `std::net` — just
//! the subset the job protocol needs, hand-rolled so the main workspace
//! keeps its zero-registry-dependency property.
//!
//! Server side: request-line + header parsing, `Content-Length` bodies,
//! fixed responses, and a [`ChunkedWriter`] for streaming bodies
//! (`Transfer-Encoding: chunked`). Client side: [`request`] sends one
//! request and decodes either body framing, and [`BodyReader`] exposes
//! streamed bodies incrementally so telemetry can be relayed line by
//! line as epochs arrive. Connections are `close`-only: one request per
//! TCP connection keeps the state machine trivial and the daemon robust.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ServeError;

/// Cap on request head + body sizes; a job spec is a few hundred bytes,
/// so anything near this is a protocol error, not a workload.
pub const MAX_BODY: usize = 64 * 1024;
const MAX_HEAD_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;
/// Cap on a single chunk a peer may claim in chunked framing. A hostile
/// `ffffffffffffffff\r\n` size line must not turn into an exabyte
/// allocation (which would abort the process, not error).
const MAX_CHUNK: usize = 16 * 1024 * 1024;

/// True for the error kinds a socket deadline expiry produces
/// (`WouldBlock` on Unix `SO_RCVTIMEO`/`SO_SNDTIMEO`, `TimedOut`
/// elsewhere) — the signature of a slow-loris peer.
pub fn is_deadline(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path (no query handling; the protocol does not need it).
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn read_line_crlf<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            // EOF before the terminator: the peer tore the connection
            // mid-line. Surfaced as `UnexpectedEof` so the server maps it
            // to the retryable 408, not a permanent 400 — a torn request
            // is a transport failure, not a malformed client.
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_HEAD_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "header line too long"));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF8 head"))
}

/// Wraps a transport failure while reading the request: deadline
/// expiries and torn connections become the typed (retryable) 408,
/// everything else the typed 400 (the connection is torn down either
/// way; the status tells the peer — and `/stats` — which defense
/// fired).
fn read_err(context: &str, e: &io::Error) -> ServeError {
    if is_deadline(e) {
        ServeError::Timeout(format!("{context} stalled past the read deadline"))
    } else if e.kind() == io::ErrorKind::UnexpectedEof {
        // A request torn mid-flight (peer vanished, connection cut) is a
        // transport failure: 408 so a retrying client tries again, where
        // a syntactically bad request stays a permanent 400.
        ServeError::Timeout(format!("{context} incomplete: connection closed mid-request"))
    } else {
        ServeError::BadRequest(format!("{context}: {e}"))
    }
}

/// Reads and parses one request from `r`.
///
/// Every malformed input is a typed error, never a panic: oversized
/// lines, header floods, bad `Content-Length`, short bodies, and
/// deadline expiries all map to 400/408 (see the hostile-input fuzz
/// loop in `tests/serve.rs`).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed framing,
/// [`ServeError::Timeout`] when the peer dribbles past the read
/// deadline.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ServeError> {
    let bad = |m: &str| ServeError::BadRequest(m.to_string());
    let line = read_line_crlf(r).map_err(|e| read_err("request line", &e))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_uppercase();
    let path = parts.next().ok_or_else(|| bad("request line missing path"))?.to_string();
    let version = parts.next().ok_or_else(|| bad("request line missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line_crlf(r).map_err(|e| read_err("header", &e))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (k, v) =
            line.split_once(':').ok_or_else(|| bad("header line missing ':' separator"))?;
        headers.push((k.trim().to_lowercase(), v.trim().to_string()));
    }
    let len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse::<usize>().map_err(|_| bad("unparseable content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| read_err("body", &e))?;
    Ok(Request { method, path, headers, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a complete response with a known body.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_ex(w, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`).
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response_ex<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra: &[(String, String)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    for (k, v) in extra {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the typed JSON error body for `e` (plus any extra headers the
/// error carries, e.g. `Retry-After` on overload rejects).
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_error<W: Write>(w: &mut W, e: &ServeError) -> io::Result<()> {
    write_response_ex(
        w,
        e.http_status(),
        "application/json",
        &e.extra_headers(),
        e.json_body().as_bytes(),
    )
}

/// A `Transfer-Encoding: chunked` body writer. Each [`Self::chunk`] call
/// is flushed immediately so clients observe epochs as they happen;
/// [`Self::finish`] writes the terminating zero chunk.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head for a streamed body and returns the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
             Connection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Streams one chunk (empty input is a no-op: a zero-length chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A client-side response: status, headers, and a body reader that
/// decodes both framings.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased response headers.
    pub headers: Vec<(String, String)>,
    body: BodyReader,
}

impl Response {
    /// First value of response header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Reads the whole body into memory.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn into_body(mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(chunk) = self.body.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Streams the body chunk by chunk through `f`, returning the total
    /// byte count.
    ///
    /// # Errors
    ///
    /// Propagates transport failures and errors from `f`.
    pub fn stream_body<F: FnMut(&[u8]) -> io::Result<()>>(mut self, mut f: F) -> io::Result<usize> {
        let mut total = 0;
        while let Some(chunk) = self.body.next_chunk()? {
            total += chunk.len();
            f(&chunk)?;
        }
        Ok(total)
    }
}

/// Incremental body decoder (chunked or content-length framing).
#[derive(Debug)]
enum Framing {
    Length(usize),
    Chunked,
    /// No framing header: read to connection close.
    Eof,
}

#[derive(Debug)]
struct BodyReader {
    r: BufReader<TcpStream>,
    framing: Framing,
    done: bool,
}

impl BodyReader {
    /// The next piece of the body, or `None` at the end.
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            return Ok(None);
        }
        match self.framing {
            Framing::Length(remaining) => {
                if remaining == 0 {
                    self.done = true;
                    return Ok(None);
                }
                let take = remaining.min(16 * 1024);
                let mut buf = vec![0u8; take];
                self.r.read_exact(&mut buf)?;
                self.framing = Framing::Length(remaining - take);
                Ok(Some(buf))
            }
            Framing::Chunked => {
                let line = read_line_crlf(&mut self.r)?;
                // Tolerate (and ignore) chunk extensions after ';'.
                let size_text = line.split(';').next().unwrap_or("").trim();
                let size = usize::from_str_radix(size_text, 16).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad chunk size line")
                })?;
                // A hostile size must error, not abort on allocation.
                if size > MAX_CHUNK {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "chunk size exceeds the 16 MiB cap",
                    ));
                }
                if size == 0 {
                    // Trailing CRLF after the last-chunk line.
                    let _ = read_line_crlf(&mut self.r);
                    self.done = true;
                    return Ok(None);
                }
                let mut buf = vec![0u8; size];
                self.r.read_exact(&mut buf)?;
                let mut crlf = [0u8; 2];
                self.r.read_exact(&mut crlf)?;
                Ok(Some(buf))
            }
            Framing::Eof => {
                let mut buf = vec![0u8; 16 * 1024];
                let n = self.r.read(&mut buf)?;
                if n == 0 {
                    self.done = true;
                    return Ok(None);
                }
                buf.truncate(n);
                Ok(Some(buf))
            }
        }
    }
}

/// Sends one request to `addr` and returns the parsed response head with
/// a streaming body reader. `headers` are extra request headers.
///
/// # Errors
///
/// Propagates connect/transport failures and malformed responses.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    write!(w, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n")?;
    for (k, v) in headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "Content-Length: {}\r\n\r\n", body.len())?;
    w.write_all(body)?;
    w.flush()?;
    let mut r = BufReader::new(stream);
    let status_line = read_line_crlf(&mut r)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut resp_headers = Vec::new();
    loop {
        let line = read_line_crlf(&mut r)?;
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            resp_headers.push((k.trim().to_lowercase(), v.trim().to_string()));
        }
    }
    let framing = if resp_headers.iter().any(|(k, v)| k == "transfer-encoding" && v == "chunked") {
        Framing::Chunked
    } else if let Some((_, v)) = resp_headers.iter().find(|(k, _)| k == "content-length") {
        Framing::Length(
            v.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?,
        )
    } else {
        Framing::Eof
    };
    Ok(Response { status, headers: resp_headers, body: BodyReader { r, framing, done: false } })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\n\
                    Content-Length: 5\r\n\r\nhello";
        let mut r = io::BufReader::new(&raw[..]);
        let req = read_request(&mut r).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"[..],
        ] {
            let mut r = io::BufReader::new(raw);
            assert!(read_request(&mut r).is_err());
        }
    }

    /// A reader that yields a prefix, then fails like an expired socket
    /// deadline.
    struct StallAfter {
        data: Vec<u8>,
        at: usize,
    }

    impl io::Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            let n = buf.len().min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn deadline_expiry_is_the_typed_timeout_not_a_bad_request() {
        // Stall mid-head and mid-body: both must classify as timeout.
        for raw in
            [&b"GET /stats HT"[..], &b"POST /jobs HTTP/1.1\r\nContent-Length: 40\r\n\r\nsui"[..]]
        {
            let mut r = io::BufReader::new(StallAfter { data: raw.to_vec(), at: 0 });
            let err = read_request(&mut r).expect_err("stalled request");
            assert_eq!(err.code(), "timeout", "{raw:?}");
            assert_eq!(err.http_status(), 408);
        }
    }

    #[test]
    fn hostile_chunk_sizes_error_instead_of_allocating() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut r = BufReader::new(stream.try_clone().expect("clone"));
            read_request(&mut r).expect("request");
            // A chunked response claiming an absurd chunk size.
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                      ffffffffffffff\r\nnope\r\n0\r\n\r\n",
                )
                .unwrap();
        });
        let resp = request(&addr, "GET", "/x", &[], b"").unwrap();
        let err = resp.into_body().expect_err("hostile chunk size");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        server.join().unwrap();
    }

    #[test]
    fn extra_headers_ride_the_response() {
        let mut buf = Vec::new();
        write_response_ex(
            &mut buf,
            429,
            "application/json",
            &[("Retry-After".to_string(), "3".to_string())],
            b"{}",
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{s}");
        assert!(s.contains("Retry-After: 3\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n{}"), "{s}");
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::start(&mut buf, 200, "text/plain").expect("head");
            w.chunk(b"hello ").expect("chunk");
            w.chunk(b"").expect("empty chunk is a no-op");
            w.chunk(b"world").expect("chunk");
            w.finish().expect("finish");
        }
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Transfer-Encoding: chunked"), "{s}");
        assert!(s.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"), "{s}");
    }

    #[test]
    fn request_response_round_trip_over_tcp() {
        // A one-shot echo server: proves the client decodes both
        // framings produced by our own writers.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            for i in 0..2 {
                let (stream, _) = listener.accept().expect("accept");
                let mut r = BufReader::new(stream.try_clone().expect("clone"));
                let req = read_request(&mut r).expect("request");
                let mut w = stream;
                if i == 0 {
                    write_response(&mut w, 200, "text/plain", &req.body).expect("respond");
                } else {
                    let mut cw = ChunkedWriter::start(&mut w, 200, "text/plain").expect("head");
                    for piece in req.body.chunks(3) {
                        cw.chunk(piece).expect("chunk");
                    }
                    cw.finish().expect("finish");
                }
            }
        });
        for _ in 0..2 {
            let resp =
                request(&addr, "POST", "/echo", &[("x-tenant", "t")], b"payload-bytes").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.into_body().unwrap(), b"payload-bytes");
        }
        server.join().expect("server thread");
    }
}
