//! Seeded chaos injection for the serving layer: wire faults on accepted
//! connections and disk faults on checkpoint appends.
//!
//! This extends the `crates/faults` philosophy (deterministic, seeded,
//! spec-driven fault injection) one level up the stack: where
//! `FaultSpec` breaks the simulated DRAM, [`ChaosSpec`] breaks the
//! daemon's own transport and spool, so every serving-layer defense
//! (read/write deadlines, client retry, CRC-checked spool records,
//! overload shedding) ships with the seeded attack that would kill it.
//!
//! ## Grammar
//!
//! `--chaos` takes a comma-separated `key=value` list of probabilities,
//! mirroring `--faults`:
//!
//! | key | fault injected |
//! |---|---|
//! | `torn=p` | the request stream ends after a seeded prefix (client died mid-send) |
//! | `reset=p` | the connection is dropped before reading anything (RST-style) |
//! | `dribble=p` | the read stalls past the deadline after a seeded prefix (slow loris) |
//! | `disconnect=p` | the response stream is cut after a seeded prefix |
//! | `garble=p` | seeded bytes of the request body are flipped (malformed spec) |
//! | `ckpt-corrupt=p` | seeded bytes of a spool record are flipped after its CRC is computed |
//! | `ckpt-short=p` | only a seeded prefix of a spool record reaches the file |
//! | `ckpt-enospc=p` | the spool append fails outright (ENOSPC-style) |
//!
//! plus the bare preset `storm` (aggressive-but-survivable rates for all
//! eight). Determinism: each connection and each append draws its own
//! [`fgdram_faults::Dice`] stream from `--chaos-seed` via
//! [`fgdram_faults::derive_seed`], keyed by a monotone event counter —
//! so a single-client interaction replays exactly under a fixed seed.
//!
//! At most one wire fault fires per connection (rolled in the fixed
//! order reset, torn, dribble, disconnect, garble) and at most one disk
//! fault per append (enospc, short, corrupt) — first hit wins, and every
//! roll is consumed either way so probabilities compose independently.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use fgdram_faults::Dice;

/// A parsed, validated chaos specification (all rates default to 0).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSpec {
    /// P(request stream torn after a seeded prefix).
    pub torn: f64,
    /// P(connection dropped before the request is read).
    pub reset: f64,
    /// P(read stalls past the deadline — surfaces as a timeout).
    pub dribble: f64,
    /// P(response stream cut after a seeded prefix).
    pub disconnect: f64,
    /// P(request body bytes flipped before parsing).
    pub garble: f64,
    /// P(spool record corrupted after its CRC was computed).
    pub ckpt_corrupt: f64,
    /// P(spool record truncated to a seeded prefix).
    pub ckpt_short: f64,
    /// P(spool append fails outright).
    pub ckpt_enospc: f64,
}

/// Why a chaos spec failed to parse (same stance as `FaultSpec`: typed,
/// never a panic, mapped to a usage error by the CLI).
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosSpecError {
    /// Key is not part of the grammar.
    UnknownKey(String),
    /// Value failed to parse or a probability was outside `[0, 1]`.
    BadValue {
        /// The offending key.
        key: String,
        /// The offending value text.
        value: String,
    },
}

impl core::fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChaosSpecError::UnknownKey(k) => write!(f, "unknown chaos-spec key '{k}'"),
            ChaosSpecError::BadValue { key, value } => {
                write!(f, "chaos-spec {key}: bad probability '{value}' (want [0, 1])")
            }
        }
    }
}

impl std::error::Error for ChaosSpecError {}

impl ChaosSpec {
    /// Parses the comma-separated `key=value` grammar (see module docs).
    ///
    /// # Errors
    ///
    /// A [`ChaosSpecError`] naming the first offending item.
    pub fn parse(s: &str) -> Result<ChaosSpec, ChaosSpecError> {
        let mut spec = ChaosSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = match item.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => {
                    if item == "storm" {
                        spec.apply_storm_preset();
                        continue;
                    }
                    return Err(ChaosSpecError::UnknownKey(item.to_string()));
                }
            };
            let p: f64 =
                value.parse().ok().filter(|p| (0.0..=1.0).contains(p)).ok_or_else(|| {
                    ChaosSpecError::BadValue { key: key.to_string(), value: value.to_string() }
                })?;
            match key {
                "torn" => spec.torn = p,
                "reset" => spec.reset = p,
                "dribble" => spec.dribble = p,
                "disconnect" => spec.disconnect = p,
                "garble" => spec.garble = p,
                "ckpt-corrupt" => spec.ckpt_corrupt = p,
                "ckpt-short" => spec.ckpt_short = p,
                "ckpt-enospc" => spec.ckpt_enospc = p,
                other => return Err(ChaosSpecError::UnknownKey(other.to_string())),
            }
        }
        Ok(spec)
    }

    /// The aggressive-but-survivable preset behind the bare `storm`
    /// item: every fault class fires often enough to exercise its
    /// defense, rarely enough that a retrying client still converges.
    fn apply_storm_preset(&mut self) {
        self.torn = 0.15;
        self.reset = 0.1;
        self.dribble = 0.1;
        self.disconnect = 0.15;
        self.garble = 0.05;
        self.ckpt_corrupt = 0.2;
        self.ckpt_short = 0.15;
        self.ckpt_enospc = 0.1;
    }

    /// True when no fault can ever fire — the chaos layer is not engaged
    /// and the daemon behaves byte-identically to one built without it.
    pub fn is_noop(&self) -> bool {
        self.torn == 0.0
            && self.reset == 0.0
            && self.dribble == 0.0
            && self.disconnect == 0.0
            && self.garble == 0.0
            && self.ckpt_corrupt == 0.0
            && self.ckpt_short == 0.0
            && self.ckpt_enospc == 0.0
    }
}

/// Monotone injection counters, surfaced under `"chaos"` in `/stats`.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Request streams torn short.
    pub torn: AtomicU64,
    /// Connections reset before the request was read.
    pub reset: AtomicU64,
    /// Reads stalled into the deadline.
    pub dribble: AtomicU64,
    /// Response streams cut mid-write.
    pub disconnect: AtomicU64,
    /// Request bodies garbled.
    pub garble: AtomicU64,
    /// Spool records corrupted.
    pub ckpt_corrupt: AtomicU64,
    /// Spool records short-written.
    pub ckpt_short: AtomicU64,
    /// Spool appends failed outright.
    pub ckpt_enospc: AtomicU64,
}

impl ChaosStats {
    /// Renders the counters as the `/stats` JSON fragment (no trailing
    /// newline; the caller embeds it).
    pub fn json(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "{{\"wire\":{{\"torn\":{},\"reset\":{},\"dribble\":{},\"disconnect\":{},\
             \"garble\":{}}},\"disk\":{{\"corrupt\":{},\"short\":{},\"enospc\":{}}}}}",
            g(&self.torn),
            g(&self.reset),
            g(&self.dribble),
            g(&self.disconnect),
            g(&self.garble),
            g(&self.ckpt_corrupt),
            g(&self.ckpt_short),
            g(&self.ckpt_enospc)
        )
    }
}

/// What the chaos layer decided to do to one connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WirePlan {
    /// Leave the connection alone.
    None,
    /// Drop it before reading anything.
    Reset,
    /// End the request stream after `after` bytes.
    Torn {
        /// Bytes delivered before the tear.
        after: usize,
    },
    /// Stall the read (deadline-style timeout) after `after` bytes.
    Dribble {
        /// Bytes delivered before the stall.
        after: usize,
    },
    /// Cut the response stream after `after` bytes.
    Disconnect {
        /// Bytes written before the cut.
        after: usize,
    },
    /// Flip request-body bytes with the given per-byte probability.
    Garble {
        /// Per-byte flip probability (seeded per connection).
        rate: f64,
    },
}

/// The live chaos engine: one per daemon, shared by the connection
/// handlers and the spool writers.
#[derive(Debug)]
pub struct Chaos {
    spec: ChaosSpec,
    seed: u64,
    conns: AtomicU64,
    appends: AtomicU64,
    /// Injection counters (public so `/stats` can render them).
    pub stats: ChaosStats,
}

/// What the chaos layer decided to do to one spool append.
#[derive(Debug, Clone, PartialEq)]
pub enum DiskPlan {
    /// Write the record faithfully.
    None,
    /// Fail the append outright (ENOSPC-style).
    Enospc,
    /// Write only the first `keep` bytes of the record.
    Short {
        /// Bytes of the record that reach the file.
        keep: usize,
    },
    /// Flip `flips` seeded bytes of the record before writing.
    Corrupt {
        /// Number of byte flips.
        flips: usize,
        /// The dice stream to draw flip positions from.
        dice: Dice,
    },
}

impl Chaos {
    /// Builds the engine for one daemon run.
    pub fn new(spec: ChaosSpec, seed: u64) -> Chaos {
        Chaos {
            spec,
            seed,
            conns: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            stats: ChaosStats::default(),
        }
    }

    /// The parsed spec this engine runs.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Draws the wire plan for the next accepted connection (and counts
    /// the injection), plus the rest of the connection's dice stream —
    /// [`ChaosReader`] draws garble positions from it. Each connection
    /// consumes one counter value, so a sequential client replays
    /// exactly under a fixed seed.
    pub fn wire_plan(&self) -> (WirePlan, Dice) {
        let n = self.conns.fetch_add(1, Ordering::Relaxed);
        let mut dice = Dice::for_site(self.seed, "wire", n);
        // Fixed roll order; every roll consumed so the streams stay
        // aligned when individual rates change.
        let reset = dice.roll(self.spec.reset);
        let torn = dice.roll(self.spec.torn);
        let dribble = dice.roll(self.spec.dribble);
        let disconnect = dice.roll(self.spec.disconnect);
        let garble = dice.roll(self.spec.garble);
        let plan = if reset {
            WirePlan::Reset
        } else if torn {
            WirePlan::Torn { after: dice.range(1, 64) as usize }
        } else if dribble {
            WirePlan::Dribble { after: dice.range(1, 64) as usize }
        } else if disconnect {
            WirePlan::Disconnect { after: dice.range(1, 160) as usize }
        } else if garble {
            WirePlan::Garble { rate: 0.02 + 0.18 * (dice.range(0, 1000) as f64 / 1000.0) }
        } else {
            WirePlan::None
        };
        let counter = match &plan {
            WirePlan::None => None,
            WirePlan::Reset => Some(&self.stats.reset),
            WirePlan::Torn { .. } => Some(&self.stats.torn),
            WirePlan::Dribble { .. } => Some(&self.stats.dribble),
            WirePlan::Disconnect { .. } => Some(&self.stats.disconnect),
            WirePlan::Garble { .. } => Some(&self.stats.garble),
        };
        if let Some(c) = counter {
            c.fetch_add(1, Ordering::Relaxed);
        }
        (plan, dice)
    }

    /// Draws the disk plan for the next spool append of a `record_len`
    /// byte record (and counts the injection).
    pub fn disk_plan(&self, record_len: usize) -> DiskPlan {
        let n = self.appends.fetch_add(1, Ordering::Relaxed);
        let mut dice = Dice::for_site(self.seed, "disk", n);
        let enospc = dice.roll(self.spec.ckpt_enospc);
        let short = dice.roll(self.spec.ckpt_short);
        let corrupt = dice.roll(self.spec.ckpt_corrupt);
        if enospc {
            self.stats.ckpt_enospc.fetch_add(1, Ordering::Relaxed);
            DiskPlan::Enospc
        } else if short && record_len > 1 {
            self.stats.ckpt_short.fetch_add(1, Ordering::Relaxed);
            DiskPlan::Short { keep: dice.range(1, record_len as u64) as usize }
        } else if corrupt && record_len > 0 {
            self.stats.ckpt_corrupt.fetch_add(1, Ordering::Relaxed);
            DiskPlan::Corrupt { flips: dice.range(1, 4) as usize, dice }
        } else {
            DiskPlan::None
        }
    }
}

/// A reader that applies a [`WirePlan`] to an inbound request stream.
/// Wrap the raw `TcpStream` with this, then put the `BufReader` on top.
#[derive(Debug)]
pub struct ChaosReader<R: Read> {
    inner: R,
    plan: WirePlan,
    seen: usize,
    /// Rolling 4-byte window used to find the head/body boundary for
    /// garbling (we only corrupt the body: a garbled head is just a torn
    /// request, but a garbled body must reach the spec parser).
    tail: [u8; 4],
    in_body: bool,
    dice: Dice,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner` under `plan`, drawing garble positions from `dice`.
    pub fn new(inner: R, plan: WirePlan, dice: Dice) -> ChaosReader<R> {
        ChaosReader { inner, plan, seen: 0, tail: [0; 4], in_body: false, dice }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let budget = match self.plan {
            WirePlan::Torn { after } => {
                if self.seen >= after {
                    return Ok(0); // stream torn: looks like client EOF
                }
                after - self.seen
            }
            WirePlan::Dribble { after } => {
                if self.seen >= after {
                    // The dribbling client never sends the next byte; the
                    // socket deadline fires. Surfaced directly as the
                    // same error a real `SO_RCVTIMEO` expiry produces.
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "chaos dribble stall"));
                }
                after - self.seen
            }
            _ => buf.len().max(1),
        };
        let take = buf.len().min(budget);
        let n = self.inner.read(&mut buf[..take])?;
        if let WirePlan::Garble { rate } = self.plan {
            for b in &mut buf[..n] {
                if self.in_body {
                    if self.dice.roll(rate) {
                        let mask = self.dice.range(1, 256) as u8;
                        *b ^= mask;
                    }
                } else {
                    self.tail = [self.tail[1], self.tail[2], self.tail[3], *b];
                    if self.tail == *b"\r\n\r\n" {
                        self.in_body = true;
                    }
                }
            }
        }
        self.seen += n;
        Ok(n)
    }
}

/// A writer that applies a [`WirePlan::Disconnect`] to the response
/// stream: after the budgeted bytes, every write fails like a peer
/// hangup.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    cut_after: Option<usize>,
    written: usize,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`; `cut_after` is `Some(n)` for a disconnect plan.
    pub fn new(inner: W, cut_after: Option<usize>) -> ChaosWriter<W> {
        ChaosWriter { inner, cut_after, written: 0 }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(cut) = self.cut_after {
            if self.written >= cut {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "chaos disconnect: peer gone",
                ));
            }
            let take = buf.len().min(cut - self.written);
            let n = self.inner.write(&buf[..take])?;
            self.written += n;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead as _;

    #[test]
    fn parses_full_grammar_and_storm_preset() {
        let s = ChaosSpec::parse(
            "torn=0.1,reset=0.2,dribble=0.3,disconnect=0.4,garble=0.05,\
             ckpt-corrupt=0.6,ckpt-short=0.7,ckpt-enospc=0.8",
        )
        .unwrap();
        assert_eq!(s.torn, 0.1);
        assert_eq!(s.reset, 0.2);
        assert_eq!(s.dribble, 0.3);
        assert_eq!(s.disconnect, 0.4);
        assert_eq!(s.garble, 0.05);
        assert_eq!(s.ckpt_corrupt, 0.6);
        assert_eq!(s.ckpt_short, 0.7);
        assert_eq!(s.ckpt_enospc, 0.8);
        assert!(!s.is_noop());
        let storm = ChaosSpec::parse("storm").unwrap();
        assert!(!storm.is_noop());
        // Preset then override: later items win.
        assert_eq!(ChaosSpec::parse("storm,reset=0").unwrap().reset, 0.0);
    }

    #[test]
    fn empty_and_zero_specs_are_noop() {
        assert!(ChaosSpec::parse("").unwrap().is_noop());
        assert!(ChaosSpec::parse("torn=0,reset=0.0").unwrap().is_noop());
        assert_eq!(ChaosSpec::default(), ChaosSpec::parse("").unwrap());
    }

    #[test]
    fn rejects_malformed_items() {
        assert!(matches!(ChaosSpec::parse("bogus=1"), Err(ChaosSpecError::UnknownKey(_))));
        assert!(matches!(ChaosSpec::parse("frob"), Err(ChaosSpecError::UnknownKey(_))));
        assert!(matches!(ChaosSpec::parse("torn=zebra"), Err(ChaosSpecError::BadValue { .. })));
        assert!(matches!(ChaosSpec::parse("torn=1.5"), Err(ChaosSpecError::BadValue { .. })));
        assert!(matches!(ChaosSpec::parse("torn=-0.1"), Err(ChaosSpecError::BadValue { .. })));
    }

    #[test]
    fn wire_plans_replay_under_a_fixed_seed() {
        let spec = ChaosSpec::parse("storm").unwrap();
        let a = Chaos::new(spec.clone(), 42);
        let b = Chaos::new(spec, 42);
        let plans_a: Vec<WirePlan> = (0..64).map(|_| a.wire_plan().0).collect();
        let plans_b: Vec<WirePlan> = (0..64).map(|_| b.wire_plan().0).collect();
        assert_eq!(plans_a, plans_b);
        assert!(plans_a.iter().any(|p| *p != WirePlan::None), "storm injects something in 64");
        assert!(plans_a.contains(&WirePlan::None), "storm is not total loss");
    }

    #[test]
    fn noop_spec_never_injects() {
        let c = Chaos::new(ChaosSpec::default(), 7);
        for _ in 0..256 {
            assert_eq!(c.wire_plan().0, WirePlan::None);
            assert_eq!(c.disk_plan(100), DiskPlan::None);
        }
    }

    #[test]
    fn torn_reader_ends_the_stream_early() {
        let data = b"POST /jobs HTTP/1.1\r\n\r\nsuite=compute\n";
        let mut r =
            ChaosReader::new(&data[..], WirePlan::Torn { after: 10 }, Dice::for_site(0, "wire", 0));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, &data[..10]);
    }

    #[test]
    fn dribble_reader_times_out_after_its_prefix() {
        let data = b"GET /stats HTTP/1.1\r\n\r\n";
        let mut r = ChaosReader::new(
            &data[..],
            WirePlan::Dribble { after: 5 },
            Dice::for_site(0, "wire", 0),
        );
        let mut buf = [0u8; 64];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 5);
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn garble_reader_leaves_the_head_alone_and_flips_the_body() {
        let head = b"POST /jobs HTTP/1.1\r\nContent-Length: 14\r\n\r\n";
        let body = b"suite=compute\n";
        let mut data = head.to_vec();
        data.extend_from_slice(body);
        let mut r = ChaosReader::new(
            &data[..],
            WirePlan::Garble { rate: 1.0 },
            Dice::for_site(3, "wire", 1),
        );
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(&out[..head.len()], head, "head untouched");
        assert_ne!(&out[head.len()..], body, "body flipped");
        // And a BufReader stacks on top without issue.
        let mut br = std::io::BufReader::new(ChaosReader::new(
            &data[..],
            WirePlan::None,
            Dice::for_site(0, "wire", 0),
        ));
        let mut line = String::new();
        br.read_line(&mut line).unwrap();
        assert_eq!(line, "POST /jobs HTTP/1.1\r\n");
    }

    #[test]
    fn disconnect_writer_cuts_after_its_budget() {
        let mut sink = Vec::new();
        let mut w = ChaosWriter::new(&mut sink, Some(8));
        assert_eq!(w.write(b"HTTP/1.1 200").unwrap(), 8);
        assert_eq!(w.write(b"more").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(sink, b"HTTP/1.1");
    }

    #[test]
    fn disk_plans_cover_all_faults_and_replay() {
        let spec = ChaosSpec::parse("ckpt-corrupt=0.4,ckpt-short=0.3,ckpt-enospc=0.2").unwrap();
        let a = Chaos::new(spec.clone(), 9);
        let b = Chaos::new(spec, 9);
        let mut kinds = [0u32; 4];
        for _ in 0..256 {
            let pa = a.disk_plan(200);
            assert_eq!(pa, b.disk_plan(200));
            match pa {
                DiskPlan::None => kinds[0] += 1,
                DiskPlan::Enospc => kinds[1] += 1,
                DiskPlan::Short { keep } => {
                    assert!((1..200).contains(&keep));
                    kinds[2] += 1;
                }
                DiskPlan::Corrupt { flips, .. } => {
                    assert!((1..4).contains(&flips));
                    kinds[3] += 1;
                }
            }
        }
        assert!(kinds.iter().all(|&k| k > 0), "all plan kinds drawn: {kinds:?}");
        assert_eq!(a.stats.ckpt_enospc.load(Ordering::Relaxed), u64::from(kinds[1]));
    }
}
