//! The job server: bounded admission, deficit-round-robin fair-share
//! scheduling across tenants, a cell-granular worker pool, and the HTTP
//! front end.
//!
//! ## Scheduling
//!
//! Jobs decompose into independent cells (the same workload-major cell
//! table [`fgdram_core::suite`] defines). Each tenant owns a FIFO of
//! queued cells; workers pick the next cell by deficit round robin —
//! every visit to a tenant adds a fixed quantum of simulated-ns to its
//! deficit counter, and a cell is claimed once the deficit covers its
//! cost (warmup + window). A tenant submitting many expensive cells
//! therefore gets the same simulated-ns throughput as one submitting
//! many cheap ones, rather than the same cell count.
//!
//! ## Admission
//!
//! `POST /jobs` is rejected *before* any work is queued when the job's
//! cost exceeds the per-job budget (`budget`, HTTP 422), the tenant is
//! at its in-flight job cap (`quota`, 429), or the bounded global cell
//! queue cannot take the job's cells (`queue-full`, 429) — so the queue
//! cannot grow without bound no matter how many tenants flood it.
//!
//! ## Determinism
//!
//! Workers complete cells in arbitrary order; results land in the job's
//! input-order artifact table, and the final report is rendered by
//! [`fgdram_core::suite::render_report`] — the same code path as the
//! CLI, so the served report is byte-identical to `fgdram_sim suite`
//! with the same parameters at any worker count.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use fgdram_core::report::SimReport;
use fgdram_core::suite::{render_report, SuiteSpec, SUITE_KINDS};
use fgdram_core::SimError;
use fgdram_model::config::DramKind;
use fgdram_workloads::Workload;

use crate::chaos::{Chaos, ChaosReader, ChaosSpec, ChaosWriter, WirePlan};
use crate::error::{json_escape_into, ServeError};
use crate::http::{read_request, write_error, write_response, ChunkedWriter, Request};
use crate::spec;
use crate::spool::{Artifact, CkptWriter, Spool, SpoolStatus};

/// Daemon configuration (all limits have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Engine lanes inside each simulation cell (>= 1). Output is
    /// byte-identical at any value, so this is a deployment knob and
    /// not part of the wire-visible job spec.
    pub engine_threads: usize,
    /// Bound on cells queued across all tenants (backpressure limit).
    pub max_queued_cells: usize,
    /// Per-tenant cap on jobs in flight (queued or running).
    pub tenant_max_inflight: usize,
    /// Per-job budget in cells x simulated-ns.
    pub max_job_cost: u64,
    /// Deficit-round-robin quantum in simulated-ns per scheduler visit.
    pub quantum: u64,
    /// Directory for job checkpoint files.
    pub spool_dir: PathBuf,
    /// Per-connection read deadline: a peer that dribbles its request
    /// slower than this gets a typed 408 (slow-loris defense).
    pub read_timeout: Duration,
    /// Per-connection write deadline: a peer that stops draining its
    /// response tears the connection down instead of pinning a thread.
    pub write_timeout: Duration,
    /// Overload shed threshold in queued simulated-ns: submits that
    /// would push the backlog past this get a typed 429 `overloaded`
    /// with a `Retry-After` hint instead of ever-growing queue wait.
    pub shed_cost: u64,
    /// Seeded fault injection (`--chaos`); a no-op spec disables the
    /// chaos layer entirely.
    pub chaos: ChaosSpec,
    /// Seed for the chaos dice streams (`--chaos-seed`).
    pub chaos_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            engine_threads: 1,
            max_queued_cells: 4096,
            tenant_max_inflight: 4,
            max_job_cost: 2_000_000_000,
            quantum: 200_000,
            spool_dir: PathBuf::from("fgdram-spool"),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            shed_cost: 20_000_000_000,
            chaos: ChaosSpec::default(),
            chaos_seed: 0,
        }
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
            Phase::Canceled => "canceled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed | Phase::Canceled)
    }
}

/// A terminal job error in wire form (survives spool round trips, where
/// the original [`SimError`] cannot be reconstructed).
#[derive(Debug, Clone)]
struct JobError {
    code: String,
    exit_code: u8,
    message: String,
}

impl JobError {
    fn from_serve(e: &ServeError) -> Self {
        JobError {
            code: e.code().to_string(),
            exit_code: e.client_exit_code(),
            message: e.to_string(),
        }
    }

    fn http_status(&self) -> u16 {
        match self.code.as_str() {
            "config" | "bad-request" => 400,
            "canceled" => 409,
            _ => 500,
        }
    }

    fn json_body(&self) -> String {
        let mut msg = String::new();
        json_escape_into(&mut msg, &self.message);
        format!(
            "{{\"error\":{{\"code\":\"{}\",\"exit_code\":{},\"message\":\"{}\"}}}}\n",
            self.code, self.exit_code, msg
        )
    }
}

struct Job {
    tenant: String,
    spec: SuiteSpec,
    workloads: Vec<Workload>,
    artifacts: Vec<Option<Artifact>>,
    completed: usize,
    phase: Phase,
    error: Option<JobError>,
    report: Option<String>,
    writer: Option<CkptWriter>,
}

impl Job {
    fn total(&self) -> usize {
        self.artifacts.len()
    }

    fn render_final(&mut self) {
        let reports: Vec<SimReport> = self
            .artifacts
            .iter()
            .map(|a| a.as_ref().expect("all cells done").report.clone())
            .collect();
        self.report = Some(render_report(self.spec.which, &self.workloads, &reports));
    }
}

#[derive(Default)]
struct TenantQ {
    queue: VecDeque<(String, usize)>,
    deficit: u64,
    inflight_jobs: usize,
}

/// Monotonic counters exposed on `GET /stats`.
#[derive(Debug, Default, Clone)]
struct Counters {
    submitted: u64,
    done: u64,
    failed: u64,
    canceled: u64,
    /// Submits answered with an existing job via the idempotency key.
    deduped: u64,
    executed_cells: u64,
    resumed_cells: u64,
    rejected_queue: u64,
    rejected_quota: u64,
    rejected_budget: u64,
    rejected_overload: u64,
    /// Connections torn down by the read deadline (slow-loris style).
    timeouts: u64,
    /// Requests rejected as unparseable (typed 400, not a panic).
    malformed: u64,
    /// Spool records discarded on load (truncated or corrupt).
    skipped_records: u64,
    /// Spool records deduplicated on load (last valid won).
    duplicate_records: u64,
}

struct Inner {
    jobs: BTreeMap<String, Job>,
    tenants: BTreeMap<String, TenantQ>,
    /// Rotation order of tenants with non-empty queues.
    rr: VecDeque<String>,
    queued_cells: usize,
    /// Simulated-ns cost of all queued cells (the shed metric).
    queued_cost: u64,
    /// Idempotency keys: `(tenant, key)` -> job id, for exactly-once
    /// submits across client retries (and daemon restarts, via the
    /// spool).
    keys: BTreeMap<(String, String), String>,
    next_id: u64,
    shutdown: bool,
    stats: Counters,
}

impl Inner {
    fn enqueue_cells(&mut self, tenant: &str, job_id: &str, cells: impl Iterator<Item = usize>) {
        let cell_cost = self.jobs.get(job_id).map_or(0, |j| j.spec.cell_cost().max(1));
        let t = self.tenants.entry(tenant.to_string()).or_default();
        let before = t.queue.len();
        t.queue.extend(cells.map(|i| (job_id.to_string(), i)));
        let added = t.queue.len() - before;
        self.queued_cells += added;
        self.queued_cost += added as u64 * cell_cost;
        if before == 0 && !t.queue.is_empty() && !self.rr.iter().any(|n| n == tenant) {
            self.rr.push_back(tenant.to_string());
        }
    }

    /// Removes every queued cell of `job_id` (cancel / fail path).
    fn drop_queued_cells(&mut self, tenant: &str, job_id: &str) {
        let cell_cost = self.jobs.get(job_id).map_or(0, |j| j.spec.cell_cost().max(1));
        if let Some(t) = self.tenants.get_mut(tenant) {
            let before = t.queue.len();
            t.queue.retain(|(j, _)| j != job_id);
            let removed = before - t.queue.len();
            self.queued_cells -= removed;
            self.queued_cost = self.queued_cost.saturating_sub(removed as u64 * cell_cost);
            if t.queue.is_empty() {
                t.deficit = 0;
                self.rr.retain(|n| n != tenant);
            }
        }
    }

    /// Deficit-round-robin claim of the next cell, or `None` when no
    /// cell is queued. Terminates because each full rotation adds a
    /// quantum to every queued tenant's deficit.
    fn claim(&mut self, quantum: u64) -> Option<(String, usize)> {
        let quantum = quantum.max(1);
        loop {
            let name = self.rr.front()?.clone();
            let t = self.tenants.get_mut(&name).expect("rr tenants exist");
            let (job_id, _) = t.queue.front().expect("rr tenants have queued cells");
            let cost = self.jobs[job_id].spec.cell_cost().max(1);
            if t.deficit >= cost {
                t.deficit -= cost;
                let (job_id, index) = t.queue.pop_front().expect("checked front");
                self.queued_cells -= 1;
                self.queued_cost = self.queued_cost.saturating_sub(cost);
                if t.queue.is_empty() {
                    t.deficit = 0;
                    self.rr.pop_front();
                }
                return Some((job_id, index));
            }
            t.deficit += quantum;
            self.rr.rotate_left(1);
        }
    }
}

struct Shared {
    m: Mutex<Inner>,
    cv: Condvar,
    cfg: ServeConfig,
    spool: Spool,
    /// The live chaos engine, `None` when `--chaos` is absent or no-op —
    /// the faithful path pays nothing for the layer's existence.
    chaos: Option<Arc<Chaos>>,
}

/// The job server. Bind it, then run [`Server::serve`] on a thread (or
/// the main thread) and stop it with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    stopping: AtomicBool,
}

const WAIT_TICK: Duration = Duration::from_millis(100);

impl Server {
    /// Binds the listener, loads the spool (resuming unfinished jobs),
    /// and starts the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and spool I/O failures.
    pub fn bind(cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let chaos =
            (!cfg.chaos.is_noop()).then(|| Arc::new(Chaos::new(cfg.chaos.clone(), cfg.chaos_seed)));
        let spool = Spool::open(&cfg.spool_dir, chaos.clone())?;
        let mut inner = Inner {
            jobs: BTreeMap::new(),
            tenants: BTreeMap::new(),
            rr: VecDeque::new(),
            queued_cells: 0,
            queued_cost: 0,
            keys: BTreeMap::new(),
            next_id: 1,
            shutdown: false,
            stats: Counters::default(),
        };
        for loaded in spool.load_all() {
            if let Some(n) = loaded.id.strip_prefix('j').and_then(|s| s.parse::<u64>().ok()) {
                inner.next_id = inner.next_id.max(n + 1);
            }
            let completed = loaded.cells.iter().filter(|c| c.is_some()).count();
            let total = loaded.cells.len();
            let mut job = Job {
                tenant: loaded.tenant.clone(),
                spec: loaded.spec,
                workloads: Vec::new(),
                artifacts: loaded.cells,
                completed,
                phase: Phase::Queued,
                error: None,
                report: None,
                writer: None,
            };
            job.workloads = job.spec.workloads();
            // Every checkpointed cell restored here is one not recomputed,
            // whether or not the job had finished.
            inner.stats.resumed_cells += completed as u64;
            inner.stats.submitted += 1;
            inner.stats.skipped_records += loaded.skipped_records;
            inner.stats.duplicate_records += loaded.duplicate_records;
            if let Some(k) = &loaded.key {
                inner.keys.insert((loaded.tenant.clone(), k.clone()), loaded.id.clone());
            }
            let resume = match loaded.status {
                SpoolStatus::Done if completed == total => {
                    job.phase = Phase::Done;
                    job.render_final();
                    false
                }
                SpoolStatus::Failed { code, exit_code, message } => {
                    job.phase = Phase::Failed;
                    job.error = Some(JobError { code, exit_code, message });
                    false
                }
                SpoolStatus::Canceled => {
                    job.phase = Phase::Canceled;
                    false
                }
                // In progress (or a corrupt done marker): re-enqueue the
                // missing cells; the completed ones are not recomputed.
                SpoolStatus::Done | SpoolStatus::InProgress => true,
            };
            let missing: Vec<usize> = job
                .artifacts
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.is_none().then_some(i))
                .collect();
            if resume {
                eprintln!(
                    "fgdram-serve: resumed {} for tenant '{}': {completed}/{total} cells \
                     checkpointed, re-queueing {}",
                    loaded.id,
                    job.tenant,
                    missing.len()
                );
                job.writer = Some(spool.reopen(&loaded.id)?);
            }
            let tenant = job.tenant.clone();
            let id = loaded.id.clone();
            // Insert before enqueueing: the queue accounting reads the
            // job's cell cost from the map.
            inner.jobs.insert(loaded.id, job);
            if resume {
                inner.enqueue_cells(&tenant, &id, missing.into_iter());
                inner.tenants.entry(tenant).or_default().inflight_jobs += 1;
            }
        }
        let shared =
            Arc::new(Shared { m: Mutex::new(inner), cv: Condvar::new(), cfg, spool, chaos });
        let n = if shared.cfg.workers == 0 {
            thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            shared.cfg.workers
        };
        let workers = (0..n)
            .map(|_| {
                let s = Arc::clone(&shared);
                thread::spawn(move || worker_main(&s))
            })
            .collect();
        Ok(Server {
            shared,
            listener,
            workers: Mutex::new(workers),
            stopping: AtomicBool::new(false),
        })
    }

    /// The bound socket address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until [`Server::shutdown`] is called. Each
    /// connection is served on its own thread (one request per
    /// connection).
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn serve(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || handle_conn(&shared, stream));
        }
        Ok(())
    }

    /// Stops the worker pool and wakes the accept loop. Cells already
    /// running finish and are checkpointed; everything else stays in the
    /// spool for the next start.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        {
            let mut g = self.shared.m.lock().expect("state lock");
            g.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Ok(addr) = self.local_addr() {
            // Wake the blocking accept so `serve` observes the flag.
            let _ = TcpStream::connect(addr);
        }
        let handles: Vec<_> = self.workers.lock().expect("workers lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: &Shared) {
    loop {
        let (job_id, index, spec, workload, kind) = {
            let mut g = shared.m.lock().expect("state lock");
            loop {
                if g.shutdown {
                    return;
                }
                if let Some((job_id, index)) = g.claim(shared.cfg.quantum) {
                    let job = g.jobs.get_mut(&job_id).expect("queued cells have jobs");
                    job.phase = Phase::Running;
                    let (w, kind) = {
                        let (w, kind) = job.spec.cell(&job.workloads, index);
                        (w.clone(), kind)
                    };
                    break (job_id, index, job.spec.clone(), w, kind);
                }
                g = shared.cv.wait_timeout(g, WAIT_TICK).expect("state lock").0;
            }
        };
        // The expensive part runs outside the lock.
        let result = run_one(&spec, &workload, kind, shared.cfg.engine_threads);
        let mut g = shared.m.lock().expect("state lock");
        deliver(&mut g, &job_id, index, result);
        drop(g);
        shared.cv.notify_all();
    }
}

fn run_one(
    spec: &SuiteSpec,
    w: &Workload,
    kind: DramKind,
    engine_threads: usize,
) -> Result<Artifact, SimError> {
    let cell = spec.run_cell_threaded(w, kind, engine_threads.max(1))?;
    let jsonl = cell.telemetry.as_ref().map(|t| SuiteSpec::telemetry_jsonl(w, kind, t));
    Ok(Artifact { report: cell.report, jsonl })
}

fn deliver(g: &mut Inner, job_id: &str, index: usize, result: Result<Artifact, SimError>) {
    g.stats.executed_cells += 1;
    enum After {
        Nothing,
        Done(String),
        Failed(String),
    }
    let after = {
        let Some(job) = g.jobs.get_mut(job_id) else { return };
        if job.phase.terminal() {
            // Cancelled or failed while this cell ran: drop the result.
            return;
        }
        match result {
            Ok(artifact) => {
                if let Some(w) = &mut job.writer {
                    if let Err(e) = w.append_cell(index, &artifact) {
                        eprintln!("fgdram-serve: checkpoint append failed for {job_id}: {e}");
                    }
                }
                job.artifacts[index] = Some(artifact);
                job.completed += 1;
                if job.completed == job.total() {
                    job.render_final();
                    job.phase = Phase::Done;
                    if let Some(w) = &mut job.writer {
                        if let Err(e) = w.mark_done() {
                            eprintln!(
                                "fgdram-serve: checkpoint done marker failed for {job_id}: {e}"
                            );
                        }
                    }
                    After::Done(job.tenant.clone())
                } else {
                    After::Nothing
                }
            }
            Err(e) => {
                let err = JobError::from_serve(&ServeError::from(e));
                if let Some(w) = &mut job.writer {
                    let _ = w.mark_failed(&err.code, err.exit_code, &err.message);
                }
                job.phase = Phase::Failed;
                job.error = Some(err);
                After::Failed(job.tenant.clone())
            }
        }
    };
    match after {
        After::Nothing => {}
        After::Done(tenant) => {
            g.stats.done += 1;
            release_tenant_slot(g, &tenant);
        }
        After::Failed(tenant) => {
            g.stats.failed += 1;
            g.drop_queued_cells(&tenant, job_id);
            release_tenant_slot(g, &tenant);
        }
    }
}

fn release_tenant_slot(g: &mut Inner, tenant: &str) {
    if let Some(t) = g.tenants.get_mut(tenant) {
        t.inflight_jobs = t.inflight_jobs.saturating_sub(1);
    }
}

/// What a successful `POST /jobs` resolved to.
struct Submitted {
    id: String,
    cells: usize,
    cost: u64,
    /// True when the idempotency key matched an existing job: nothing
    /// was queued, the client is re-attached to the original run.
    deduped: bool,
}

fn submit(
    shared: &Shared,
    tenant: &str,
    key: Option<&str>,
    body: &[u8],
) -> Result<Submitted, ServeError> {
    let body = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("job spec is not UTF-8".to_string()))?;
    let spec = spec::parse(body)?;
    let workloads = spec.workloads();
    if workloads.is_empty() {
        return Err(ServeError::BadRequest("spec selects zero workloads".to_string()));
    }
    let cells = workloads.len() * SUITE_KINDS.len();
    let cost = spec.cost();
    let mut g = shared.m.lock().expect("state lock");
    // Idempotency first, even during shutdown or overload: a retried
    // submit whose first response was lost must re-attach to the job
    // that already ran, never double-run it and never bounce.
    if let Some(k) = key {
        if let Some(id) = g.keys.get(&(tenant.to_string(), k.to_string())).cloned() {
            g.stats.deduped += 1;
            let (cells, cost) =
                g.jobs.get(&id).map_or((cells, cost), |j| (j.total(), j.spec.cost()));
            return Ok(Submitted { id, cells, cost, deduped: true });
        }
    }
    if g.shutdown {
        return Err(ServeError::ShuttingDown);
    }
    if cost > shared.cfg.max_job_cost {
        g.stats.rejected_budget += 1;
        return Err(ServeError::Budget { cost, limit: shared.cfg.max_job_cost });
    }
    let inflight = g.tenants.get(tenant).map_or(0, |t| t.inflight_jobs);
    if inflight >= shared.cfg.tenant_max_inflight {
        g.stats.rejected_quota += 1;
        return Err(ServeError::Quota {
            tenant: tenant.to_string(),
            inflight,
            limit: shared.cfg.tenant_max_inflight,
        });
    }
    if g.queued_cells + cells > shared.cfg.max_queued_cells {
        g.stats.rejected_queue += 1;
        return Err(ServeError::QueueFull {
            cells,
            queued: g.queued_cells,
            limit: shared.cfg.max_queued_cells,
        });
    }
    // Overload shedding: queue-wait is backlog cost over drain rate, so
    // once the backlog's simulated-ns cost exceeds the shed budget,
    // admitting more only grows latency for everyone. Typed 429 with a
    // Retry-After hint scaled to how far over budget the backlog is.
    if g.queued_cost.saturating_add(cost) > shared.cfg.shed_cost {
        g.stats.rejected_overload += 1;
        let retry_after_s = (1 + g.queued_cost / shared.cfg.shed_cost.max(1)).min(30);
        return Err(ServeError::Overloaded {
            queued_cost: g.queued_cost,
            limit: shared.cfg.shed_cost,
            retry_after_s,
        });
    }
    let id = format!("j{}", g.next_id);
    g.next_id += 1;
    let writer = shared
        .spool
        .create(&id, tenant, key, &spec)
        .map_err(|e| ServeError::Sim(SimError::Io { context: format!("spool {id}"), source: e }))?;
    let total = cells;
    g.jobs.insert(
        id.clone(),
        Job {
            tenant: tenant.to_string(),
            spec,
            workloads,
            artifacts: (0..total).map(|_| None).collect(),
            completed: 0,
            phase: Phase::Queued,
            error: None,
            report: None,
            writer: Some(writer),
        },
    );
    g.enqueue_cells(tenant, &id, 0..total);
    g.tenants.entry(tenant.to_string()).or_default().inflight_jobs += 1;
    g.stats.submitted += 1;
    if let Some(k) = key {
        g.keys.insert((tenant.to_string(), k.to_string()), id.clone());
    }
    drop(g);
    shared.cv.notify_all();
    Ok(Submitted { id, cells: total, cost, deduped: false })
}

fn cancel(shared: &Shared, job_id: &str) -> Result<String, ServeError> {
    let mut g = shared.m.lock().expect("state lock");
    let tenant = {
        let Some(job) = g.jobs.get_mut(job_id) else {
            return Err(ServeError::NotFound(format!("job {job_id}")));
        };
        if job.phase.terminal() {
            return Err(ServeError::BadRequest(format!(
                "job {job_id} already {}",
                job.phase.label()
            )));
        }
        job.phase = Phase::Canceled;
        if let Some(w) = &mut job.writer {
            let _ = w.mark_canceled();
        }
        job.tenant.clone()
    };
    g.stats.canceled += 1;
    g.drop_queued_cells(&tenant, job_id);
    release_tenant_slot(&mut g, &tenant);
    drop(g);
    shared.cv.notify_all();
    Ok(format!("{{\"job\":\"{job_id}\",\"state\":\"canceled\"}}\n"))
}

fn status_json(g: &Inner, job_id: &str) -> Result<String, ServeError> {
    let Some(job) = g.jobs.get(job_id) else {
        return Err(ServeError::NotFound(format!("job {job_id}")));
    };
    Ok(format!(
        "{{\"job\":\"{job_id}\",\"tenant\":\"{}\",\"state\":\"{}\",\"cells\":{},\
         \"completed\":{},\"cost\":{}}}\n",
        job.tenant,
        job.phase.label(),
        job.total(),
        job.completed,
        job.spec.cost()
    ))
}

fn stats_json(shared: &Shared, g: &Inner) -> String {
    let s = &g.stats;
    let mut tenants = String::new();
    for (i, (name, t)) in g.tenants.iter().enumerate() {
        if i > 0 {
            tenants.push(',');
        }
        let mut esc = String::new();
        json_escape_into(&mut esc, name);
        tenants.push_str(&format!(
            "\"{esc}\":{{\"queued_cells\":{},\"inflight_jobs\":{},\"deficit\":{}}}",
            t.queue.len(),
            t.inflight_jobs,
            t.deficit
        ));
    }
    let chaos = match &shared.chaos {
        Some(c) => format!(",\"chaos\":{}", c.stats.json()),
        None => String::new(),
    };
    format!(
        "{{\"jobs\":{{\"submitted\":{},\"done\":{},\"failed\":{},\"canceled\":{},\
         \"deduped\":{}}},\
         \"cells\":{{\"executed\":{},\"resumed\":{},\"queued\":{},\"queued_cost\":{},\
         \"skipped_records\":{},\"duplicate_records\":{}}},\
         \"rejects\":{{\"queue\":{},\"quota\":{},\"budget\":{},\"overload\":{}}},\
         \"wire\":{{\"timeouts\":{},\"malformed\":{}}},\
         \"tenants\":{{{tenants}}}{chaos}}}\n",
        s.submitted,
        s.done,
        s.failed,
        s.canceled,
        s.deduped,
        s.executed_cells,
        s.resumed_cells,
        g.queued_cells,
        g.queued_cost,
        s.skipped_records,
        s.duplicate_records,
        s.rejected_queue,
        s.rejected_quota,
        s.rejected_budget,
        s.rejected_overload,
        s.timeouts,
        s.malformed
    )
}

/// What the report long-poll resolved to.
enum ReportOutcome {
    Text(String),
    Error(u16, String),
}

fn wait_report(shared: &Shared, job_id: &str) -> ReportOutcome {
    let mut g = shared.m.lock().expect("state lock");
    loop {
        let Some(job) = g.jobs.get(job_id) else {
            let e = ServeError::NotFound(format!("job {job_id}"));
            return ReportOutcome::Error(e.http_status(), e.json_body());
        };
        match job.phase {
            Phase::Done => {
                return ReportOutcome::Text(job.report.clone().expect("done jobs have reports"))
            }
            Phase::Failed => {
                let e = job.error.clone().expect("failed jobs carry their error");
                return ReportOutcome::Error(e.http_status(), e.json_body());
            }
            Phase::Canceled => {
                let e = ServeError::Canceled;
                return ReportOutcome::Error(e.http_status(), e.json_body());
            }
            Phase::Queued | Phase::Running => {
                if g.shutdown {
                    let e = ServeError::ShuttingDown;
                    return ReportOutcome::Error(e.http_status(), e.json_body());
                }
            }
        }
        g = shared.cv.wait_timeout(g, WAIT_TICK).expect("state lock").0;
    }
}

/// Streams the job's telemetry JSONL in input-cell order as cells
/// complete. Ends early (after the cells that did complete) when the job
/// reaches a terminal state with gaps.
fn stream_telemetry<W: Write>(shared: &Shared, job_id: &str, w: &mut W) -> io::Result<()> {
    let total = {
        let g = shared.m.lock().expect("state lock");
        match g.jobs.get(job_id) {
            Some(job) => job.total(),
            None => {
                return write_error(w, &ServeError::NotFound(format!("job {job_id}")));
            }
        }
    };
    let mut cw = ChunkedWriter::start(w, 200, "application/jsonl")?;
    for index in 0..total {
        let piece: Option<Option<String>> = {
            let mut g = shared.m.lock().expect("state lock");
            loop {
                let Some(job) = g.jobs.get(job_id) else { break None };
                if let Some(a) = &job.artifacts[index] {
                    break Some(a.jsonl.clone());
                }
                if job.phase.terminal() || g.shutdown {
                    break None;
                }
                g = shared.cv.wait_timeout(g, WAIT_TICK).expect("state lock").0;
            }
        };
        match piece {
            Some(Some(jsonl)) => cw.chunk(jsonl.as_bytes())?,
            Some(None) => {} // cell done, telemetry disabled
            None => break,   // job died with this cell missing
        }
    }
    cw.finish()
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    match &shared.chaos {
        // Faithful path: `&TcpStream` is `Read + Write`, no wrapping.
        None => handle_conn_io(shared, &stream, &mut &stream),
        Some(chaos) => {
            let (plan, dice) = chaos.wire_plan();
            if plan == WirePlan::Reset {
                // Dropped before reading: the peer sees a reset/EOF.
                return;
            }
            let cut = match plan {
                WirePlan::Disconnect { after } => Some(after),
                _ => None,
            };
            let reader = ChaosReader::new(&stream, plan, dice);
            let mut writer = ChaosWriter::new(&stream, cut);
            handle_conn_io(shared, reader, &mut writer);
        }
    }
}

/// Serves one request over any transport — the real socket, or the
/// chaos-wrapped one.
fn handle_conn_io<R: Read, W: Write>(shared: &Shared, r: R, w: &mut W) {
    let mut reader = BufReader::new(r);
    let req = match read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let mut g = shared.m.lock().expect("state lock");
            match e {
                ServeError::Timeout(_) => g.stats.timeouts += 1,
                _ => g.stats.malformed += 1,
            }
            drop(g);
            let _ = write_error(w, &e);
            return;
        }
    };
    let _ = route(shared, &req, w);
}

fn tenant_of(req: &Request) -> Result<String, ServeError> {
    let t = req.header("x-tenant").unwrap_or("anon");
    let ok = !t.is_empty()
        && t.len() <= 64
        && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if ok {
        Ok(t.to_string())
    } else {
        Err(ServeError::BadRequest(format!("invalid tenant name '{t}'")))
    }
}

/// Validates the optional `X-Job-Key` idempotency header.
fn job_key_of(req: &Request) -> Result<Option<String>, ServeError> {
    match req.header("x-job-key") {
        None => Ok(None),
        Some(k) => {
            let ok = !k.is_empty()
                && k.len() <= 128
                && k.chars().all(|c| c.is_ascii_graphic() || c == ' ');
            if ok {
                Ok(Some(k.to_string()))
            } else {
                Err(ServeError::BadRequest(format!("invalid job key '{k}'")))
            }
        }
    }
}

fn route<W: Write>(shared: &Shared, req: &Request, w: &mut W) -> io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => write_response(w, 200, "text/plain", b"ok\n"),
        ("GET", "/stats") => {
            let body = stats_json(shared, &shared.m.lock().expect("state lock"));
            write_response(w, 200, "application/json", body.as_bytes())
        }
        ("POST", "/jobs") => {
            let outcome = tenant_of(req).and_then(|t| {
                let key = job_key_of(req)?;
                submit(shared, &t, key.as_deref(), &req.body)
            });
            match outcome {
                // 200 (not 201) for a dedup hit: nothing was created,
                // the client re-attached to the existing job.
                Ok(Submitted { id, cells, cost, deduped }) => {
                    let extra = if deduped { ",\"deduped\":true" } else { "" };
                    let body =
                        format!("{{\"job\":\"{id}\",\"cells\":{cells},\"cost\":{cost}{extra}}}\n");
                    let status = if deduped { 200 } else { 201 };
                    write_response(w, status, "application/json", body.as_bytes())
                }
                Err(e) => write_error(w, &e),
            }
        }
        (method, path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (id, action) = match rest.split_once('/') {
                Some((id, action)) => (id, Some(action)),
                None => (rest, None),
            };
            match (method, action) {
                ("GET", None) => {
                    let outcome = status_json(&shared.m.lock().expect("state lock"), id);
                    match outcome {
                        Ok(body) => write_response(w, 200, "application/json", body.as_bytes()),
                        Err(e) => write_error(w, &e),
                    }
                }
                ("GET", Some("report")) => match wait_report(shared, id) {
                    ReportOutcome::Text(t) => write_response(w, 200, "text/plain", t.as_bytes()),
                    ReportOutcome::Error(status, body) => {
                        write_response(w, status, "application/json", body.as_bytes())
                    }
                },
                ("GET", Some("telemetry")) => stream_telemetry(shared, id, w),
                ("DELETE", None) => match cancel(shared, id) {
                    Ok(body) => write_response(w, 200, "application/json", body.as_bytes()),
                    Err(e) => write_error(w, &e),
                },
                _ => write_error(w, &ServeError::NotFound(format!("{} {}", req.method, req.path))),
            }
        }
        _ => write_error(w, &ServeError::NotFound(format!("{} {}", req.method, req.path))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;

    fn test_cfg(workers: usize, tag: &str) -> (ServeConfig, PathBuf) {
        let dir = std::env::temp_dir().join(format!("fgdram_serve_t_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig { workers, spool_dir: dir.clone(), ..ServeConfig::default() };
        (cfg, dir)
    }

    fn start(cfg: ServeConfig) -> (Arc<Server>, String, thread::JoinHandle<io::Result<()>>) {
        let server = Arc::new(Server::bind(cfg, "127.0.0.1:0").expect("bind"));
        let addr = server.local_addr().expect("addr").to_string();
        let s2 = Arc::clone(&server);
        let h = thread::spawn(move || s2.serve());
        (server, addr, h)
    }

    fn small_spec(workloads: usize, window: u64) -> String {
        format!("suite=compute\nwarmup=200\nwindow={window}\nmax_workloads={workloads}\n")
    }

    #[test]
    fn submit_run_report_round_trip() {
        let (cfg, dir) = test_cfg(2, "roundtrip");
        let (server, addr, h) = start(cfg);
        let resp =
            http::request(&addr, "POST", "/jobs", &[], small_spec(2, 1500).as_bytes()).unwrap();
        assert_eq!(resp.status, 201);
        let body = String::from_utf8(resp.into_body().unwrap()).unwrap();
        assert!(body.contains("\"job\":\"j1\""), "{body}");
        assert!(body.contains("\"cells\":4"), "{body}");
        let report = http::request(&addr, "GET", "/jobs/j1/report", &[], b"").unwrap();
        assert_eq!(report.status, 200);
        let text = String::from_utf8(report.into_body().unwrap()).unwrap();
        assert!(text.contains("compute suite: gmean speedup"), "{text}");
        // Byte-identity against the shared renderer, computed directly.
        let spec = spec::parse(&small_spec(2, 1500)).unwrap();
        let ws = spec.workloads();
        let reports: Vec<SimReport> = (0..4)
            .map(|i| {
                let (w, k) = spec.cell(&ws, i);
                spec.run_cell(w, k).unwrap().report
            })
            .collect();
        assert_eq!(text, render_report(spec.which, &ws, &reports));
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn admission_rejects_are_typed() {
        let (mut cfg, dir) = test_cfg(1, "admission");
        cfg.max_job_cost = 2_000_000;
        cfg.max_queued_cells = 3; // any 2-workload job (4 cells) can never fit
        cfg.tenant_max_inflight = 1;
        let (server, addr, h) = start(cfg);
        // Budget: 2 workloads x 2 kinds x (200 + 50M) >> 2M.
        let r = http::request(&addr, "POST", "/jobs", &[], small_spec(2, 50_000_000).as_bytes())
            .unwrap();
        assert_eq!(r.status, 422);
        assert!(String::from_utf8(r.into_body().unwrap()).unwrap().contains("\"code\":\"budget\""));
        // Admit one job (2 cells x 100_200 ns fits both bounds), then
        // hit the tenant quota while it is still in flight.
        let r =
            http::request(&addr, "POST", "/jobs", &[], small_spec(1, 100_000).as_bytes()).unwrap();
        assert_eq!(r.status, 201);
        let r =
            http::request(&addr, "POST", "/jobs", &[], small_spec(1, 100_000).as_bytes()).unwrap();
        assert_eq!(r.status, 429);
        assert!(String::from_utf8(r.into_body().unwrap()).unwrap().contains("\"code\":\"quota\""));
        // A second tenant floods: 4 cells exceed the 3-cell global bound
        // no matter how far the queue has drained.
        let r = http::request(
            &addr,
            "POST",
            "/jobs",
            &[("X-Tenant", "flooder")],
            small_spec(2, 100_000).as_bytes(),
        )
        .unwrap();
        assert_eq!(r.status, 429);
        assert!(String::from_utf8(r.into_body().unwrap())
            .unwrap()
            .contains("\"code\":\"queue-full\""));
        let stats = http::request(&addr, "GET", "/stats", &[], b"").unwrap();
        let stats = String::from_utf8(stats.into_body().unwrap()).unwrap();
        assert!(stats.contains("\"budget\":1"), "{stats}");
        assert!(stats.contains("\"quota\":1"), "{stats}");
        assert!(stats.contains("\"queue\":1"), "{stats}");
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn drr_lets_a_small_tenant_through_a_big_backlog() {
        let (mut cfg, dir) = test_cfg(1, "drr"); // single worker: strict ordering
        cfg.quantum = 2_000;
        let (server, addr, h) = start(cfg);
        // Tenant A queues a long job, then tenant B a short one.
        let ra = http::request(
            &addr,
            "POST",
            "/jobs",
            &[("X-Tenant", "big")],
            small_spec(6, 1500).as_bytes(),
        )
        .unwrap();
        assert_eq!(ra.status, 201);
        let rb = http::request(
            &addr,
            "POST",
            "/jobs",
            &[("X-Tenant", "small")],
            small_spec(1, 1500).as_bytes(),
        )
        .unwrap();
        assert_eq!(rb.status, 201);
        // B's report must arrive even though A has 12 cells queued ahead
        // of B's 2 — DRR interleaves the tenants.
        let report = http::request(&addr, "GET", "/jobs/j2/report", &[], b"").unwrap();
        assert_eq!(report.status, 200);
        let sa = http::request(&addr, "GET", "/jobs/j1", &[], b"").unwrap();
        let sa = String::from_utf8(sa.into_body().unwrap()).unwrap();
        // Not asserting A unfinished (timing-dependent); just validity.
        assert!(sa.contains("\"job\":\"j1\""), "{sa}");
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cancel_and_restart_resume_from_spool() {
        let (cfg, dir) = test_cfg(1, "resume");
        let spool_dir = cfg.spool_dir.clone();
        let (server, addr, h) = start(cfg.clone());
        let r = http::request(&addr, "POST", "/jobs", &[], small_spec(3, 1200).as_bytes()).unwrap();
        assert_eq!(r.status, 201);
        // Wait until at least one cell is checkpointed, then stop the
        // daemon (graceful stop == kill between cells for the spool).
        loop {
            let g = server.shared.m.lock().unwrap();
            if g.stats.executed_cells >= 1 {
                break;
            }
            drop(g);
            thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
        h.join().unwrap().unwrap();
        let executed_before = {
            let g = server.shared.m.lock().unwrap();
            g.stats.executed_cells
        };
        drop(server);
        // Restart on the same spool: finished cells restore, the rest run.
        let (server2, addr2, h2) = start(cfg);
        let report = http::request(&addr2, "GET", "/jobs/j1/report", &[], b"").unwrap();
        assert_eq!(report.status, 200);
        let text = String::from_utf8(report.into_body().unwrap()).unwrap();
        assert!(text.contains("compute suite: gmean speedup"), "{text}");
        let (resumed, executed_after) = {
            let g = server2.shared.m.lock().unwrap();
            (g.stats.resumed_cells, g.stats.executed_cells)
        };
        assert!(resumed >= 1, "restored checkpointed cells");
        assert_eq!(resumed + executed_after, 6, "no finished cell recomputed");
        assert!(executed_after <= 6 - executed_before.min(6));
        server2.shutdown();
        h2.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(spool_dir);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn overload_sheds_with_a_retry_after_hint() {
        let (mut cfg, dir) = test_cfg(1, "shed");
        cfg.shed_cost = 1_000; // any real job's backlog cost exceeds this
        let (server, addr, h) = start(cfg);
        let r =
            http::request(&addr, "POST", "/jobs", &[], small_spec(1, 100_000).as_bytes()).unwrap();
        assert_eq!(r.status, 429);
        assert!(r.headers.iter().any(|(k, _)| k == "retry-after"), "{:?}", r.headers);
        let body = String::from_utf8(r.into_body().unwrap()).unwrap();
        assert!(body.contains("\"code\":\"overloaded\""), "{body}");
        let stats = http::request(&addr, "GET", "/stats", &[], b"").unwrap();
        let stats = String::from_utf8(stats.into_body().unwrap()).unwrap();
        assert!(stats.contains("\"overload\":1"), "{stats}");
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn idempotency_key_dedupes_across_retries_and_restarts() {
        let (cfg, dir) = test_cfg(2, "idem");
        let spool_dir = cfg.spool_dir.clone();
        let (server, addr, h) = start(cfg.clone());
        let key = [("X-Job-Key", "release-42")];
        let r =
            http::request(&addr, "POST", "/jobs", &key, small_spec(1, 1500).as_bytes()).unwrap();
        assert_eq!(r.status, 201, "first submit creates");
        assert!(String::from_utf8(r.into_body().unwrap()).unwrap().contains("\"job\":\"j1\""));
        // The retried submit (same tenant, same key) re-attaches.
        let r =
            http::request(&addr, "POST", "/jobs", &key, small_spec(1, 1500).as_bytes()).unwrap();
        assert_eq!(r.status, 200, "dedup hit is 200, not 201");
        let body = String::from_utf8(r.into_body().unwrap()).unwrap();
        assert!(body.contains("\"job\":\"j1\"") && body.contains("\"deduped\":true"), "{body}");
        // A different tenant with the same key is a different job.
        let r = http::request(
            &addr,
            "POST",
            "/jobs",
            &[("X-Job-Key", "release-42"), ("X-Tenant", "other")],
            small_spec(1, 1500).as_bytes(),
        )
        .unwrap();
        assert_eq!(r.status, 201);
        let stats = http::request(&addr, "GET", "/stats", &[], b"").unwrap();
        let stats = String::from_utf8(stats.into_body().unwrap()).unwrap();
        assert!(stats.contains("\"deduped\":1"), "{stats}");
        let report = http::request(&addr, "GET", "/jobs/j1/report", &[], b"").unwrap();
        assert_eq!(report.status, 200);
        server.shutdown();
        h.join().unwrap().unwrap();
        drop(server);
        // The key survives the restart via the spool header: the same
        // retried submit still lands on j1, even though j1 is finished.
        let (server2, addr2, h2) = start(cfg);
        let r =
            http::request(&addr2, "POST", "/jobs", &key, small_spec(1, 1500).as_bytes()).unwrap();
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.into_body().unwrap()).unwrap();
        assert!(body.contains("\"job\":\"j1\"") && body.contains("\"deduped\":true"), "{body}");
        server2.shutdown();
        h2.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(spool_dir);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reset_chaos_drops_connections_before_reading() {
        let (mut cfg, dir) = test_cfg(1, "reset");
        cfg.chaos = ChaosSpec::parse("reset=1").unwrap();
        cfg.chaos_seed = 7;
        let (server, addr, h) = start(cfg);
        // Every connection is dropped without a response; the client
        // sees a dead socket, not a hang and not a daemon crash.
        for _ in 0..3 {
            assert!(http::request(&addr, "GET", "/healthz", &[], b"").is_err());
        }
        let chaos = server.shared.chaos.as_ref().expect("chaos engaged");
        assert!(chaos.stats.reset.load(Ordering::Relaxed) >= 3);
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn slow_loris_is_cut_off_with_a_typed_408() {
        let (mut cfg, dir) = test_cfg(1, "loris");
        cfg.read_timeout = Duration::from_millis(150);
        let (server, addr, h) = start(cfg);
        // Send half a request line and then stall forever.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.write_all(b"GET /stats HT").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 408 "), "{resp}");
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        let timeouts = server.shared.m.lock().unwrap().stats.timeouts;
        assert_eq!(timeouts, 1);
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn telemetry_streams_in_cell_order() {
        let (cfg, dir) = test_cfg(2, "telemetry");
        let (server, addr, h) = start(cfg);
        let body = "suite=compute\nwarmup=200\nwindow=1500\nmax_workloads=1\n\
                    telemetry=1\nepoch=500\n";
        let r = http::request(&addr, "POST", "/jobs", &[], body.as_bytes()).unwrap();
        assert_eq!(r.status, 201);
        let resp = http::request(&addr, "GET", "/jobs/j1/telemetry", &[], b"").unwrap();
        assert_eq!(resp.status, 200);
        let jsonl = String::from_utf8(resp.into_body().unwrap()).unwrap();
        let archs: Vec<&str> = jsonl
            .lines()
            .map(|l| if l.contains("\"arch\":\"FGDRAM\"") { "fg" } else { "qb" })
            .collect();
        assert!(!archs.is_empty());
        // QB-HBM cell (index 0) streams entirely before FGDRAM (index 1).
        let first_fg = archs.iter().position(|a| *a == "fg").expect("fgdram lines");
        assert!(archs[..first_fg].iter().all(|a| *a == "qb"), "{archs:?}");
        assert!(archs[first_fg..].iter().all(|a| *a == "fg"), "{archs:?}");
        server.shutdown();
        h.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }
}
