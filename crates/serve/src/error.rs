//! The serving error taxonomy: every way a job can be refused or die,
//! mapped onto the wire as an HTTP status + a typed JSON body, and onto
//! `fgdram-client` exit codes.
//!
//! Simulation failures reuse the [`SimError`] taxonomy from the core
//! crate unchanged — a client sees the same `exit_code` (3-7) it would
//! have seen running `fgdram_sim` locally — and the serving layer adds
//! the admission/lifecycle outcomes a shared daemon introduces (queue
//! full, quota, budget, cancel). Every error carries a stable short
//! `code` string so scripts can dispatch without parsing messages.

use fgdram_core::SimError;

/// A serving-layer failure.
#[derive(Debug)]
pub enum ServeError {
    /// Malformed request or job spec. HTTP 400.
    BadRequest(String),
    /// Unknown job id or route. HTTP 404.
    NotFound(String),
    /// The bounded global queue cannot take this job's cells. HTTP 429.
    QueueFull {
        /// Cells the job would add.
        cells: usize,
        /// Cells already queued.
        queued: usize,
        /// The global queue bound.
        limit: usize,
    },
    /// The tenant is at its in-flight job cap. HTTP 429.
    Quota {
        /// The submitting tenant.
        tenant: String,
        /// Jobs the tenant already has in flight.
        inflight: usize,
        /// The per-tenant cap.
        limit: usize,
    },
    /// The job's cells x simulated-ns cost exceeds the per-job budget.
    /// HTTP 422.
    Budget {
        /// The job's cost in cells x simulated-ns.
        cost: u64,
        /// The per-job budget.
        limit: u64,
    },
    /// The queue-wait budget is exhausted: the backlog's simulated-ns
    /// cost exceeds the shed threshold, so admitting more work would
    /// only grow latency. HTTP 429 with a `Retry-After` hint.
    Overloaded {
        /// Simulated-ns cost already queued.
        queued_cost: u64,
        /// The shed threshold in simulated-ns.
        limit: u64,
        /// The `Retry-After` hint in seconds.
        retry_after_s: u64,
    },
    /// The connection idled past the read or write deadline (slow-loris
    /// style). HTTP 408.
    Timeout(String),
    /// The job was cancelled before completing. HTTP 409.
    Canceled,
    /// The daemon is shutting down. HTTP 503.
    ShuttingDown,
    /// A cell simulation failed; carries the typed core error. HTTP 500.
    Sim(SimError),
}

impl ServeError {
    /// The stable machine-readable code string for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::NotFound(_) => "not-found",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::Quota { .. } => "quota",
            ServeError::Budget { .. } => "budget",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Timeout(_) => "timeout",
            ServeError::Canceled => "canceled",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Sim(e) => match e {
                SimError::Config(_) => "config",
                SimError::Protocol(_) => "protocol",
                SimError::Stall { .. } => "stall",
                SimError::Io { .. } => "io",
                SimError::FaultStorm { .. } => "fault-storm",
            },
        }
    }

    /// The HTTP status this error maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::QueueFull { .. } | ServeError::Quota { .. } => 429,
            ServeError::Overloaded { .. } => 429,
            ServeError::Budget { .. } => 422,
            ServeError::Timeout(_) => 408,
            ServeError::Canceled => 409,
            ServeError::ShuttingDown => 503,
            // A config error in a cell means the spec validated but the
            // simulation rejected it — still the client's input.
            ServeError::Sim(SimError::Config(_)) => 400,
            ServeError::Sim(_) => 500,
        }
    }

    /// The process exit code `fgdram-client` uses for this failure.
    /// Simulation errors keep their `fgdram_sim` codes (3-7); serving
    /// rejects use 8 (budget) and 9 (queue/quota backpressure), and 10
    /// means the job was cancelled.
    pub fn client_exit_code(&self) -> u8 {
        match self {
            ServeError::BadRequest(_) | ServeError::NotFound(_) => 2,
            ServeError::Budget { .. } => 8,
            ServeError::QueueFull { .. } | ServeError::Quota { .. } => 9,
            ServeError::Overloaded { .. } => 9,
            ServeError::Timeout(_) => 6,
            ServeError::Canceled => 10,
            ServeError::ShuttingDown => 9,
            ServeError::Sim(e) => e.exit_code(),
        }
    }

    /// The `exit_code` field of the JSON body (what a local `fgdram_sim`
    /// run would have exited with, where that is meaningful).
    fn wire_exit_code(&self) -> u8 {
        self.client_exit_code()
    }

    /// Extra response headers this error carries (today: `Retry-After`
    /// on overload rejects, so well-behaved clients pace their retries).
    pub fn extra_headers(&self) -> Vec<(String, String)> {
        match self {
            ServeError::Overloaded { retry_after_s, .. } => {
                vec![("Retry-After".to_string(), retry_after_s.to_string())]
            }
            _ => Vec::new(),
        }
    }

    /// Renders the typed JSON error body:
    /// `{"error":{"code":...,"exit_code":N,"message":...}}`.
    pub fn json_body(&self) -> String {
        let mut msg = String::new();
        json_escape_into(&mut msg, &self.to_string());
        format!(
            "{{\"error\":{{\"code\":\"{}\",\"exit_code\":{},\"message\":\"{}\"}}}}\n",
            self.code(),
            self.wire_exit_code(),
            msg
        )
    }
}

/// Appends `s` JSON-escaped into `out` (quotes, backslash, control
/// characters).
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(m) => write!(f, "not found: {m}"),
            ServeError::QueueFull { cells, queued, limit } => write!(
                f,
                "queue full: job needs {cells} cells but {queued}/{limit} are already queued"
            ),
            ServeError::Quota { tenant, inflight, limit } => write!(
                f,
                "tenant '{tenant}' at in-flight quota ({inflight}/{limit} jobs); retry later"
            ),
            ServeError::Budget { cost, limit } => {
                write!(f, "job cost {cost} cells x simulated-ns exceeds the per-job budget {limit}")
            }
            ServeError::Overloaded { queued_cost, limit, retry_after_s } => write!(
                f,
                "overloaded: {queued_cost} simulated-ns queued exceeds the {limit} shed \
                 budget; retry in ~{retry_after_s}s"
            ),
            ServeError::Timeout(m) => write!(f, "connection deadline exceeded: {m}"),
            ServeError::Canceled => write!(f, "job cancelled"),
            ServeError::ShuttingDown => write!(f, "daemon shutting down"),
            ServeError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_statuses_and_exit_codes_are_consistent() {
        let cases: Vec<(ServeError, &str, u16, u8)> = vec![
            (ServeError::BadRequest("x".into()), "bad-request", 400, 2),
            (ServeError::NotFound("j9".into()), "not-found", 404, 2),
            (ServeError::QueueFull { cells: 8, queued: 100, limit: 100 }, "queue-full", 429, 9),
            (ServeError::Quota { tenant: "t".into(), inflight: 4, limit: 4 }, "quota", 429, 9),
            (ServeError::Budget { cost: 10, limit: 5 }, "budget", 422, 8),
            (
                ServeError::Overloaded { queued_cost: 9, limit: 5, retry_after_s: 2 },
                "overloaded",
                429,
                9,
            ),
            (ServeError::Timeout("read".into()), "timeout", 408, 6),
            (ServeError::Canceled, "canceled", 409, 10),
        ];
        for (e, code, status, exit) in cases {
            assert_eq!(e.code(), code);
            assert_eq!(e.http_status(), status);
            assert_eq!(e.client_exit_code(), exit);
            let body = e.json_body();
            assert!(body.contains(&format!("\"code\":\"{code}\"")), "{body}");
        }
    }

    #[test]
    fn sim_errors_keep_their_core_exit_codes() {
        let e = ServeError::from(SimError::Stall { at: 1, pending: 2, idle_ns: 3, bound: 4 });
        assert_eq!(e.code(), "stall");
        assert_eq!(e.http_status(), 500);
        assert_eq!(e.client_exit_code(), 5);
        let body = e.json_body();
        assert!(body.contains("\"exit_code\":5"), "{body}");
    }

    #[test]
    fn overload_carries_a_retry_after_header() {
        let e = ServeError::Overloaded { queued_cost: 100, limit: 50, retry_after_s: 7 };
        assert_eq!(e.extra_headers(), vec![("Retry-After".to_string(), "7".to_string())]);
        assert!(ServeError::Canceled.extra_headers().is_empty());
    }

    #[test]
    fn json_body_escapes_messages() {
        let e = ServeError::BadRequest("a\"b\nc".into());
        let body = e.json_body();
        assert!(body.contains("a\\\"b\\nc"), "{body}");
    }
}
