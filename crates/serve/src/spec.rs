//! The wire job specification: the body of `POST /jobs`.
//!
//! A job spec is a short `key=value` text document (one pair per line;
//! blank lines and `#` comments ignored) that maps one-to-one onto
//! [`SuiteSpec`] — the same parameters `fgdram_sim suite` takes on the
//! command line, which is what makes the byte-identity gate meaningful:
//!
//! ```text
//! suite=compute
//! warmup=8000
//! window=30000
//! max_workloads=4
//! telemetry=1
//! epoch=1000
//! ```
//!
//! Unknown keys are rejected (a typo must not silently simulate something
//! else than asked — the same stance as the CLI's ignored-flag warnings).

use fgdram_core::suite::{SuiteKind, SuiteSpec};

use crate::error::ServeError;

/// Default warmup when the spec omits it (matches the CLI default).
pub const DEFAULT_WARMUP: u64 = 20_000;
/// Default window when the spec omits it (matches the CLI default).
pub const DEFAULT_WINDOW: u64 = 100_000;
/// Default telemetry epoch when the spec omits it (matches the CLI).
pub const DEFAULT_EPOCH: u64 = 1_000;

/// Parses a job spec body into a [`SuiteSpec`].
///
/// # Errors
///
/// [`ServeError::BadRequest`] naming the offending line.
pub fn parse(body: &str) -> Result<SuiteSpec, ServeError> {
    let bad = |msg: String| ServeError::BadRequest(msg);
    let mut which = None;
    let mut warmup = DEFAULT_WARMUP;
    let mut window = DEFAULT_WINDOW;
    let mut max_workloads = None;
    let mut telemetry = false;
    let mut epoch = DEFAULT_EPOCH;
    for (ln, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            bad(format!("spec line {}: expected key=value, got '{line}'", ln + 1))
        })?;
        let (key, value) = (key.trim(), value.trim());
        let num = |what: &str| -> Result<u64, ServeError> {
            value.parse::<u64>().map_err(|e| bad(format!("spec {what}={value}: {e}")))
        };
        match key {
            "suite" => {
                which =
                    Some(SuiteKind::parse(value).ok_or_else(|| {
                        bad(format!("unknown suite '{value}' (compute|graphics)"))
                    })?)
            }
            "warmup" => warmup = num("warmup")?,
            "window" => window = num("window")?,
            "max_workloads" => max_workloads = Some(num("max_workloads")? as usize),
            "telemetry" => {
                telemetry = match value {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    _ => return Err(bad(format!("spec telemetry={value}: expected 0|1"))),
                }
            }
            "epoch" => {
                epoch = num("epoch")?;
                if epoch == 0 {
                    return Err(bad("spec epoch must be >= 1 ns".to_string()));
                }
            }
            other => return Err(bad(format!("unknown spec key '{other}'"))),
        }
    }
    let which = which.ok_or_else(|| bad("spec missing 'suite=' key".to_string()))?;
    if window == 0 {
        return Err(bad("spec window must be >= 1 ns".to_string()));
    }
    Ok(SuiteSpec {
        which,
        warmup,
        window,
        max_workloads,
        telemetry_epoch: telemetry.then_some(epoch),
    })
}

/// Renders a spec back to the canonical wire form (used for spooling; a
/// parse/render round trip is the identity on the canonical form).
pub fn render(spec: &SuiteSpec) -> String {
    let mut out =
        format!("suite={}\nwarmup={}\nwindow={}\n", spec.which.label(), spec.warmup, spec.window);
    if let Some(n) = spec.max_workloads {
        out.push_str(&format!("max_workloads={n}\n"));
    }
    if let Some(e) = spec.telemetry_epoch {
        out.push_str(&format!("telemetry=1\nepoch={e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec_and_round_trips() {
        let body = "suite=compute\nwarmup=2000\nwindow=9000\nmax_workloads=3\n\
                    telemetry=1\nepoch=500\n";
        let spec = parse(body).expect("valid spec");
        assert_eq!(spec.which, SuiteKind::Compute);
        assert_eq!((spec.warmup, spec.window), (2000, 9000));
        assert_eq!(spec.max_workloads, Some(3));
        assert_eq!(spec.telemetry_epoch, Some(500));
        let spec2 = parse(&render(&spec)).expect("canonical form re-parses");
        assert_eq!(spec, spec2);
    }

    #[test]
    fn defaults_match_the_cli() {
        let spec = parse("suite=graphics\n# comment\n\n").expect("minimal spec");
        assert_eq!(spec.which, SuiteKind::Graphics);
        assert_eq!((spec.warmup, spec.window), (DEFAULT_WARMUP, DEFAULT_WINDOW));
        assert_eq!(spec.max_workloads, None);
        assert_eq!(spec.telemetry_epoch, None);
    }

    #[test]
    fn rejects_junk_with_typed_errors() {
        for body in [
            "warmup=5",                       // no suite
            "suite=vector",                   // unknown suite
            "suite=compute\nflavour=mint",    // unknown key
            "suite=compute\nwarmup=abc",      // bad number
            "suite=compute\ntelemetry=maybe", // bad bool
            "suite=compute\nepoch=0",         // zero epoch
            "suite=compute\nwindow=0",        // zero window
            "suite=compute\nnonsense",        // not key=value
        ] {
            let err = parse(body).expect_err(body);
            assert_eq!(err.code(), "bad-request", "{body}");
        }
    }
}
