//! `fgdram-serve`: a persistent multi-tenant simulation job server.
//!
//! Runs FGDRAM suite jobs as a long-lived daemon over a hand-rolled,
//! std-only HTTP/1.1 transport (the workspace keeps its zero registry
//! dependencies). A job is a [`fgdram_core::suite::SuiteSpec`] — the same
//! parameters `fgdram_sim suite` takes on the command line — and the
//! served final report is byte-identical to the CLI's output at any
//! worker count, because both front ends share the cell runner and
//! renderer in `fgdram_core::suite`.
//!
//! The layers, bottom up:
//!
//! - [`http`] — minimal HTTP/1.1: content-length and chunked framing,
//!   one request per connection, server and client halves.
//! - [`error`] — the typed rejection/failure taxonomy: wire `code`
//!   strings, HTTP statuses, and `fgdram-client` exit codes, with
//!   [`fgdram_core::SimError`] mapped through unchanged.
//! - [`spec`] — the `key=value` wire job spec.
//! - [`spool`] — per-cell checkpoint files (exact-bit report encoding),
//!   so a killed daemon resumes without recomputing finished cells.
//! - [`server`] — admission control, overload shedding,
//!   deficit-round-robin fair-share scheduling, the worker pool, and the
//!   HTTP routes.
//! - [`chaos`] — seeded wire/disk fault injection (`--chaos`), the
//!   serving-layer sibling of `--faults`: every defense above ships with
//!   the deterministic attack that exercises it.
//!
//! ## Wire protocol
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /stats` | counters: jobs, cells, rejects, per-tenant queues |
//! | `POST /jobs` | submit a job spec (`X-Tenant` header names the tenant) |
//! | `GET /jobs/{id}` | job status |
//! | `GET /jobs/{id}/report` | long-poll; the final suite report (text) |
//! | `GET /jobs/{id}/telemetry` | chunked JSONL stream, input-cell order |
//! | `DELETE /jobs/{id}` | cancel (queued cells dropped) |
//!
//! Errors are JSON bodies
//! `{"error":{"code":...,"exit_code":N,"message":...}}` with typed HTTP
//! statuses — see [`error::ServeError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod http;
pub mod server;
pub mod spec;
pub mod spool;

pub use chaos::{Chaos, ChaosSpec};
pub use error::ServeError;
pub use server::{ServeConfig, Server};
