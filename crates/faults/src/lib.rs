//! # fgdram-faults
//!
//! Deterministic fault injection and resilience modelling for the FGDRAM
//! reproduction.
//!
//! FGDRAM's many small grains change the reliability story relative to a
//! coarse-grained HBM2 stack: a dead grain costs 1/512 of capacity rather
//! than a whole wide channel, and 32 B atoms force per-access SECDED ECC
//! instead of wide-word codes. This crate supplies the fault side of that
//! story as composable, seeded models the `core` system wires into the
//! completion path:
//!
//! - [`spec::FaultSpec`] — the `key=value` fault-spec grammar behind the
//!   CLI's `--faults` flag (bit-error rate, direct CE/DUE rates, dead
//!   grains/banks, transient stalls, a permanent wedge, timing-fault
//!   injection, and degradation-policy knobs).
//! - [`ecc::SecdedModel`] — analytic (266, 256) SECDED outcome
//!   distribution over the 32 B atom; one uniform draw classifies a read
//!   as clean, corrected (CE), or detected-uncorrectable (DUE).
//! - [`engine::FaultEngine`] — the seeded runtime oracle plus
//!   graceful-degradation bookkeeping: bounded retry with exponential
//!   backoff on CE, threshold-based grain exclusion, fault-storm
//!   detection, and the CE/DUE/retry telemetry series.
//! - [`timing`] — command timing-violation injection: a per-rule catalogue
//!   of minimal violating traces and a seeded perturber for real traces,
//!   both caught by the independent protocol checker in `fgdram-dram`.
//! - [`chaos`] — the seeded plumbing shared with chaos layers above the
//!   simulation (per-site seed derivation, decision dice, byte
//!   corruption, CRC-32); `fgdram-serve` builds its wire/disk fault
//!   injection on these.
//!
//! Everything is deterministic: one PRNG seeded from `--fault-seed`, no
//! wall clock, and identical streams at any `--jobs` level.
//!
//! ## Examples
//!
//! ```
//! use fgdram_faults::{DueOutcome, EccOutcome, FaultEngine, FaultSpec};
//!
//! let spec = FaultSpec::parse("due=1,threshold=2,max-excluded=1").unwrap();
//! let mut engine = FaultEngine::new(&spec, 42, 8);
//! assert_eq!(engine.classify_read(3, 0), EccOutcome::Uncorrectable);
//! assert_eq!(engine.record_due(3), DueOutcome::Tolerated);
//! assert_eq!(engine.classify_read(3, 0), EccOutcome::Uncorrectable);
//! assert_eq!(engine.record_due(3), DueOutcome::Exclude); // threshold hit
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod ecc;
pub mod engine;
pub mod spec;
pub mod timing;

pub use chaos::{crc32, derive_seed, Dice};
pub use ecc::{EccOutcome, SecdedModel};
pub use engine::{DueOutcome, FaultCounters, FaultEngine};
pub use spec::{FaultSpec, SpecError, DEFAULT_WATCHDOG_NS};
