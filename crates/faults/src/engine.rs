//! The runtime fault engine: a seeded, deterministic oracle the system
//! consults on every read completion, plus the bookkeeping behind the
//! graceful-degradation policy (bounded retry, grain exclusion, fault
//! storm abort) and the CE/DUE/retry telemetry series.
//!
//! Determinism: the engine owns one [`SmallRng`] seeded from the CLI
//! `--fault-seed`, and consumes exactly one draw per *non-dead-bank* read
//! classification, in completion order — which is itself deterministic
//! because the event loop is single-threaded per simulation and matrix
//! cells each build a fresh engine. No wall clock, no thread identity.

use crate::ecc::{EccOutcome, SecdedModel};
use crate::spec::FaultSpec;
use fgdram_model::rng::SmallRng;
use fgdram_model::units::Ns;
use fgdram_telemetry::{SampleBuf, Sampled};

/// What the degradation policy decided after an uncorrectable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DueOutcome {
    /// Below the grain's failure threshold; poison the data and continue.
    Tolerated,
    /// The grain crossed its failure threshold and must be excluded from
    /// the address map.
    Exclude,
    /// Exclusion would exceed the configured cap: the stack is in an
    /// unrecoverable fault storm and the run must abort.
    Storm,
}

/// Cumulative fault counters, surfaced in the end-of-run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Corrected (single-bit) errors observed.
    pub ce: u64,
    /// Detected-uncorrectable errors observed.
    pub due: u64,
    /// Read retries issued by the CE retry policy.
    pub retries: u64,
    /// Grains excluded from the address map (including dead-at-build).
    pub excluded: u64,
}

/// Seeded fault oracle plus degradation-policy state for one simulation.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    ecc: SecdedModel,
    rng: SmallRng,
    dead_banks: Vec<(u32, u32)>,
    /// Per-channel DUE counts driving threshold-based exclusion.
    due_per_channel: Vec<u32>,
    excluded: Vec<bool>,
    threshold: u32,
    max_excluded: usize,
    retry_limit: u32,
    backoff_ns: Ns,
    stall_period: Ns,
    stall_len: Ns,
    /// Next stall index to emit (stalls fire at `k * stall_period`).
    next_stall_k: u64,
    wedge_at: Option<Ns>,
    watchdog_ns: Ns,
    counters: FaultCounters,
    excluded_total: usize,
    watchdog_slack: f64,
    channels: usize,
}

impl FaultEngine {
    /// Builds the engine for a stack with `channels` grains.
    pub fn new(spec: &FaultSpec, seed: u64, channels: usize) -> FaultEngine {
        FaultEngine {
            ecc: SecdedModel::new(spec.ber, spec.ce, spec.due),
            rng: SmallRng::seed_from_u64(seed),
            dead_banks: spec.dead_banks.clone(),
            due_per_channel: vec![0; channels],
            excluded: vec![false; channels],
            threshold: spec.threshold,
            max_excluded: spec.max_excluded_for(channels),
            retry_limit: spec.retry_limit,
            backoff_ns: spec.backoff_ns.max(1),
            stall_period: spec.stall_period,
            stall_len: spec.stall_len,
            next_stall_k: 1,
            wedge_at: spec.wedge_at,
            watchdog_ns: spec.watchdog_ns,
            counters: FaultCounters::default(),
            excluded_total: 0,
            watchdog_slack: 0.0,
            channels,
        }
    }

    /// Classifies one read completion from `channel`/`bank`.
    ///
    /// Dead banks return [`EccOutcome::Uncorrectable`] without consuming a
    /// PRNG draw, so adding a dead bank never perturbs the fault stream of
    /// the healthy ones.
    pub fn classify_read(&mut self, channel: u32, bank: u32) -> EccOutcome {
        if self.dead_banks.contains(&(channel, bank)) {
            self.counters.due += 1;
            return EccOutcome::Uncorrectable;
        }
        if self.ecc.is_clean() {
            return EccOutcome::Clean;
        }
        let outcome = self.ecc.classify(self.rng.random_f64());
        match outcome {
            EccOutcome::Corrected => self.counters.ce += 1,
            EccOutcome::Uncorrectable => self.counters.due += 1,
            EccOutcome::Clean => {}
        }
        outcome
    }

    /// Applies the degradation policy after an uncorrectable error on
    /// `channel`. The caller performs the actual address-map exclusion on
    /// [`DueOutcome::Exclude`] and aborts on [`DueOutcome::Storm`].
    pub fn record_due(&mut self, channel: u32) -> DueOutcome {
        let ch = channel as usize;
        self.due_per_channel[ch] += 1;
        if self.excluded[ch] || self.due_per_channel[ch] < self.threshold {
            return DueOutcome::Tolerated;
        }
        if self.excluded_total + 1 > self.max_excluded {
            return DueOutcome::Storm;
        }
        self.excluded[ch] = true;
        self.excluded_total += 1;
        self.counters.excluded += 1;
        DueOutcome::Exclude
    }

    /// Marks a grain excluded outside the DUE path (dead-at-build grains).
    pub fn exclude_now(&mut self, channel: u32) {
        let ch = channel as usize;
        if !self.excluded[ch] {
            self.excluded[ch] = true;
            self.excluded_total += 1;
            self.counters.excluded += 1;
        }
    }

    /// Counts one CE-policy retry.
    pub fn note_retry(&mut self) {
        self.counters.retries += 1;
    }

    /// Maximum retries per request before a CE is delivered as corrected
    /// data without further redundancy.
    pub fn retry_limit(&self) -> u32 {
        self.retry_limit
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Ns {
        let shift = attempt.saturating_sub(1).min(20);
        self.backoff_ns << shift
    }

    /// Transient channel stalls that have become due by `now`, as
    /// `(channel, stalled_until)` pairs. Each stall `k` fires at
    /// `k * stall_period`, hits channel `k % channels`, and holds it until
    /// `k * stall_period + stall_len`.
    pub fn stalls_due(&mut self, now: Ns) -> Vec<(u32, Ns)> {
        let mut out = Vec::new();
        if self.stall_period == 0 {
            return out;
        }
        while self.next_stall_k.saturating_mul(self.stall_period) <= now {
            let k = self.next_stall_k;
            self.next_stall_k += 1;
            let at = k * self.stall_period;
            out.push(((k % self.channels as u64) as u32, at + self.stall_len));
        }
        out
    }

    /// True exactly once, when the configured wedge time has been reached:
    /// the caller stalls every channel forever and lets the watchdog
    /// convert the silence into a typed error.
    pub fn take_wedge(&mut self, now: Ns) -> bool {
        match self.wedge_at {
            Some(t) if now >= t => {
                self.wedge_at = None;
                true
            }
            _ => false,
        }
    }

    /// The forward-progress watchdog bound.
    pub fn watchdog_ns(&self) -> Ns {
        self.watchdog_ns
    }

    /// Cumulative counters for the end-of-run report.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Grains currently excluded from the address map.
    pub fn excluded_total(&self) -> usize {
        self.excluded_total
    }

    /// The exclusion cap beyond which the run aborts as a fault storm.
    pub fn max_excluded(&self) -> usize {
        self.max_excluded
    }

    /// Updates the watchdog-slack gauge sampled into telemetry.
    pub fn set_watchdog_slack(&mut self, slack: Ns) {
        self.watchdog_slack = slack as f64;
    }

    /// Zeroes the event counters at the end of warmup. Exclusion state
    /// deliberately persists — a grain dead during warmup stays dead.
    pub fn reset_counters(&mut self) {
        self.counters.ce = 0;
        self.counters.due = 0;
        self.counters.retries = 0;
        self.counters.excluded = self.excluded_total as u64;
    }
}

impl Sampled for FaultEngine {
    fn component(&self) -> &'static str {
        "faults"
    }

    fn sample(&self, out: &mut SampleBuf) {
        out.counter("ce", self.counters.ce);
        out.counter("due", self.counters.due);
        out.counter("retries", self.counters.retries);
        out.gauge("excluded", self.excluded_total as f64);
        out.gauge("watchdog_slack_ns", self.watchdog_slack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> FaultSpec {
        FaultSpec::parse(s).expect("valid spec")
    }

    #[test]
    fn same_seed_same_classification_stream() {
        let s = spec("ce=0.2,due=0.05");
        let mut a = FaultEngine::new(&s, 9, 8);
        let mut b = FaultEngine::new(&s, 9, 8);
        for i in 0..1_000 {
            assert_eq!(a.classify_read(i % 8, 0), b.classify_read(i % 8, 0));
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().ce > 0 && a.counters().due > 0);
    }

    #[test]
    fn dead_bank_is_always_due_and_preserves_stream() {
        let s = spec("ce=0.2,dead-bank=3.1");
        let mut with = FaultEngine::new(&s, 5, 8);
        let mut without = FaultEngine::new(&spec("ce=0.2"), 5, 8);
        for _ in 0..100 {
            assert_eq!(with.classify_read(3, 1), EccOutcome::Uncorrectable);
        }
        // The dead-bank reads consumed no PRNG draws: healthy banks see
        // the identical fault stream either way.
        for _ in 0..200 {
            assert_eq!(with.classify_read(0, 0), without.classify_read(0, 0));
        }
    }

    #[test]
    fn threshold_crossing_excludes_then_tolerates() {
        let mut e = FaultEngine::new(&spec("due=1,threshold=3"), 1, 8);
        assert_eq!(e.record_due(2), DueOutcome::Tolerated);
        assert_eq!(e.record_due(2), DueOutcome::Tolerated);
        assert_eq!(e.record_due(2), DueOutcome::Exclude);
        assert_eq!(e.excluded_total(), 1);
        // Further DUEs on an excluded grain are tolerated (in-flight reads
        // drain while the map already routes around it).
        assert_eq!(e.record_due(2), DueOutcome::Tolerated);
        assert_eq!(e.excluded_total(), 1);
    }

    #[test]
    fn exceeding_the_exclusion_cap_is_a_storm() {
        let mut e = FaultEngine::new(&spec("due=1,threshold=1,max-excluded=2"), 1, 8);
        assert_eq!(e.record_due(0), DueOutcome::Exclude);
        assert_eq!(e.record_due(1), DueOutcome::Exclude);
        assert_eq!(e.record_due(2), DueOutcome::Storm);
        // Storm does not mutate exclusion state; the caller aborts.
        assert_eq!(e.excluded_total(), 2);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let e = FaultEngine::new(&spec("ce=0.1,backoff=50"), 1, 8);
        assert_eq!(e.backoff(1), 50);
        assert_eq!(e.backoff(2), 100);
        assert_eq!(e.backoff(3), 200);
    }

    #[test]
    fn stalls_fire_periodically_and_round_robin() {
        let mut e = FaultEngine::new(&spec("stall=100x30"), 1, 4);
        assert!(e.stalls_due(99).is_empty());
        assert_eq!(e.stalls_due(250), vec![(1, 130), (2, 230)]);
        // Already-emitted stalls never repeat.
        assert_eq!(e.stalls_due(300), vec![(3, 330)]);
        // Channel index wraps round-robin.
        assert_eq!(e.stalls_due(500), vec![(0, 430), (1, 530)]);
    }

    #[test]
    fn wedge_fires_exactly_once() {
        let mut e = FaultEngine::new(&spec("wedge=1000"), 1, 4);
        assert!(!e.take_wedge(999));
        assert!(e.take_wedge(1000));
        assert!(!e.take_wedge(2000));
    }

    #[test]
    fn reset_keeps_exclusions_but_zeroes_events() {
        let mut e = FaultEngine::new(&spec("due=1,threshold=1"), 1, 8);
        assert_eq!(e.record_due(5), DueOutcome::Exclude);
        e.note_retry();
        e.reset_counters();
        assert_eq!(e.counters().retries, 0);
        assert_eq!(e.counters().due, 0);
        assert_eq!(e.excluded_total(), 1);
        assert_eq!(e.counters().excluded, 1);
    }

    #[test]
    fn sampled_schema_is_stable() {
        let e = FaultEngine::new(&spec("ce=0.1"), 1, 4);
        let mut buf = SampleBuf::new();
        e.sample(&mut buf);
        let names: Vec<&str> = buf.fields().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["ce", "due", "retries", "excluded", "watchdog_slack_ns"]);
    }
}
