//! Command timing-violation injection.
//!
//! Two tools for exercising the independent protocol checker: a catalogue
//! of minimal hand-built traces that each provoke exactly one
//! [`Rule`] variant ([`violation_trace`]), and a seeded perturber that
//! pulls random commands of a legal trace earlier in time
//! ([`perturb`]) so `--trace-check` can demonstrate the checker catching
//! injected faults in a real simulation's command stream.

use fgdram_dram::Rule;
use fgdram_model::addr::ReqId;
use fgdram_model::cmd::{BankRef, DramCommand, TimedCommand};
use fgdram_model::config::{DramConfig, DramKind};
use fgdram_model::rng::SmallRng;
use fgdram_model::units::Ns;

fn b(channel: u32, bank: u32) -> BankRef {
    BankRef { channel, bank }
}

fn act(ch: u32, bank: u32, row: u32, at: Ns) -> TimedCommand {
    TimedCommand { at, cmd: DramCommand::Activate { bank: b(ch, bank), row, slice: 0 } }
}

fn rd(ch: u32, bank: u32, row: u32, col: u32, at: Ns) -> TimedCommand {
    TimedCommand {
        at,
        cmd: DramCommand::Read {
            bank: b(ch, bank),
            row,
            col,
            auto_precharge: false,
            req: ReqId(0),
        },
    }
}

fn wr(ch: u32, bank: u32, row: u32, col: u32, at: Ns) -> TimedCommand {
    TimedCommand {
        at,
        cmd: DramCommand::Write {
            bank: b(ch, bank),
            row,
            col,
            auto_precharge: false,
            req: ReqId(0),
        },
    }
}

fn pre(ch: u32, bank: u32, row: u32, at: Ns) -> TimedCommand {
    TimedCommand { at, cmd: DramCommand::Precharge { bank: b(ch, bank), row: Some(row), slice: 0 } }
}

/// A minimal trace provoking exactly `rule`, with the device config it
/// must be checked under and the issue time of the violating command.
///
/// Each trace is legal up to its final command; feeding it to
/// `ProtocolChecker::check_trace` must fail with `rule` at the returned
/// time. Some rules need their own timing: QB-HBM's tRRD equals the row
/// command-bus occupancy, so a clean `ActRrd` (not masked by
/// [`Rule::CmdBusBusy`]) requires a widened tRRD, and `ActFaw` uses a
/// stretched rolling window so the tRRD floor cannot satisfy it first.
pub fn violation_trace(rule: Rule) -> (DramConfig, Vec<TimedCommand>, Ns) {
    match rule {
        Rule::ActTooEarly => {
            // Precharge at tRAS, reactivate 1 ns before tRC expires.
            (
                DramConfig::new(DramKind::QbHbm),
                vec![act(0, 0, 5, 0), pre(0, 0, 5, 29), act(0, 0, 6, 44)],
                44,
            )
        }
        Rule::ActOnOpenRow => {
            (DramConfig::new(DramKind::QbHbm), vec![act(0, 0, 5, 0), act(0, 0, 6, 45)], 45)
        }
        Rule::ActRrd => {
            // QB-HBM's tRRD (2 ns) equals the row-bus occupancy, so the bus
            // rule would mask it; widen tRRD past the bus window.
            let mut cfg = DramConfig::new(DramKind::QbHbm);
            cfg.timing.t_rrd = 8;
            (cfg, vec![act(0, 0, 5, 0), act(0, 1, 6, 4)], 4)
        }
        Rule::ActFaw => {
            // Four activates fill a stretched window; the fifth lands inside.
            let mut cfg = DramConfig::new(DramKind::Hbm2);
            cfg.timing.t_faw = 40;
            cfg.timing.acts_in_faw = 4;
            let mut trace: Vec<TimedCommand> =
                (0..4).map(|i| act(0, i, 1, (i as u64) * 2)).collect();
            trace.push(act(0, 4, 1, 8));
            (cfg, trace, 8)
        }
        Rule::SubarrayConflict => {
            // FGDRAM grain rule: rows 3 and 7 share subarray 0 across the
            // two pseudobanks.
            (DramConfig::new(DramKind::Fgdram), vec![act(0, 0, 3, 0), act(0, 1, 7, 4)], 4)
        }
        Rule::AdjacentSubarray => {
            // SALP: rows 100 and 600 live in adjacent subarrays.
            (DramConfig::new(DramKind::QbHbmSalpSc), vec![act(0, 0, 100, 0), act(0, 0, 600, 4)], 4)
        }
        Rule::RowNotOpen => {
            (DramConfig::new(DramKind::QbHbm), vec![act(0, 0, 5, 0), rd(0, 0, 9, 0, 16)], 16)
        }
        Rule::ColBeforeRcd => {
            (DramConfig::new(DramKind::QbHbm), vec![act(0, 0, 5, 0), rd(0, 0, 5, 0, 10)], 10)
        }
        Rule::ColCcd => {
            // Two same-bank-group reads 2 ns apart against tCCDL = 4.
            (
                DramConfig::new(DramKind::QbHbm),
                vec![act(0, 0, 5, 0), rd(0, 0, 5, 0, 16), rd(0, 0, 5, 1, 18)],
                18,
            )
        }
        Rule::DataBusConflict => {
            // Same-group read 4 ns before the write-to-read turnaround
            // allows it (write data ends at 22, +tWTRl 8 = 30).
            (
                DramConfig::new(DramKind::QbHbm),
                vec![act(0, 0, 5, 0), wr(0, 0, 5, 0, 16), rd(0, 0, 5, 1, 26)],
                26,
            )
        }
        Rule::PreTooEarly => {
            (DramConfig::new(DramKind::QbHbm), vec![act(0, 0, 5, 0), pre(0, 0, 5, 20)], 20)
        }
        Rule::PreNothingOpen => (DramConfig::new(DramKind::QbHbm), vec![pre(0, 0, 5, 10)], 10),
        Rule::RefreshConflict => {
            let refresh = TimedCommand { at: 50, cmd: DramCommand::Refresh { channel: 0 } };
            (DramConfig::new(DramKind::QbHbm), vec![act(0, 0, 5, 0), refresh], 50)
        }
        Rule::CmdBusBusy => {
            // FGDRAM grains 0 and 1 share a command channel; activates
            // occupy the row bus for 4 ns.
            (DramConfig::new(DramKind::Fgdram), vec![act(0, 0, 3, 0), act(1, 0, 900, 2)], 2)
        }
        Rule::OutOfRange => (DramConfig::new(DramKind::QbHbm), vec![act(0, 9_999, 5, 0)], 0),
    }
}

/// Perturbs `n` randomly-chosen commands of a (presumed legal) trace,
/// pulling each 1–8 ns earlier, then restores time order with a stable
/// sort. Returns how many commands were actually shifted (a command
/// already at t=0 cannot move). Deterministic for a given `seed`.
pub fn perturb(trace: &mut [TimedCommand], seed: u64, n: u32) -> usize {
    if trace.is_empty() || n == 0 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shifted = 0;
    for _ in 0..n {
        let idx = rng.random_index(trace.len());
        let delta = rng.random_range(1..9);
        let at = &mut trace[idx].at;
        if *at > 0 {
            *at = at.saturating_sub(delta);
            shifted += 1;
        }
    }
    trace.sort_by_key(|tc| tc.at);
    shifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_dram::ProtocolChecker;

    #[test]
    fn catalogue_covers_every_rule() {
        for rule in Rule::ALL {
            let (cfg, trace, expect_at) = violation_trace(rule);
            let err = ProtocolChecker::new(cfg)
                .check_trace(&trace)
                .expect_err(&format!("{rule:?} trace must violate"));
            assert_eq!(err.rule, rule, "wrong rule for {rule:?}: {err}");
            assert_eq!(err.at, expect_at, "wrong cycle for {rule:?}: {err}");
        }
    }

    #[test]
    fn catalogue_prefixes_are_legal() {
        // Every command before the violating one passes the checker, so
        // each catalogue entry isolates exactly one rule.
        for rule in Rule::ALL {
            let (cfg, trace, _) = violation_trace(rule);
            let mut c = ProtocolChecker::new(cfg);
            c.check_trace(&trace[..trace.len() - 1])
                .unwrap_or_else(|e| panic!("{rule:?} prefix must be legal, got {e}"));
        }
    }

    fn legal_trace() -> Vec<TimedCommand> {
        vec![
            act(0, 0, 5, 0),
            rd(0, 0, 5, 0, 16),
            rd(0, 0, 5, 1, 20),
            pre(0, 0, 5, 29),
            act(0, 0, 6, 45),
        ]
    }

    #[test]
    fn perturbation_is_deterministic_and_keeps_order() {
        let mut a = legal_trace();
        let mut b = legal_trace();
        assert_eq!(perturb(&mut a, 7, 3), perturb(&mut b, 7, 3));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "stable re-sort keeps time order");
    }

    #[test]
    fn perturbation_gets_caught_by_the_checker() {
        // A perturbed legal trace should (for this seed) violate timing.
        let mut t = legal_trace();
        assert!(perturb(&mut t, 3, 4) > 0);
        let report = ProtocolChecker::new(DramConfig::new(DramKind::QbHbm)).report_trace(&t);
        assert!(!report.is_clean(), "seed 3 must inject a caught violation");
    }

    #[test]
    fn perturbing_nothing_is_a_noop() {
        let mut t = legal_trace();
        assert_eq!(perturb(&mut t, 1, 0), 0);
        assert_eq!(t, legal_trace());
        let mut empty: Vec<TimedCommand> = Vec::new();
        assert_eq!(perturb(&mut empty, 1, 5), 0);
    }
}
