//! Shared seeded-chaos plumbing: the pieces every chaos layer above the
//! simulation core needs, kept here so wire-level and disk-level fault
//! injection (see `fgdram-serve`) draw from the same deterministic
//! toolbox as the DRAM fault engine.
//!
//! - [`derive_seed`] — splits one user-facing `--chaos-seed` into
//!   independent per-site streams (`("wire", conn 17)` never correlates
//!   with `("disk", append 17)`), so concurrent injection sites stay
//!   deterministic individually even when their interleaving is not.
//! - [`Dice`] — a thin seeded decision helper over the in-repo
//!   xoshiro256++ [`SmallRng`]: probability rolls, ranges, and byte
//!   corruption in one place.
//! - [`crc32`] — the CRC-32/ISO-HDLC checksum (the `cksum`/zlib
//!   polynomial), used by the serve spool to tell a corrupt checkpoint
//!   record from a merely truncated one.

use fgdram_model::rng::SmallRng;

/// Derives an independent stream seed for one injection site.
///
/// `site` names the fault class (e.g. `"wire"`, `"disk"`) and `counter`
/// the event index within it. The mix is SplitMix64-style so adjacent
/// counters produce uncorrelated streams, and the result is stable
/// across platforms and releases (chaos tests pin exact behaviour to a
/// seed, the same contract as the workload generators).
pub fn derive_seed(base: u64, site: &str, counter: u64) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for &b in site.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h = h.wrapping_add(counter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    // Final avalanche so low-entropy (site, counter) pairs still flip
    // high bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 27;
    h
}

/// A seeded decision helper: one PRNG plus the few draw shapes chaos
/// layers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dice {
    rng: SmallRng,
}

impl Dice {
    /// A dice stream for one injection site.
    pub fn for_site(base: u64, site: &str, counter: u64) -> Dice {
        Dice { rng: SmallRng::seed_from_u64(derive_seed(base, site, counter)) }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`). Always consumes
    /// exactly one draw, so spec changes that zero a probability do not
    /// shift later decisions in the same stream.
    pub fn roll(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` (an empty range is a caller bug).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.random_range(lo..hi)
    }

    /// Flips up to `flips` seeded bytes of `buf` in place (XOR with a
    /// non-zero mask, so every chosen byte really changes). Returns the
    /// number of bytes actually corrupted (0 for an empty buffer).
    pub fn corrupt_bytes(&mut self, buf: &mut [u8], flips: usize) -> usize {
        if buf.is_empty() {
            return 0;
        }
        let mut changed = 0;
        for _ in 0..flips {
            let at = self.rng.random_index(buf.len());
            let mask = (self.rng.random_range(1..256)) as u8;
            buf[at] ^= mask;
            changed += 1;
        }
        changed
    }
}

/// CRC-32/ISO-HDLC (reflected, polynomial `0xEDB88320`), the checksum
/// zlib and POSIX `cksum -o 3` use. Table-free bitwise form: the spool
/// checksums a few hundred bytes per record, so simplicity beats speed.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_byte_flips() {
        let base = b"cell 3\nreport workload=GUPS kind=FGDRAM retired=42\n".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            let mut mutated = base.clone();
            mutated[i] ^= 0x01;
            assert_ne!(crc32(&mutated), reference, "flip at {i} undetected");
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_independent() {
        let a = derive_seed(42, "wire", 0);
        assert_eq!(a, derive_seed(42, "wire", 0), "same inputs, same seed");
        let mut seen = std::collections::HashSet::new();
        for counter in 0..64 {
            seen.insert(derive_seed(42, "wire", counter));
            seen.insert(derive_seed(42, "disk", counter));
            seen.insert(derive_seed(43, "wire", counter));
        }
        assert_eq!(seen.len(), 3 * 64, "site/counter/base all separate streams");
    }

    #[test]
    fn dice_streams_replay_exactly() {
        let mut a = Dice::for_site(7, "wire", 3);
        let mut b = Dice::for_site(7, "wire", 3);
        for _ in 0..32 {
            assert_eq!(a.roll(0.3), b.roll(0.3));
            assert_eq!(a.range(1, 100), b.range(1, 100));
        }
    }

    #[test]
    fn corrupt_bytes_changes_the_buffer_deterministically() {
        let clean = b"the quick brown fox jumps over the lazy dog".to_vec();
        let mut x = clean.clone();
        let mut y = clean.clone();
        assert_eq!(Dice::for_site(1, "disk", 9).corrupt_bytes(&mut x, 3), 3);
        Dice::for_site(1, "disk", 9).corrupt_bytes(&mut y, 3);
        assert_eq!(x, y, "same dice, same corruption");
        assert_ne!(x, clean, "corruption actually changed bytes");
        assert_eq!(Dice::for_site(1, "disk", 9).corrupt_bytes(&mut [], 3), 0);
    }
}
