//! SECDED ECC over the 32 B access atom.
//!
//! FGDRAM's narrow 32 B atoms rule out the wide-word ECC of coarse-grained
//! stacks: each access must carry its own code. This module models a
//! (266, 256) Hsiao-style SECDED code — 256 data bits plus 10 check bits
//! per atom — at the *outcome* level. The simulator never materialises
//! data, so instead of flipping bits we compute the exact probability that
//! a codeword read lands in each decoder outcome (clean, corrected,
//! detected-uncorrectable) under an independent per-bit error rate, and
//! classify each read with a single uniform draw. One draw per read keeps
//! the PRNG stream stable regardless of codeword length.

/// Data bits protected per codeword: one 32 B atom.
pub const DATA_BITS: u32 = 256;
/// Check bits for SECDED at this data width (`2^9 - 9 - 1 < 256 ≤ 2^10 - 10 - 1`).
pub const CHECK_BITS: u32 = 10;
/// Total codeword length read from the array.
pub const CODEWORD_BITS: u32 = DATA_BITS + CHECK_BITS;

/// Decoder outcome for one atom read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No raw bit error; data delivered as stored.
    Clean,
    /// Exactly one raw bit error; corrected in flight (CE).
    Corrected,
    /// Two or more raw bit errors; detected but uncorrectable (DUE).
    Uncorrectable,
}

impl EccOutcome {
    /// The outcome for a codeword with `flips` raw bit errors.
    pub fn from_flips(flips: u32) -> EccOutcome {
        match flips {
            0 => EccOutcome::Clean,
            1 => EccOutcome::Corrected,
            _ => EccOutcome::Uncorrectable,
        }
    }
}

/// Analytic SECDED outcome distribution for one atom read.
///
/// With independent per-bit error probability `ber` over `n = 266` bits:
/// `P(clean) = (1-ber)^n`, `P(CE) = n·ber·(1-ber)^(n-1)`, and everything
/// else is a DUE. Extra direct CE/DUE rates (from the fault spec's `ce=` /
/// `due=` keys) are folded in on top so stuck-at-style models can reuse
/// the same single-draw classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecdedModel {
    /// Probability a read is a corrected error.
    p_ce: f64,
    /// Probability a read is a detected-uncorrectable error.
    p_due: f64,
}

impl SecdedModel {
    /// Builds the distribution for `ber` plus direct extra CE/DUE rates.
    pub fn new(ber: f64, extra_ce: f64, extra_due: f64) -> SecdedModel {
        let n = CODEWORD_BITS as f64;
        let p0 = (1.0 - ber).powi(CODEWORD_BITS as i32);
        let p1 = n * ber * (1.0 - ber).powi(CODEWORD_BITS as i32 - 1);
        let p_multi = (1.0 - p0 - p1).max(0.0);
        // Direct rates compose with the BER-driven ones; clamp so the two
        // fault classes always partition the unit interval.
        let p_due = (p_multi + extra_due).min(1.0);
        let p_ce = (p1 + extra_ce).min(1.0 - p_due);
        SecdedModel { p_ce, p_due }
    }

    /// True when every read is certainly clean.
    pub fn is_clean(&self) -> bool {
        self.p_ce == 0.0 && self.p_due == 0.0
    }

    /// Classifies one read from a single uniform draw `u` in `[0, 1)`.
    ///
    /// The interval is partitioned `[0, p_due) → DUE`, `[p_due, p_due+p_ce)
    /// → CE`, remainder clean, so the rarest outcome is checked first.
    pub fn classify(&self, u: f64) -> EccOutcome {
        if u < self.p_due {
            EccOutcome::Uncorrectable
        } else if u < self.p_due + self.p_ce {
            EccOutcome::Corrected
        } else {
            EccOutcome::Clean
        }
    }

    /// Probability of a corrected error per read.
    pub fn p_ce(&self) -> f64 {
        self.p_ce
    }

    /// Probability of a detected-uncorrectable error per read.
    pub fn p_due(&self) -> f64 {
        self.p_due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::rng::SmallRng;

    #[test]
    fn code_parameters_are_secded_for_256_data_bits() {
        // SECDED needs 2^(c-1) >= data + c: c = 10 is the minimum for 256.
        const { assert!(1u32 << (CHECK_BITS - 1) >= DATA_BITS + CHECK_BITS) };
        const { assert!(1u32 << (CHECK_BITS - 2) < DATA_BITS + (CHECK_BITS - 1)) };
        assert_eq!(CODEWORD_BITS, 266);
    }

    #[test]
    fn flip_counts_map_to_outcomes() {
        assert_eq!(EccOutcome::from_flips(0), EccOutcome::Clean);
        assert_eq!(EccOutcome::from_flips(1), EccOutcome::Corrected);
        assert_eq!(EccOutcome::from_flips(2), EccOutcome::Uncorrectable);
        assert_eq!(EccOutcome::from_flips(100), EccOutcome::Uncorrectable);
    }

    #[test]
    fn zero_ber_is_always_clean() {
        let m = SecdedModel::new(0.0, 0.0, 0.0);
        assert!(m.is_clean());
        assert_eq!(m.classify(0.0), EccOutcome::Clean);
        assert_eq!(m.classify(0.999), EccOutcome::Clean);
    }

    #[test]
    fn small_ber_is_mostly_ce_over_due() {
        // At ber = 1e-4, a single flip (CE) dominates double flips (DUE)
        // by roughly n/2 · ber, i.e. two orders of magnitude.
        let m = SecdedModel::new(1e-4, 0.0, 0.0);
        assert!(m.p_ce() > 0.02 && m.p_ce() < 0.03, "p_ce = {}", m.p_ce());
        assert!(m.p_due() > 0.0 && m.p_due() < m.p_ce() / 50.0, "p_due = {}", m.p_due());
    }

    #[test]
    fn direct_rates_compose_and_clamp() {
        let m = SecdedModel::new(0.0, 0.01, 0.002);
        assert!((m.p_ce() - 0.01).abs() < 1e-12);
        assert!((m.p_due() - 0.002).abs() < 1e-12);
        // Oversubscribed rates clamp to a valid partition, DUE first.
        let m = SecdedModel::new(0.0, 0.9, 0.8);
        assert!((m.p_due() - 0.8).abs() < 1e-12);
        assert!((m.p_ce() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_matches_analytic_rates() {
        let m = SecdedModel::new(0.0, 0.05, 0.01);
        let mut rng = SmallRng::seed_from_u64(11);
        let (mut ce, mut due) = (0u32, 0u32);
        const N: u32 = 100_000;
        for _ in 0..N {
            match m.classify(rng.random_f64()) {
                EccOutcome::Corrected => ce += 1,
                EccOutcome::Uncorrectable => due += 1,
                EccOutcome::Clean => {}
            }
        }
        assert!((ce as f64 / N as f64 - 0.05).abs() < 0.005, "ce = {ce}");
        assert!((due as f64 / N as f64 - 0.01).abs() < 0.003, "due = {due}");
    }
}
