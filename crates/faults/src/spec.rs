//! The fault-specification grammar.
//!
//! A spec is a comma-separated list of `key=value` items (plus the bare
//! `storm` preset), e.g. `ce=0.01,due=0.001,threshold=8` or
//! `stall=2000x500,wedge=60000,watchdog=5000`. Parsing is strict: unknown
//! keys, malformed numbers, and out-of-range probabilities are typed
//! errors the CLI maps to a usage failure (exit 2), never a panic.

use fgdram_model::units::Ns;

/// A parsed, validated fault specification.
///
/// All fault sources default to "off"; [`FaultSpec::is_noop`] is true for
/// a spec that injects nothing, and such a spec leaves the simulation
/// byte-identical to one without the faults layer engaged (only the
/// watchdog bound is honoured).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Per-bit retention error probability applied to every read of the
    /// 266-bit SECDED codeword (see [`crate::ecc`]).
    pub ber: f64,
    /// Additional direct per-read corrected-error probability.
    pub ce: f64,
    /// Additional direct per-read detected-uncorrectable probability.
    pub due: f64,
    /// Grains (channels) dead from t=0: excluded before any traffic flows.
    pub dead_grains: Vec<u32>,
    /// Banks (`channel.bank`) whose every read returns uncorrectable data.
    pub dead_banks: Vec<(u32, u32)>,
    /// Transient-stall period in ns (0 = off): at every multiple `k` of
    /// the period, channel `k % channels` stops issuing for
    /// [`Self::stall_len`] ns.
    pub stall_period: Ns,
    /// Length of each transient channel stall.
    pub stall_len: Ns,
    /// Time at which every channel wedges permanently (watchdog fodder).
    pub wedge_at: Option<Ns>,
    /// Number of trace commands to perturb for timing-violation injection
    /// (consumed by `--trace-check`; see [`crate::timing::perturb`]).
    pub timing_faults: u32,
    /// Uncorrectable errors a grain may produce before it is excluded.
    pub threshold: u32,
    /// Excluded-grain cap before the run aborts as a fault storm
    /// (`None` = one eighth of the channel count, at least 1).
    pub max_excluded: Option<usize>,
    /// Bounded-retry limit for corrected errors.
    pub retry_limit: u32,
    /// Base retry backoff in ns (doubles per attempt).
    pub backoff_ns: Ns,
    /// Forward-progress watchdog bound in ns.
    pub watchdog_ns: Ns,
}

/// Default watchdog bound, also used when no fault spec is given.
pub const DEFAULT_WATCHDOG_NS: Ns = 1_000_000;

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            ber: 0.0,
            ce: 0.0,
            due: 0.0,
            dead_grains: Vec::new(),
            dead_banks: Vec::new(),
            stall_period: 0,
            stall_len: 0,
            wedge_at: None,
            timing_faults: 0,
            threshold: 16,
            max_excluded: None,
            retry_limit: 1,
            backoff_ns: 50,
            watchdog_ns: DEFAULT_WATCHDOG_NS,
        }
    }
}

/// Why a fault spec failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Key is not part of the grammar.
    UnknownKey(String),
    /// Value failed to parse for its key.
    BadValue {
        /// The key whose value was malformed.
        key: String,
        /// The offending value text.
        value: String,
    },
    /// A probability was outside `[0, 1]`.
    BadProbability {
        /// The key whose probability was out of range.
        key: String,
        /// The offending value.
        value: f64,
    },
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::UnknownKey(k) => write!(f, "unknown fault-spec key '{k}'"),
            SpecError::BadValue { key, value } => {
                write!(f, "fault-spec {key}: cannot parse '{value}'")
            }
            SpecError::BadProbability { key, value } => {
                write!(f, "fault-spec {key}: probability {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn parse_prob(key: &str, value: &str) -> Result<f64, SpecError> {
    let p: f64 =
        value.parse().map_err(|_| SpecError::BadValue { key: key.into(), value: value.into() })?;
    if !(0.0..=1.0).contains(&p) {
        return Err(SpecError::BadProbability { key: key.into(), value: p });
    }
    Ok(p)
}

fn parse_num<T: core::str::FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value.parse().map_err(|_| SpecError::BadValue { key: key.into(), value: value.into() })
}

impl FaultSpec {
    /// Parses the comma-separated `key=value` grammar.
    ///
    /// Recognised items: `ber=`, `ce=`, `due=` (probabilities);
    /// `dead-grain=<g>` and `dead-bank=<ch>.<b>` (repeatable);
    /// `stall=<period>x<len>`; `wedge=<ns>`; `timing=<n>`;
    /// `threshold=<n>`; `max-excluded=<n>`; `retry=<n>`; `backoff=<ns>`;
    /// `watchdog=<ns>`; and the bare preset `storm`.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming the first offending item.
    pub fn parse(s: &str) -> Result<FaultSpec, SpecError> {
        let mut spec = FaultSpec::default();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let (key, value) = match item.split_once('=') {
                Some((k, v)) => (k, v),
                None => {
                    if item == "storm" {
                        spec.apply_storm_preset();
                        continue;
                    }
                    return Err(SpecError::UnknownKey(item.to_string()));
                }
            };
            match key {
                "ber" => spec.ber = parse_prob(key, value)?,
                "ce" => spec.ce = parse_prob(key, value)?,
                "due" => spec.due = parse_prob(key, value)?,
                "dead-grain" => spec.dead_grains.push(parse_num(key, value)?),
                "dead-bank" => {
                    let (ch, b) = value.split_once('.').ok_or_else(|| SpecError::BadValue {
                        key: key.into(),
                        value: value.into(),
                    })?;
                    spec.dead_banks.push((parse_num(key, ch)?, parse_num(key, b)?));
                }
                "stall" => {
                    let (p, l) = value.split_once('x').ok_or_else(|| SpecError::BadValue {
                        key: key.into(),
                        value: value.into(),
                    })?;
                    spec.stall_period = parse_num(key, p)?;
                    spec.stall_len = parse_num(key, l)?;
                    if spec.stall_period == 0 {
                        return Err(SpecError::BadValue { key: key.into(), value: value.into() });
                    }
                }
                "wedge" => spec.wedge_at = Some(parse_num(key, value)?),
                "timing" => spec.timing_faults = parse_num(key, value)?,
                "threshold" => {
                    spec.threshold = parse_num(key, value)?;
                    if spec.threshold == 0 {
                        return Err(SpecError::BadValue { key: key.into(), value: value.into() });
                    }
                }
                "max-excluded" => spec.max_excluded = Some(parse_num(key, value)?),
                "retry" => spec.retry_limit = parse_num(key, value)?,
                "backoff" => spec.backoff_ns = parse_num(key, value)?,
                "watchdog" => {
                    spec.watchdog_ns = parse_num(key, value)?;
                    if spec.watchdog_ns == 0 {
                        return Err(SpecError::BadValue { key: key.into(), value: value.into() });
                    }
                }
                other => return Err(SpecError::UnknownKey(other.to_string())),
            }
        }
        Ok(spec)
    }

    /// The aggressive-but-survivable preset behind the bare `storm` item:
    /// enough corrected and uncorrectable errors to exercise retry and
    /// exclusion on every architecture without (usually) tripping the
    /// storm abort.
    fn apply_storm_preset(&mut self) {
        self.ce = 0.02;
        self.due = 0.004;
        self.threshold = 8;
        self.retry_limit = 2;
    }

    /// True when the spec injects no faults at all — the engine is not
    /// engaged and the run stays byte-identical to a no-faults build
    /// (policy knobs like `watchdog=` are still honoured).
    pub fn is_noop(&self) -> bool {
        self.ber == 0.0
            && self.ce == 0.0
            && self.due == 0.0
            && self.dead_grains.is_empty()
            && self.dead_banks.is_empty()
            && self.stall_period == 0
            && self.wedge_at.is_none()
            && self.timing_faults == 0
    }

    /// The effective excluded-grain cap for a stack with `channels` grains.
    pub fn max_excluded_for(&self, channels: usize) -> usize {
        self.max_excluded.unwrap_or((channels / 8).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let s = FaultSpec::parse(
            "ber=1e-5,ce=0.01,due=0.002,dead-grain=3,dead-grain=9,dead-bank=2.1,\
             stall=2000x500,wedge=60000,timing=4,threshold=8,max-excluded=12,\
             retry=3,backoff=25,watchdog=5000",
        )
        .unwrap();
        assert_eq!(s.ber, 1e-5);
        assert_eq!(s.ce, 0.01);
        assert_eq!(s.due, 0.002);
        assert_eq!(s.dead_grains, vec![3, 9]);
        assert_eq!(s.dead_banks, vec![(2, 1)]);
        assert_eq!((s.stall_period, s.stall_len), (2000, 500));
        assert_eq!(s.wedge_at, Some(60_000));
        assert_eq!(s.timing_faults, 4);
        assert_eq!(s.threshold, 8);
        assert_eq!(s.max_excluded, Some(12));
        assert_eq!(s.retry_limit, 3);
        assert_eq!(s.backoff_ns, 25);
        assert_eq!(s.watchdog_ns, 5_000);
        assert!(!s.is_noop());
    }

    #[test]
    fn empty_and_zero_rate_specs_are_noop() {
        assert!(FaultSpec::parse("").unwrap().is_noop());
        assert!(FaultSpec::parse("ber=0,ce=0.0,watchdog=777").unwrap().is_noop());
        assert_eq!(FaultSpec::parse("watchdog=777").unwrap().watchdog_ns, 777);
    }

    #[test]
    fn storm_preset_expands() {
        let s = FaultSpec::parse("storm").unwrap();
        assert!(s.ce > 0.0 && s.due > 0.0 && !s.is_noop());
        // Preset then override: later items win.
        let s = FaultSpec::parse("storm,due=0.5").unwrap();
        assert_eq!(s.due, 0.5);
    }

    #[test]
    fn rejects_malformed_items() {
        assert!(matches!(FaultSpec::parse("bogus=1"), Err(SpecError::UnknownKey(_))));
        assert!(matches!(FaultSpec::parse("frob"), Err(SpecError::UnknownKey(_))));
        assert!(matches!(FaultSpec::parse("ce=zebra"), Err(SpecError::BadValue { .. })));
        assert!(matches!(FaultSpec::parse("ce=1.5"), Err(SpecError::BadProbability { .. })));
        assert!(matches!(FaultSpec::parse("dead-bank=3"), Err(SpecError::BadValue { .. })));
        assert!(matches!(FaultSpec::parse("stall=0x100"), Err(SpecError::BadValue { .. })));
        assert!(matches!(FaultSpec::parse("stall=100"), Err(SpecError::BadValue { .. })));
        assert!(matches!(FaultSpec::parse("threshold=0"), Err(SpecError::BadValue { .. })));
        assert!(matches!(FaultSpec::parse("watchdog=0"), Err(SpecError::BadValue { .. })));
    }

    #[test]
    fn max_excluded_defaults_to_an_eighth() {
        let s = FaultSpec::default();
        assert_eq!(s.max_excluded_for(512), 64);
        assert_eq!(s.max_excluded_for(4), 1);
        assert_eq!(FaultSpec::parse("max-excluded=2").unwrap().max_excluded_for(512), 2);
    }
}
