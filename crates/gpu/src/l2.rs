//! Sectored, write-back L2 cache (paper Table 1: 4 MB, 16-way, 128 B lines
//! with 32 B sectors).
//!
//! Sectoring matters to the paper's argument twice over: 32 B sectors keep
//! the DRAM atom small (Section 2.2 shows 128 B atoms hurt graphics by
//! 17%), and sector-granularity fills avoid overfetch on sparse access
//! patterns. Stores write whole sectors, so store misses allocate without
//! fetching (no read-for-ownership traffic).

use fgdram_model::addr::PhysAddr;
use fgdram_model::config::L2Config;
use fgdram_model::fxhash::FxHashMap;
use fgdram_model::stats::Counter;

/// Result of one sector access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Access {
    /// Load hit: data available after the hit latency.
    Hit,
    /// Load miss: the caller must fetch `fill` from DRAM; the waiter token
    /// is parked on the MSHR and returned by [`L2Cache::fill_done`].
    Miss {
        /// Sector to fetch.
        fill: PhysAddr,
    },
    /// Load miss on a sector already being fetched; the token was merged
    /// onto the existing MSHR.
    Merged,
    /// Store absorbed (sector marked valid + dirty); no DRAM read needed.
    StoreDone,
    /// No victim way or MSHR available; retry later (backpressure).
    Blocked,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    sector_valid: u8,
    sector_dirty: u8,
    pending_fills: u8,
    lru: u64,
}

#[derive(Debug, Default)]
struct MshrEntry {
    waiters: Vec<u64>,
}

/// L2 statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Stats {
    /// Load sector hits.
    pub hits: Counter,
    /// Load sector misses that issued a fill.
    pub misses: Counter,
    /// Load sector misses merged onto an in-flight fill.
    pub merges: Counter,
    /// Stores absorbed.
    pub stores: Counter,
    /// Dirty sectors written back on eviction.
    pub writeback_sectors: Counter,
    /// Lines evicted.
    pub evictions: Counter,
    /// Accesses refused for lack of victim/MSHR.
    pub blocked: Counter,
}

impl L2Stats {
    /// Load hit rate (hits + merges count as hits for traffic purposes).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.merges.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            (self.hits.get() + self.merges.get()) as f64 / total as f64
        }
    }
}

/// The sectored L2.
///
/// # Examples
///
/// ```
/// use fgdram_gpu::l2::{L2Access, L2Cache};
/// use fgdram_model::addr::PhysAddr;
/// use fgdram_model::config::L2Config;
///
/// let mut l2 = L2Cache::new(L2Config::default(), 4096);
/// let a = PhysAddr(0x1000);
/// // Cold: miss issues a fill for exactly this sector.
/// assert_eq!(l2.access(a, false, 7), L2Access::Miss { fill: a });
/// // Same sector again: merged onto the outstanding fill.
/// assert_eq!(l2.access(a, false, 8), L2Access::Merged);
/// // Fill arrival wakes both waiters; the sector now hits.
/// assert_eq!(l2.fill_done(a), vec![7, 8]);
/// assert_eq!(l2.access(a, false, 9), L2Access::Hit);
/// ```
#[derive(Debug)]
pub struct L2Cache {
    cfg: L2Config,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    /// Outstanding fills by sector address. Never iterated (lookup,
    /// insert, and remove only), so the fast hasher cannot perturb any
    /// observable order.
    mshr: FxHashMap<u64, MshrEntry>,
    mshr_capacity: usize,
    /// Recycled waiter vectors: an MSHR's `waiters` buffer returns here
    /// when the fill completes, so steady-state miss/fill churn allocates
    /// nothing. Bounded by `mshr_capacity` (one buffer per live entry).
    waiter_pool: Vec<Vec<u64>>,
    lru_clock: u64,
    writebacks: Vec<PhysAddr>,
    stats: L2Stats,
}

impl L2Cache {
    /// Builds an empty cache with `mshr_capacity` outstanding fills.
    pub fn new(cfg: L2Config, mshr_capacity: usize) -> Self {
        let sets = cfg.sets();
        let ways = cfg.ways;
        L2Cache {
            cfg,
            sets,
            ways,
            lines: vec![Line::default(); sets * ways],
            mshr: FxHashMap::with_capacity_and_hasher(mshr_capacity, Default::default()),
            mshr_capacity,
            // At most `mshr_capacity` entries are live at once, so one
            // pre-sized buffer per slot means `fill_sector` never falls
            // back to a fresh (allocating-on-first-push) Vec.
            waiter_pool: (0..mshr_capacity).map(|_| Vec::with_capacity(16)).collect(),
            lru_clock: 0,
            // Worst-case drain fan-out: one line eviction per access in a
            // step's issue budget, each spilling every dirty sector.
            writebacks: Vec::with_capacity(4096),
            stats: L2Stats::default(),
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Zeroes the statistics, keeping cache contents (end-of-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
    }

    /// The cache geometry.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Outstanding fills.
    pub fn inflight_fills(&self) -> usize {
        self.mshr.len()
    }

    #[inline]
    fn line_addr(&self, addr: PhysAddr) -> u64 {
        addr.0 / self.cfg.line_bytes
    }

    #[inline]
    fn sector_index(&self, addr: PhysAddr) -> u8 {
        ((addr.0 % self.cfg.line_bytes) / self.cfg.sector_bytes) as u8
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        // Mix upper bits in so power-of-two strides don't camp on one set.
        let h = line_addr ^ (line_addr >> 11) ^ (line_addr >> 23);
        (h as usize) % self.sets
    }

    /// Accesses one 32 B sector. `token` identifies the waiter to wake on
    /// fill completion (ignored for stores and hits).
    pub fn access(&mut self, addr: PhysAddr, is_store: bool, token: u64) -> L2Access {
        let sector = addr.sector_base(self.cfg.sector_bytes);
        let line_addr = self.line_addr(sector);
        let set = self.set_of(line_addr);
        let bit = 1u8 << self.sector_index(sector);
        self.lru_clock += 1;
        let base = set * self.ways;

        // Present line?
        if let Some(w) = (0..self.ways)
            .find(|&w| self.lines[base + w].valid && self.lines[base + w].tag == line_addr)
        {
            let line = &mut self.lines[base + w];
            line.lru = self.lru_clock;
            if is_store {
                line.sector_valid |= bit;
                line.sector_dirty |= bit;
                self.stats.stores.incr();
                return L2Access::StoreDone;
            }
            if line.sector_valid & bit != 0 {
                self.stats.hits.incr();
                return L2Access::Hit;
            }
            return self.fill_sector(base + w, sector, token);
        }

        // Miss: find a victim (invalid first, then LRU among unpinned).
        let victim = (0..self.ways).find(|&w| !self.lines[base + w].valid).or_else(|| {
            (0..self.ways)
                .filter(|&w| self.lines[base + w].pending_fills == 0)
                .min_by_key(|&w| self.lines[base + w].lru)
        });
        let Some(w) = victim else {
            self.stats.blocked.incr();
            return L2Access::Blocked;
        };
        let line = &mut self.lines[base + w];
        if line.valid {
            self.stats.evictions.incr();
            let dirty = line.sector_dirty;
            if dirty != 0 {
                self.stats.writeback_sectors.add(dirty.count_ones() as u64);
            }
        }
        let evicted = if line.valid && line.sector_dirty != 0 {
            Some((line.tag, line.sector_dirty))
        } else {
            None
        };
        *line = Line {
            tag: line_addr,
            valid: true,
            sector_valid: 0,
            sector_dirty: 0,
            pending_fills: 0,
            lru: self.lru_clock,
        };
        // Stash the writeback sectors for the caller to collect.
        if let Some((tag, dirty)) = evicted {
            self.pending_writebacks(tag, dirty);
        }
        if is_store {
            let line = &mut self.lines[base + w];
            line.sector_valid |= bit;
            line.sector_dirty |= bit;
            self.stats.stores.incr();
            return L2Access::StoreDone;
        }
        self.fill_sector(base + w, sector, token)
    }

    fn fill_sector(&mut self, line_idx: usize, sector: PhysAddr, token: u64) -> L2Access {
        match self.mshr.get_mut(&sector.0) {
            Some(entry) => {
                entry.waiters.push(token);
                self.stats.merges.incr();
                L2Access::Merged
            }
            None => {
                if self.mshr.len() >= self.mshr_capacity {
                    self.stats.blocked.incr();
                    return L2Access::Blocked;
                }
                let mut waiters = self.waiter_pool.pop().unwrap_or_default();
                waiters.push(token);
                self.mshr.insert(sector.0, MshrEntry { waiters });
                self.lines[line_idx].pending_fills += 1;
                self.stats.misses.incr();
                L2Access::Miss { fill: sector }
            }
        }
    }

    fn pending_writebacks(&mut self, tag: u64, dirty: u8) {
        let line_base = tag * self.cfg.line_bytes;
        for s in 0..self.cfg.sectors_per_line() as u64 {
            if dirty & (1 << s) != 0 {
                self.writebacks.push(PhysAddr(line_base + s * self.cfg.sector_bytes));
            }
        }
    }

    /// Drains the dirty-sector writeback addresses produced by evictions
    /// since the last call. The caller turns these into DRAM writes.
    pub fn take_writebacks(&mut self) -> Vec<PhysAddr> {
        std::mem::take(&mut self.writebacks)
    }

    /// Like [`Self::take_writebacks`], but swaps the pending writebacks
    /// into `out` (cleared first) so a caller-owned buffer is reused
    /// instead of allocating a fresh `Vec` per drain.
    pub fn take_writebacks_into(&mut self, out: &mut Vec<PhysAddr>) {
        out.clear();
        std::mem::swap(&mut self.writebacks, out);
    }

    /// Completes an outstanding fill, returning the waiter tokens to wake.
    /// Unknown sectors (e.g. after an unexpected re-fill) return no tokens.
    pub fn fill_done(&mut self, sector: PhysAddr) -> Vec<u64> {
        let mut out = Vec::new();
        self.fill_done_into(sector, &mut out);
        out
    }

    /// Like [`Self::fill_done`], but appends the waiter tokens to `out`
    /// (cleared first) and recycles the MSHR's waiter buffer, so the
    /// steady-state fill path never touches the allocator.
    pub fn fill_done_into(&mut self, sector: PhysAddr, out: &mut Vec<u64>) {
        out.clear();
        let sector = sector.sector_base(self.cfg.sector_bytes);
        let Some(mut entry) = self.mshr.remove(&sector.0) else {
            return;
        };
        let line_addr = self.line_addr(sector);
        let set = self.set_of(line_addr);
        let base = set * self.ways;
        let bit = 1u8 << self.sector_index(sector);
        if let Some(w) = (0..self.ways)
            .find(|&w| self.lines[base + w].valid && self.lines[base + w].tag == line_addr)
        {
            let line = &mut self.lines[base + w];
            line.sector_valid |= bit;
            line.pending_fills = line.pending_fills.saturating_sub(1);
        }
        out.extend_from_slice(&entry.waiters);
        entry.waiters.clear();
        self.waiter_pool.push(entry.waiters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2Cache {
        L2Cache::new(L2Config::default(), 64)
    }

    #[test]
    fn store_miss_allocates_without_fetch() {
        let mut c = l2();
        assert_eq!(c.access(PhysAddr(0x40), true, 0), L2Access::StoreDone);
        // The stored sector now hits for loads.
        assert_eq!(c.access(PhysAddr(0x40), false, 1), L2Access::Hit);
        assert_eq!(c.stats().misses.get(), 0);
        assert_eq!(c.stats().stores.get(), 1);
    }

    #[test]
    fn sectors_fill_independently() {
        let mut c = l2();
        // Two sectors of the same 128 B line miss separately.
        assert!(matches!(c.access(PhysAddr(0x00), false, 0), L2Access::Miss { .. }));
        assert!(matches!(c.access(PhysAddr(0x20), false, 1), L2Access::Miss { .. }));
        assert_eq!(c.fill_done(PhysAddr(0x00)), vec![0]);
        assert_eq!(c.access(PhysAddr(0x00), false, 2), L2Access::Hit);
        // Sector 1 still outstanding.
        assert_eq!(c.access(PhysAddr(0x20), false, 3), L2Access::Merged);
        assert_eq!(c.fill_done(PhysAddr(0x20)), vec![1, 3]);
    }

    #[test]
    fn eviction_writes_back_dirty_sectors_only() {
        let cfg = L2Config { capacity_bytes: 4096, ways: 2, ..L2Config::default() };
        let mut c = L2Cache::new(cfg, 64);
        let sets = cfg.sets() as u64;
        // Dirty two sectors of one line, then evict it with conflicting
        // lines. Addresses colliding in a set differ by sets*line_bytes in
        // line address, but set_of mixes bits, so find collisions directly.
        c.access(PhysAddr(0), true, 0);
        c.access(PhysAddr(96), true, 0);
        let set0 = c.set_of(0);
        let mut conflicts = Vec::new();
        let mut la = 1u64;
        while conflicts.len() < 2 {
            if c.set_of(la) == set0 {
                conflicts.push(la * cfg.line_bytes);
            }
            la += 1;
        }
        let _ = sets;
        for a in conflicts {
            c.access(PhysAddr(a), false, 9);
        }
        let wb = c.take_writebacks();
        assert_eq!(wb, vec![PhysAddr(0), PhysAddr(96)]);
        assert_eq!(c.stats().writeback_sectors.get(), 2);
        assert!(c.stats().evictions.get() >= 1);
    }

    #[test]
    fn mshr_exhaustion_blocks() {
        let mut c = L2Cache::new(L2Config::default(), 2);
        assert!(matches!(c.access(PhysAddr(0x0000), false, 0), L2Access::Miss { .. }));
        assert!(matches!(c.access(PhysAddr(0x1000), false, 1), L2Access::Miss { .. }));
        assert_eq!(c.access(PhysAddr(0x2000), false, 2), L2Access::Blocked);
        assert_eq!(c.stats().blocked.get(), 1);
        assert_eq!(c.inflight_fills(), 2);
        // Draining an MSHR unblocks.
        c.fill_done(PhysAddr(0x0000));
        assert!(matches!(c.access(PhysAddr(0x2000), false, 2), L2Access::Miss { .. }));
    }

    #[test]
    fn lines_with_pending_fills_are_not_victims() {
        let cfg = L2Config { capacity_bytes: 512, ways: 2, line_bytes: 128, ..L2Config::default() };
        let mut c = L2Cache::new(cfg, 64);
        // Two lines in the same set (2 sets): fill both ways with pending.
        let set0 = c.set_of(0);
        let mut same_set = vec![0u64];
        let mut la = 1u64;
        while same_set.len() < 3 {
            if c.set_of(la) == set0 {
                same_set.push(la);
            }
            la += 1;
        }
        for &la in &same_set[..2] {
            assert!(matches!(c.access(PhysAddr(la * 128), false, la), L2Access::Miss { .. }));
        }
        // Third line: both ways pinned by pending fills.
        assert_eq!(c.access(PhysAddr(same_set[2] * 128), false, 9), L2Access::Blocked);
    }

    #[test]
    fn hit_rate_accounts_merges_as_hits() {
        let mut c = l2();
        c.access(PhysAddr(0), false, 0);
        c.access(PhysAddr(0), false, 1); // merged
        c.fill_done(PhysAddr(0));
        c.access(PhysAddr(0), false, 2); // hit
        let hr = c.stats().hit_rate();
        assert!((hr - 2.0 / 3.0).abs() < 1e-9, "{hr}");
    }

    #[test]
    fn unknown_fill_returns_no_waiters() {
        let mut c = l2();
        assert!(c.fill_done(PhysAddr(0x7777)).is_empty());
    }
}
