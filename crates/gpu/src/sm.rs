//! Streaming-multiprocessor / warp front end (paper Table 1: 60 SMs,
//! 64 warps per SM, 32 threads per warp).
//!
//! Each warp owns an [`AccessStream`] producing coalesced memory
//! instructions. A warp may keep a bounded number of instructions in
//! flight (memory-level parallelism); it spends its stream's `think_ns`
//! between issues to model arithmetic intensity. Load instructions retire
//! when all their sectors return from the memory system; stores are posted
//! and retire at issue, as the L2 absorbs them.
//!
//! The model is deliberately Little's-law faithful rather than
//! pipeline-exact: the paper's performance deltas come from the memory
//! system's bank-level parallelism and queueing, which this front end
//! exposes through request concurrency and latency sensitivity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use fgdram_model::addr::PhysAddr;
use fgdram_model::config::GpuConfig;
use fgdram_model::stream::{AccessStream, WarpInstruction};
use fgdram_model::units::Ns;

/// Identifies the warp instruction slot a sector belongs to, so fill
/// completions wake the right warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessToken(u64);

impl AccessToken {
    fn new(sm: usize, warp: usize, slot: usize) -> Self {
        AccessToken(((sm as u64) << 24) | ((warp as u64) << 8) | slot as u64)
    }

    fn unpack(self) -> (usize, usize, usize) {
        ((self.0 >> 24) as usize, ((self.0 >> 8) & 0xFFFF) as usize, (self.0 & 0xFF) as usize)
    }

    /// Opaque integer form (for MSHR storage).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a token from [`Self::as_u64`].
    pub fn from_u64(v: u64) -> Self {
        AccessToken(v)
    }
}

/// One coalesced sector access emitted by the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorAccess {
    /// Completion routing token (meaningless for stores).
    pub token: AccessToken,
    /// Sector-aligned address.
    pub addr: PhysAddr,
    /// True for stores.
    pub is_store: bool,
}

const MAX_SLOTS: usize = 8;

struct Warp {
    stream: Box<dyn AccessStream>,
    buf: WarpInstruction,
    /// Pending sector count per in-flight instruction slot (0 = free).
    slots: [u16; MAX_SLOTS],
    outstanding: usize,
    ready_at: Ns,
    queued: bool,
    /// Instructions issued so far (wave-window bookkeeping).
    issued: u64,
    /// Parked because the wave window closed.
    wave_parked: bool,
}

impl core::fmt::Debug for Warp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Warp")
            .field("outstanding", &self.outstanding)
            .field("ready_at", &self.ready_at)
            .field("queued", &self.queued)
            .finish_non_exhaustive()
    }
}

impl Warp {
    fn free_slot(&self) -> Option<usize> {
        self.slots.iter().position(|&c| c == 0)
    }
}

#[derive(Debug)]
struct Sm {
    warps: Vec<Warp>,
    ready: VecDeque<usize>,
    sleeping: BinaryHeap<Reverse<(Ns, usize)>>,
}

/// GPU front-end statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuStats {
    /// Warp memory instructions retired.
    pub retired: u64,
    /// Load instructions issued.
    pub loads_issued: u64,
    /// Store instructions issued.
    pub stores_issued: u64,
    /// Sector accesses emitted.
    pub sectors: u64,
    /// Sectors delivered carrying poisoned (uncorrectable-but-tolerated)
    /// data by the fault layer.
    pub poisoned: u64,
}

/// The throughput-processor front end.
///
/// Construction takes one stream per warp (`sms * warps_per_sm` streams).
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    max_outstanding: usize,
    stats: GpuStats,
    last_issue_tick: Ns,
    /// Wave window state: instruction level of the slowest warp, warps
    /// remaining at each level offset (ring of `wave_window + 1`), and
    /// warps parked because the window closed.
    wave_min: u64,
    wave_counts: Vec<usize>,
    wave_head: usize,
    wave_parked: Vec<(usize, usize)>,
    /// Per-SM ready-queue lengths, kept beside each other so the per-ns
    /// `issue`/`next_event` scans read two contiguous arrays instead of
    /// pulling 60 scattered `Sm` structs into cache.
    ready_count: Vec<u32>,
    /// Per-SM earliest sleeper wake time (`Ns::MAX` when none): exact —
    /// lowered on every `sleeping.push`, recomputed from the heap after
    /// pops — so skipping an SM with `ready_count == 0 && next_wake > now`
    /// is behaviour-identical to visiting it.
    next_wake: Vec<Ns>,
}

impl Gpu {
    /// Builds the GPU; `streams` must supply exactly one access stream per
    /// warp, ordered SM-major.
    ///
    /// # Panics
    ///
    /// Panics when `streams` does not match `cfg.sms * cfg.warps_per_sm`.
    pub fn new(cfg: GpuConfig, streams: Vec<Box<dyn AccessStream>>) -> Self {
        assert_eq!(streams.len(), cfg.sms * cfg.warps_per_sm, "need one stream per warp");
        let max_outstanding = cfg.max_outstanding_per_warp.clamp(1, MAX_SLOTS);
        let mut streams = streams.into_iter();
        let sms = (0..cfg.sms)
            .map(|_| {
                let warps: Vec<Warp> = (0..cfg.warps_per_sm)
                    .map(|_| Warp {
                        stream: streams.next().expect("stream count checked"),
                        buf: WarpInstruction::default(),
                        slots: [0; MAX_SLOTS],
                        outstanding: 0,
                        ready_at: 0,
                        queued: true,
                        issued: 0,
                        wave_parked: false,
                    })
                    .collect();
                Sm { ready: (0..warps.len()).collect(), sleeping: BinaryHeap::new(), warps }
            })
            .collect();
        let window = cfg.wave_window;
        let n_warps = cfg.sms * cfg.warps_per_sm;
        Gpu {
            sms,
            max_outstanding,
            stats: GpuStats::default(),
            last_issue_tick: 0,
            wave_min: 0,
            wave_counts: {
                let mut v = vec![0; window + 1];
                if window > 0 {
                    v[0] = n_warps;
                }
                v
            },
            wave_head: 0,
            wave_parked: Vec::with_capacity(n_warps),
            ready_count: vec![cfg.warps_per_sm as u32; cfg.sms],
            next_wake: vec![Ns::MAX; cfg.sms],
            cfg,
        }
    }

    /// True when the wave window blocks `issued` from advancing.
    #[inline]
    fn wave_closed(&self, issued: u64) -> bool {
        self.cfg.wave_window > 0 && issued >= self.wave_min + self.cfg.wave_window as u64
    }

    /// Advances a warp's wave level; returns true when the window moved
    /// (parked warps must be released).
    fn wave_advance(&mut self, issued_before: u64) -> bool {
        if self.cfg.wave_window == 0 {
            return false;
        }
        let w = self.wave_counts.len();
        let off = (issued_before - self.wave_min) as usize;
        self.wave_counts[(self.wave_head + off) % w] -= 1;
        self.wave_counts[(self.wave_head + off + 1) % w] += 1;
        let mut moved = false;
        while self.wave_counts[self.wave_head] == 0 && self.wave_min < u64::MAX {
            // Everyone left the lowest level: the wave front advances.
            self.wave_head = (self.wave_head + 1) % w;
            self.wave_min += 1;
            moved = true;
            // The vacated top slot becomes the new highest level.
            let top = (self.wave_head + w - 1) % w;
            debug_assert_eq!(self.wave_counts[top], 0);
            if self.wave_counts.iter().all(|&c| c == 0) {
                break;
            }
        }
        moved
    }

    fn release_wave_parked(&mut self, now: Ns) {
        // Compact in place (still-parked entries slide to the front) so the
        // buffer keeps its capacity instead of re-growing every release.
        let mut kept = 0;
        for i in 0..self.wave_parked.len() {
            let (sm_idx, w) = self.wave_parked[i];
            let issued = self.sms[sm_idx].warps[w].issued;
            if self.wave_closed(issued) {
                self.wave_parked[kept] = (sm_idx, w);
                kept += 1;
                continue;
            }
            let sm = &mut self.sms[sm_idx];
            let warp = &mut sm.warps[w];
            warp.wave_parked = false;
            if warp.outstanding < self.max_outstanding && !warp.queued {
                if warp.ready_at <= now {
                    warp.queued = true;
                    sm.ready.push_back(w);
                    self.ready_count[sm_idx] += 1;
                } else {
                    let at = warp.ready_at;
                    sm.sleeping.push(Reverse((at, w)));
                    self.next_wake[sm_idx] = self.next_wake[sm_idx].min(at);
                }
            }
        }
        self.wave_parked.truncate(kept);
    }

    /// Front-end statistics.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Zeroes the statistics, keeping warp state (end-of-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = GpuStats::default();
    }

    /// Counts one sector delivered with poisoned data (the fault layer
    /// tolerated an uncorrectable error rather than abort).
    pub fn note_poisoned(&mut self) {
        self.stats.poisoned += 1;
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Warps with at least one load instruction in flight right now.
    pub fn active_warps(&self) -> usize {
        self.sms.iter().flat_map(|s| s.warps.iter()).filter(|w| w.outstanding > 0).count()
    }

    /// Load instructions in flight across all warps (instantaneous MLP
    /// numerator).
    pub fn outstanding_loads(&self) -> usize {
        self.sms.iter().flat_map(|s| s.warps.iter()).map(|w| w.outstanding).sum()
    }

    /// Warps currently parked by the wave window.
    pub fn parked_warps(&self) -> usize {
        self.wave_parked.len()
    }

    /// Issues ready warps at `now`, emitting their sector accesses into
    /// `out`. `budget_per_sm` bounds instructions issued per SM this call
    /// (callers typically pass `issue_per_ns x elapsed`).
    pub fn issue(&mut self, now: Ns, budget_per_sm: usize, out: &mut Vec<SectorAccess>) {
        self.last_issue_tick = now;
        let mut wave_moved = false;
        for sm_idx in 0..self.sms.len() {
            // Nothing ready, nothing due to wake: the visit would be a
            // no-op, so skip without touching the `Sm` itself.
            if self.ready_count[sm_idx] == 0 && self.next_wake[sm_idx] > now {
                continue;
            }
            // Wake sleepers whose think time elapsed.
            if self.next_wake[sm_idx] <= now {
                loop {
                    let sm = &mut self.sms[sm_idx];
                    let Some(&Reverse((t, w))) = sm.sleeping.peek() else { break };
                    if t > now {
                        break;
                    }
                    sm.sleeping.pop();
                    let warp = &mut sm.warps[w];
                    if warp.outstanding < self.max_outstanding && !warp.queued && !warp.wave_parked
                    {
                        warp.queued = true;
                        sm.ready.push_back(w);
                        self.ready_count[sm_idx] += 1;
                    }
                }
                self.next_wake[sm_idx] =
                    self.sms[sm_idx].sleeping.peek().map_or(Ns::MAX, |&Reverse((t, _))| t);
            }
            for _ in 0..budget_per_sm {
                let sm = &mut self.sms[sm_idx];
                let Some(w) = sm.ready.pop_front() else { break };
                self.ready_count[sm_idx] -= 1;
                let warp = &mut sm.warps[w];
                warp.queued = false;
                debug_assert!(warp.ready_at <= now && warp.outstanding < self.max_outstanding);
                let issued_before = warp.issued;
                if self.cfg.wave_window > 0
                    && issued_before >= self.wave_min + self.cfg.wave_window as u64
                {
                    // Too far ahead of the slowest warp: park until the
                    // wave front advances.
                    let warp = &mut self.sms[sm_idx].warps[w];
                    warp.wave_parked = true;
                    self.wave_parked.push((sm_idx, w));
                    continue;
                }
                let warp = &mut self.sms[sm_idx].warps[w];
                warp.buf.clear();
                warp.stream.fill_next(&mut warp.buf);
                debug_assert!(!warp.buf.sectors.is_empty(), "streams must emit sectors");
                if warp.buf.is_store {
                    for &addr in &warp.buf.sectors {
                        out.push(SectorAccess {
                            token: AccessToken::new(sm_idx, w, MAX_SLOTS),
                            addr,
                            is_store: true,
                        });
                    }
                    self.stats.stores_issued += 1;
                    self.stats.retired += 1; // stores are posted
                } else {
                    let slot = warp.free_slot().expect("outstanding < max implies free slot");
                    warp.slots[slot] = warp.buf.sectors.len() as u16;
                    warp.outstanding += 1;
                    for &addr in &warp.buf.sectors {
                        out.push(SectorAccess {
                            token: AccessToken::new(sm_idx, w, slot),
                            addr,
                            is_store: false,
                        });
                    }
                    self.stats.loads_issued += 1;
                }
                self.stats.sectors += warp.buf.sectors.len() as u64;
                // Schedule the next issue opportunity.
                warp.ready_at = now + warp.buf.think_ns;
                warp.issued += 1;
                let reready = warp.outstanding < self.max_outstanding;
                let ready_at = warp.ready_at;
                if reready {
                    let sm = &mut self.sms[sm_idx];
                    if ready_at <= now {
                        sm.warps[w].queued = true;
                        sm.ready.push_back(w);
                        self.ready_count[sm_idx] += 1;
                    } else {
                        sm.sleeping.push(Reverse((ready_at, w)));
                        self.next_wake[sm_idx] = self.next_wake[sm_idx].min(ready_at);
                    }
                }
                // Otherwise the warp is blocked until a completion.
                wave_moved |= self.wave_advance(issued_before);
            }
        }
        if wave_moved {
            self.release_wave_parked(now);
        }
    }

    /// Delivers a load sector to its warp; retires the instruction when it
    /// was the last sector, possibly unblocking the warp.
    pub fn sector_done(&mut self, token: AccessToken, now: Ns) {
        let (sm_idx, w, slot) = token.unpack();
        if slot >= MAX_SLOTS {
            return; // store token: nothing to do
        }
        let sm = &mut self.sms[sm_idx];
        let warp = &mut sm.warps[w];
        debug_assert!(warp.slots[slot] > 0, "completion for idle slot");
        warp.slots[slot] -= 1;
        if warp.slots[slot] == 0 {
            warp.outstanding -= 1;
            self.stats.retired += 1;
            if !warp.queued && !warp.wave_parked && warp.outstanding + 1 == self.max_outstanding {
                // The warp was blocked on MLP; it becomes schedulable once
                // its think time has also elapsed.
                if warp.ready_at <= now {
                    warp.queued = true;
                    sm.ready.push_back(w);
                    self.ready_count[sm_idx] += 1;
                } else {
                    let at = warp.ready_at;
                    sm.sleeping.push(Reverse((at, w)));
                    self.next_wake[sm_idx] = self.next_wake[sm_idx].min(at);
                }
            }
        }
    }

    /// Earliest time this GPU has work to do on its own (sleeping warps);
    /// `None` when every warp waits on memory completions.
    pub fn next_event(&self) -> Option<Ns> {
        let mut next: Option<Ns> = None;
        for i in 0..self.sms.len() {
            if self.ready_count[i] > 0 {
                return Some(self.last_issue_tick);
            }
            let t = self.next_wake[i];
            if t != Ns::MAX {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::stream::ReplayStream;

    fn tiny_cfg() -> GpuConfig {
        GpuConfig {
            sms: 1,
            warps_per_sm: 2,
            max_outstanding_per_warp: 2,
            issue_per_ns: 4,
            ..GpuConfig::default()
        }
    }

    fn gpu_with(cfg: GpuConfig, think: Ns) -> Gpu {
        let streams: Vec<Box<dyn AccessStream>> = (0..cfg.sms * cfg.warps_per_sm)
            .map(|i| {
                Box::new(ReplayStream::new(vec![PhysAddr(i as u64 * 4096)], think))
                    as Box<dyn AccessStream>
            })
            .collect();
        Gpu::new(cfg, streams)
    }

    #[test]
    fn warps_block_at_mlp_limit() {
        let mut g = gpu_with(tiny_cfg(), 0);
        let mut out = Vec::new();
        g.issue(0, 16, &mut out);
        // Each warp may have 2 outstanding loads: 2 warps x 2 = 4 accesses.
        assert_eq!(out.len(), 4);
        assert_eq!(g.stats().loads_issued, 4);
        // No further issue while blocked.
        out.clear();
        g.issue(1, 16, &mut out);
        assert!(out.is_empty());
        // Completing one instruction unblocks exactly one warp slot.
        let token = AccessToken::from_u64(0); // sm0 warp0 slot0
        g.sector_done(token, 1);
        assert_eq!(g.stats().retired, 1);
        out.clear();
        g.issue(2, 16, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn think_time_paces_issue() {
        let cfg = tiny_cfg();
        let mut g = gpu_with(cfg, 10);
        let mut out = Vec::new();
        g.issue(0, 16, &mut out);
        // Outstanding limit 2, but think=10 delays the second issue.
        assert_eq!(out.len(), 2); // one per warp
        assert_eq!(g.next_event(), Some(10));
        out.clear();
        g.issue(5, 16, &mut out);
        assert!(out.is_empty());
        out.clear();
        g.issue(10, 16, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stores_retire_immediately() {
        let cfg = tiny_cfg();
        let streams: Vec<Box<dyn AccessStream>> = (0..2)
            .map(|_| {
                struct Stores;
                impl AccessStream for Stores {
                    fn fill_next(&mut self, out: &mut WarpInstruction) {
                        out.sectors.push(PhysAddr(64));
                        out.is_store = true;
                        out.think_ns = 100;
                    }
                }
                Box::new(Stores) as Box<dyn AccessStream>
            })
            .collect();
        let mut g = Gpu::new(cfg, streams);
        let mut out = Vec::new();
        g.issue(0, 16, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|a| a.is_store));
        assert_eq!(g.stats().retired, 2);
        // Stores do not consume MLP slots: warps sleep on think only.
        assert_eq!(g.next_event(), Some(100));
    }

    #[test]
    fn issue_budget_caps_per_sm() {
        let cfg = GpuConfig {
            sms: 1,
            warps_per_sm: 8,
            max_outstanding_per_warp: 1,
            ..GpuConfig::default()
        };
        let mut g = gpu_with(cfg, 0);
        let mut out = Vec::new();
        g.issue(0, 3, &mut out);
        assert_eq!(out.len(), 3);
        out.clear();
        g.issue(1, 3, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn token_roundtrip() {
        let t = AccessToken::new(59, 63, 7);
        assert_eq!(t.unpack(), (59, 63, 7));
        assert_eq!(AccessToken::from_u64(t.as_u64()), t);
    }

    #[test]
    #[should_panic(expected = "one stream per warp")]
    fn wrong_stream_count_panics() {
        let _ = Gpu::new(tiny_cfg(), vec![]);
    }
}

#[cfg(test)]
mod wave_tests {
    use super::*;
    use fgdram_model::stream::ReplayStream;

    fn gpu(warps: usize, window: usize, mlp: usize) -> Gpu {
        let cfg = GpuConfig {
            sms: 1,
            warps_per_sm: warps,
            max_outstanding_per_warp: mlp,
            wave_window: window,
            issue_per_ns: 64,
            ..GpuConfig::default()
        };
        let streams: Vec<Box<dyn AccessStream>> = (0..warps)
            .map(|i| {
                Box::new(ReplayStream::new(vec![PhysAddr(i as u64 * 4096)], 0))
                    as Box<dyn AccessStream>
            })
            .collect();
        Gpu::new(cfg, streams)
    }

    fn warp_of(t: AccessToken) -> u64 {
        (t.as_u64() >> 8) & 0xFFFF
    }

    /// Co-advancing warps slide the window together and are bounded only
    /// by MLP; a stuck warp then caps the fast warp at `window` ahead.
    #[test]
    fn wave_window_bounds_skew_not_throughput() {
        let mut g = gpu(2, 2, 8);
        let mut out = Vec::new();
        g.issue(0, 64, &mut out);
        // Both warps reach their MLP limit (8 + 8); the window slid along.
        assert_eq!(out.len(), 16);
        // Complete only warp 0's loads: it may run exactly `window` = 2
        // instructions past stuck warp 1 (both at level 8).
        let warp0: Vec<_> = out.iter().filter(|a| warp_of(a.token) == 0).map(|a| a.token).collect();
        for t in warp0 {
            g.sector_done(t, 1);
        }
        out.clear();
        g.issue(1, 64, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|a| warp_of(a.token) == 0));
        // Beyond that warp 0 is parked regardless of completions.
        let extra: Vec<_> = out.iter().map(|a| a.token).collect();
        for t in extra {
            g.sector_done(t, 2);
        }
        out.clear();
        g.issue(3, 64, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    /// Completing the slowest warp advances the front and releases parked
    /// warps.
    #[test]
    fn wave_front_advances_when_slowest_catches_up() {
        let mut g = gpu(2, 2, 8);
        let mut out = Vec::new();
        g.issue(0, 64, &mut out);
        let warp0: Vec<_> = out.iter().filter(|a| warp_of(a.token) == 0).map(|a| a.token).collect();
        let warp1: Vec<_> = out.iter().filter(|a| warp_of(a.token) == 1).map(|a| a.token).collect();
        for t in warp0 {
            g.sector_done(t, 1);
        }
        out.clear();
        g.issue(1, 64, &mut out); // warp 0 runs to the window edge (2) and parks
        assert_eq!(out.len(), 2);
        // Now complete warp 1: the front advances, warp 1 issues again and
        // warp 0 is released from the park list.
        for t in warp1 {
            g.sector_done(t, 2);
        }
        // Parked warps are released at the end of the issue pass in which
        // the front moves, so the leapfrog takes a couple of calls.
        out.clear();
        g.issue(3, 64, &mut out);
        let first = out.len();
        assert!(first >= 2, "slowest warp resumes: {first}");
        g.issue(4, 64, &mut out);
        assert!(out.len() >= 6, "parked warps released: {}", out.len());
        let zeros = out.iter().filter(|a| warp_of(a.token) == 0).count();
        assert!(zeros >= 1, "warp 0 unparked");
    }

    #[test]
    fn zero_window_never_parks() {
        let mut g = gpu(2, 0, 2);
        let mut out = Vec::new();
        g.issue(0, 64, &mut out);
        assert_eq!(out.len(), 4); // both warps hit their MLP limit only
        for a in out.clone() {
            g.sector_done(a.token, 1);
        }
        out.clear();
        g.issue(1, 64, &mut out);
        assert_eq!(out.len(), 4);
    }
}
