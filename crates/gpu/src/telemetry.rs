//! Telemetry instrumentation: GPU front end and L2 as [`Sampled`] sources.

use fgdram_model::units::Ns;
use fgdram_telemetry::{SampleBuf, Sampled};

use crate::l2::L2Cache;
use crate::sm::Gpu;

impl Sampled for Gpu {
    fn component(&self) -> &'static str {
        "gpu"
    }

    fn sample(&self, out: &mut SampleBuf) {
        let s = self.stats();
        out.counter("retired", s.retired);
        out.counter("loads_issued", s.loads_issued);
        out.counter("stores_issued", s.stores_issued);
        out.counter("sectors", s.sectors);
        out.gauge("active_warps", self.active_warps() as f64);
        out.gauge("outstanding_loads", self.outstanding_loads() as f64);
        out.gauge("parked_warps", self.parked_warps() as f64);
    }

    fn derive(&self, delta: &mut SampleBuf, _epoch_ns: Ns) {
        // Instantaneous MLP: in-flight loads per warp that has any.
        let active = delta.get_f64("active_warps");
        let outstanding = delta.get_f64("outstanding_loads");
        delta.gauge("mlp", if active == 0.0 { 0.0 } else { outstanding / active });
    }
}

impl Sampled for L2Cache {
    fn component(&self) -> &'static str {
        "l2"
    }

    fn sample(&self, out: &mut SampleBuf) {
        let s = self.stats();
        out.counter("hits", s.hits.get());
        out.counter("misses", s.misses.get());
        out.counter("merges", s.merges.get());
        out.counter("stores", s.stores.get());
        out.counter("writeback_sectors", s.writeback_sectors.get());
        out.counter("evictions", s.evictions.get());
        out.counter("blocked", s.blocked.get());
        out.gauge("inflight_fills", self.inflight_fills() as f64);
    }

    fn derive(&self, delta: &mut SampleBuf, _epoch_ns: Ns) {
        let hits = delta.get_u64("hits") + delta.get_u64("merges");
        let total = hits + delta.get_u64("misses");
        delta.gauge("hit_rate", if total == 0 { 0.0 } else { hits as f64 / total as f64 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdram_model::addr::PhysAddr;
    use fgdram_model::config::L2Config;

    #[test]
    fn l2_epoch_hit_rate_from_deltas() {
        let mut l2 = L2Cache::new(L2Config::default(), 64);
        let a = PhysAddr(0x1000);
        l2.access(a, false, 1); // miss
        l2.fill_done(a);
        let mut before = SampleBuf::new();
        l2.sample(&mut before);
        // Inside the "epoch": two hits, one fresh miss.
        l2.access(a, false, 2);
        l2.access(a, false, 3);
        l2.access(PhysAddr(0x9000), false, 4);
        let mut after = SampleBuf::new();
        l2.sample(&mut after);
        let mut d = SampleBuf::delta(&before, &after);
        l2.derive(&mut d, 1000);
        assert_eq!(d.get_u64("hits"), 2);
        assert_eq!(d.get_u64("misses"), 1);
        assert!((d.get_f64("hit_rate") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.get_f64("inflight_fills"), 1.0);
    }
}
