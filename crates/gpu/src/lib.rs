//! # fgdram-gpu
//!
//! The throughput-processor front end of the FGDRAM (MICRO 2017)
//! reproduction: a Tesla P100-class SM/warp model ([`sm::Gpu`], Table 1)
//! and the sectored write-back L2 ([`l2::L2Cache`], 4 MB / 16-way / 128 B
//! lines / 32 B sectors).
//!
//! The paper's GPU simulator is proprietary; this front end reproduces the
//! properties its performance results depend on — bounded per-warp
//! memory-level parallelism, arithmetic-intensity pacing, sector-granular
//! coalescing, and sectored L2 filtering — while the memory system below
//! it (controller + DRAM) carries the cycle-accurate behaviour.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod l2;
pub mod sm;
mod telemetry;

pub use l2::{L2Access, L2Cache, L2Stats};
pub use sm::{AccessToken, Gpu, GpuStats, SectorAccess};
