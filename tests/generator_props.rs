//! Randomized property tests over the workload generator space: every
//! pattern, at any warp count and footprint, must produce sector-aligned,
//! in-footprint, non-empty, deterministic instruction streams.
//!
//! Cases are drawn from the repo's own seeded PRNG (the tier-1 build is
//! offline, so no proptest), which makes every run — and every failure —
//! exactly reproducible from the constant seeds below.

use fgdram::model::rng::SmallRng;
use fgdram::model::stream::WarpInstruction;
use fgdram::workloads::{Pattern, Workload};

fn arb_pattern(r: &mut SmallRng) -> Pattern {
    match r.random_index(6) {
        0 => Pattern::Sequential { sectors_per_instr: r.random_range(1..9) as u32 },
        1 => Pattern::Random {
            sectors_per_instr: r.random_range(1..9) as u32,
            rmw: r.random_bool(0.5),
        },
        2 => Pattern::Strided {
            stride_bytes: 1 << r.random_range(6..21),
            sectors_per_instr: r.random_range(1..5) as u32,
        },
        3 => Pattern::PointerChase,
        4 => Pattern::Stencil { plane_bytes: 1 << r.random_range(10..19) },
        _ => Pattern::Tiled {
            tile_sectors: r.random_range(2..17) as u32,
            compression: 0.9 * r.random_f64(),
            texture_fraction: 0.5 * r.random_f64(),
        },
    }
}

fn arb_workload(r: &mut SmallRng) -> Workload {
    Workload {
        name: "prop".into(),
        pattern: arb_pattern(r),
        footprint_bytes: 1 << r.random_range(20..29),
        think_ns: r.random_range(0..500),
        write_fraction: 0.5 * r.random_f64(),
        mlp: 4,
        toggle_rate: 0.3,
        ones_density: 0.3,
        memory_intensive: false,
        seed: r.next_u64(),
    }
}

#[test]
fn streams_are_aligned_bounded_nonempty() {
    let mut r = SmallRng::seed_from_u64(0x6E6E_0001);
    for case in 0..128 {
        let w = arb_workload(&mut r);
        let n_warps = r.random_range(1..256) as usize;
        let warp = r.random_index(64) % n_warps;
        let mut s = w.stream_for_warp(warp, n_warps);
        let mut instr = WarpInstruction::default();
        // The generator floors tiny footprints at 64 sectors.
        let span = w.footprint_bytes.max(64 * 32);
        for _ in 0..200 {
            instr.clear();
            s.fill_next(&mut instr);
            assert!(!instr.sectors.is_empty(), "case {case}: empty instr for {w:?}");
            assert!(
                instr.sectors.len() <= 32,
                "case {case}: {} sectors for {w:?}",
                instr.sectors.len()
            );
            for a in &instr.sectors {
                assert_eq!(a.0 % 32, 0, "case {case}: unaligned sector {a} for {w:?}");
                assert!(a.0 < span, "case {case}: sector {a} outside footprint {span} for {w:?}");
            }
            assert!(instr.think_ns <= w.think_ns, "case {case}: think for {w:?}");
        }
    }
}

#[test]
fn streams_are_deterministic() {
    let mut r = SmallRng::seed_from_u64(0x6E6E_0002);
    for case in 0..128 {
        let w = arb_workload(&mut r);
        let warp = r.random_index(32);
        let mut a = w.stream_for_warp(warp, 64);
        let mut b = w.stream_for_warp(warp, 64);
        let mut ia = WarpInstruction::default();
        let mut ib = WarpInstruction::default();
        for _ in 0..100 {
            ia.clear();
            ib.clear();
            a.fill_next(&mut ia);
            b.fill_next(&mut ib);
            assert_eq!(ia, ib, "case {case}: diverged for {w:?}");
        }
    }
}

/// RMW streams alternate load/store over identical sector sets.
#[test]
fn rmw_streams_pair_loads_with_stores() {
    let mut r = SmallRng::seed_from_u64(0x6E6E_0003);
    for case in 0..64 {
        let w = Workload {
            name: "rmw".into(),
            pattern: Pattern::Random { sectors_per_instr: 2, rmw: true },
            footprint_bytes: 1 << 24,
            think_ns: 0,
            write_fraction: 0.0,
            mlp: 4,
            toggle_rate: 0.3,
            ones_density: 0.3,
            memory_intensive: true,
            seed: r.next_u64(),
        };
        let mut s = w.stream_for_warp(3, 64);
        let mut load = WarpInstruction::default();
        let mut store = WarpInstruction::default();
        for _ in 0..50 {
            load.clear();
            store.clear();
            s.fill_next(&mut load);
            s.fill_next(&mut store);
            assert!(!load.is_store, "case {case}, seed {}", w.seed);
            assert!(store.is_store, "case {case}, seed {}", w.seed);
            assert_eq!(load.sectors, store.sectors, "case {case}, seed {}", w.seed);
        }
    }
}
