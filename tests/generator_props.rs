//! Property tests over the workload generator space: every pattern, at any
//! warp count and footprint, must produce sector-aligned, in-footprint,
//! non-empty, deterministic instruction streams.

use fgdram::model::stream::WarpInstruction;
use fgdram::workloads::{Pattern, Workload};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1u32..=8).prop_map(|s| Pattern::Sequential { sectors_per_instr: s }),
        (1u32..=8, any::<bool>())
            .prop_map(|(s, rmw)| Pattern::Random { sectors_per_instr: s, rmw }),
        (6u32..=20, 1u32..=4).prop_map(|(shift, s)| Pattern::Strided {
            stride_bytes: 1 << shift,
            sectors_per_instr: s
        }),
        Just(Pattern::PointerChase),
        (10u32..=18).prop_map(|shift| Pattern::Stencil { plane_bytes: 1 << shift }),
        (2u32..=16, 0.0f64..0.9, 0.0f64..0.5).prop_map(|(t, c, tx)| Pattern::Tiled {
            tile_sectors: t,
            compression: c,
            texture_fraction: tx
        }),
    ]
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (arb_pattern(), 20u32..=28, 0u64..500, 0.0f64..0.5, any::<u64>()).prop_map(
        |(pattern, fp_shift, think, wf, seed)| Workload {
            name: "prop".into(),
            pattern,
            footprint_bytes: 1 << fp_shift,
            think_ns: think,
            write_fraction: wf,
            mlp: 4,
            toggle_rate: 0.3,
            ones_density: 0.3,
            memory_intensive: false,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn streams_are_aligned_bounded_nonempty(
        w in arb_workload(),
        warp in 0usize..64,
        n_warps in 1usize..256
    ) {
        let warp = warp % n_warps;
        let mut s = w.stream_for_warp(warp, n_warps);
        let mut instr = WarpInstruction::default();
        // The generator floors tiny footprints at 64 sectors.
        let span = w.footprint_bytes.max(64 * 32);
        for _ in 0..200 {
            instr.clear();
            s.fill_next(&mut instr);
            prop_assert!(!instr.sectors.is_empty());
            prop_assert!(instr.sectors.len() <= 32, "{} sectors", instr.sectors.len());
            for a in &instr.sectors {
                prop_assert_eq!(a.0 % 32, 0, "unaligned sector {}", a);
                prop_assert!(a.0 < span, "sector {} outside footprint {}", a, span);
            }
            prop_assert!(instr.think_ns <= w.think_ns);
        }
    }

    #[test]
    fn streams_are_deterministic(w in arb_workload(), warp in 0usize..32) {
        let mut a = w.stream_for_warp(warp, 64);
        let mut b = w.stream_for_warp(warp, 64);
        let mut ia = WarpInstruction::default();
        let mut ib = WarpInstruction::default();
        for _ in 0..100 {
            ia.clear();
            ib.clear();
            a.fill_next(&mut ia);
            b.fill_next(&mut ib);
            prop_assert_eq!(&ia, &ib);
        }
    }

    /// RMW streams alternate load/store over identical sector sets.
    #[test]
    fn rmw_streams_pair_loads_with_stores(seed in any::<u64>()) {
        let w = Workload {
            name: "rmw".into(),
            pattern: Pattern::Random { sectors_per_instr: 2, rmw: true },
            footprint_bytes: 1 << 24,
            think_ns: 0,
            write_fraction: 0.0,
            mlp: 4,
            toggle_rate: 0.3,
            ones_density: 0.3,
            memory_intensive: true,
            seed,
        };
        let mut s = w.stream_for_warp(3, 64);
        let mut load = WarpInstruction::default();
        let mut store = WarpInstruction::default();
        for _ in 0..50 {
            load.clear();
            store.clear();
            s.fill_next(&mut load);
            s.fill_next(&mut store);
            prop_assert!(!load.is_store);
            prop_assert!(store.is_store);
            prop_assert_eq!(&load.sectors, &store.sectors);
        }
    }
}
