//! Cross-crate system invariants: determinism, accounting identities, and
//! the paper's headline orderings on a fast subset.

use fgdram::core::SystemBuilder;
use fgdram::model::config::{DramKind, GpuConfig};
use fgdram::workloads::suites;

const WARMUP: u64 = 6_000;
const WINDOW: u64 = 20_000;

#[test]
fn identical_seeds_identical_reports() {
    let w = suites::by_name("kmeans").unwrap();
    let run =
        || SystemBuilder::new(DramKind::Fgdram).workload(w.clone()).run(WARMUP, WINDOW).unwrap();
    let a = run();
    let b = run();
    assert_eq!(a.retired, b.retired);
    assert_eq!(a.read_atoms, b.read_atoms);
    assert_eq!(a.write_atoms, b.write_atoms);
    assert_eq!(a.activates, b.activates);
    assert_eq!(a.energy.total(), b.energy.total());
}

#[test]
fn bandwidth_never_exceeds_peak() {
    for kind in DramKind::ALL {
        let r = SystemBuilder::new(kind)
            .workload(suites::by_name("STREAM").unwrap())
            .run(WARMUP, WINDOW)
            .unwrap();
        assert!(r.utilisation <= 1.0, "{kind}: {:.3}", r.utilisation);
        assert!(r.utilisation > 0.05, "{kind}: no traffic?");
    }
}

#[test]
fn energy_identity_total_is_component_sum() {
    let r = SystemBuilder::new(DramKind::QbHbm)
        .workload(suites::by_name("GUPS").unwrap())
        .run(WARMUP, WINDOW)
        .unwrap();
    let e = r.energy_per_bit;
    assert!((e.total().value() - (e.activation + e.data_movement + e.io).value()).abs() < 1e-12);
    let t = r.energy;
    assert!((t.total().value() - (t.activation + t.data_movement + t.io).value()).abs() < 1e-9);
}

#[test]
fn fgdram_beats_qb_on_energy_for_every_pattern_family() {
    for name in ["GUPS", "STREAM", "kmeans", "gfx00"] {
        let w = suites::by_name(name).unwrap();
        let qb =
            SystemBuilder::new(DramKind::QbHbm).workload(w.clone()).run(WARMUP, WINDOW).unwrap();
        let fg = SystemBuilder::new(DramKind::Fgdram).workload(w).run(WARMUP, WINDOW).unwrap();
        assert!(
            fg.energy_per_bit.total() < qb.energy_per_bit.total(),
            "{name}: fg {} !< qb {}",
            fg.energy_per_bit.total(),
            qb.energy_per_bit.total()
        );
        // Activation and movement components individually improve too.
        assert!(fg.energy_per_bit.data_movement < qb.energy_per_bit.data_movement, "{name}");
    }
}

#[test]
fn gups_speedup_is_large_and_stream_is_not() {
    let run = |kind, name: &str| {
        SystemBuilder::new(kind)
            .workload(suites::by_name(name).unwrap())
            .run(WARMUP, WINDOW)
            .unwrap()
    };
    let gups = run(DramKind::Fgdram, "GUPS").speedup_over(&run(DramKind::QbHbm, "GUPS"));
    assert!(gups > 2.0, "GUPS speedup {gups:.2}");
    let stream = run(DramKind::Fgdram, "STREAM").speedup_over(&run(DramKind::QbHbm, "STREAM"));
    assert!((0.85..=1.25).contains(&stream), "STREAM speedup {stream:.2}");
}

#[test]
fn atoms_per_activate_tracks_row_locality() {
    let run = |name: &str| {
        SystemBuilder::new(DramKind::QbHbm)
            .workload(suites::by_name(name).unwrap())
            .run(WARMUP, WINDOW)
            .unwrap()
    };
    let stream = run("STREAM").atoms_per_activate();
    let gups = run("GUPS").atoms_per_activate();
    assert!(stream > 4.0 * gups, "stream {stream:.1} vs gups {gups:.1}");
}

#[test]
fn refresh_happens_on_every_architecture() {
    for kind in DramKind::ALL {
        let r = SystemBuilder::new(kind)
            .workload(suites::by_name("pathfinder").unwrap())
            .run(WARMUP, WINDOW)
            .unwrap();
        // Each channel refreshes roughly every tREFI.
        assert!(r.refreshes > 0, "{kind}: no refreshes in window");
    }
}

#[test]
fn wave_window_off_still_runs() {
    let gpu = GpuConfig { wave_window: 0, ..GpuConfig::default() };
    let r = SystemBuilder::new(DramKind::Fgdram)
        .workload(suites::by_name("STREAM").unwrap())
        .gpu_config(gpu)
        .run(WARMUP, WINDOW)
        .unwrap();
    assert!(r.retired > 0);
}

#[test]
fn latency_reduction_on_irregular_workloads() {
    // Section 5.2: FGDRAM lowers average DRAM access latency (~40% across
    // the suite) by relieving queueing delay. bfs is queueing-delay bound
    // on QB-HBM; GUPS saturates both systems' queues so its latencies are
    // comparable.
    let w = suites::by_name("bfs").unwrap();
    let qb =
        SystemBuilder::new(DramKind::QbHbm).workload(w.clone()).run(WARMUP, 3 * WINDOW).unwrap();
    let fg = SystemBuilder::new(DramKind::Fgdram).workload(w).run(WARMUP, 3 * WINDOW).unwrap();
    assert!(
        fg.avg_read_latency_ns < qb.avg_read_latency_ns,
        "fg {} !< qb {}",
        fg.avg_read_latency_ns,
        qb.avg_read_latency_ns
    );
}

#[test]
fn grs_io_is_constant_per_bit() {
    use fgdram::energy::floorplan::IoTechnology;
    let w = suites::by_name("STREAM").unwrap();
    let podl =
        SystemBuilder::new(DramKind::Fgdram).workload(w.clone()).run(WARMUP, WINDOW).unwrap();
    let grs = SystemBuilder::new(DramKind::Fgdram)
        .workload(w)
        .io_technology(IoTechnology::Grs)
        .run(WARMUP, WINDOW)
        .unwrap();
    // Section 3.5 / 5.1: GRS raises I/O slightly at application activity
    // (0.54 pJ/b constant vs ~0.43-0.54 for PODL) but is data-independent.
    assert!((grs.energy_per_bit.io.value() - 0.54).abs() < 1e-6);
    assert!(grs.energy_per_bit.io > podl.energy_per_bit.io);
    // Activation and movement are unaffected by the I/O choice.
    assert_eq!(grs.energy_per_bit.activation.value(), podl.energy_per_bit.activation.value());
}

#[test]
fn trace_is_empty_without_opt_in() {
    let w = suites::by_name("STREAM").unwrap();
    let mut sys = SystemBuilder::new(DramKind::QbHbm).workload(w).build().unwrap();
    sys.run_for(2_000).unwrap();
    assert!(sys.take_trace().is_empty());
}

#[test]
fn design_choice_ablations_run_and_order_sensibly() {
    use fgdram::model::config::DramConfig;
    // Activation energy: subchannels-only < SALP-only (256 B vs 1 KB rows).
    let w = suites::by_name("GUPS").unwrap();
    let run = |cfg: DramConfig| {
        SystemBuilder::new(DramKind::QbHbmSalpSc)
            .dram_config(cfg)
            .workload(w.clone())
            .run(WARMUP, WINDOW)
            .unwrap()
    };
    let salp_only = run(DramConfig::qb_hbm_salp_only());
    let sc_only = run(DramConfig::qb_hbm_subchannels_only());
    assert!(
        sc_only.energy_per_bit.activation < salp_only.energy_per_bit.activation,
        "sc {} !< salp {}",
        sc_only.energy_per_bit.activation,
        salp_only.energy_per_bit.activation
    );
}

#[test]
fn report_counts_are_consistent() {
    let w = suites::by_name("mst").unwrap();
    let r = SystemBuilder::new(DramKind::QbHbm).workload(w).run(WARMUP, WINDOW).unwrap();
    // Bandwidth derives exactly from atoms over the window.
    let bytes = (r.read_atoms + r.write_atoms) * 32;
    let bw = bytes as f64 / r.window_ns as f64;
    assert!((r.bandwidth.value() - bw).abs() < 1e-9);
    // Atoms per activate matches the counters.
    if r.activates > 0 {
        let apa = (r.read_atoms + r.write_atoms) as f64 / r.activates as f64;
        assert!((r.atoms_per_activate() - apa).abs() < 1e-12);
    }
}

#[test]
fn swizzle_keeps_channels_balanced() {
    // Strided and random traffic alike should spread across channels
    // (Section 4.1's anti-camping address mapping).
    for name in ["kmeans", "GUPS", "STREAM"] {
        let r = SystemBuilder::new(DramKind::QbHbm)
            .workload(suites::by_name(name).unwrap())
            .run(WARMUP, WINDOW)
            .unwrap();
        assert!(
            r.channel_imbalance_cv < 0.25,
            "{name}: channel imbalance CV {:.3}",
            r.channel_imbalance_cv
        );
    }
}
