//! Randomized command schedules driven through the device model, with the
//! accepted trace replayed through the independent checker: the two
//! implementations must agree that every accepted schedule is legal, and
//! the device must reject anything issued before its own `earliest` time.
//! Schedules are drawn from the repo's seeded PRNG, so runs reproduce.

use fgdram::dram::{DramDevice, ProtocolChecker, Rule};
use fgdram::model::addr::ReqId;
use fgdram::model::cmd::{BankRef, DramCommand};
use fgdram::model::config::{DramConfig, DramKind};
use fgdram::model::rng::SmallRng;

#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Activate { row_sel: u8, slice_sel: u8 },
    Column { write: bool, col_sel: u8 },
    Precharge,
    Refresh,
}

/// Weighted op mix (3:4:2:1), matching the original proptest strategy.
fn arb_op(r: &mut SmallRng) -> (u8, u8, OpChoice, u8) {
    let op = match r.random_range(0..10) {
        0..=2 => OpChoice::Activate { row_sel: r.next_u64() as u8, slice_sel: r.next_u64() as u8 },
        3..=6 => OpChoice::Column { write: r.random_bool(0.5), col_sel: r.next_u64() as u8 },
        7..=8 => OpChoice::Precharge,
        _ => OpChoice::Refresh,
    };
    (r.next_u64() as u8, r.next_u64() as u8, op, r.next_u64() as u8)
}

/// Runs a random schedule on `kind`; every command is issued at the
/// device's own `earliest` time plus jitter, so every acceptance must be
/// checker-clean, and structural rejections must never mutate state.
fn run_random_schedule(kind: DramKind, ops: &[(u8, u8, OpChoice, u8)]) {
    let cfg = DramConfig::new(kind);
    let mut dev = DramDevice::new(cfg.clone());
    dev.enable_trace();
    let mut now = 0u64;
    for &(ch_sel, bank_sel, op, jitter) in ops {
        let channel = ch_sel as u32 % cfg.channels.min(8) as u32;
        let bank = bank_sel as u32 % cfg.banks_per_channel as u32;
        let bankref = BankRef { channel, bank };
        let cmd = match op {
            OpChoice::Activate { row_sel, slice_sel } => DramCommand::Activate {
                bank: bankref,
                row: row_sel as u32 * 37 % cfg.rows_per_bank as u32,
                slice: slice_sel as u32 % cfg.slices_per_row() as u32,
            },
            OpChoice::Column { write, col_sel } => {
                // Target an open row when one exists, else expect rejection.
                let open =
                    dev.channel(channel).bank(bank).open_rows().next().map(|o| (o.row, o.slice));
                let (row, slice) = open.unwrap_or((1, 0));
                let col = slice * cfg.atoms_per_activation() as u32
                    + col_sel as u32 % cfg.atoms_per_activation() as u32;
                if write {
                    DramCommand::Write {
                        bank: bankref,
                        row,
                        col,
                        auto_precharge: col_sel % 3 == 0,
                        req: ReqId(0),
                    }
                } else {
                    DramCommand::Read {
                        bank: bankref,
                        row,
                        col,
                        auto_precharge: col_sel % 3 == 0,
                        req: ReqId(0),
                    }
                }
            }
            OpChoice::Precharge => {
                let open =
                    dev.channel(channel).bank(bank).open_rows().next().map(|o| (o.row, o.slice));
                match open {
                    Some((row, slice)) => {
                        DramCommand::Precharge { bank: bankref, row: Some(row), slice }
                    }
                    None => DramCommand::Precharge { bank: bankref, row: None, slice: 0 },
                }
            }
            OpChoice::Refresh => DramCommand::Refresh { channel },
        };
        match dev.earliest(&cmd, now) {
            Ok(t) => {
                // Issuing earlier than `earliest` must be rejected...
                if t > now {
                    let err = dev.issue(cmd, now).expect_err("early issue must fail");
                    assert!(err.earliest.is_some() || err.rule != Rule::OutOfRange);
                }
                // ...and issuing at `earliest` (+ jitter) must succeed,
                // except when another command claimed a shared resource —
                // none can have, since we issue immediately.
                let at = t + (jitter % 3) as u64;
                // Recompute: jitter may have changed nothing, but shared
                // state is untouched between the two calls.
                let at = dev.earliest(&cmd, at).expect("still schedulable");
                dev.issue(cmd, at).expect("issue at earliest succeeds");
                now = at;
            }
            Err(_) => {
                // Structurally impossible now (wrong row, conflicts):
                // must also fail to issue, leaving no trace entry.
                assert!(dev.issue(cmd, now).is_err());
            }
        }
    }
    let trace = dev.take_trace();
    ProtocolChecker::new(cfg).check_trace(&trace).expect("accepted schedule is checker-clean");
}

fn random_schedules_agree_with_checker(kind: DramKind, seed: u64, cases: usize, max_ops: u64) {
    let mut r = SmallRng::seed_from_u64(seed);
    for _ in 0..cases {
        let n = r.random_range(1..max_ops);
        let ops: Vec<_> = (0..n).map(|_| arb_op(&mut r)).collect();
        run_random_schedule(kind, &ops);
    }
}

#[test]
fn random_schedules_agree_with_checker_qb() {
    random_schedules_agree_with_checker(DramKind::QbHbm, 0xD3A1_0001, 40, 120);
}

#[test]
fn random_schedules_agree_with_checker_fgdram() {
    random_schedules_agree_with_checker(DramKind::Fgdram, 0xD3A1_0002, 40, 120);
}

#[test]
fn random_schedules_agree_with_checker_salp() {
    random_schedules_agree_with_checker(DramKind::QbHbmSalpSc, 0xD3A1_0003, 40, 120);
}

#[test]
fn random_schedules_agree_with_checker_hbm2() {
    random_schedules_agree_with_checker(DramKind::Hbm2, 0xD3A1_0004, 40, 100);
}
