//! End-to-end protocol validation: run full-system simulations with
//! command tracing on every architecture and replay each trace through the
//! independent checker. A scheduler bug and a device-model bug would have
//! to agree to slip through.

use fgdram::core::SystemBuilder;
use fgdram::dram::ProtocolChecker;
use fgdram::model::config::{DramConfig, DramKind};
use fgdram::workloads::suites;

fn check(kind: DramKind, workload: &str) {
    let w = suites::by_name(workload).expect("workload exists");
    let mut sys = SystemBuilder::new(kind).workload(w).with_trace().build().expect("build");
    sys.run_for(12_000).expect("run");
    let trace = sys.take_trace();
    assert!(
        trace.len() > 500,
        "{kind} {workload}: expected real traffic, got {} commands",
        trace.len()
    );
    let mut checker = ProtocolChecker::new(DramConfig::new(kind));
    if let Err(e) = checker.check_trace(&trace) {
        panic!("{kind} {workload}: protocol violation: {e}");
    }
}

#[test]
fn hbm2_trace_is_protocol_clean() {
    check(DramKind::Hbm2, "STREAM");
    check(DramKind::Hbm2, "GUPS");
}

#[test]
fn qb_hbm_trace_is_protocol_clean() {
    check(DramKind::QbHbm, "STREAM");
    check(DramKind::QbHbm, "GUPS");
    check(DramKind::QbHbm, "bfs");
}

#[test]
fn qb_hbm_salp_sc_trace_is_protocol_clean() {
    check(DramKind::QbHbmSalpSc, "STREAM");
    check(DramKind::QbHbmSalpSc, "GUPS");
}

#[test]
fn fgdram_trace_is_protocol_clean() {
    check(DramKind::Fgdram, "STREAM");
    check(DramKind::Fgdram, "GUPS");
    check(DramKind::Fgdram, "nw");
}

#[test]
fn graphics_trace_is_protocol_clean() {
    check(DramKind::QbHbm, "gfx00");
    check(DramKind::Fgdram, "gfx00");
}

#[test]
fn ablation_configs_trace_clean() {
    let w = suites::by_name("gfx07").expect("workload");
    for cfg in [DramConfig::qb_hbm_atom128(), DramConfig::qb_hbm_deep_bank_groups()] {
        let mut sys = SystemBuilder::new(DramKind::QbHbm)
            .dram_config(cfg.clone())
            .workload(w.clone())
            .with_trace()
            .build()
            .expect("build");
        sys.run_for(12_000).expect("run");
        let trace = sys.take_trace();
        assert!(trace.len() > 200);
        ProtocolChecker::new(cfg).check_trace(&trace).expect("protocol clean");
    }
}
