//! End-to-end tests of the `fgdram-serve` daemon and `fgdram-client`
//! through the real binaries and real processes — including the two
//! serving acceptance gates: the served report is byte-identical to the
//! `fgdram_sim suite` CLI at any worker count, and a `kill -9`'d daemon
//! resumes from its spool without recomputing finished cells.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The job spec used throughout: small enough to finish in seconds,
/// large enough (3 workloads = 6 cells) for a mid-job kill to land.
const WARMUP: &str = "2000";
const WINDOW: &str = "6000";
const MAX_WORKLOADS: &str = "3";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgdram_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The reference bytes: what the CLI prints for the same suite spec.
fn cli_report(jobs: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fgdram_sim"))
        .args([
            "suite",
            "compute",
            "--warmup",
            WARMUP,
            "--window",
            WINDOW,
            "--max-workloads",
            MAX_WORKLOADS,
            "--jobs",
            jobs,
        ])
        .output()
        .expect("run fgdram_sim suite");
    assert!(out.status.success(), "CLI suite failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("CLI suite output is UTF-8")
}

/// A daemon process on an ephemeral port; killed on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(spool: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fgdram-serve"))
            .args(["--port", "0", "--spool"])
            .arg(spool)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fgdram-serve");
        // The daemon prints `fgdram-serve: listening on IP:PORT` once the
        // socket is bound; block on that line to learn the port.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon banner");
        let addr = line
            .trim()
            .strip_prefix("fgdram-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_fgdram-client"))
            .args(args)
            .args(["--addr", &self.addr])
            .output()
            .expect("run fgdram-client")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = vec![
        "submit",
        "--suite",
        "compute",
        "--warmup",
        WARMUP,
        "--window",
        WINDOW,
        "--max-workloads",
        MAX_WORKLOADS,
    ];
    v.extend_from_slice(extra);
    v
}

#[test]
fn served_report_is_byte_identical_to_the_cli_suite() {
    let spool = tmp_dir("identity");
    let daemon = Daemon::start(&spool, &[]);
    let reference = cli_report("3");
    let out = daemon.client(&submit_args(&[]));
    assert!(out.status.success(), "client submit failed: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).expect("served report is UTF-8");
    assert_eq!(served, reference, "served report differs from the CLI bytes");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn over_budget_jobs_are_rejected_with_exit_code_8() {
    let spool = tmp_dir("budget");
    // 6 cells x 8000 ns = 48_000 > 10_000: rejected at admission.
    let daemon = Daemon::start(&spool, &["--max-job-cost", "10000"]);
    let out = daemon.client(&submit_args(&[]));
    assert_eq!(out.status.code(), Some(8), "budget reject exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"code\":\"budget\""), "stderr: {err}");
    assert!(err.contains("HTTP 422"), "stderr: {err}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn telemetry_streams_to_a_file_and_cancel_exits_10() {
    let spool = tmp_dir("telemetry");
    let daemon = Daemon::start(&spool, &[]);
    let tpath = spool.join("t.jsonl");
    let tpath_s = tpath.to_str().unwrap();
    let out = daemon.client(&submit_args(&["--telemetry", tpath_s, "--epoch", "1000"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let jsonl = std::fs::read_to_string(&tpath).expect("telemetry file");
    assert!(jsonl.lines().count() > 0, "telemetry lines streamed");
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "JSONL shape");
    // Cancel a fresh job queued behind a deliberately absent worker
    // supply: single worker and a long job keep j2 queued long enough.
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success());
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    let out = daemon.client(&["cancel", &job]);
    assert!(
        out.status.success() || out.status.code() == Some(2),
        "cancel outcome: {:?} {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    if out.status.success() {
        // Fetching the report of a cancelled job is the typed code 10.
        let out = daemon.client(&["report", &job]);
        assert_eq!(out.status.code(), Some(10), "cancelled report exit code");
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn kill_dash_nine_then_restart_resumes_without_recompute() {
    let spool = tmp_dir("resume");
    let reference = cli_report("2");
    // Single worker so the kill reliably lands mid-job.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    // Wait until at least one cell record hits the spool, then SIGKILL.
    let ckpt = spool.join(format!("{job}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(60);
    let cells_before_kill = loop {
        let done = std::fs::read_to_string(&ckpt)
            .map(|s| s.lines().filter(|l| l.starts_with("end ")).count())
            .unwrap_or(0);
        if done >= 1 {
            break done;
        }
        assert!(Instant::now() < deadline, "no cell checkpointed within 60s");
        std::thread::sleep(Duration::from_millis(30));
    };
    drop(daemon); // SIGKILL, no graceful shutdown
                  // Restart on the same spool; the job resumes and completes.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&["report", &job]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).unwrap();
    assert_eq!(served, reference, "resumed report differs from the CLI bytes");
    // The daemon restored (not re-ran) the checkpointed cells.
    let out = daemon.client(&["stats"]);
    assert!(out.status.success());
    let stats = String::from_utf8(out.stdout).unwrap();
    let resumed: usize = stats
        .split("\"resumed\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("resumed counter in stats");
    assert!(
        resumed >= cells_before_kill,
        "expected >= {cells_before_kill} resumed cells, stats: {stats}"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}
