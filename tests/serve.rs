//! End-to-end tests of the `fgdram-serve` daemon and `fgdram-client`
//! through the real binaries and real processes — including the two
//! serving acceptance gates: the served report is byte-identical to the
//! `fgdram_sim suite` CLI at any worker count, and a `kill -9`'d daemon
//! resumes from its spool without recomputing finished cells.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The job spec used throughout: small enough to finish in seconds,
/// large enough (3 workloads = 6 cells) for a mid-job kill to land.
const WARMUP: &str = "2000";
const WINDOW: &str = "6000";
const MAX_WORKLOADS: &str = "3";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgdram_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The reference bytes: what the CLI prints for the same suite spec.
fn cli_report(jobs: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fgdram_sim"))
        .args([
            "suite",
            "compute",
            "--warmup",
            WARMUP,
            "--window",
            WINDOW,
            "--max-workloads",
            MAX_WORKLOADS,
            "--jobs",
            jobs,
        ])
        .output()
        .expect("run fgdram_sim suite");
    assert!(out.status.success(), "CLI suite failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("CLI suite output is UTF-8")
}

/// A daemon process on an ephemeral port; killed on drop.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(spool: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fgdram-serve"))
            .args(["--port", "0", "--spool"])
            .arg(spool)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fgdram-serve");
        // The daemon prints `fgdram-serve: listening on IP:PORT` once the
        // socket is bound; block on that line to learn the port.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon banner");
        let addr = line
            .trim()
            .strip_prefix("fgdram-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_fgdram-client"))
            .args(args)
            .args(["--addr", &self.addr])
            .output()
            .expect("run fgdram-client")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = vec![
        "submit",
        "--suite",
        "compute",
        "--warmup",
        WARMUP,
        "--window",
        WINDOW,
        "--max-workloads",
        MAX_WORKLOADS,
    ];
    v.extend_from_slice(extra);
    v
}

#[test]
fn served_report_is_byte_identical_to_the_cli_suite() {
    let spool = tmp_dir("identity");
    let daemon = Daemon::start(&spool, &[]);
    let reference = cli_report("3");
    let out = daemon.client(&submit_args(&[]));
    assert!(out.status.success(), "client submit failed: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).expect("served report is UTF-8");
    assert_eq!(served, reference, "served report differs from the CLI bytes");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn over_budget_jobs_are_rejected_with_exit_code_8() {
    let spool = tmp_dir("budget");
    // 6 cells x 8000 ns = 48_000 > 10_000: rejected at admission.
    let daemon = Daemon::start(&spool, &["--max-job-cost", "10000"]);
    let out = daemon.client(&submit_args(&[]));
    assert_eq!(out.status.code(), Some(8), "budget reject exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("\"code\":\"budget\""), "stderr: {err}");
    assert!(err.contains("HTTP 422"), "stderr: {err}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn telemetry_streams_to_a_file_and_cancel_exits_10() {
    let spool = tmp_dir("telemetry");
    let daemon = Daemon::start(&spool, &[]);
    let tpath = spool.join("t.jsonl");
    let tpath_s = tpath.to_str().unwrap();
    let out = daemon.client(&submit_args(&["--telemetry", tpath_s, "--epoch", "1000"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let jsonl = std::fs::read_to_string(&tpath).expect("telemetry file");
    assert!(jsonl.lines().count() > 0, "telemetry lines streamed");
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "JSONL shape");
    // Cancel a fresh job queued behind a deliberately absent worker
    // supply: single worker and a long job keep j2 queued long enough.
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success());
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    let out = daemon.client(&["cancel", &job]);
    assert!(
        out.status.success() || out.status.code() == Some(2),
        "cancel outcome: {:?} {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    if out.status.success() {
        // Fetching the report of a cancelled job is the typed code 10.
        let out = daemon.client(&["report", &job]);
        assert_eq!(out.status.code(), Some(10), "cancelled report exit code");
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

#[test]
fn kill_dash_nine_then_restart_resumes_without_recompute() {
    let spool = tmp_dir("resume");
    let reference = cli_report("2");
    // Single worker so the kill reliably lands mid-job.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    // Wait until at least one cell record hits the spool, then SIGKILL.
    let ckpt = spool.join(format!("{job}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(60);
    let cells_before_kill = loop {
        let done = std::fs::read_to_string(&ckpt)
            .map(|s| s.lines().filter(|l| l.starts_with("end ")).count())
            .unwrap_or(0);
        if done >= 1 {
            break done;
        }
        assert!(Instant::now() < deadline, "no cell checkpointed within 60s");
        std::thread::sleep(Duration::from_millis(30));
    };
    drop(daemon); // SIGKILL, no graceful shutdown
                  // Restart on the same spool; the job resumes and completes.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&["report", &job]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).unwrap();
    assert_eq!(served, reference, "resumed report differs from the CLI bytes");
    // The daemon restored (not re-ran) the checkpointed cells.
    let out = daemon.client(&["stats"]);
    assert!(out.status.success());
    let stats = String::from_utf8(out.stdout).unwrap();
    let resumed: usize = stats
        .split("\"resumed\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("resumed counter in stats");
    assert!(
        resumed >= cells_before_kill,
        "expected >= {cells_before_kill} resumed cells, stats: {stats}"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

// ---------------------------------------------------------------------------
// Chaos hardening: seeded fuzz, wire/disk fault injection, graceful drain.
// ---------------------------------------------------------------------------

use fgdram_model::rng::SmallRng;

/// A valid request to mutate from: well-formed submit with a body.
const FUZZ_BASE: &[u8] =
    b"POST /jobs HTTP/1.1\r\ncontent-length: 14\r\nx-tenant: fuzz\r\n\r\nsuite=compute\n";

/// Seeded request mutator: each draw picks one corruption family, so the
/// corpus covers oversized headers, bogus framing numbers, NUL bytes,
/// truncations, and plain byte garbage.
fn mutate_request(rng: &mut SmallRng) -> Vec<u8> {
    let mut buf = FUZZ_BASE.to_vec();
    match rng.random_range(0..7u64) {
        0 => {
            // Oversized header line (way past any sane limit).
            let pad = "a".repeat(64 * 1024);
            buf = format!("GET /stats HTTP/1.1\r\nx-pad: {pad}\r\n\r\n").into_bytes();
        }
        1 => {
            // Non-numeric / absurd content-length.
            let cl = if rng.random_bool(0.5) { "banana" } else { "999999999999999999999999" };
            buf = format!("POST /jobs HTTP/1.1\r\ncontent-length: {cl}\r\n\r\nhi").into_bytes();
        }
        2 => {
            // Content-length larger than the bytes we actually send.
            buf = b"POST /jobs HTTP/1.1\r\ncontent-length: 5000\r\n\r\nshort".to_vec();
        }
        3 => {
            // NUL bytes sprayed through the request.
            for _ in 0..rng.random_range(1..8) {
                let at = rng.random_index(buf.len());
                buf[at] = 0;
            }
        }
        4 => {
            // Truncation at an arbitrary byte.
            buf.truncate(rng.random_index(buf.len()) + 1);
        }
        5 => {
            // Bogus chunked framing (bad chunk-size digits).
            buf = b"POST /jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZZZ\r\njunk\r\n0\r\n\r\n"
                .to_vec();
        }
        _ => {
            // Random byte garbling.
            for _ in 0..rng.random_range(1..12) {
                let at = rng.random_index(buf.len());
                buf[at] ^= rng.random_range(1..256) as u8;
            }
        }
    }
    buf
}

/// In-process half of the fuzz loop: the request parser itself must never
/// panic, whatever bytes arrive. (Cheap, so it runs a big corpus.)
#[test]
fn request_parser_survives_a_seeded_mutation_corpus() {
    let mut rng = SmallRng::seed_from_u64(0xF022);
    for _ in 0..500 {
        let buf = mutate_request(&mut rng);
        let mut cursor = std::io::Cursor::new(buf);
        // Ok or a typed error are both fine; only a panic fails the test.
        let _ = fgdram_serve::http::read_request(&mut cursor);
    }
}

/// Live-daemon half: malformed requests over a real socket get a typed
/// response (or a clean close), and the daemon stays alive throughout.
#[test]
fn daemon_survives_malformed_requests_over_the_wire() {
    use std::io::{Read as _, Write as _};
    let spool = tmp_dir("fuzzwire");
    let daemon = Daemon::start(&spool, &["--read-timeout-ms", "400", "--write-timeout-ms", "2000"]);
    let mut rng = SmallRng::seed_from_u64(0xF0221);
    for i in 0..60 {
        let buf = mutate_request(&mut rng);
        let mut s = std::net::TcpStream::connect(&daemon.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(&buf);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut resp = Vec::new();
        let _ = s.read_to_end(&mut resp);
        if !resp.is_empty() {
            assert!(
                resp.starts_with(b"HTTP/1.1 "),
                "iteration {i}: non-HTTP response: {:?}",
                String::from_utf8_lossy(&resp[..resp.len().min(80)])
            );
            let status: u16 = String::from_utf8_lossy(&resp[9..12]).parse().unwrap_or(0);
            assert!(
                (400..500).contains(&status),
                "iteration {i}: malformed input answered {status}"
            );
        }
    }
    // The daemon must still be healthy after the whole corpus.
    let out = daemon.client(&["stats", "--retries", "2"]);
    assert!(
        out.status.success(),
        "daemon died under fuzz: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = String::from_utf8(out.stdout).unwrap();
    assert!(stats.contains("\"malformed\":"), "stats: {stats}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

/// The tentpole acceptance gate: under seeded wire chaos (torn requests,
/// connection resets, mid-response disconnects) plus disk chaos on the
/// spool, a retrying client still gets the exact CLI bytes.
#[test]
fn served_report_is_byte_identical_under_seeded_chaos_with_retries() {
    let spool = tmp_dir("chaoswire");
    let daemon = Daemon::start(
        &spool,
        &[
            "--chaos",
            "torn=0.3,reset=0.3,disconnect=0.2,ckpt-corrupt=0.3,ckpt-short=0.2",
            "--chaos-seed",
            "20250807",
            "--read-timeout-ms",
            "2000",
        ],
    );
    let reference = cli_report("3");
    let out = daemon.client(&submit_args(&["--retries", "16", "--retry-base-ms", "10"]));
    assert!(
        out.status.success(),
        "client failed under chaos: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let served = String::from_utf8(out.stdout).expect("served report is UTF-8");
    assert_eq!(served, reference, "chaos changed the served bytes");
    // The injected faults are visible in /stats: the run was not clean.
    let out = daemon.client(&["stats", "--retries", "16", "--retry-base-ms", "10"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stats = String::from_utf8(out.stdout).unwrap();
    assert!(stats.contains("\"chaos\":"), "chaos counters missing from stats: {stats}");
    let injected: u64 = ["\"torn\":", "\"reset\":", "\"disconnect\":"]
        .iter()
        .filter_map(|k| {
            stats.split(k).nth(1).and_then(|s| {
                s.split(|c: char| !c.is_ascii_digit()).next().and_then(|d| d.parse::<u64>().ok())
            })
        })
        .sum();
    assert!(injected > 0, "no wire faults actually injected: {stats}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

/// `kill -9` while disk chaos corrupts and tears checkpoint records: the
/// restarted (clean) daemon skips damaged records, recomputes those
/// cells, and still serves the exact CLI bytes.
#[test]
fn kill_dash_nine_under_disk_chaos_still_resumes_byte_identical() {
    let spool = tmp_dir("chaosdisk");
    let reference = cli_report("2");
    let daemon = Daemon::start(
        &spool,
        &["--workers", "1", "--chaos", "ckpt-corrupt=0.5,ckpt-short=0.3", "--chaos-seed", "777"],
    );
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    // Let several (possibly damaged) records land, then SIGKILL.
    let ckpt = spool.join(format!("{job}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        // Lossy read: chaos corruption can make the spool non-UTF-8.
        let ends = std::fs::read(&ckpt)
            .map(|b| String::from_utf8_lossy(&b).lines().filter(|l| l.starts_with("end ")).count())
            .unwrap_or(0);
        if ends >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "no cells checkpointed within 60s");
        std::thread::sleep(Duration::from_millis(30));
    }
    drop(daemon); // SIGKILL
                  // Restart with chaos off: the loader faces the damaged spool.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&["report", &job]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).unwrap();
    assert_eq!(served, reference, "resumed-after-disk-chaos report differs from the CLI bytes");
    let out = daemon.client(&["stats"]);
    assert!(out.status.success());
    let stats = String::from_utf8(out.stdout).unwrap();
    assert!(stats.contains("\"skipped_records\":"), "stats: {stats}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}

/// SIGTERM drains gracefully: the running cell finishes and checkpoints,
/// the process exits 0, and a restart completes the job byte-identically.
#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_and_a_restart_completes_the_job() {
    let spool = tmp_dir("drain");
    let reference = cli_report("2");
    let mut daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&submit_args(&["--no-wait"]));
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let job = String::from_utf8(out.stdout).unwrap().trim().to_string();
    // Wait until the job is underway, then ask for a graceful stop.
    let ckpt = spool.join(format!("{job}.ckpt"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "job never started within 60s");
        std::thread::sleep(Duration::from_millis(30));
    }
    let kill = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success(), "kill -TERM failed");
    let status = daemon.child.wait().expect("wait for drained daemon");
    assert_eq!(status.code(), Some(0), "drain must exit 0, got {status:?}");
    // The drained spool resumes cleanly and the job completes.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let out = daemon.client(&["report", &job]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let served = String::from_utf8(out.stdout).unwrap();
    assert_eq!(served, reference, "post-drain report differs from the CLI bytes");
    drop(daemon);
    let _ = std::fs::remove_dir_all(spool);
}
