//! Randomized tests on the controller: every accepted request completes
//! (liveness), completions conserve counts, and the command trace the
//! scheduler produces is always protocol-clean — across architectures and
//! randomized request mixes drawn from the repo's seeded PRNG.

use fgdram::ctrl::Controller;
use fgdram::dram::{DramDevice, ProtocolChecker};
use fgdram::model::addr::{MemRequest, PhysAddr, ReqId};
use fgdram::model::config::{CtrlConfig, DramConfig, DramKind, PagePolicy};
use fgdram::model::rng::SmallRng;

#[derive(Debug, Clone, Copy)]
struct Req {
    addr: u64,
    is_write: bool,
}

fn arb_reqs(r: &mut SmallRng, max: u64) -> Vec<Req> {
    let n = r.random_range(1..max);
    (0..n)
        .map(|_| Req { addr: r.random_range(0..1 << 26) & !31, is_write: r.random_bool(0.5) })
        .collect()
}

fn drain(kind: DramKind, reqs: &[Req], policy: PagePolicy) {
    let cfg = DramConfig::new(kind);
    let mut dev = DramDevice::new(cfg.clone());
    dev.enable_trace();
    let mut ctrl_cfg = CtrlConfig::for_dram(&cfg);
    ctrl_cfg.page_policy = policy;
    let mut ctrl = Controller::new(&cfg, ctrl_cfg).unwrap();

    let mut out = Vec::new();
    let mut now = 0u64;
    let mut queued = std::collections::VecDeque::from(reqs.to_vec());
    let mut id = 0u64;
    let mut accepted_reads = 0u64;
    let mut accepted_writes = 0u64;
    let deadline = 4_000_000;
    while (!queued.is_empty() || ctrl.pending() > 0) && now < deadline {
        while let Some(&r) = queued.front() {
            id += 1;
            let req = MemRequest { id: ReqId(id), addr: PhysAddr(r.addr), is_write: r.is_write };
            if ctrl.try_enqueue(req, now) {
                if r.is_write {
                    accepted_writes += 1;
                } else {
                    accepted_reads += 1;
                }
                queued.pop_front();
            } else {
                break;
            }
        }
        let next = ctrl.tick(&mut dev, now, &mut out).unwrap();
        now = next.max(now + 1);
    }
    assert!(queued.is_empty() && ctrl.pending() == 0, "{kind}: stuck at {now} ns");
    // Conservation: every accepted request produced exactly one completion.
    let reads_done = out.iter().filter(|c| !c.is_write).count() as u64;
    let writes_done = out.iter().filter(|c| c.is_write).count() as u64;
    assert_eq!(reads_done, accepted_reads, "{kind}: read completions");
    assert_eq!(writes_done, accepted_writes, "{kind}: write completions");
    // Trace must satisfy the independent checker.
    let trace = dev.take_trace();
    ProtocolChecker::new(cfg).check_trace(&trace).expect("protocol-clean");
    // Counter identity: device atoms match completions.
    let k = dev.total_counters();
    assert_eq!(k.read_atoms, accepted_reads);
    assert_eq!(k.write_atoms, accepted_writes);
}

fn drain_random_mixes(kind: DramKind, policy: PagePolicy, seed: u64, cases: usize, max: u64) {
    let mut r = SmallRng::seed_from_u64(seed);
    for _ in 0..cases {
        let reqs = arb_reqs(&mut r, max);
        drain(kind, &reqs, policy);
    }
}

#[test]
fn qb_hbm_drains_everything() {
    drain_random_mixes(DramKind::QbHbm, PagePolicy::Open, 0xC7A1_0001, 24, 300);
}

#[test]
fn fgdram_drains_everything() {
    drain_random_mixes(DramKind::Fgdram, PagePolicy::Open, 0xC7A1_0002, 24, 300);
}

#[test]
fn salp_sc_drains_everything() {
    drain_random_mixes(DramKind::QbHbmSalpSc, PagePolicy::Open, 0xC7A1_0003, 24, 200);
}

#[test]
fn closed_page_drains_everything() {
    drain_random_mixes(DramKind::QbHbm, PagePolicy::Closed, 0xC7A1_0004, 24, 200);
}

#[test]
fn hbm2_drains_everything() {
    drain_random_mixes(DramKind::Hbm2, PagePolicy::Open, 0xC7A1_0005, 24, 200);
}

/// Pathological same-bank storm: hundreds of conflicting rows on one bank
/// still drain (no livelock between conflict precharge and hit guard).
#[test]
fn same_bank_conflict_storm_drains() {
    let cfg = DramConfig::new(DramKind::QbHbm);
    let mapper = fgdram::model::addr::AddressMapper::new(&cfg).unwrap();
    let reqs: Vec<Req> = (0..400u32)
        .map(|i| {
            let loc = fgdram::model::addr::Location {
                channel: 0,
                bank: 0,
                row: (i % 97) * 13 % 16384,
                col: i % 32,
            };
            Req { addr: mapper.encode(loc).0, is_write: i % 3 == 0 }
        })
        .collect();
    drain(DramKind::QbHbm, &reqs, PagePolicy::Open);
}

/// FGDRAM subarray-conflict storm: alternating pseudobanks with rows in
/// the same subarray must resolve without deadlock.
#[test]
fn grain_subarray_storm_drains() {
    let cfg = DramConfig::new(DramKind::Fgdram);
    let mapper = fgdram::model::addr::AddressMapper::new(&cfg).unwrap();
    let reqs: Vec<Req> = (0..300u32)
        .map(|i| {
            let loc = fgdram::model::addr::Location {
                channel: 2,
                bank: i % 2,
                row: (i * 7) % 512, // all in subarray 0
                col: i % 8,
            };
            Req { addr: mapper.encode(loc).0, is_write: false }
        })
        .collect();
    drain(DramKind::Fgdram, &reqs, PagePolicy::Open);
}
